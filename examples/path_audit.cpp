// Path audit: the §6 scenario — given a forwarding path's hop IPs, report
// which vendors the traffic traverses, and whether an alternative route
// avoiding a distrusted vendor exists (§6.3 informed routing).
//
// Usage: path_audit [distrusted-vendor]   (default: Huawei)

#include <cstdlib>
#include <set>
#include <iostream>

#include "analysis/as_analysis.hpp"
#include "analysis/experiment_world.hpp"
#include "analysis/informed_routing.hpp"
#include "analysis/path_analysis.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace lfp;

    stack::Vendor distrusted = stack::Vendor::huawei;
    if (argc > 1) {
        if (auto parsed = stack::vendor_from_string(argv[1])) {
            distrusted = *parsed;
        } else {
            std::cerr << "unknown vendor '" << argv[1] << "'\n";
            return 1;
        }
    }

    analysis::WorldConfig config;
    config.num_ases = 800;
    config.scale = 0.4;
    config.traces_per_snapshot = 10000;
    auto world = analysis::ExperimentWorld::create(config);

    const auto vendors = analysis::VendorMap::from_measurement(
        world->ripe5_measurement(), analysis::VendorMap::Method::combined);
    analysis::PathAnalyzer analyzer(world->topology(), vendors);

    // --- Audit a handful of concrete paths ---------------------------------
    util::TablePrinter audit("Path audit: vendors along sample forwarding paths");
    audit.header({"path", "hops", "identified", "vendors on path", "flags distrusted?"});
    std::size_t shown = 0;
    std::size_t flagged_paths = 0;
    std::size_t audited_paths = 0;
    for (const auto& trace : world->ripe5().traces) {
        if (trace.hops.size() < 4) continue;
        std::set<stack::Vendor> seen;
        std::size_t identified = 0;
        for (net::IPv4Address hop : trace.hops) {
            if (!hop.is_routable()) continue;
            if (auto vendor = vendors.lookup(hop)) {
                seen.insert(*vendor);
                ++identified;
            }
        }
        if (seen.empty()) continue;
        ++audited_paths;
        const bool flagged = seen.contains(distrusted);
        if (flagged) ++flagged_paths;
        if (shown < 8 && (flagged || shown < 5)) {
            ++shown;
            audit.row({"AS" + std::to_string(trace.source_asn) + " -> AS" +
                           std::to_string(trace.destination_asn),
                       std::to_string(trace.hops.size()), std::to_string(identified),
                       analysis::combination_key({seen.begin(), seen.end()}),
                       flagged ? "YES" : "no"});
        }
    }
    audit.print(std::cout);
    std::cout << "\nPaths traversing at least one identified " << stack::to_string(distrusted)
              << " router: " << flagged_paths << " of " << audited_paths << " audited ("
              << util::format_percent(audited_paths == 0
                                          ? 0.0
                                          : static_cast<double>(flagged_paths) /
                                                static_cast<double>(audited_paths))
              << ")\n";

    // --- Can those paths be avoided? (§6.3) ---------------------------------
    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto coverage = analysis::per_as_coverage(
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map));
    auto homogeneous = analysis::find_homogeneous_ases(coverage, 15, 0.85);
    std::erase_if(homogeneous, [&](const analysis::HomogeneousAs& as_entry) {
        return as_entry.vendor != distrusted ||
               world->topology().graph().node(as_entry.asn).customers.empty();
    });
    if (homogeneous.empty()) {
        std::cout << "\nNo " << stack::to_string(distrusted)
                  << "-homogeneous transit network in this world; nothing to avoid.\n";
        return 0;
    }
    analysis::InformedRoutingAnalysis engine(world->topology(),
                                             {.sources_per_destination = 48, .seed = 99});
    const auto study = engine.evaluate(homogeneous.front());
    std::cout << "\nInformed-routing check for AS" << study.transit_asn << " ("
              << stack::to_string(study.vendor) << "-dominated transit):\n"
              << "  destinations currently routed through it: " << study.destinations << "\n"
              << "  ... with an alternative path avoiding it:  " << study.with_alternative
              << "\n"
              << "  ... with no visible alternative:           " << study.without_alternative
              << "\n";
    return 0;
}
