// Live probe: run the genuine LFP campaign against real targets over raw
// sockets (Linux, CAP_NET_RAW). The identical pipeline that runs in
// simulation — same packets, same features, same signatures.
//
// Without privileges (or without --yes-i-am-authorized) it stays in dry-run
// mode: packets are built and the pipeline exercised, nothing leaves the
// host. Probing networks you do not own or lack authorization for may be
// illegal; the paper's §5 ethics discussion applies to you too.
//
// Usage: live_probe [--yes-i-am-authorized] <ip> [<ip> ...]

#include <iostream>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "probe/raw_socket_transport.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace lfp;

    bool authorized = false;
    std::vector<net::IPv4Address> targets;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--yes-i-am-authorized") {
            authorized = true;
            continue;
        }
        auto parsed = net::IPv4Address::parse(arg);
        if (!parsed) {
            std::cerr << "not an IPv4 address: " << arg << "\n";
            return 1;
        }
        targets.push_back(parsed.value());
    }
    if (targets.empty()) {
        targets.push_back(net::IPv4Address::from_octets(127, 0, 0, 1));
        std::cout << "no targets given; dry-running against 127.0.0.1\n";
    }

    probe::RawSocketTransport::Options options;
    options.timeout = std::chrono::milliseconds(800);
    options.dry_run = !authorized;
    probe::RawSocketTransport transport(options);
    std::cout << "transport: " << transport.status() << "\n";
    if (!authorized) {
        std::cout << "(dry run: pass --yes-i-am-authorized to actually send packets;\n"
                     " only probe infrastructure you are authorized to measure)\n";
    }

    // Declarative census plan: one vantage lane over this transport, up to
    // 32 targets in flight (sends stay in the fixed global order; responses
    // are demultiplexed by flow key as they arrive; window = 1 would
    // reproduce serial pacing). A real multi-origin deployment would list
    // one transport per vantage here and the runner would partition the
    // target list across them.
    core::CensusPlan plan;
    plan.name = "live";
    plan.targets = targets;
    plan.vantages = {&transport};
    plan.campaign.window = 32;
    plan.campaign.response_timeout = options.timeout;
    plan.worker_threads = 0;  // one feature-extraction shard per core
    core::CensusRunner runner(std::move(plan));
    auto measurement = runner.run();

    util::TablePrinter table("LFP live probe results");
    table.header({"target", "protocols", "SNMPv3 vendor", "signature"});
    for (const auto& record : measurement.records) {
        table.row({record.probes.target.to_string(),
                   std::to_string(record.probes.responsive_protocol_count()) + "/3",
                   record.snmp_vendor ? std::string(stack::to_string(*record.snmp_vendor))
                                      : std::string("-"),
                   record.features.empty() ? std::string("(no responses)")
                                           : record.signature.key()});
    }
    table.print(std::cout);

    std::cout << "\nPackets sent: " << runner.packets_sent() << " (10 per target).\n"
              << "To classify live signatures, load a signature database built from a\n"
              << "labeled corpus (see CensusRunner::build_database) and call\n"
              << "CensusRunner::classify on the measurement.\n";
    return 0;
}
