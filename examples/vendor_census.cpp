// Vendor census: the §7.5 scenario — fingerprint a network-wide router
// dataset, then report per-AS vendor composition, homogeneity, and regional
// market shares. This is the workload an operator or regulator would run to
// estimate exposure to a single vendor's vulnerability.
//
// Usage: vendor_census [min_routers_per_as]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/as_analysis.hpp"
#include "analysis/experiment_world.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace lfp;

    std::size_t min_routers = 5;
    if (argc > 1) min_routers = std::strtoull(argv[1], nullptr, 10);

    analysis::WorldConfig config;
    config.num_ases = 800;
    config.scale = 0.4;
    config.traces_per_snapshot = 8000;
    // Probe from four vantage lanes: the CensusRunner partitions each
    // dataset's targets by router affinity and index-merges, so the
    // measurements are byte-identical to a single-vantage run — just built
    // on four lanes' worth of in-flight probes.
    config.vantages = 4;
    // Production-census manners: shape each lane's send rate with a
    // token-bucket packets-per-second cap (polite to ICMP limiters; on the
    // deterministic sim it changes timing, never results), and give
    // loss-struck targets a second pass — the retry re-probes only the
    // incomplete signatures under fresh ID lanes.
    config.packets_per_second = 50'000.0;
    config.passes = 2;
    auto world = analysis::ExperimentWorld::create(config);
    std::cout << "Census ran from " << world->vantage_transports().size()
              << " vantage lanes, " << config.passes << " passes, "
              << config.packets_per_second << " pps/lane cap ("
              << world->packets_sent() << " probe packets).\n\n";

    // Router-level vendor mapping over the ITDK-like alias sets.
    const auto& itdk_measurement = world->itdk_measurement();
    const auto snmp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::snmpv3);
    const auto lfp_map = analysis::VendorMap::from_measurement(
        itdk_measurement, analysis::VendorMap::Method::lfp);
    const auto verdicts =
        analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map);
    const auto coverage = analysis::per_as_coverage(verdicts);

    // --- Census: largest networks and their vendor mix ---------------------
    util::TablePrinter census("Vendor census: largest fingerprinted networks");
    census.header({"AS", "routers", "identified", "vendors", "dominant vendor", "share"});
    std::vector<analysis::AsCoverage> ordered = coverage;
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
        return a.routers_total > b.routers_total;
    });
    std::size_t shown = 0;
    for (const auto& entry : ordered) {
        if (entry.routers_total < min_routers || shown == 12) continue;
        ++shown;
        std::string dominant = "-";
        std::string share = "-";
        if (auto vendor = entry.dominant(0.0); vendor && entry.routers_identified > 0) {
            dominant = std::string(stack::to_string(*vendor));
            share = util::format_percent(
                static_cast<double>(entry.vendor_counts.at(*vendor)) /
                static_cast<double>(entry.routers_identified));
        }
        census.row({"AS" + std::to_string(entry.asn), util::format_count(entry.routers_total),
                    util::format_percent(entry.identified_percent() / 100.0),
                    std::to_string(entry.vendor_count()), dominant, share});
    }
    census.print(std::cout);

    // --- Homogeneity summary ------------------------------------------------
    const auto homogeneity = analysis::homogeneity_ecdf(coverage, min_routers);
    std::cout << "\nNetworks with >= " << min_routers << " routers: " << homogeneity.size()
              << "\n  single-vendor: " << util::format_percent(homogeneity.at(1.0))
              << "\n  at most two vendors: " << util::format_percent(homogeneity.at(2.0))
              << "\n";

    // --- Who is exposed to a hypothetical single-vendor vulnerability? -----
    const auto homogeneous = analysis::find_homogeneous_ases(coverage, min_routers, 0.85);
    util::Counter exposure;
    for (const auto& as_entry : homogeneous) {
        exposure.add(std::string(stack::to_string(as_entry.vendor)));
    }
    std::cout << "\nVendor-homogeneous networks (>=85% one vendor) — the blast radius of a\n"
                 "single-vendor vulnerability:\n";
    for (const auto& [vendor, count] : exposure.top(8)) {
        std::cout << "  " << vendor << ": " << count << " networks\n";
    }
    return 0;
}
