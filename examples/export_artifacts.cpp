// Export artifacts: reproduce the paper's artifact release — the derived
// signature database plus per-IP classification results — as portable text
// files (the authors publish theirs at routerfingerprinting.github.io).
//
// Usage: export_artifacts [output-directory]   (default: ./lfp-artifacts)

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/as_analysis.hpp"
#include "analysis/experiment_world.hpp"
#include "io/csv_export.hpp"
#include "io/signature_store.hpp"

int main(int argc, char** argv) {
    using namespace lfp;
    namespace fs = std::filesystem;

    const fs::path out_dir = argc > 1 ? argv[1] : "lfp-artifacts";
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "cannot create " << out_dir << ": " << ec.message() << "\n";
        return 1;
    }

    analysis::WorldConfig config;
    config.num_ases = 600;
    config.scale = 0.35;
    config.traces_per_snapshot = 8000;
    auto world = analysis::ExperimentWorld::create(config);

    // 1. The signature database (the paper's headline artifact).
    const fs::path sig_path = out_dir / "signatures.txt";
    if (!io::save_signatures_file(sig_path.string(), world->database())) {
        std::cerr << "failed to write " << sig_path << "\n";
        return 1;
    }

    // 2. Per-IP classification results for RIPE-5 and ITDK.
    for (const auto* name : {"RIPE-5", "ITDK"}) {
        const fs::path csv_path = out_dir / (std::string(name) + "-classification.csv");
        std::ofstream csv(csv_path);
        io::export_measurement_csv(csv, world->measurement(name));
    }

    // 3. The traceroute dataset and alias sets that fed the analysis.
    {
        std::ofstream traces(out_dir / "ripe5-traceroutes.csv");
        io::export_traceroutes_csv(traces, world->ripe5());
        std::ofstream aliases(out_dir / "itdk-alias-sets.csv");
        io::export_alias_sets_csv(aliases, world->itdk());
    }

    // 4. Per-AS coverage (Appendix A input).
    {
        const auto& itdk_measurement = world->itdk_measurement();
        const auto snmp_map = analysis::VendorMap::from_measurement(
            itdk_measurement, analysis::VendorMap::Method::snmpv3);
        const auto lfp_map = analysis::VendorMap::from_measurement(
            itdk_measurement, analysis::VendorMap::Method::lfp);
        const auto coverage = analysis::per_as_coverage(
            analysis::map_routers(world->itdk(), world->topology(), snmp_map, lfp_map));
        std::ofstream as_csv(out_dir / "as-coverage.csv");
        io::export_as_coverage_csv(as_csv, coverage);
    }

    // Round-trip check: the exported signatures load back and classify.
    auto reloaded = io::load_signatures_file(sig_path.string(), {.min_occurrences = 1});
    if (!reloaded) {
        std::cerr << "round-trip failed: " << reloaded.error().message << "\n";
        return 1;
    }

    std::cout << "Artifacts written to " << out_dir << ":\n";
    for (const auto& entry : fs::directory_iterator(out_dir)) {
        std::cout << "  " << entry.path().filename().string() << "  ("
                  << fs::file_size(entry.path()) << " bytes)\n";
    }
    std::cout << "Signature database round-trips: " << reloaded.value().signatures().size()
              << " signatures reloaded.\n";
    return 0;
}
