// Quickstart: the 60-second tour of the LFP library.
//
// Builds a small simulated Internet, probes a slice of router IPs with the
// 9+1 packet LFP campaign, trains signatures from the SNMPv3-labeled subset,
// and classifies the rest — the full Figure 1 pipeline on one page.
//
// Usage: quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "analysis/experiment_world.hpp"
#include "analysis/path_analysis.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace lfp;

    // Start from the env overrides (LFP_WINDOW / LFP_VANTAGES / LFP_WORKERS
    // tune the probe engine without changing what it measures), then pin the
    // quickstart-sized world.
    analysis::WorldConfig config = analysis::WorldConfig::from_env();
    config.num_ases = 400;
    config.scale = 0.3;
    config.traces_per_snapshot = 4000;
    if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

    std::cout << "Building a simulated Internet (" << config.num_ases << " ASes) and running\n"
              << "the LFP measurement campaign against six router datasets...\n"
              << "(campaign knobs: window " << config.window << ", " << config.vantages
              << " vantage lane(s); override with LFP_WINDOW / LFP_VANTAGES / LFP_WORKERS —\n"
              << " results are byte-identical at any setting, only the speed changes)\n";
    auto world = analysis::ExperimentWorld::create(config);

    const core::Measurement& ripe5 = world->ripe5_measurement();
    const auto full_counts = world->database().full_signature_counts();

    std::cout << "\nWorld: " << world->topology().router_count() << " routers, "
              << world->topology().interface_count() << " interface IPs, "
              << world->packets_sent() << " probe packets sent (10 per target).\n";

    util::TablePrinter table("Quickstart: RIPE-5 snapshot at a glance");
    table.header({"metric", "value"});
    table.row({"targets probed", util::format_count(ripe5.records.size())});
    table.row({"responsive", util::format_count(ripe5.responsive_count())});
    table.row({"SNMPv3 labeled", util::format_count(ripe5.snmp_count())});
    table.row({"LFP-only (no SNMPv3)", util::format_count(ripe5.lfp_only_count())});
    table.row({"unique signatures (union DB)", util::format_count(full_counts.unique)});
    table.row({"non-unique signatures", util::format_count(full_counts.non_unique)});
    table.print(std::cout);

    // Classification coverage: SNMPv3 alone vs SNMPv3+LFP.
    std::size_t snmp_only = 0;
    std::size_t lfp_identified = 0;
    for (const core::TargetRecord& record : ripe5.records) {
        if (record.snmp_vendor) ++snmp_only;
        if (record.snmp_vendor || record.lfp.identified()) ++lfp_identified;
    }
    std::cout << "\nVendor identified for " << lfp_identified << " IPs with SNMPv3+LFP vs "
              << snmp_only << " with SNMPv3 alone ("
              << util::format_double(
                     static_cast<double>(lfp_identified) /
                         static_cast<double>(std::max<std::size_t>(snmp_only, 1)),
                     2)
              << "x coverage).\n";

    // Show a few concrete signatures, Table 6 style.
    std::cout << "\nSample unique signatures (feature layout of paper Table 6):\n";
    std::size_t shown = 0;
    for (const auto& [signature, stats] : world->database().signatures()) {
        if (!signature.is_full() || !stats.unique() || shown == 5) continue;
        std::cout << "  [" << stack::to_string(stats.dominant_vendor()) << "] "
                  << signature.key() << "\n";
        ++shown;
    }
    std::cout << "\nDone. See bench/ for the per-table/per-figure reproductions.\n";
    return 0;
}
