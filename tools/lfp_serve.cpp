// lfp_serve: the census-as-a-service daemon over the simulated Internet.
//
// Builds a deterministic sim world (fixed seeds), runs an initial census,
// and serves VENDOR/ASMIX/PATH/DIFF/STATS/EXPORT/TRIGGER/PATHCENSUS
// queries over a unix-domain socket using the length-prefixed frame
// protocol in serve/wire.hpp. PATHCENSUS runs a traceroute-discovery path
// census (LFP_PATH_* knobs) and stores the measured paths for
// PATH @<index> answers. With --interval-ms the PassScheduler re-censuses on a
// timer, publishing a fresh snapshot version each time; queries keep
// answering from the previous version while a pass runs.
//
// --batch-csv PATH additionally runs the classic batch pipeline (probe →
// build database → classify → export CSV) over a *second* world rebuilt
// from the same seeds and writes its CSV there — the byte-identity
// reference the serve-smoke CI step diffs `lfp_query export` against.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/path_census.hpp"
#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lfp;

struct ServeArgs {
    std::string socket_path = serve::default_socket_path();
    std::string batch_csv;
    std::string state_dir;
    std::uint64_t interval_ms = 0;
    std::size_t passes = 3;
    std::size_t retain = 4;
    std::size_t target_limit = 0;  // 0 = every router
    double loss_rate = 0.02;
    double scale = 0.6;
};

void usage(std::ostream& out) {
    out << "usage: lfp_serve [--socket PATH] [--interval-ms N] [--passes N] [--retain N]\n"
           "                 [--targets N] [--loss RATE] [--scale S] [--batch-csv PATH]\n"
           "                 [--state-dir PATH]\n"
           "Serves census queries over a unix socket (protocol: serve/wire.hpp).\n"
           "--state-dir persists snapshots and restores the newest on boot (degraded\n"
           "mode until the first fresh census publishes). SIGTERM/SIGINT drain the\n"
           "in-flight connection and unlink the socket before exiting.\n"
           "Environment: LFP_SERVE_SOCKET, LFP_SERVE_INTERVAL_MS, LFP_SERVE_RETAIN,\n"
           "             LFP_SERVE_STATE.\n";
}

/// SIGTERM/SIGINT raise the flag; accept() is interrupted (no SA_RESTART)
/// and the serve loop drains and exits cleanly.
std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true, std::memory_order_relaxed); }

void install_stop_handlers() {
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART: accept() must EINTR
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

/// The deterministic serving world: fixed topology/internet seeds so a
/// second process (or the --batch-csv reference pipeline) can rebuild an
/// identical Internet and probe it to identical records.
struct World {
    explicit World(const ServeArgs& args)
        : topology(sim::Topology::build({.seed = 77,
                                         .num_ases = 200,
                                         .tier1_count = 6,
                                         .transit_fraction = 0.2,
                                         .scale = args.scale})),
          internet(topology, {.seed = 13, .loss_rate = args.loss_rate}),
          transport(std::make_unique<probe::SimTransport>(internet)) {}

    [[nodiscard]] core::CensusPlan plan(const ServeArgs& args) const {
        core::CensusPlan plan;
        plan.name = "serve";
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            if (args.target_limit != 0 && plan.targets.size() >= args.target_limit) break;
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        plan.vantages.push_back(transport.get());
        plan.campaign.window = 32;
        plan.passes = args.passes;
        plan.worker_threads = 0;  // one worker per hardware thread
        return plan;
    }

    sim::Topology topology;
    sim::Internet internet;
    std::unique_ptr<probe::SimTransport> transport;
};

/// The batch reference: same seeds, same plan, classic measure → database →
/// classify → CSV pipeline. A fresh world is mandatory — simulated routers
/// are stateful, so re-probing the serving world would not reproduce the
/// first census.
bool write_batch_csv(const ServeArgs& args, const std::string& path) {
    World world(args);
    core::CensusRunner runner(world.plan(args));
    core::Measurement measurement = runner.run_passes();
    const core::SignatureDatabase database =
        runner.build_database(std::span<const core::Measurement>(&measurement, 1));
    runner.classify(measurement, database);
    std::ofstream out(path);
    if (!out) {
        std::cerr << "lfp_serve: cannot write " << path << '\n';
        return false;
    }
    io::export_measurement_csv(out, measurement);
    return static_cast<bool>(out);
}

int serve_loop(const std::string& socket_path, serve::CensusService& service,
               const serve::QueryEngine& engine) {
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::cerr << "lfp_serve: socket: " << std::strerror(errno) << '\n';
        return 1;
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(address.sun_path)) {
        std::cerr << "lfp_serve: socket path too long: " << socket_path << '\n';
        ::close(listener);
        return 1;
    }
    std::strncpy(address.sun_path, socket_path.c_str(), sizeof(address.sun_path) - 1);
    ::unlink(socket_path.c_str());
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0 ||
        ::listen(listener, 16) != 0) {
        std::cerr << "lfp_serve: bind/listen " << socket_path << ": " << std::strerror(errno)
                  << '\n';
        ::close(listener);
        return 1;
    }
    std::cout << "lfp_serve: listening on " << socket_path << std::endl;

    bool shutdown = false;
    while (!shutdown && !g_stop_requested.load(std::memory_order_relaxed)) {
        const int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) {
            // A stop signal interrupts accept() with EINTR; any connection
            // already accepted was served to completion before we got here,
            // so this is the drain point.
            if (errno == EINTR) continue;
            std::cerr << "lfp_serve: accept: " << std::strerror(errno) << '\n';
            break;
        }
        // One connection at a time, served to completion even when a stop
        // signal arrives mid-exchange — in-flight frames drain, the next
        // accept() exits. The CLI and smoke scripts open a fresh
        // connection per command.
        shutdown = serve::serve_connection(client, service, engine);
        ::close(client);
    }
    if (g_stop_requested.load(std::memory_order_relaxed)) {
        std::cout << "lfp_serve: stop signal received, drained and exiting" << std::endl;
    }
    ::close(listener);
    ::unlink(socket_path.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    ServeArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            return 0;
        }
        std::optional<std::string> value;
        if (flag == "--socket" && (value = next())) {
            args.socket_path = *value;
        } else if (flag == "--batch-csv" && (value = next())) {
            args.batch_csv = *value;
        } else if (flag == "--state-dir" && (value = next())) {
            args.state_dir = *value;
        } else if (flag == "--interval-ms" && (value = next())) {
            args.interval_ms = std::stoull(*value);
        } else if (flag == "--passes" && (value = next())) {
            args.passes = std::stoull(*value);
        } else if (flag == "--retain" && (value = next())) {
            args.retain = std::stoull(*value);
        } else if (flag == "--targets" && (value = next())) {
            args.target_limit = std::stoull(*value);
        } else if (flag == "--loss" && (value = next())) {
            args.loss_rate = std::stod(*value);
        } else if (flag == "--scale" && (value = next())) {
            args.scale = std::stod(*value);
        } else {
            std::cerr << "lfp_serve: bad argument '" << flag << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (!args.batch_csv.empty() && !write_batch_csv(args, args.batch_csv)) return 1;

    World world(args);
    serve::ServiceConfig config = serve::ServiceConfig::from_env();
    config.name = "serve";
    config.interval = std::chrono::milliseconds(
        args.interval_ms != 0 ? args.interval_ms
                              : static_cast<std::uint64_t>(config.interval.count()));
    config.retain = args.retain;
    config.run_immediately = false;  // the first census runs synchronously below
    if (!args.state_dir.empty()) config.state_dir = args.state_dir;
    sim::Topology& topology = world.topology;
    config.asn = [&topology](net::IPv4Address address) -> std::optional<std::uint32_t> {
        const std::size_t index = topology.find_by_interface(address);
        if (index == sim::Topology::npos) return std::nullopt;
        return topology.asn_of(index);
    };
    // Path discovery for the PATHCENSUS verb: a deterministic traceroute
    // sweep over the serving world (LFP_PATH_* knobs apply). The discovery
    // is a pure function of topology + config, so every PATHCENSUS probes
    // the same hop set — versions differ only by router state advancing.
    config.paths = [&topology]() {
        const analysis::PathCensus census(topology, analysis::PathCensusConfig::from_env());
        analysis::PathDiscovery discovery = census.discover();
        serve::PathSweep sweep;
        sweep.paths = discovery.hop_lists();
        sweep.path_lane = std::move(discovery.trace_source);
        return sweep;
    };

    install_stop_handlers();

    serve::CensusService service(world.plan(args), config);
    if (service.restore_latest()) {
        // Degraded boot: answer from the reloaded snapshot immediately and
        // refresh in the background — availability over freshness.
        const auto snapshot = service.store().current();
        std::cout << "lfp_serve: restored snapshot v" << snapshot->version() << " ("
                  << snapshot->records().size()
                  << " targets) from " << config.state_dir
                  << "; serving degraded until a fresh census publishes" << std::endl;
        service.trigger();
    } else {
        const std::uint64_t version = service.run_census_now();
        std::cout << "lfp_serve: published snapshot v" << version << " ("
                  << service.store().current()->records().size() << " targets, "
                  << service.store().current()->pass_stats().size() << " passes)"
                  << std::endl;
    }
    if (config.interval.count() > 0) service.start();

    const serve::QueryEngine engine(service.store());
    return serve_loop(args.socket_path, service, engine);
}
