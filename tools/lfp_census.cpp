// lfp_census: one deterministic census over the simulated Internet, as a
// standalone process — the operator-shaped entry point the robustness smoke
// scripts drive.
//
// The world is rebuilt from fixed seeds, so two invocations with the same
// flags produce byte-identical CSV — which is what makes the script-level
// checks meaningful:
//
//   - fault matrix: every LFP_FAULT_* knob applies here (the transport is
//     wrapped in a FaultInjectingTransport whenever any fault rate is set),
//     so `LFP_FAULT_CORRUPT=0.2 lfp_census` is a whole census under
//     deterministic damage — it must complete and exit 0, never crash;
//   - kill-and-resume: with --checkpoint-dir the spilled multi-pass census
//     journals a manifest at every pass boundary; SIGKILL this process
//     mid-run, rerun it with the same flags, and the resumed CSV must be
//     byte-identical to an uninterrupted run (tools/resume_smoke.sh).
//
// The measurement CSV goes to --out (default stdout); progress and fault
// tallies go to stderr, so `lfp_census > census.csv` stays clean.
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/path_census.hpp"
#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "sim/faults.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lfp;

struct CensusArgs {
    std::size_t target_limit = 400;  // 0 = every router
    std::size_t passes = 3;
    double pps = 0.0;  // 0 = unpaced
    double loss_rate = 0.03;
    double scale = 0.5;
    std::string checkpoint_dir;
    std::string out;  // empty = stdout
    /// Path-census mode (--paths N): traceroute N destinations from
    /// --path-sources vantages, collapse the discovered hops into the
    /// target list, and census those instead of the router roster.
    std::size_t path_destinations = 0;  // 0 = classic roster census
    std::size_t path_sources = 4;
    std::size_t path_flows = 1;
    std::size_t vantages = 1;  ///< census lanes (path mode only)
};

void usage(std::ostream& out) {
    out << "usage: lfp_census [--targets N] [--passes N] [--pps RATE] [--loss RATE]\n"
           "                  [--scale S] [--checkpoint-dir PATH] [--out PATH]\n"
           "                  [--paths N [--path-sources N] [--flows N] [--vantages N]]\n"
           "Runs one deterministic multi-pass census over the simulated Internet and\n"
           "writes the measurement CSV to --out (default stdout). Identical flags give\n"
           "byte-identical CSV. --checkpoint-dir enables crash-tolerant resume: a run\n"
           "killed mid-pass continues at the last pass boundary when rerun.\n"
           "--paths N switches to path-census mode: traceroute N destinations from\n"
           "--path-sources vantage ASes, dedup the discovered hops, and census those\n"
           "as the target list across --vantages lanes (the CSV is byte-identical at\n"
           "any lane count; a per-path summary goes to stderr).\n"
           "Environment: LFP_FAULT_* (deterministic fault injection),\n"
           "             LFP_WATCHDOG_MS, LFP_CHECKPOINT_DIR; path mode also honors\n"
           "             LFP_PATH_SEED/SOURCES/DESTS/FLOWS/STALE/PRIVATE overrides.\n";
}

/// The path-census leg: discovery, hop census, classification, and the
/// measured-vs-ground-truth summary — the CSV still goes through the same
/// --out plumbing as the classic census.
int run_path_census(const CensusArgs& args, sim::Topology& topology, sim::Internet& internet,
                    const sim::FaultPlan& fault_plan, core::Measurement& measurement) {
    analysis::PathCensusConfig config;
    config.sources = args.path_sources;
    config.destinations = args.path_destinations;
    config.flows_per_pair = args.path_flows;
    config = analysis::PathCensusConfig::from_env(config);

    // One transport per census lane; the traceroute *discovery* vantages
    // are config.sources and do not vary with the lane count, so the lane
    // count changes probing parallelism only, never the measured bytes.
    std::vector<std::unique_ptr<probe::SimTransport>> transports;
    std::vector<std::unique_ptr<sim::FaultInjectingTransport>> faulted;
    core::CensusPlan plan;
    plan.name = "path-census";
    for (std::size_t lane = 0; lane < args.vantages; ++lane) {
        transports.push_back(std::make_unique<probe::SimTransport>(internet));
        if (fault_plan.any()) {
            faulted.push_back(
                std::make_unique<sim::FaultInjectingTransport>(*transports.back(), fault_plan));
            plan.vantages.push_back(faulted.back().get());
        } else {
            plan.vantages.push_back(transports.back().get());
        }
    }
    plan.campaign.window = 16;
    plan.campaign.packets_per_second = args.pps;
    plan.passes = args.passes;

    core::CensusRunner runner(std::move(plan));
    const analysis::PathCensus census(topology, config);
    analysis::PathCensusResult result = census.run(runner);

    const analysis::VendorMap truth = census.ground_truth(result.targets);
    const analysis::PathAgreement agreement =
        analysis::PathCensus::agreement(result.vendors, truth, result.targets);
    const analysis::PathStats stats = result.stats(topology, analysis::PathScope::all);

    std::cerr << "lfp_census: path census: " << result.discovery.traces.size() << " paths ("
              << config.sources << " sources x " << config.destinations << " destinations, "
              << result.discovery.unreachable_pairs << " unreachable), "
              << result.targets.hops_listed << " hops -> " << result.targets.targets.size()
              << " targets (" << result.targets.duplicates_collapsed << " duplicates, "
              << result.targets.unroutable_dropped << " unroutable dropped)\n";
    std::cerr << "lfp_census: " << result.measurement.records.size() << " targets, "
              << result.pass_stats.size() << " passes, " << runner.packets_sent()
              << " packets sent, " << runner.responses_received() << " responses, "
              << result.stale_unresponsive << " stale-unresponsive\n";
    std::cerr << "lfp_census: vs ground truth: accuracy=" << agreement.accuracy()
              << " coverage=" << agreement.coverage() << " (truth=" << agreement.truth_known
              << " measured=" << agreement.measured_known << " of " << agreement.hops
              << " hops); paths considered=" << stats.paths_considered
              << " median vendors/path="
              << (stats.vendors_per_path.empty() ? 0.0 : stats.vendors_per_path.quantile(0.5))
              << '\n';

    measurement = std::move(result.measurement);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    CensusArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            return 0;
        }
        std::optional<std::string> value;
        if (flag == "--targets" && (value = next())) {
            args.target_limit = std::stoull(*value);
        } else if (flag == "--passes" && (value = next())) {
            args.passes = std::stoull(*value);
        } else if (flag == "--pps" && (value = next())) {
            args.pps = std::stod(*value);
        } else if (flag == "--loss" && (value = next())) {
            args.loss_rate = std::stod(*value);
        } else if (flag == "--scale" && (value = next())) {
            args.scale = std::stod(*value);
        } else if (flag == "--checkpoint-dir" && (value = next())) {
            args.checkpoint_dir = *value;
        } else if (flag == "--out" && (value = next())) {
            args.out = *value;
        } else if (flag == "--paths" && (value = next())) {
            args.path_destinations = std::stoull(*value);
        } else if (flag == "--path-sources" && (value = next())) {
            args.path_sources = std::stoull(*value);
        } else if (flag == "--flows" && (value = next())) {
            args.path_flows = std::stoull(*value);
        } else if (flag == "--vantages" && (value = next())) {
            args.vantages = std::stoull(*value);
        } else {
            std::cerr << "lfp_census: bad argument '" << flag << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    try {
        sim::Topology topology = sim::Topology::build({.seed = 77,
                                                       .num_ases = 150,
                                                       .tier1_count = 4,
                                                       .transit_fraction = 0.2,
                                                       .scale = args.scale});
        sim::Internet internet(topology, {.seed = 13, .loss_rate = args.loss_rate});

        // Fault injection rides in via the environment: wrap only when some
        // class can actually fire, so the healthy path stays undecorated.
        const sim::FaultPlan fault_plan = sim::FaultPlan::from_env();

        if (args.path_destinations != 0) {
            core::Measurement measurement;
            const int status =
                run_path_census(args, topology, internet, fault_plan, measurement);
            if (status != 0) return status;
            if (args.out.empty()) {
                io::export_measurement_csv(std::cout, measurement);
                if (!std::cout) {
                    std::cerr << "lfp_census: write to stdout failed\n";
                    return 1;
                }
            } else {
                std::ofstream out(args.out);
                if (!out) {
                    std::cerr << "lfp_census: cannot write " << args.out << '\n';
                    return 1;
                }
                io::export_measurement_csv(out, measurement);
                if (!out) {
                    std::cerr << "lfp_census: write to " << args.out << " failed\n";
                    return 1;
                }
            }
            return 0;
        }

        probe::SimTransport transport(internet);
        std::unique_ptr<sim::FaultInjectingTransport> faulted;
        probe::ProbeTransport* vantage = &transport;
        if (fault_plan.any()) {
            faulted = std::make_unique<sim::FaultInjectingTransport>(transport, fault_plan);
            vantage = faulted.get();
        }

        core::CensusPlan plan;
        plan.name = "census";
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            if (args.target_limit != 0 && plan.targets.size() >= args.target_limit) break;
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        plan.vantages.push_back(vantage);
        plan.campaign.window = 16;
        plan.campaign.packets_per_second = args.pps;
        plan.passes = args.passes;
        if (!args.checkpoint_dir.empty()) {
            plan.checkpoint_dir = args.checkpoint_dir;
            plan.spill = true;
            plan.spill_config.segment_records = 64;
        }

        core::CensusRunner runner(std::move(plan));
        const core::Measurement measurement = runner.run_passes();

        if (runner.resumed_from_checkpoint()) {
            std::cerr << "lfp_census: resumed from checkpoint in " << args.checkpoint_dir
                      << '\n';
        }
        std::cerr << "lfp_census: " << measurement.records.size() << " targets, "
                  << runner.last_pass_stats().size() << " passes, "
                  << runner.packets_sent() << " packets sent, "
                  << runner.responses_received() << " responses\n";
        if (faulted) {
            std::cerr << "lfp_census: injected " << faulted->injected_total()
                      << " faults (send=" << faulted->send_faults()
                      << " truncate=" << faulted->truncated()
                      << " corrupt=" << faulted->corrupted()
                      << " duplicate=" << faulted->duplicated()
                      << " reorder=" << faulted->reordered()
                      << " stall=" << faulted->stalled() << ")\n";
        }

        if (args.out.empty()) {
            io::export_measurement_csv(std::cout, measurement);
            if (!std::cout) {
                std::cerr << "lfp_census: write to stdout failed\n";
                return 1;
            }
        } else {
            std::ofstream out(args.out);
            if (!out) {
                std::cerr << "lfp_census: cannot write " << args.out << '\n';
                return 1;
            }
            io::export_measurement_csv(out, measurement);
            if (!out) {
                std::cerr << "lfp_census: write to " << args.out << " failed\n";
                return 1;
            }
        }
        return 0;
    } catch (const std::exception& error) {
        std::cerr << "lfp_census: " << error.what() << '\n';
        return 1;
    }
}
