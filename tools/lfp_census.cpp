// lfp_census: one deterministic census over the simulated Internet, as a
// standalone process — the operator-shaped entry point the robustness smoke
// scripts drive.
//
// The world is rebuilt from fixed seeds, so two invocations with the same
// flags produce byte-identical CSV — which is what makes the script-level
// checks meaningful:
//
//   - fault matrix: every LFP_FAULT_* knob applies here (the transport is
//     wrapped in a FaultInjectingTransport whenever any fault rate is set),
//     so `LFP_FAULT_CORRUPT=0.2 lfp_census` is a whole census under
//     deterministic damage — it must complete and exit 0, never crash;
//   - kill-and-resume: with --checkpoint-dir the spilled multi-pass census
//     journals a manifest at every pass boundary; SIGKILL this process
//     mid-run, rerun it with the same flags, and the resumed CSV must be
//     byte-identical to an uninterrupted run (tools/resume_smoke.sh).
//
// The measurement CSV goes to --out (default stdout); progress and fault
// tallies go to stderr, so `lfp_census > census.csv` stays clean.
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "sim/faults.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lfp;

struct CensusArgs {
    std::size_t target_limit = 400;  // 0 = every router
    std::size_t passes = 3;
    double pps = 0.0;  // 0 = unpaced
    double loss_rate = 0.03;
    double scale = 0.5;
    std::string checkpoint_dir;
    std::string out;  // empty = stdout
};

void usage(std::ostream& out) {
    out << "usage: lfp_census [--targets N] [--passes N] [--pps RATE] [--loss RATE]\n"
           "                  [--scale S] [--checkpoint-dir PATH] [--out PATH]\n"
           "Runs one deterministic multi-pass census over the simulated Internet and\n"
           "writes the measurement CSV to --out (default stdout). Identical flags give\n"
           "byte-identical CSV. --checkpoint-dir enables crash-tolerant resume: a run\n"
           "killed mid-pass continues at the last pass boundary when rerun.\n"
           "Environment: LFP_FAULT_* (deterministic fault injection),\n"
           "             LFP_WATCHDOG_MS, LFP_CHECKPOINT_DIR.\n";
}

}  // namespace

int main(int argc, char** argv) {
    CensusArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            return 0;
        }
        std::optional<std::string> value;
        if (flag == "--targets" && (value = next())) {
            args.target_limit = std::stoull(*value);
        } else if (flag == "--passes" && (value = next())) {
            args.passes = std::stoull(*value);
        } else if (flag == "--pps" && (value = next())) {
            args.pps = std::stod(*value);
        } else if (flag == "--loss" && (value = next())) {
            args.loss_rate = std::stod(*value);
        } else if (flag == "--scale" && (value = next())) {
            args.scale = std::stod(*value);
        } else if (flag == "--checkpoint-dir" && (value = next())) {
            args.checkpoint_dir = *value;
        } else if (flag == "--out" && (value = next())) {
            args.out = *value;
        } else {
            std::cerr << "lfp_census: bad argument '" << flag << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    try {
        sim::Topology topology = sim::Topology::build({.seed = 77,
                                                       .num_ases = 150,
                                                       .tier1_count = 4,
                                                       .transit_fraction = 0.2,
                                                       .scale = args.scale});
        sim::Internet internet(topology, {.seed = 13, .loss_rate = args.loss_rate});
        probe::SimTransport transport(internet);

        // Fault injection rides in via the environment: wrap only when some
        // class can actually fire, so the healthy path stays undecorated.
        const sim::FaultPlan fault_plan = sim::FaultPlan::from_env();
        std::unique_ptr<sim::FaultInjectingTransport> faulted;
        probe::ProbeTransport* vantage = &transport;
        if (fault_plan.any()) {
            faulted = std::make_unique<sim::FaultInjectingTransport>(transport, fault_plan);
            vantage = faulted.get();
        }

        core::CensusPlan plan;
        plan.name = "census";
        for (std::size_t i = 0; i < topology.router_count(); ++i) {
            if (args.target_limit != 0 && plan.targets.size() >= args.target_limit) break;
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        plan.vantages.push_back(vantage);
        plan.campaign.window = 16;
        plan.campaign.packets_per_second = args.pps;
        plan.passes = args.passes;
        if (!args.checkpoint_dir.empty()) {
            plan.checkpoint_dir = args.checkpoint_dir;
            plan.spill = true;
            plan.spill_config.segment_records = 64;
        }

        core::CensusRunner runner(std::move(plan));
        const core::Measurement measurement = runner.run_passes();

        if (runner.resumed_from_checkpoint()) {
            std::cerr << "lfp_census: resumed from checkpoint in " << args.checkpoint_dir
                      << '\n';
        }
        std::cerr << "lfp_census: " << measurement.records.size() << " targets, "
                  << runner.last_pass_stats().size() << " passes, "
                  << runner.packets_sent() << " packets sent, "
                  << runner.responses_received() << " responses\n";
        if (faulted) {
            std::cerr << "lfp_census: injected " << faulted->injected_total()
                      << " faults (send=" << faulted->send_faults()
                      << " truncate=" << faulted->truncated()
                      << " corrupt=" << faulted->corrupted()
                      << " duplicate=" << faulted->duplicated()
                      << " reorder=" << faulted->reordered()
                      << " stall=" << faulted->stalled() << ")\n";
        }

        if (args.out.empty()) {
            io::export_measurement_csv(std::cout, measurement);
            if (!std::cout) {
                std::cerr << "lfp_census: write to stdout failed\n";
                return 1;
            }
        } else {
            std::ofstream out(args.out);
            if (!out) {
                std::cerr << "lfp_census: cannot write " << args.out << '\n';
                return 1;
            }
            io::export_measurement_csv(out, measurement);
            if (!out) {
                std::cerr << "lfp_census: write to " << args.out << " failed\n";
                return 1;
            }
        }
        return 0;
    } catch (const std::exception& error) {
        std::cerr << "lfp_census: " << error.what() << '\n';
        return 1;
    }
}
