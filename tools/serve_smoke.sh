#!/usr/bin/env bash
# CI serve-smoke: boots the lfp_serve daemon against the deterministic sim
# world, exercises every query family through the lfp_query CLI, and checks
# the serving layer's central promise — answers byte-identical to the batch
# pipeline over the same census:
#
#   1. `lfp_query export` must diff clean against the batch pipeline CSV
#      the daemon wrote from an identically-seeded world (--batch-csv).
#   2. VENDOR point lookups must agree with the CSV's snmp/lfp/pass columns
#      row by row (spot-checked over labeled and unlabeled rows).
#   3. PATH per-hop verdicts must equal the CSV's combined verdict (snmp
#      when present, else lfp) for those hops; ASMIX must cover the AS a
#      VENDOR answer reports.
#   4. TRIGGER/DIFF: a second census publishes v2 and DIFF 1 2 answers.
#   5. bench_serve (smoke mode) must hold its QPS/p99 gates while a
#      concurrent census absorbs.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/lfp_serve_smoke.XXXXXX.sock")
BATCH=$(mktemp "${TMPDIR:-/tmp}/lfp_smoke_batch.XXXXXX.csv")
SERVED=$(mktemp "${TMPDIR:-/tmp}/lfp_smoke_served.XXXXXX.csv")
SERVE_LOG=$(mktemp "${TMPDIR:-/tmp}/lfp_smoke_serve.XXXXXX.log")

SERVE_PID=
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -f "$SOCK" "$BATCH" "$SERVED" "$SERVE_LOG"
}
trap cleanup EXIT

"$BUILD/tools/lfp_serve" --socket "$SOCK" --batch-csv "$BATCH" > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!

Q() { "$BUILD/tools/lfp_query" --socket "$SOCK" "$@"; }

# Startup covers two full censuses (batch reference + serving); poll.
for _ in $(seq 1 120); do
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke FAILED: lfp_serve exited during startup"; cat "$SERVE_LOG"; exit 1
    fi
    Q ping >/dev/null 2>&1 && break
    sleep 1
done
Q ping >/dev/null || { echo "serve-smoke FAILED: daemon never came up"; cat "$SERVE_LOG"; exit 1; }
Q stats | grep -q ' version=1 ' || { echo "serve-smoke FAILED: no v1 snapshot"; exit 1; }
echo "serve-smoke: daemon up ($(Q stats))"

# --- 1. EXPORT is byte-identical to the batch pipeline CSV ----------------
Q export > "$SERVED"
if ! diff -q "$BATCH" "$SERVED" >/dev/null; then
    echo "serve-smoke FAILED: served CSV differs from batch pipeline CSV"
    diff "$BATCH" "$SERVED" | head -10
    exit 1
fi
echo "serve-smoke: EXPORT byte-identical to batch CSV ($(wc -l < "$BATCH") lines)"

# --- 2. VENDOR answers agree with the CSV row by row ----------------------
# Sample rows of each flavor: SNMP-labeled, LFP-identified, unidentified.
vendor_rows=$( { awk -F, 'NR>1 && $3!="" && ++n<=4' "$BATCH";
                 awk -F, 'NR>1 && $3=="" && $4!="" && ++n<=4' "$BATCH";
                 awk -F, 'NR>1 && $3=="" && $4=="" && ++n<=4' "$BATCH"; } )
checked=0
while IFS=, read -r ip _protos snmp lfp _kind pass _sig; do
    [[ -n "$ip" ]] || continue
    answer=$(Q vendor "$ip")
    for expect in "known=1" " snmp=${snmp:--} " " lfp=${lfp:--} " " pass=${pass}"; do
        if [[ "$answer " != *"$expect"* ]]; then
            echo "serve-smoke FAILED: VENDOR $ip: missing '$expect' in: $answer"
            exit 1
        fi
    done
    checked=$((checked + 1))
done <<< "$vendor_rows"
[[ "$checked" -ge 3 ]] || { echo "serve-smoke FAILED: too few VENDOR rows checked"; exit 1; }
echo "serve-smoke: VENDOR answers match $checked CSV rows"

# --- 3. ASMIX + PATH ------------------------------------------------------
first_ip=$(awk -F, 'NR==2 {print $1}' "$BATCH")
asn=$(Q vendor "$first_ip" | grep -o 'asn=[0-9]*' | head -1 | cut -d= -f2)
[[ -n "$asn" ]] || { echo "serve-smoke FAILED: VENDOR carries no asn="; exit 1; }
Q asmix "$asn" | grep -q ' routers=' || { echo "serve-smoke FAILED: ASMIX $asn"; exit 1; }
echo "serve-smoke: ASMIX asn=$asn answers"

# Path over three CSV rows; per-hop verdict must equal the CSV's combined
# verdict (snmp_vendor when present, else lfp_vendor, else '-').
path_ips=$(awk -F, 'NR>1 && NR<=4 {print $1}' "$BATCH")
# shellcheck disable=SC2086
path_answer=$(Q path $path_ips)
[[ "$path_answer" == *"hops=3 known=3"* ]] || {
    echo "serve-smoke FAILED: PATH: $path_answer"; exit 1; }
while IFS=, read -r ip _protos snmp lfp _rest; do
    expect="${snmp:-${lfp:--}}"
    if [[ "$path_answer " != *" $ip=$expect "* ]]; then
        echo "serve-smoke FAILED: PATH hop $ip: want '$ip=$expect' in: $path_answer"
        exit 1
    fi
done < <(awk -F, 'NR>1 && NR<=4' "$BATCH")
echo "serve-smoke: PATH per-hop verdicts match the CSV"

# --- 4. TRIGGER a second census, DIFF the two versions --------------------
Q trigger | grep -q 'version=2' || { echo "serve-smoke FAILED: TRIGGER"; exit 1; }
diff_answer=$(Q diff 1 2)
[[ "$diff_answer" == OK\ from=1\ to=2* ]] || {
    echo "serve-smoke FAILED: DIFF 1 2: $diff_answer"; exit 1; }
echo "serve-smoke: $diff_answer"

# --- 5. bench_serve gates under a concurrent census -----------------------
LFP_BENCH_SMOKE=1 "$BUILD/bench/bench_serve"

Q shutdown >/dev/null
wait "$SERVE_PID"
SERVE_PID=
echo "serve-smoke OK"
