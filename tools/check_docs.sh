#!/usr/bin/env bash
# Docs drift checks, run by the CI docs job (and locally: tools/check_docs.sh).
#
#   1. Every relative markdown link in README.md and docs/*.md must resolve
#      to an existing file (anchors are stripped; http(s)/mailto links are
#      skipped — CI should not depend on the outside internet).
#   2. Every LFP_* name mentioned in those docs must be real: either an env
#      var read by an actual getenv-style call in src/ or bench/ (the env
#      helpers env_u64/env_double/env_or/env_or_double all take the quoted
#      name), or a CMake option/cache variable declared in CMakeLists.txt.
#      This is what keeps the README knob table honest — documenting a knob
#      nothing reads, or renaming a knob without updating the docs, fails
#      the build.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

docs=(README.md docs/*.md)

# --- 1. Markdown links resolve --------------------------------------------
for doc in "${docs[@]}"; do
    dir=$(dirname "$doc")
    # Inline links: [text](target). Good enough for these docs — no
    # reference-style links or angle-bracket URLs in the tree.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
            '#'*) continue ;;  # same-document anchor
        esac
        path="${target%%#*}"  # strip a trailing anchor
        if [[ ! -e "$dir/$path" ]]; then
            echo "BROKEN LINK: $doc -> $target (no file $dir/$path)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. LFP_* names in docs map to real knobs -----------------------------
mentioned=$(grep -ohE 'LFP_[A-Z0-9_]+' "${docs[@]}" | sort -u)
for var in $mentioned; do
    # An env var some code actually reads (the quoted name as the first
    # argument of a getenv-style helper) ...
    if grep -rqE "(getenv|env_or|env_or_double|env_u64|env_double)[[:space:]]*\(\"${var}\"" \
            src bench; then
        continue
    fi
    # ... or a CMake option / cache variable of the build itself.
    if grep -qE "(option\(${var}\b|set\(${var}\b)" CMakeLists.txt; then
        continue
    fi
    echo "UNDOCUMENTED-IN-CODE: docs mention ${var} but no getenv in src/ or" \
         "bench/ (nor a CMake option) reads it"
    fail=1
done

if [[ $fail -ne 0 ]]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check OK: links resolve, every LFP_* knob maps to code"
