// lfp_query: CLI client for the lfp_serve daemon. Maps subcommands onto
// the wire verbs one-for-one and prints the response payload; exits
// nonzero when the server answers ERR (or the socket is unreachable), so
// shell scripts can assert on answers directly.
//
//   lfp_query [--socket PATH] ping|stats|export|trigger|shutdown
//   lfp_query [--socket PATH] vendor <ip>
//   lfp_query [--socket PATH] asmix <asn>
//   lfp_query [--socket PATH] path <ip> [<ip>...]
//   lfp_query [--socket PATH] diff <from-version> <to-version>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

using namespace lfp;

void usage(std::ostream& out) {
    out << "usage: lfp_query [--socket PATH] <command> [operands...]\n"
           "commands: ping stats export trigger shutdown\n"
           "          vendor <ip> | asmix <asn> | path <ip> [<ip>...] |"
           " diff <from> <to>\n";
}

std::string to_verb(std::string command) {
    for (char& c : command) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return command;
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path = serve::default_socket_path();
    int i = 1;
    if (i < argc && std::string(argv[i]) == "--socket") {
        if (i + 1 >= argc) {
            usage(std::cerr);
            return 2;
        }
        socket_path = argv[i + 1];
        i += 2;
    }
    if (i >= argc) {
        usage(std::cerr);
        return 2;
    }

    std::string request = to_verb(argv[i++]);
    for (; i < argc; ++i) {
        request += ' ';
        request += argv[i];
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::cerr << "lfp_query: socket: " << std::strerror(errno) << '\n';
        return 1;
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(address.sun_path)) {
        std::cerr << "lfp_query: socket path too long: " << socket_path << '\n';
        ::close(fd);
        return 1;
    }
    std::strncpy(address.sun_path, socket_path.c_str(), sizeof(address.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
        std::cerr << "lfp_query: connect " << socket_path << ": " << std::strerror(errno)
                  << '\n';
        ::close(fd);
        return 1;
    }

    if (!serve::write_frame(fd, request)) {
        std::cerr << "lfp_query: write failed\n";
        ::close(fd);
        return 1;
    }
    const auto response = serve::read_frame(fd);
    ::close(fd);
    if (!response) {
        std::cerr << "lfp_query: no response\n";
        return 1;
    }
    std::cout << *response;
    if (!response->empty() && response->back() != '\n') std::cout << '\n';
    return response->rfind("ERR", 0) == 0 ? 1 : 0;
}
