#!/usr/bin/env bash
# CI robustness smoke over the lfp_census CLI, two halves:
#
#   1. Fault matrix: a small census under each fault class in turn (and one
#      run with every class at once). Each run must complete, exit 0, and
#      actually inject something — a faulted run that injected nothing is a
#      misconfigured run, not a passing one.
#   2. Kill-and-resume byte-identity: start a paced checkpointed census,
#      SIGKILL it after the first pass-boundary manifest appears, rerun with
#      identical flags, and diff the resumed CSV byte for byte against an
#      uninterrupted reference run. Also checks the clean finish retired the
#      manifest.
#
# Usage: tools/resume_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CENSUS="$BUILD/tools/lfp_census"
[[ -x "$CENSUS" ]] || { echo "resume-smoke FAILED: $CENSUS not built"; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/lfp_resume_smoke.XXXXXX")
VICTIM_PID=
cleanup() {
    [[ -n "$VICTIM_PID" ]] && kill -9 "$VICTIM_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Small and fast: the matrix is about surviving damage, not about scale.
MATRIX_FLAGS=(--targets 120 --passes 2 --loss 0.0)

# --- 1. the fault matrix --------------------------------------------------
run_faulted() {
    local name=$1; shift
    local log="$WORK/fault_$name.log"
    if ! env "$@" "$CENSUS" "${MATRIX_FLAGS[@]}" --out "$WORK/fault_$name.csv" \
            2> "$log"; then
        echo "resume-smoke FAILED: census under fault class '$name' did not complete"
        cat "$log"
        exit 1
    fi
    if ! grep -q "injected [1-9]" "$log"; then
        echo "resume-smoke FAILED: fault class '$name' injected nothing"
        cat "$log"
        exit 1
    fi
    echo "resume-smoke: fault class '$name' survived ($(grep -o 'injected [0-9]*' "$log"))"
}

run_faulted send      LFP_FAULT_SEND=0.2
run_faulted truncate  LFP_FAULT_TRUNCATE=0.2
run_faulted corrupt   LFP_FAULT_CORRUPT=0.2
run_faulted duplicate LFP_FAULT_DUPLICATE=0.2
run_faulted reorder   LFP_FAULT_REORDER=0.2
run_faulted stall     LFP_FAULT_STALL=0.2
run_faulted all       LFP_FAULT_SEND=0.1 LFP_FAULT_TRUNCATE=0.1 LFP_FAULT_CORRUPT=0.1 \
                      LFP_FAULT_DUPLICATE=0.1 LFP_FAULT_REORDER=0.1 LFP_FAULT_STALL=0.1

# Determinism under damage: the same seed injects the same faults.
env LFP_FAULT_CORRUPT=0.2 "$CENSUS" "${MATRIX_FLAGS[@]}" \
    --out "$WORK/fault_corrupt_again.csv" 2>/dev/null
if ! diff -q "$WORK/fault_corrupt.csv" "$WORK/fault_corrupt_again.csv" >/dev/null; then
    echo "resume-smoke FAILED: identically-seeded faulted runs differ"
    exit 1
fi
echo "resume-smoke: identically-seeded faulted runs byte-identical"

# --- 2. kill -9 mid-pass, resume, byte-compare ----------------------------
RESUME_FLAGS=(--targets 300 --passes 3 --loss 0.05)
CKPT="$WORK/checkpoint"
mkdir -p "$CKPT"

# The reference: the identical census, never interrupted, no checkpointing.
"$CENSUS" "${RESUME_FLAGS[@]}" --out "$WORK/reference.csv" 2>/dev/null

# The victim: paced so every pass takes seconds, giving the kill a wide
# mid-pass window after the pass-0 manifest lands.
"$CENSUS" "${RESUME_FLAGS[@]}" --pps 1500 --checkpoint-dir "$CKPT" \
    --out "$WORK/victim.csv" 2> "$WORK/victim.log" &
VICTIM_PID=$!

MANIFEST="$CKPT/census.manifest"
for _ in $(seq 1 600); do
    [[ -f "$MANIFEST" ]] && break
    if ! kill -0 "$VICTIM_PID" 2>/dev/null; then
        echo "resume-smoke FAILED: victim census exited before its first checkpoint"
        cat "$WORK/victim.log"
        exit 1
    fi
    sleep 0.1
done
[[ -f "$MANIFEST" ]] || { echo "resume-smoke FAILED: no manifest appeared"; exit 1; }

kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
VICTIM_PID=
[[ -f "$MANIFEST" ]] || { echo "resume-smoke FAILED: manifest vanished with the victim"; exit 1; }
echo "resume-smoke: victim SIGKILLed mid-census, manifest survives"

# Resume with identical flags (unpaced — pacing never changes bytes) and
# compare against the uninterrupted reference.
"$CENSUS" "${RESUME_FLAGS[@]}" --checkpoint-dir "$CKPT" \
    --out "$WORK/resumed.csv" 2> "$WORK/resumed.log"
grep -q "resumed from checkpoint" "$WORK/resumed.log" || {
    echo "resume-smoke FAILED: rerun did not resume from the checkpoint"
    cat "$WORK/resumed.log"
    exit 1
}
if ! diff -q "$WORK/reference.csv" "$WORK/resumed.csv" >/dev/null; then
    echo "resume-smoke FAILED: resumed CSV differs from uninterrupted run"
    diff "$WORK/reference.csv" "$WORK/resumed.csv" | head -10
    exit 1
fi
[[ -f "$MANIFEST" ]] && { echo "resume-smoke FAILED: clean finish left the manifest behind"; exit 1; }
echo "resume-smoke: resumed CSV byte-identical to uninterrupted run ($(wc -l < "$WORK/reference.csv") lines), checkpoint retired"

echo "resume-smoke OK"
