// Robustness/property tests: every parser in the library must survive
// arbitrary bytes (no crashes, no false accepts of mutated valid input
// slipping through checksums), and serialize→parse must be the identity on
// randomly generated valid messages.
#include <gtest/gtest.h>

#include "core/feature.hpp"
#include "net/packet_builder.hpp"
#include "probe/campaign.hpp"
#include "snmp/snmpv3.hpp"
#include "util/rng.hpp"

namespace lfp {
namespace {

net::Bytes random_bytes(util::Rng& rng, std::size_t max_length) {
    net::Bytes out(rng.below(max_length));
    for (auto& byte : out) byte = static_cast<std::uint8_t>(rng.next());
    return out;
}

TEST(Fuzz, PacketParserSurvivesGarbage) {
    util::Rng rng(0xF022);
    for (int i = 0; i < 5000; ++i) {
        const auto junk = random_bytes(rng, 128);
        // Must not crash; random bytes virtually never satisfy the header
        // checksum, so acceptance would indicate a validation hole.
        auto parsed = net::parse_packet(junk);
        EXPECT_FALSE(parsed.has_value());
    }
}

TEST(Fuzz, SingleByteMutationsAreRejected) {
    // A valid packet with any single byte flipped must fail some checksum
    // (IPv4 header, ICMP, or pseudo-header) or structural check.
    net::IpSendOptions ip;
    ip.source = net::IPv4Address::from_octets(192, 0, 2, 1);
    ip.destination = net::IPv4Address::from_octets(198, 51, 100, 2);
    const net::Bytes packet = net::make_icmp_echo_request(ip, 7, 1, net::Bytes(24, 0x55));
    ASSERT_TRUE(net::parse_packet(packet).has_value());

    for (std::size_t i = 0; i < packet.size(); ++i) {
        net::Bytes mutated = packet;
        mutated[i] ^= 0x01;
        auto parsed = net::parse_packet(mutated);
        EXPECT_FALSE(parsed.has_value()) << "flip at offset " << i << " accepted";
    }
}

TEST(Fuzz, TruncationsAreRejected) {
    net::IpSendOptions ip;
    ip.source = net::IPv4Address::from_octets(192, 0, 2, 1);
    ip.destination = net::IPv4Address::from_octets(198, 51, 100, 2);
    net::TcpSegment segment;
    segment.source_port = 1000;
    segment.destination_port = 2000;
    segment.flags.syn = true;
    segment.options.push_back({net::TcpOptionKind::mss, {0x05, 0xB4}});
    const net::Bytes packet = net::make_tcp_packet(ip, segment);
    ASSERT_TRUE(net::parse_packet(packet).has_value());

    for (std::size_t length = 0; length < packet.size(); ++length) {
        auto parsed = net::parse_packet(std::span(packet.data(), length));
        EXPECT_FALSE(parsed.has_value()) << "truncation to " << length << " accepted";
    }
}

TEST(Fuzz, RandomValidPacketsRoundTrip) {
    util::Rng rng(0xF0F0);
    for (int i = 0; i < 2000; ++i) {
        net::IpSendOptions ip;
        ip.source = net::IPv4Address(static_cast<std::uint32_t>(rng.next()));
        ip.destination = net::IPv4Address(static_cast<std::uint32_t>(rng.next()));
        ip.identification = static_cast<std::uint16_t>(rng.next());
        ip.ttl = static_cast<std::uint8_t>(1 + rng.below(254));

        net::Bytes packet;
        switch (rng.below(3)) {
            case 0: {
                packet = net::make_icmp_echo_request(
                    ip, static_cast<std::uint16_t>(rng.next()),
                    static_cast<std::uint16_t>(rng.next()),
                    random_bytes(rng, 64));
                break;
            }
            case 1: {
                net::TcpSegment segment;
                segment.source_port = static_cast<std::uint16_t>(rng.next());
                segment.destination_port = static_cast<std::uint16_t>(rng.next());
                segment.sequence = static_cast<std::uint32_t>(rng.next());
                segment.acknowledgment = static_cast<std::uint32_t>(rng.next());
                segment.flags = net::TcpFlags::from_byte(
                    static_cast<std::uint8_t>(rng.next() & 0x3F));
                segment.window = static_cast<std::uint16_t>(rng.next());
                if (rng.chance(0.5)) {
                    segment.options.push_back({net::TcpOptionKind::mss, {0x05, 0xB4}});
                }
                packet = net::make_tcp_packet(ip, segment);
                break;
            }
            default: {
                net::UdpDatagram datagram;
                datagram.source_port = static_cast<std::uint16_t>(rng.next());
                datagram.destination_port = static_cast<std::uint16_t>(rng.next());
                datagram.payload = random_bytes(rng, 48);
                packet = net::make_udp_packet(ip, datagram);
                break;
            }
        }
        auto parsed = net::parse_packet(packet);
        ASSERT_TRUE(parsed.has_value()) << "iteration " << i;
        EXPECT_EQ(parsed.value().ip.source, ip.source);
        EXPECT_EQ(parsed.value().ip.destination, ip.destination);
        EXPECT_EQ(parsed.value().ip.identification, ip.identification);
    }
}

TEST(Fuzz, BerDecoderSurvivesGarbage) {
    util::Rng rng(0xBE12);
    for (int i = 0; i < 5000; ++i) {
        const auto junk = random_bytes(rng, 96);
        auto decoded = snmp::ber_decode(junk);
        // Never crashes. (Short random inputs occasionally form valid BER;
        // that is fine — we only require memory safety and termination.)
        (void)decoded;
    }
}

TEST(Fuzz, SnmpParsersSurviveMutations) {
    snmp::DiscoveryResponse response;
    response.message_id = 17;
    response.engine_id = snmp::make_mac_engine_id(snmp::enterprise::kCisco, {1, 2, 3, 4, 5, 6});
    const net::Bytes wire = response.serialize();
    ASSERT_TRUE(snmp::DiscoveryResponse::parse(wire).has_value());

    util::Rng rng(0x5412);
    for (int i = 0; i < 3000; ++i) {
        net::Bytes mutated = wire;
        const std::size_t flips = 1 + rng.below(4);
        for (std::size_t f = 0; f < flips; ++f) {
            mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
        // Must not crash; may or may not parse depending on which fields
        // were hit (BER has no checksum).
        (void)snmp::DiscoveryResponse::parse(mutated);
    }
}

TEST(Fuzz, FeatureExtractionSurvivesCorruptResponses) {
    // Hand-build a probe result whose stored responses are garbage; the
    // extractor must skip them without crashing.
    util::Rng rng(0xFEA7);
    for (int i = 0; i < 500; ++i) {
        probe::TargetProbeResult result;
        result.target = net::IPv4Address::from_octets(5, 1, 1, 1);
        std::uint32_t send_index = 0;
        for (auto& row : result.probes) {
            for (auto& exchange : row) {
                exchange.send_index = send_index++;
                exchange.request_ipid = static_cast<std::uint16_t>(rng.next());
                if (rng.chance(0.7)) exchange.response = random_bytes(rng, 96);
            }
        }
        const auto features = core::extract_features(result);
        // Garbage responses never yield features.
        EXPECT_TRUE(features.empty());
    }
}

}  // namespace
}  // namespace lfp
