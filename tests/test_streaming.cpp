// Tests for the streaming census engine: adaptive-window convergence under
// the sim's loss/rate-limit profiles (and its byte-neutrality — the AIMD
// trajectory must never change results), CensusRunner::stream() vs the
// materialised measure() on the RIPE-5 dataset, the record-sink chain vs
// the batch build_database/classify stages, backend-hint default lane
// grouping, and the SynchronousTransport poll contract.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/census.hpp"
#include "core/pipeline.hpp"
#include "core/record_sink.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/datasets.hpp"
#include "sim/internet.hpp"

namespace lfp {
namespace {

/// Up to `per_router` interface IPs of every router plus phantom (dead)
/// addresses — alias interfaces and non-responders in one list.
std::vector<net::IPv4Address> world_targets(const sim::Topology& topology, std::size_t limit,
                                            std::size_t per_router = 1) {
    std::vector<net::IPv4Address> targets;
    for (std::size_t i = 0; i < topology.router_count() && targets.size() < limit; ++i) {
        const auto& interfaces = topology.router(i).interfaces();
        for (std::size_t k = 0;
             k < std::min(per_router, interfaces.size()) && targets.size() < limit; ++k) {
            targets.push_back(interfaces[k]);
        }
    }
    for (std::size_t i = 0; i < topology.phantom_addresses().size() && targets.size() < limit;
         ++i) {
        targets.push_back(topology.phantom_addresses()[i]);
    }
    return targets;
}

// ---------------------------------------------------------------------------
// Adaptive window
// ---------------------------------------------------------------------------

TEST(AdaptiveWindow, BacksOffUnderIcmpRateLimiting) {
    // A path that sustains far fewer ICMP answers than a full window emits:
    // the engine must observe source-quench advisories and shrink the
    // in-flight window below its ceiling.
    sim::Topology topology = sim::Topology::build(
        {.seed = 51, .num_ases = 120, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.6});
    sim::Internet internet(topology, {.seed = 9,
                                      .loss_rate = 0.0,
                                      .icmp_rate_limit_per_sec = 400.0,
                                      .icmp_rate_limit_burst = 16.0});
    probe::SimTransport transport(
        internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(500)});
    probe::Campaign campaign(transport,
                             {.window = 64,
                              .adaptive_window = true,
                              .response_timeout = std::chrono::milliseconds(250)});

    const auto targets = world_targets(topology, 250);
    const auto results = campaign.run(targets);

    ASSERT_EQ(results.size(), targets.size());
    EXPECT_GT(internet.responses_rate_limited(), 0u);
    EXPECT_GT(campaign.rate_limit_signals(), 0u);
    EXPECT_GT(campaign.window_decreases(), 0u);
    EXPECT_LT(campaign.current_window(), 64u)
        << "the window must converge below the ceiling while the path quenches";
    // TCP RSTs and SNMP answers are not ICMP and pass the rate limiter, so
    // router-backed targets still respond — just not on the quenched slots.
    // (The list is padded with phantom addresses, hence the loose bound.)
    std::size_t responsive = 0;
    for (const auto& result : results) {
        if (result.any_response()) ++responsive;
    }
    EXPECT_GT(responsive, results.size() / 3);
}

TEST(AdaptiveWindow, GrowsBackToCeilingOnCleanPaths) {
    // Loss-free, quench-free world: the controller must never decrease, and
    // the window must sit at the ceiling.
    sim::Topology topology = sim::Topology::build(
        {.seed = 52, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5});
    sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.0});
    probe::SimTransport transport(
        internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200)});
    probe::Campaign campaign(transport, {.window = 32, .adaptive_window = true});

    const auto results = campaign.run(world_targets(topology, 150));
    ASSERT_EQ(results.size(), 150u);
    EXPECT_EQ(campaign.rate_limit_signals(), 0u);
    EXPECT_EQ(campaign.window_decreases(), 0u);
    EXPECT_EQ(campaign.current_window(), 32u);
}

TEST(AdaptiveWindow, FixedModeObservesButIgnoresSignals) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 51, .num_ases = 120, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.6});
    sim::Internet internet(topology, {.seed = 9,
                                      .loss_rate = 0.0,
                                      .icmp_rate_limit_per_sec = 400.0,
                                      .icmp_rate_limit_burst = 16.0});
    probe::SimTransport transport(
        internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(500)});
    probe::Campaign campaign(transport,
                             {.window = 64,
                              .adaptive_window = false,
                              .response_timeout = std::chrono::milliseconds(250)});

    const auto results = campaign.run(world_targets(topology, 200));
    ASSERT_EQ(results.size(), 200u);
    EXPECT_GT(campaign.rate_limit_signals(), 0u) << "quenches are still counted";
    EXPECT_EQ(campaign.window_decreases(), 0u) << "but never acted upon";
    EXPECT_EQ(campaign.current_window(), 64u);
}

TEST(AdaptiveWindow, TrajectoryNeverChangesResults) {
    // Under deterministic loss + jitter (rate limiting off), an adaptive
    // run must stay byte-identical to the fixed serial run whatever window
    // trajectory the controller walked.
    const sim::TopologyConfig topo_config{
        .seed = 83, .num_ases = 120, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.6};
    const sim::InternetConfig net_config{.seed = 9, .loss_rate = 0.01};

    auto run_with = [&](std::size_t window, bool adaptive) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, net_config);
        probe::SimTransport transport(
            internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200),
                                                   .jitter = 0.8});
        probe::Campaign campaign(transport,
                                 {.window = window,
                                  .adaptive_window = adaptive,
                                  .response_timeout = std::chrono::milliseconds(250)});
        return campaign.run(world_targets(topology, 160));
    };

    const auto serial = run_with(1, false);
    const auto adaptive = run_with(32, true);
    ASSERT_EQ(serial.size(), adaptive.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], adaptive[i]) << "target " << i;
    }
}

// ---------------------------------------------------------------------------
// Streaming engine and record sinks
// ---------------------------------------------------------------------------

TEST(Streaming, CampaignEmitsInInputOrderAndMatchesRunIndexed) {
    const sim::TopologyConfig topo_config{
        .seed = 19, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5};

    auto make_world = [&] {
        auto topology = std::make_unique<sim::Topology>(sim::Topology::build(topo_config));
        auto internet =
            std::make_unique<sim::Internet>(*topology, sim::InternetConfig{.seed = 3,
                                                                           .loss_rate = 0.005});
        return std::pair(std::move(topology), std::move(internet));
    };

    auto [topo_a, net_a] = make_world();
    probe::SimTransport transport_a(
        *net_a, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200),
                                             .jitter = 0.5});
    probe::Campaign campaign_a(transport_a, {.window = 16});
    const auto targets = world_targets(*topo_a, 120);
    const auto batch = campaign_a.run_indexed(targets, {});

    auto [topo_b, net_b] = make_world();
    probe::SimTransport transport_b(
        *net_b, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200),
                                             .jitter = 0.5});
    probe::Campaign campaign_b(transport_b, {.window = 16});
    std::vector<probe::TargetProbeResult> streamed;
    std::size_t expected_index = 0;
    campaign_b.run_streaming(targets, {},
                             [&](std::size_t index, probe::TargetProbeResult&& result) {
                                 EXPECT_EQ(index, expected_index++)
                                     << "emission order must be input order";
                                 streamed.push_back(std::move(result));
                                 return true;
                             });

    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i], streamed[i]) << "target " << i;
    }
}

TEST(Streaming, EmitCancellationStopsTheRunPromptly) {
    // emit returning false must cancel the campaign: no further emissions,
    // and the remaining targets are never admitted (their probes unsent).
    sim::Topology topology = sim::Topology::build(
        {.seed = 19, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5});
    sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.0});
    probe::SimTransport transport(internet);
    probe::Campaign campaign(transport, {.window = 4});

    const auto targets = world_targets(topology, 100);
    ASSERT_EQ(targets.size(), 100u);
    std::size_t emitted = 0;
    campaign.run_streaming(targets, {},
                           [&](std::size_t, probe::TargetProbeResult&&) {
                               ++emitted;
                               return emitted < 5;  // cancel on the fifth record
                           });
    EXPECT_EQ(emitted, 5u);
    EXPECT_LT(campaign.packets_sent(), targets.size() * 10)
        << "cancellation must stop admission, not probe the whole list";
}

namespace {
/// Throws once the stream reaches its fuse — the failing-consumer case.
class FusedSink final : public core::RecordSink {
  public:
    explicit FusedSink(std::size_t fuse) : fuse_(fuse) {}
    void accept(std::uint64_t, core::TargetRecord&&) override {
        if (++accepted_ >= fuse_) throw std::runtime_error("sink fuse blown");
    }
    [[nodiscard]] std::size_t accepted() const noexcept { return accepted_; }

  private:
    std::size_t fuse_;
    std::size_t accepted_ = 0;
};
}  // namespace

TEST(Streaming, SinkFailurePropagatesAndCancelsLanes) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 19, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5});
    sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.0});
    std::vector<std::unique_ptr<probe::SimTransport>> transports;
    for (std::size_t v = 0; v < 2; ++v) {
        transports.push_back(std::make_unique<probe::SimTransport>(internet));
    }
    core::CensusPlan plan;
    for (const auto& transport : transports) plan.vantages.push_back(transport.get());
    plan.campaign.window = 8;
    plan.shard_grain = 4;
    core::CensusRunner runner(std::move(plan));

    const auto targets = world_targets(topology, 120);
    FusedSink sink(3);
    EXPECT_THROW(runner.stream(targets, {}, sink), std::runtime_error);
    EXPECT_EQ(sink.accepted(), 3u);
}

TEST(Streaming, StreamMatchesMaterialisedMeasureOnRipe5) {
    // The acceptance scenario: the RIPE-5 snapshot streamed through a
    // 4-vantage CensusRunner into a CollectingSink must equal both the
    // materialised 4-vantage measure() and the single-vantage serial run.
    const sim::TopologyConfig topo_config{
        .seed = 23, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.18, .scale = 0.5};
    const sim::Topology reference = sim::Topology::build(topo_config);
    sim::DatasetConfig dataset_config;
    dataset_config.seed = 0xDA7A;
    dataset_config.traces_per_snapshot = 4000;
    const auto snapshots = sim::DatasetBuilder(reference, dataset_config).ripe_snapshots();
    ASSERT_EQ(snapshots.back().name, "RIPE-5");
    const auto targets = snapshots.back().router_ips();
    ASSERT_GT(targets.size(), 500u);

    auto plan_with = [&](sim::Internet& internet,
                         std::vector<std::unique_ptr<probe::SimTransport>>& transports,
                         std::size_t vantage_count, std::size_t window) {
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(internet));
        }
        core::CensusPlan plan;
        plan.name = "RIPE-5";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = window;
        return plan;
    };

    auto measured = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 31, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        core::CensusRunner runner(plan_with(internet, transports, vantage_count, window));
        return runner.measure("RIPE-5", targets);
    };

    auto streamed = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 31, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        core::CensusRunner runner(plan_with(internet, transports, vantage_count, window));
        core::CollectingSink sink("RIPE-5");
        runner.stream(targets, {}, sink);
        return sink.take();
    };

    const auto serial_materialised = measured(1, 1);
    const auto four_lane_streamed = streamed(4, 32);
    const auto four_lane_materialised = measured(4, 32);
    EXPECT_GT(serial_materialised.responsive_count(), serial_materialised.records.size() / 2);
    EXPECT_EQ(serial_materialised, four_lane_streamed);
    EXPECT_EQ(four_lane_materialised, four_lane_streamed);
}

TEST(Streaming, SinkChainMatchesBatchStages) {
    const sim::TopologyConfig topo_config{
        .seed = 13, .num_ases = 200, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.8};

    auto fresh_runner = [&](std::vector<std::unique_ptr<probe::SimTransport>>& transports,
                            std::unique_ptr<sim::Topology>& topology,
                            std::unique_ptr<sim::Internet>& internet) {
        topology = std::make_unique<sim::Topology>(sim::Topology::build(topo_config));
        internet = std::make_unique<sim::Internet>(
            *topology, sim::InternetConfig{.seed = 5, .loss_rate = 0.004});
        transports.push_back(std::make_unique<probe::SimTransport>(*internet));
        core::CensusPlan plan;
        plan.vantages = {transports.back().get()};
        plan.campaign.window = 32;
        return std::make_unique<core::CensusRunner>(std::move(plan));
    };

    // Batch reference: materialise, then build the database and classify.
    std::unique_ptr<sim::Topology> topo_a;
    std::unique_ptr<sim::Internet> net_a;
    std::vector<std::unique_ptr<probe::SimTransport>> transports_a;
    auto runner_a = fresh_runner(transports_a, topo_a, net_a);
    const auto targets = world_targets(*topo_a, 600);
    auto batch = runner_a->measure("sink-chain", targets);
    const auto database =
        core::LfpPipeline::build_database({&batch, 1}, {.min_occurrences = 3});
    core::LfpPipeline::classify_measurement(batch, database);

    // Streaming: absorb signatures and classify per record as the census
    // runs, collecting the classified measurement at the chain's tail.
    std::unique_ptr<sim::Topology> topo_b;
    std::unique_ptr<sim::Internet> net_b;
    std::vector<std::unique_ptr<probe::SimTransport>> transports_b;
    auto runner_b = fresh_runner(transports_b, topo_b, net_b);
    core::SignatureDatabase streamed_db({.min_occurrences = 3});
    core::CollectingSink collect("sink-chain");
    core::ClassifySink classify(database, {}, &collect);
    core::SignatureAbsorbSink absorb(streamed_db, &classify);
    runner_b->stream(targets, {}, absorb);
    streamed_db.finalize();
    auto streamed = collect.take();

    EXPECT_EQ(batch, streamed)
        << "per-record classification must equal the sharded batch stage";
    EXPECT_TRUE(database.signatures() == streamed_db.signatures())
        << "per-record absorption must equal the sharded batch build";
    EXPECT_EQ(database.full_signature_counts().unique,
              streamed_db.full_signature_counts().unique);
}

TEST(Streaming, BackendHintGroupsAliasInterfacesByDefault) {
    // Alias interfaces of one stateful router, probed at 4 vantages with NO
    // explicit assignment: the transports' backend hints must pin aliases
    // to one lane, merging byte-identically with the serial run. (Before
    // backend_hint, this required a caller-built affinity assignment.)
    const sim::TopologyConfig topo_config{
        .seed = 7, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.18, .scale = 0.8};

    auto run_with = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 11, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(
                internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200),
                                                       .jitter = 0.8}));
        }
        core::CensusPlan plan;
        plan.name = "hint-grouping";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = window;
        plan.campaign.response_timeout = std::chrono::milliseconds(250);
        // Two interfaces per router: the aliases round-robin would split.
        plan.targets = world_targets(topology, 600, 2);
        plan.worker_threads = 4;
        core::CensusRunner runner(std::move(plan));
        return runner.run();
    };

    const auto serial = run_with(1, 1);
    ASSERT_GT(serial.responsive_count(), serial.records.size() / 2);
    const auto four_lanes = run_with(4, 32);
    EXPECT_EQ(serial, four_lanes);
}

TEST(Streaming, SimTransportReportsGroundTruthHints) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 29, .num_ases = 60, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5});
    sim::Internet internet(topology, {.seed = 2});
    probe::SimTransport transport(internet);

    ASSERT_GT(topology.router_count(), 1u);
    const auto& interfaces = topology.router(1).interfaces();
    for (net::IPv4Address ip : interfaces) {
        const auto hint = transport.backend_hint(ip);
        ASSERT_TRUE(hint.has_value());
        EXPECT_EQ(hint.value(), 1u) << "alias interfaces share their router's index";
    }
    ASSERT_FALSE(topology.phantom_addresses().empty());
    EXPECT_FALSE(transport.backend_hint(topology.phantom_addresses().front()).has_value());
}

// ---------------------------------------------------------------------------
// SynchronousTransport poll contract
// ---------------------------------------------------------------------------

namespace {
class EchoBytesTransport final : public probe::SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(192, 0, 2, 7);
    }

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        return net::Bytes(packet.begin(), packet.end());
    }
};
}  // namespace

TEST(Streaming, SynchronousTransportPollReturnsImmediatelyWhenDrained) {
    // The documented contract: every response materialises at send time, so
    // an empty queue is proof of drained() and poll_responses() may return
    // without consuming its timeout. A long timeout must cost nothing.
    EchoBytesTransport transport;
    EXPECT_TRUE(transport.drained());
    const auto start = std::chrono::steady_clock::now();
    const auto empty = transport.poll_responses(std::chrono::milliseconds(10'000));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(empty.empty());
    EXPECT_LT(elapsed, std::chrono::milliseconds(1'000))
        << "drained poll must not sleep out its timeout";

    const net::Bytes packet{1, 2, 3};
    transport.send_batch({&packet, 1});
    EXPECT_FALSE(transport.drained());
    const auto queued = transport.poll_responses(std::chrono::milliseconds(0));
    ASSERT_EQ(queued.size(), 1u);
    EXPECT_EQ(queued.front(), packet);
    EXPECT_TRUE(transport.drained());
}

}  // namespace
}  // namespace lfp
