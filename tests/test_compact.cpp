// Tests pinning the CompactRecord <-> TargetRecord equivalence the spill
// path rests on: lossless round-trips for every response-topology mask
// (all 2^10 evidence combinations, including partial signatures, SNMP-only
// and fully silent records, multi-pass provenance), agreement between the
// mask-level and record-level retry/merge predicates, and the SpillSink's
// on-disk behaviour at segment boundaries — append/read/replace across the
// flush seam, drain order, and tolerance of a crash-truncated tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "core/measurement.hpp"
#include "core/record_sink.hpp"
#include "snmp/engine_id.hpp"
#include "snmp/snmpv3.hpp"

namespace lfp {
namespace {

/// Builds a TargetRecord in canonical assembled form (the form to_record()
/// reconstructs: empty packet bytes, slot-order send indices, signature
/// derived from the features) whose response topology is exactly `mask`.
core::TargetRecord record_for_mask(std::uint16_t mask, std::uint16_t pass = 0) {
    core::TargetRecord record;
    record.probes.target = net::IPv4Address(0xC0A80000u + mask);
    record.pass = pass;
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        for (std::size_t r = 0; r < probe::kRoundsPerProtocol; ++r) {
            const std::size_t slot = core::probe_slot(p, r);
            auto& exchange = record.probes.probes[p][r];
            exchange.request_ipid = static_cast<std::uint16_t>(0x3100 + mask * 10 + slot);
            exchange.send_index = static_cast<std::uint32_t>(slot);
            if ((mask & (1u << slot)) != 0) exchange.response.emplace();
        }
    }
    if ((mask & core::kSnmpAnsweredBit) != 0) {
        snmp::DiscoveryResponse snmp;
        snmp.message_id = 0x51000 + mask;
        snmp.engine_boots = 3;
        snmp.engine_time = 123456;
        snmp.engine_id = snmp::make_mac_engine_id(9, {0x00, 0x11, 0x22, 0x33, 0x44, 0x55});
        record.probes.snmp = snmp;
        record.snmp_vendor = stack::Vendor::cisco;
    }
    // Features exercise the embedded-verbatim path; give them a shape that
    // varies with the mask so no two records collapse to the same bytes.
    record.features.protocol_mask = static_cast<std::uint8_t>(mask & 0b111);
    record.features.ittl_icmp = static_cast<std::uint8_t>(mask % 255);
    record.features.size_icmp = static_cast<std::uint16_t>(mask);
    record.signature = core::Signature::from_features(record.features);
    return record;
}

TEST(CompactRecord, RoundTripsEveryResponseTopology) {
    // Every one of the 1024 evidence combinations — silent, SNMP-only,
    // partial per-protocol signatures, complete — must survive the compact
    // projection bit-for-bit, multi-pass provenance included.
    for (std::uint32_t mask = 0; mask < 1024; ++mask) {
        const auto bits = static_cast<std::uint16_t>(mask);
        const auto record = record_for_mask(bits, static_cast<std::uint16_t>(mask % 5));
        ASSERT_EQ(core::probe_response_mask(record.probes), bits);

        const auto compact = core::CompactRecord::from_record(record);
        EXPECT_EQ(compact.response_mask, bits);
        EXPECT_EQ(compact.pass, mask % 5);

        const auto back = compact.to_record();
        EXPECT_EQ(back, record) << "mask " << mask;
        EXPECT_EQ(core::CompactRecord::from_record(back), compact)
            << "round trip must be idempotent, mask " << mask;
    }
}

TEST(CompactRecord, CarriesClassificationAndVendors) {
    auto record = record_for_mask(0x3FF);
    record.lfp.vendor = stack::Vendor::juniper;
    record.lfp.kind = core::MatchKind::unique_full;
    record.lfp.confidence = 0.875;

    const auto back = core::CompactRecord::from_record(record).to_record();
    EXPECT_EQ(back, record);
    EXPECT_EQ(back.lfp.vendor, stack::Vendor::juniper);
    EXPECT_EQ(back.lfp.kind, core::MatchKind::unique_full);
    EXPECT_DOUBLE_EQ(back.lfp.confidence, 0.875);
    EXPECT_EQ(back.snmp_vendor, stack::Vendor::cisco);
}

TEST(CompactRecord, MaskPredicatesMatchRecordPredicates) {
    // The spill path decides retries from the 2-byte mask alone; the
    // in-memory path asks the full record. For every topology and every
    // option combination the two predicates must agree — this is the
    // equivalence that makes spilled and in-memory censuses pick identical
    // retry populations.
    const core::RetryOptions option_sets[] = {
        {},
        {.retry_silent = true},
        {.retry_missing_snmp = true},
        {.retry_missing_protocol = false},
        {.retry_silent = true, .retry_missing_snmp = true, .retry_missing_protocol = false},
    };
    for (std::uint32_t mask = 0; mask < 1024; ++mask) {
        const auto bits = static_cast<std::uint16_t>(mask);
        const auto record = record_for_mask(bits);
        for (const auto& options : option_sets) {
            EXPECT_EQ(core::RetrySink::incomplete(record, options),
                      core::RetrySink::incomplete_mask(bits, options))
                << "mask " << mask;
        }
    }
}

TEST(CompactRecord, MaskMergeRuleProperties) {
    // Strict-improvement lattice: nothing improves on itself, a full
    // answer improves on any partial one, evidence is never traded away.
    for (std::uint32_t mask = 0; mask < 1024; ++mask) {
        const auto bits = static_cast<std::uint16_t>(mask);
        EXPECT_FALSE(core::mask_merge_improves(bits, bits));
        if (bits != 0x3FF) EXPECT_TRUE(core::mask_merge_improves(0x3FF, bits));
        if (bits != 0) EXPECT_FALSE(core::mask_merge_improves(0, bits));
    }
    // Sideways trade: ICMP round 0 for ICMP round 1 is not an improvement
    // in either direction.
    EXPECT_FALSE(core::mask_merge_improves(0b001, 0b1000));
    EXPECT_FALSE(core::mask_merge_improves(0b1000, 0b001));
    // Losing the SNMP answer disqualifies even a probe-side gain.
    EXPECT_FALSE(core::mask_merge_improves(0x1FF, core::kSnmpAnsweredBit | 0b1));
    // Gaining only the SNMP answer is an improvement.
    EXPECT_TRUE(core::mask_merge_improves(core::kSnmpAnsweredBit | 0b1, 0b1));
}

// ---------------------------------------------------------------------------
// SpillSink
// ---------------------------------------------------------------------------

core::CompactRecord compact_for(std::uint64_t index) {
    auto record = record_for_mask(static_cast<std::uint16_t>(index % 1024),
                                  static_cast<std::uint16_t>(index % 3));
    record.probes.target = net::IPv4Address(static_cast<std::uint32_t>(0x0A000000 + index));
    return core::CompactRecord::from_record(record);
}

class VectorSink final : public core::RecordSink {
  public:
    void accept(std::uint64_t global_index, core::TargetRecord&& record) override {
        indices.push_back(global_index);
        records.push_back(std::move(record));
    }
    std::vector<std::uint64_t> indices;
    std::vector<core::TargetRecord> records;
};

TEST(SpillSink, SegmentBoundaryAppendReadReplaceDrain) {
    core::SpillConfig config;
    config.segment_records = 8;
    constexpr std::uint64_t kBase = 1000;        // non-zero index_base
    constexpr std::size_t kCount = 8 * 3 + 5;    // 3 flushed segments + tail
    core::SpillSink sink(config, kBase);

    for (std::size_t i = 0; i < kCount; ++i) sink.append(kBase + i, compact_for(i));
    EXPECT_EQ(sink.size(), kCount);
    EXPECT_EQ(sink.segments_flushed(), 3u);

    // Reads hit the right storage on both sides of every flush seam.
    for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{8}, std::size_t{15},
                          std::size_t{16}, std::size_t{23}, std::size_t{24}, kCount - 1}) {
        EXPECT_EQ(sink.read(kBase + i), compact_for(i)) << "position " << i;
        EXPECT_EQ(sink.response_mask(kBase + i), compact_for(i).response_mask);
    }

    // Replace inside a flushed segment, at the last slot before a seam, at
    // the first slot after one, and in the RAM tail; reads and the mask
    // index must follow.
    for (std::size_t i : {std::size_t{3}, std::size_t{7}, std::size_t{8}, kCount - 1}) {
        const auto upgraded = compact_for(i + 500);
        sink.replace(kBase + i, upgraded);
        EXPECT_EQ(sink.read(kBase + i), upgraded) << "position " << i;
        EXPECT_EQ(sink.response_mask(kBase + i), upgraded.response_mask);
    }

    // Drain re-reads everything in order and reflects the replacements.
    VectorSink drained;
    sink.drain(drained);
    ASSERT_EQ(drained.records.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(drained.indices[i], kBase + i);
        const bool replaced = i == 3 || i == 7 || i == 8 || i == kCount - 1;
        const auto expected = compact_for(replaced ? i + 500 : i);
        EXPECT_EQ(core::CompactRecord::from_record(drained.records[i]), expected)
            << "position " << i;
    }
}

TEST(SpillSink, ReadSegmentFileToleratesTruncatedTail) {
    // Crash mid-write: a segment whose last record is incomplete must
    // yield every complete record and drop the fragment, not throw.
    const auto dir = std::filesystem::temp_directory_path() / "lfp-spill-truncation-test";
    std::filesystem::create_directories(dir);
    core::SpillConfig config;
    config.directory = dir.string();
    config.segment_records = 4;
    config.keep_segments = true;

    std::filesystem::path segment_path;
    {
        core::SpillSink sink(config);
        for (std::size_t i = 0; i < 4; ++i) sink.append(i, compact_for(i));
        ASSERT_EQ(sink.segments_flushed(), 1u);
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            segment_path = entry.path();
        }
    }
    ASSERT_FALSE(segment_path.empty());

    const auto intact = core::SpillSink::read_segment_file(segment_path);
    ASSERT_EQ(intact.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(intact[i], compact_for(i));

    // Chop the file mid-record: 16-byte header + 2.5 records.
    const auto full_size = std::filesystem::file_size(segment_path);
    const auto record_bytes = (full_size - 16) / 4;
    std::filesystem::resize_file(segment_path, 16 + 2 * record_bytes + record_bytes / 2);
    const auto truncated = core::SpillSink::read_segment_file(segment_path);
    ASSERT_EQ(truncated.size(), 2u);
    EXPECT_EQ(truncated[0], compact_for(0));
    EXPECT_EQ(truncated[1], compact_for(1));

    // A corrupt header is not a truncated tail — it must throw.
    {
        std::fstream corrupt(segment_path,
                             std::ios::binary | std::ios::in | std::ios::out);
        corrupt.seekp(0);
        corrupt.write("BOGUSMAG", 8);
    }
    EXPECT_THROW((void)core::SpillSink::read_segment_file(segment_path),
                 std::runtime_error);

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(SpillSink, AcceptCompactsAndCleansUpSegments) {
    // The RecordSink face: accept() compacts on the way in, and the sink
    // removes its segment files on destruction unless told otherwise.
    const auto dir = std::filesystem::temp_directory_path() / "lfp-spill-cleanup-test";
    std::filesystem::create_directories(dir);
    core::SpillConfig config;
    config.directory = dir.string();
    config.segment_records = 2;
    {
        core::SpillSink sink(config);
        for (std::size_t i = 0; i < 5; ++i) {
            sink.accept(i, record_for_mask(static_cast<std::uint16_t>(i * 37 % 1024)));
        }
        EXPECT_EQ(sink.segments_flushed(), 2u);
        EXPECT_EQ(sink.read(0), core::CompactRecord::from_record(record_for_mask(0)));
        std::size_t files = 0;
        for ([[maybe_unused]] const auto& entry : std::filesystem::directory_iterator(dir)) {
            ++files;
        }
        EXPECT_EQ(files, 2u);
    }
    std::size_t files_after = 0;
    for ([[maybe_unused]] const auto& entry : std::filesystem::directory_iterator(dir)) {
        ++files_after;
    }
    EXPECT_EQ(files_after, 0u) << "segments must be unlinked at destruction";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace lfp
