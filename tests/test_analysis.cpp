// Tests for the analysis layer: vendor maps, path analyses and scopes,
// AS-level aggregation, alias resolution, precision/recall, and the
// informed-routing policy engine.
#include <gtest/gtest.h>

#include "analysis/alias_resolution.hpp"
#include "analysis/as_analysis.hpp"
#include "analysis/informed_routing.hpp"
#include "analysis/path_analysis.hpp"
#include "analysis/precision_recall.hpp"
#include "probe/sim_transport.hpp"

namespace lfp::analysis {
namespace {

using stack::Vendor;

net::IPv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    return net::IPv4Address::from_octets(a, b, c, d);
}

TEST(VendorMapTest, AssignAndLookup) {
    VendorMap map;
    map.assign(ip(5, 0, 0, 1), Vendor::cisco);
    EXPECT_EQ(map.lookup(ip(5, 0, 0, 1)), Vendor::cisco);
    EXPECT_FALSE(map.lookup(ip(5, 0, 0, 2)).has_value());
    EXPECT_EQ(map.size(), 1u);
}

TEST(VendorMapTest, MethodsSelectVerdicts) {
    core::Measurement measurement;
    // Record A: SNMP-labeled only.
    core::TargetRecord a;
    a.probes.target = ip(5, 1, 1, 1);
    a.snmp_vendor = Vendor::juniper;
    // Record B: LFP unique verdict only.
    core::TargetRecord b;
    b.probes.target = ip(5, 1, 1, 2);
    b.lfp.vendor = Vendor::cisco;
    b.lfp.kind = core::MatchKind::unique_full;
    // Record C: non-unique majority verdict only.
    core::TargetRecord c;
    c.probes.target = ip(5, 1, 1, 3);
    c.lfp.vendor = Vendor::mikrotik;
    c.lfp.kind = core::MatchKind::non_unique;
    measurement.records = {a, b, c};

    const auto snmp_map = VendorMap::from_measurement(measurement, VendorMap::Method::snmpv3);
    EXPECT_EQ(snmp_map.size(), 1u);
    EXPECT_EQ(snmp_map.lookup(ip(5, 1, 1, 1)), Vendor::juniper);

    const auto lfp_map = VendorMap::from_measurement(measurement, VendorMap::Method::lfp);
    EXPECT_EQ(lfp_map.size(), 1u);
    EXPECT_EQ(lfp_map.lookup(ip(5, 1, 1, 2)), Vendor::cisco);

    const auto combined = VendorMap::from_measurement(measurement, VendorMap::Method::combined);
    EXPECT_EQ(combined.size(), 2u);

    const auto majority =
        VendorMap::from_measurement(measurement, VendorMap::Method::lfp_majority);
    EXPECT_EQ(majority.size(), 2u);
    EXPECT_EQ(majority.lookup(ip(5, 1, 1, 3)), Vendor::mikrotik);
}

TEST(CombinationKey, SortedAndJoined) {
    EXPECT_EQ(combination_key({Vendor::juniper, Vendor::cisco}), "Cisco, Juniper");
    EXPECT_EQ(combination_key({Vendor::cisco}), "Cisco");
    EXPECT_EQ(combination_key({}), "");
}

// -------------------------------------------------------------- PathAnalyzer

class PathFixture : public ::testing::Test {
  protected:
    static const sim::Topology& topo() {
        static const sim::Topology instance = sim::Topology::build(
            {.seed = 61, .num_ases = 150, .tier1_count = 6, .transit_fraction = 0.2,
             .scale = 0.4});
        return instance;
    }

    /// A synthetic trace with the given hop vendors registered in the map.
    sim::Traceroute make_trace(VendorMap& map, const std::vector<Vendor>& vendors,
                               std::uint32_t src_asn, std::uint32_t dst_asn) {
        sim::Traceroute trace;
        trace.source_asn = src_asn;
        trace.destination_asn = dst_asn;
        for (Vendor vendor : vendors) {
            const auto hop = ip(11, 0, static_cast<std::uint8_t>(next_ / 250),
                                static_cast<std::uint8_t>(next_ % 250 + 1));
            ++next_;
            if (vendor != Vendor::unknown) map.assign(hop, vendor);
            trace.hops.push_back(hop);
        }
        return trace;
    }

    std::uint32_t us_asn() const {
        for (const auto& node : topo().graph().nodes()) {
            if (topo().geo().is_in_country(node.asn, "US")) return node.asn;
        }
        throw std::runtime_error("no US AS");
    }
    std::uint32_t non_us_asn() const {
        for (const auto& node : topo().graph().nodes()) {
            if (!topo().geo().is_in_country(node.asn, "US")) return node.asn;
        }
        throw std::runtime_error("no non-US AS");
    }

    int next_ = 0;
};

TEST_F(PathFixture, DiversityAndIdentificationStats) {
    VendorMap map;
    std::vector<sim::Traceroute> traces;
    const auto us = us_asn();
    // 3 hops, all identified, single vendor.
    traces.push_back(make_trace(map, {Vendor::cisco, Vendor::cisco, Vendor::cisco}, us, us));
    // 4 hops, 2 identified, two vendors.
    traces.push_back(
        make_trace(map, {Vendor::cisco, Vendor::unknown, Vendor::juniper, Vendor::unknown}, us,
                   us));
    // Too short for min_hops=3.
    traces.push_back(make_trace(map, {Vendor::huawei, Vendor::huawei}, us, us));

    PathAnalyzer analyzer(topo(), map);
    const PathStats stats = analyzer.analyze(traces, PathScope::all, {.min_hops = 3});
    EXPECT_EQ(stats.paths_considered, 2u);
    EXPECT_EQ(stats.hop_counts.size(), 3u);  // hop counts recorded pre-filter
    EXPECT_EQ(stats.vendors_per_path.size(), 2u);
    EXPECT_DOUBLE_EQ(stats.identified_fraction.max(), 100.0);
    EXPECT_DOUBLE_EQ(stats.identified_fraction.min(), 50.0);
    EXPECT_EQ(stats.combinations.get("Cisco"), 1u);
    EXPECT_EQ(stats.combinations.get("Cisco, Juniper"), 1u);
    // k-identified counters: both paths have >=2 identified hops.
    EXPECT_EQ(stats.paths_with_k_identified(2), 2u);
    EXPECT_EQ(stats.paths_with_k_identified(3), 1u);
}

TEST_F(PathFixture, PrivateHopsAreExcluded) {
    VendorMap map;
    sim::Traceroute trace;
    const auto us = us_asn();
    trace.source_asn = us;
    trace.destination_asn = us;
    trace.hops = {ip(10, 0, 0, 1), ip(11, 0, 0, 1), ip(11, 0, 0, 2), ip(11, 0, 0, 3)};
    map.assign(ip(11, 0, 0, 1), Vendor::cisco);
    map.assign(ip(11, 0, 0, 2), Vendor::cisco);
    map.assign(ip(11, 0, 0, 3), Vendor::cisco);

    PathAnalyzer analyzer(topo(), map);
    const PathStats stats = analyzer.analyze({trace}, PathScope::all, {.min_hops = 3});
    ASSERT_EQ(stats.paths_considered, 1u);
    // 3 routable hops, all identified: 100% despite the private hop.
    EXPECT_DOUBLE_EQ(stats.identified_fraction.max(), 100.0);
}

TEST_F(PathFixture, ScopesPartitionTraces) {
    VendorMap map;
    const auto us = us_asn();
    const auto abroad = non_us_asn();
    std::vector<sim::Traceroute> traces;
    traces.push_back(make_trace(map, {Vendor::cisco, Vendor::cisco, Vendor::cisco}, us, us));
    traces.push_back(make_trace(map, {Vendor::cisco, Vendor::cisco, Vendor::cisco}, us, abroad));
    traces.push_back(
        make_trace(map, {Vendor::cisco, Vendor::cisco, Vendor::cisco}, abroad, abroad));

    PathAnalyzer analyzer(topo(), map);
    EXPECT_EQ(analyzer.analyze(traces, PathScope::all, {}).paths_considered, 3u);
    EXPECT_EQ(analyzer.analyze(traces, PathScope::intra_us, {}).paths_considered, 1u);
    EXPECT_EQ(analyzer.analyze(traces, PathScope::inter_us, {}).paths_considered, 1u);
}

// ------------------------------------------------------------- AS analyses

TEST(AsAnalysis, RouterVerdictsAndCoverage) {
    // Synthetic ITDK over a small topology.
    sim::Topology topology = sim::Topology::build(
        {.seed = 71, .num_ases = 60, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5});
    sim::ItdkDataset itdk;
    VendorMap snmp_map;
    VendorMap lfp_map;
    std::size_t included = 0;
    for (std::size_t i = 0; i < topology.router_count() && included < 40; ++i) {
        const auto& router = topology.router(i);
        if (router.interfaces().size() < 2) continue;
        sim::AliasSet set;
        set.router_index = i;
        set.addresses = router.interfaces();
        itdk.alias_sets.push_back(set);
        ++included;
        // Half get SNMP verdicts, half LFP verdicts.
        if (included % 2 == 0) {
            snmp_map.assign(router.interfaces()[0], router.vendor());
        } else {
            lfp_map.assign(router.interfaces()[1], router.vendor());
        }
    }
    const auto verdicts = map_routers(itdk, topology, snmp_map, lfp_map);
    ASSERT_EQ(verdicts.size(), included);
    std::size_t with_snmp = 0;
    std::size_t with_lfp = 0;
    for (const auto& verdict : verdicts) {
        EXPECT_FALSE(verdict.conflicting_interfaces);
        EXPECT_TRUE(verdict.combined().has_value());
        EXPECT_EQ(*verdict.combined(), topology.router(verdict.router_index).vendor());
        if (verdict.snmp_vendor) ++with_snmp;
        if (verdict.lfp_vendor) ++with_lfp;
    }
    EXPECT_EQ(with_snmp + with_lfp, included);

    const auto coverage = per_as_coverage(verdicts);
    std::size_t routers_total = 0;
    for (const auto& entry : coverage) {
        routers_total += entry.routers_total;
        EXPECT_EQ(entry.routers_identified, entry.routers_total);  // all identified here
        EXPECT_DOUBLE_EQ(entry.identified_percent(), 100.0);
    }
    EXPECT_EQ(routers_total, included);

    const auto ecdf = coverage_ecdf(coverage, 1);
    EXPECT_DOUBLE_EQ(ecdf.min(), 100.0);
}

TEST(AsAnalysis, ConflictingInterfacesDetected) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 72, .num_ases = 30, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5});
    // Find a router with >= 2 interfaces and give its interfaces clashing
    // verdicts.
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        const auto& router = topology.router(i);
        if (router.interfaces().size() < 2) continue;
        sim::ItdkDataset itdk;
        itdk.alias_sets.push_back({i, router.interfaces()});
        VendorMap lfp_map;
        lfp_map.assign(router.interfaces()[0], Vendor::cisco);
        lfp_map.assign(router.interfaces()[1], Vendor::juniper);
        const auto verdicts = map_routers(itdk, topology, VendorMap{}, lfp_map);
        ASSERT_EQ(verdicts.size(), 1u);
        EXPECT_TRUE(verdicts[0].conflicting_interfaces);
        return;
    }
    FAIL() << "no multi-interface router";
}

TEST(AsAnalysis, HomogeneityAndDominance) {
    std::vector<RouterVerdict> verdicts;
    auto add = [&verdicts](std::uint32_t asn, Vendor vendor) {
        RouterVerdict v;
        v.asn = asn;
        v.lfp_vendor = vendor;
        verdicts.push_back(v);
    };
    // AS 100: 9 Cisco + 1 Juniper (90% homogeneous).
    for (int i = 0; i < 9; ++i) add(100, Vendor::cisco);
    add(100, Vendor::juniper);
    // AS 200: 3 vendors evenly.
    add(200, Vendor::cisco);
    add(200, Vendor::juniper);
    add(200, Vendor::huawei);

    const auto coverage = per_as_coverage(verdicts);
    const auto homogeneous = find_homogeneous_ases(coverage, 5, 0.85);
    ASSERT_EQ(homogeneous.size(), 1u);
    EXPECT_EQ(homogeneous[0].asn, 100u);
    EXPECT_EQ(homogeneous[0].vendor, Vendor::cisco);
    EXPECT_NEAR(homogeneous[0].share, 0.9, 1e-9);

    const auto ecdf = homogeneity_ecdf(coverage, 1);
    EXPECT_EQ(ecdf.size(), 2u);
    EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
}

// ---------------------------------------------------------- alias resolution

TEST(AliasResolution, FindsSameRouterInterfaces) {
    // A topology where some profile has a shared incremental ICMP counter.
    sim::Topology topology = sim::Topology::build(
        {.seed = 73, .num_ases = 120, .tier1_count = 4, .transit_fraction = 0.25, .scale = 0.6});
    sim::Internet internet(topology, {.seed = 2, .loss_rate = 0.0});
    probe::SimTransport transport(internet);
    AliasResolver resolver(transport);

    // Find a responsive router whose ICMP IPIDs come from a shared
    // incremental counter and are not echoed.
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        const auto& router = topology.router(i);
        const auto& b = router.profile().ipid;
        if (!router.responds_icmp() || router.interfaces().size() < 2) continue;
        if (b.icmp != stack::IpidMode::incremental || b.icmp_echoes_request_ipid) continue;
        EXPECT_TRUE(resolver.aliases(router.interfaces()[0], router.interfaces()[1]))
            << "router " << i << " profile " << router.profile().family;

        // And interfaces of two distinct routers must not alias.
        for (std::size_t j = 0; j < topology.router_count(); ++j) {
            if (j == i) continue;
            const auto& other = topology.router(j);
            if (!other.responds_icmp()) continue;
            EXPECT_FALSE(resolver.aliases(router.interfaces()[0], other.interfaces()[0]));
            break;
        }
        return;
    }
    FAIL() << "no suitable router";
}

TEST(AliasResolution, EchoStacksDoNotFalselyAlias) {
    // Routers that echo the probe IPID would otherwise all look like one
    // giant alias set (the probe counter is monotonic).
    sim::Topology topology = sim::Topology::build(
        {.seed = 74, .num_ases = 150, .tier1_count = 4, .transit_fraction = 0.25, .scale = 0.6});
    sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.0});
    probe::SimTransport transport(internet);
    AliasResolver resolver(transport);

    std::vector<std::size_t> echo_routers;
    for (std::size_t i = 0; i < topology.router_count() && echo_routers.size() < 2; ++i) {
        const auto& router = topology.router(i);
        if (router.responds_icmp() && router.profile().ipid.icmp_echoes_request_ipid) {
            echo_routers.push_back(i);
        }
    }
    ASSERT_EQ(echo_routers.size(), 2u) << "need two echo-stack routers";
    EXPECT_FALSE(resolver.aliases(topology.router(echo_routers[0]).interfaces()[0],
                                  topology.router(echo_routers[1]).interfaces()[0]));
}

TEST(AliasResolution, ResolveGroupsTransitively) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 75, .num_ases = 120, .tier1_count = 4, .transit_fraction = 0.25, .scale = 0.6});
    sim::Internet internet(topology, {.seed = 4, .loss_rate = 0.0});
    probe::SimTransport transport(internet);
    AliasResolver resolver(transport);

    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        const auto& router = topology.router(i);
        const auto& b = router.profile().ipid;
        if (!router.responds_icmp() || router.interfaces().size() < 3) continue;
        if (b.icmp != stack::IpidMode::incremental || b.icmp_echoes_request_ipid) continue;
        const std::vector<net::IPv4Address> candidates{
            router.interfaces()[0], router.interfaces()[1], router.interfaces()[2]};
        const auto sets = resolver.resolve(candidates);
        ASSERT_EQ(sets.size(), 1u);
        EXPECT_EQ(sets[0].size(), 3u);
        return;
    }
    GTEST_SKIP() << "no 3-interface shared-counter router at this seed";
}

// ---------------------------------------------------------- precision/recall

TEST(PrecisionRecall, PerfectForCleanlySeparatedVendors) {
    // Synthetic measurement: two vendors with disjoint signatures.
    core::Measurement measurement;
    auto add_records = [&measurement](Vendor vendor, std::uint8_t ittl, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            core::TargetRecord record;
            record.snmp_vendor = vendor;
            core::FeatureVector features;
            features.protocol_mask = 0b111;
            features.ipid_icmp = core::IpidClass::random;
            features.ipid_tcp = core::IpidClass::random;
            features.ipid_udp = core::IpidClass::random;
            features.ittl_icmp = ittl;
            features.ittl_tcp = 64;
            features.ittl_udp = 255;
            features.size_icmp = 84;
            features.size_tcp = 40;
            features.size_udp = 56;
            features.icmp_ipid_echo = core::TriState::no;
            features.shared_all = core::TriState::no;
            features.shared_tcp_icmp = core::TriState::no;
            features.shared_udp_icmp = core::TriState::no;
            features.shared_tcp_udp = core::TriState::no;
            features.tcp_rst_seq_nonzero = core::TriState::no;
            record.features = features;
            record.signature = core::Signature::from_features(features);
            measurement.records.push_back(std::move(record));
        }
    };
    add_records(Vendor::cisco, 255, 400);
    add_records(Vendor::juniper, 64, 400);

    const auto rows = precision_recall({&measurement, 1}, {.train_fraction = 0.8,
                                                           .seed = 1,
                                                           .db = {.min_occurrences = 10}});
    ASSERT_EQ(rows.size(), 2u);
    for (const auto& row : rows) {
        EXPECT_GT(row.test_samples, 40u);
        EXPECT_DOUBLE_EQ(row.precision(), 1.0) << stack::to_string(row.vendor);
        EXPECT_DOUBLE_EQ(row.recall(), 1.0) << stack::to_string(row.vendor);
    }
}

TEST(PrecisionRecall, SharedSignatureFavoursDominantVendor) {
    core::Measurement measurement;
    core::FeatureVector features;
    features.protocol_mask = 0b111;
    features.ittl_icmp = 64;
    features.ittl_tcp = 64;
    features.ittl_udp = 64;
    const core::Signature shared = core::Signature::from_features(features);
    auto add = [&](Vendor vendor, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            core::TargetRecord record;
            record.snmp_vendor = vendor;
            record.features = features;
            record.signature = shared;
            measurement.records.push_back(record);
        }
    };
    add(Vendor::mikrotik, 900);
    add(Vendor::h3c, 100);

    const auto rows = precision_recall({&measurement, 1}, {.train_fraction = 0.8,
                                                           .seed = 2,
                                                           .db = {.min_occurrences = 10}});
    ASSERT_EQ(rows.size(), 2u);
    const auto& mikrotik = rows[0].vendor == Vendor::mikrotik ? rows[0] : rows[1];
    const auto& h3c = rows[0].vendor == Vendor::h3c ? rows[0] : rows[1];
    // Majority-mode classification assigns everything to MikroTik.
    EXPECT_GT(mikrotik.recall(), 0.99);
    EXPECT_LT(mikrotik.precision(), 0.95);  // polluted by H3C samples
    EXPECT_DOUBLE_EQ(h3c.recall(), 0.0);
}

// --------------------------------------------------------- informed routing

TEST(InformedRouting, DetectsAvoidableAndUnavoidableTransits) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 76, .num_ases = 200, .tier1_count = 6, .transit_fraction = 0.25, .scale = 0.3});

    // Pick a transit AS with customers to play the homogeneous-vendor role.
    std::uint32_t transit_asn = 0;
    for (const auto& node : topology.graph().nodes()) {
        if (node.tier == sim::AsTier::transit && node.customers.size() >= 3) {
            transit_asn = node.asn;
            break;
        }
    }
    ASSERT_NE(transit_asn, 0u);

    HomogeneousAs transit;
    transit.asn = transit_asn;
    transit.vendor = Vendor::huawei;
    transit.routers = 100;
    transit.share = 0.9;

    InformedRoutingAnalysis analysis(topology, {.sources_per_destination = 48, .seed = 5});
    const auto study = analysis.evaluate(transit);
    EXPECT_EQ(study.transit_asn, transit_asn);
    EXPECT_EQ(study.vendor, Vendor::huawei);
    EXPECT_GT(study.destinations, 0u);
    EXPECT_EQ(study.destinations, study.with_alternative + study.without_alternative);
    EXPECT_GT(study.paths_through, 0u);
}

}  // namespace
}  // namespace lfp::analysis
