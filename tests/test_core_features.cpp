// Unit tests for the LFP core: IPID classification (threshold semantics,
// wraparound), shared-counter detection, iTTL inference, feature extraction,
// signature canonicalisation, database thresholding, and the classifier.
#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/feature.hpp"
#include "core/ipid_classifier.hpp"
#include "core/pipeline.hpp"
#include "core/signature.hpp"
#include "core/signature_db.hpp"
#include "net/packet_builder.hpp"
#include "util/rng.hpp"

namespace lfp::core {
namespace {

using probe::ProtoIndex;

// ------------------------------------------------------------- IPID classes

struct IpidCase {
    std::vector<std::uint16_t> ids;
    IpidClass expected;
    const char* why;
};

class IpidClassification : public ::testing::TestWithParam<IpidCase> {};

TEST_P(IpidClassification, Classifies) {
    const auto& param = GetParam();
    EXPECT_EQ(classify_ipid_sequence(param.ids), param.expected) << param.why;
}

INSTANTIATE_TEST_SUITE_P(
    Sequences, IpidClassification,
    ::testing::Values(
        IpidCase{{100, 101, 102}, IpidClass::incremental, "unit steps"},
        IpidCase{{100, 600, 1100}, IpidClass::incremental, "busy router, steps 500"},
        IpidCase{{100, 1400, 2700}, IpidClass::incremental, "steps exactly at threshold"},
        IpidCase{{100, 1500, 2800}, IpidClass::random, "step above threshold 1300"},
        IpidCase{{65530, 2, 8}, IpidClass::incremental, "wraparound is incremental"},
        IpidCase{{40000, 20000, 30000}, IpidClass::random, "backwards jump"},
        IpidCase{{0, 0, 0}, IpidClass::zero, "all zero"},
        IpidCase{{4660, 4660, 4660}, IpidClass::static_value, "constant non-zero"},
        IpidCase{{55, 55, 900}, IpidClass::duplicate, "two equal then advance"},
        IpidCase{{900, 55, 55}, IpidClass::duplicate, "advance then two equal"},
        IpidCase{{55, 900, 55}, IpidClass::duplicate, "equal non-adjacent"},
        IpidCase{{7}, IpidClass::unknown, "single sample"},
        IpidCase{{}, IpidClass::unknown, "no samples"}));

TEST(IpidClassifier, ThresholdIsConfigurable) {
    const std::vector<std::uint16_t> ids{0, 2000, 4000};
    EXPECT_EQ(classify_ipid_sequence(ids, {.threshold = 1300}), IpidClass::random);
    EXPECT_EQ(classify_ipid_sequence(ids, {.threshold = 2000}), IpidClass::incremental);
}

TEST(IpidClassifier, MaxStepWraparound) {
    EXPECT_EQ(max_ipid_step(std::vector<std::uint16_t>{65530, 4}).value(), 10);
    EXPECT_EQ(max_ipid_step(std::vector<std::uint16_t>{1, 3, 2}).value(), 65535);
    EXPECT_FALSE(max_ipid_step(std::vector<std::uint16_t>{1}).has_value());
}

TEST(IpidClassifier, RandomSequencesRarelyMisclassified) {
    // Paper §3.6: P(random misread as sequential) ~ (1301/65536)^steps.
    util::Rng rng(123);
    int misclassified = 0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
        std::vector<std::uint16_t> ids{static_cast<std::uint16_t>(rng.next()),
                                       static_cast<std::uint16_t>(rng.next()),
                                       static_cast<std::uint16_t>(rng.next())};
        if (classify_ipid_sequence(ids) == IpidClass::incremental) ++misclassified;
    }
    // Expected rate ≈ 0.0198^2 ≈ 4e-4 → ~8 in 20k; allow generous slack.
    EXPECT_LT(misclassified, 40);
}

TEST(IpidClassifier, SharedCounterDetection) {
    // One counter serving interleaved protocols → monotonic small steps.
    EXPECT_TRUE(is_shared_counter({{0, 100}, {1, 103}, {2, 110}, {3, 111}}));
    // Wraparound inside the merged sequence still shared.
    EXPECT_TRUE(is_shared_counter({{0, 65530}, {1, 65534}, {2, 3}, {3, 9}}));
    // Two independent counters interleaved → big jumps.
    EXPECT_FALSE(is_shared_counter({{0, 100}, {1, 40000}, {2, 105}, {3, 40010}}));
    // Equal values (echoed/static) are not a shared counter.
    EXPECT_FALSE(is_shared_counter({{0, 5}, {1, 5}, {2, 5}}));
    // Order comes from send_index, not insertion order.
    EXPECT_TRUE(is_shared_counter({{3, 111}, {0, 100}, {2, 110}, {1, 103}}));
    EXPECT_FALSE(is_shared_counter({{0, 1}}));
}

// ---------------------------------------------------------------- iTTL

TEST(Ittl, RoundsUpToCanonicalValues) {
    EXPECT_EQ(infer_initial_ttl(0), 0);
    EXPECT_EQ(infer_initial_ttl(1), 32);
    EXPECT_EQ(infer_initial_ttl(32), 32);
    EXPECT_EQ(infer_initial_ttl(33), 64);
    EXPECT_EQ(infer_initial_ttl(57), 64);
    EXPECT_EQ(infer_initial_ttl(64), 64);
    EXPECT_EQ(infer_initial_ttl(65), 128);
    EXPECT_EQ(infer_initial_ttl(128), 128);
    EXPECT_EQ(infer_initial_ttl(129), 255);
    EXPECT_EQ(infer_initial_ttl(240), 255);
    EXPECT_EQ(infer_initial_ttl(255), 255);
}

// ------------------------------------------------------ feature extraction

const net::IPv4Address kVantage = net::IPv4Address::from_octets(192, 0, 2, 9);
const net::IPv4Address kTarget = net::IPv4Address::from_octets(5, 1, 1, 1);

/// Builds a synthetic probe result with hand-chosen response parameters.
struct FakeResponder {
    std::uint8_t ittl_icmp = 255;
    std::uint8_t ittl_tcp = 64;
    std::uint8_t ittl_udp = 255;
    bool echo_ipid = false;
    std::vector<std::uint16_t> icmp_ipids{100, 101, 102};
    std::vector<std::uint16_t> tcp_ipids{200, 202, 204};
    std::vector<std::uint16_t> udp_ipids{300, 303, 306};
    bool respond_icmp = true;
    bool respond_tcp = true;
    bool respond_udp = true;
    std::uint32_t rst_seq = 0;
    std::size_t quote = 28;

    probe::TargetProbeResult build() const {
        probe::TargetProbeResult result;
        result.target = kTarget;
        std::uint32_t send_index = 0;
        for (std::size_t round = 0; round < 3; ++round) {
            for (std::size_t p = 0; p < 3; ++p) {
                auto& exchange = result.probes[p][round];
                exchange.send_index = send_index++;
                exchange.request_ipid = static_cast<std::uint16_t>(0x3000 + exchange.send_index);

                net::IpSendOptions probe_ip;
                probe_ip.source = kVantage;
                probe_ip.destination = kTarget;
                probe_ip.identification = exchange.request_ipid;

                net::IpSendOptions reply_ip;
                reply_ip.source = kTarget;
                reply_ip.destination = kVantage;

                if (p == 0) {
                    exchange.request =
                        net::make_icmp_echo_request(probe_ip, 7, static_cast<std::uint16_t>(round),
                                                    net::Bytes(56, 0xA5));
                    if (!respond_icmp) continue;
                    reply_ip.ttl = ittl_icmp;
                    reply_ip.identification =
                        echo_ipid ? exchange.request_ipid : icmp_ipids[round];
                    net::IcmpEcho echo;
                    echo.identifier = 7;
                    echo.sequence = static_cast<std::uint16_t>(round);
                    echo.payload.assign(56, 0xA5);
                    exchange.response = net::make_icmp_echo_reply(reply_ip, echo);
                } else if (p == 1) {
                    net::TcpSegment probe_segment;
                    probe_segment.source_port = 43211;
                    probe_segment.destination_port = 33533;
                    probe_segment.acknowledgment = 0xBEEF0001;
                    if (round < 2) {
                        probe_segment.flags.ack = true;
                    } else {
                        probe_segment.flags.syn = true;
                    }
                    exchange.request = net::make_tcp_packet(probe_ip, probe_segment);
                    if (!respond_tcp) continue;
                    reply_ip.ttl = ittl_tcp;
                    reply_ip.identification = tcp_ipids[round];
                    net::TcpSegment rst;
                    rst.source_port = 33533;
                    rst.destination_port = 43211;
                    rst.flags.rst = true;
                    rst.sequence = round == 2 ? rst_seq : 0xBEEF0001;
                    exchange.response = net::make_tcp_packet(reply_ip, rst);
                } else {
                    net::UdpDatagram probe_udp;
                    probe_udp.source_port = 43211;
                    probe_udp.destination_port = 33533;
                    probe_udp.payload.assign(12, 0);
                    exchange.request = net::make_udp_packet(probe_ip, probe_udp);
                    if (!respond_udp) continue;
                    reply_ip.ttl = ittl_udp;
                    reply_ip.identification = udp_ipids[round];
                    exchange.response =
                        net::make_icmp_error(reply_ip, net::IcmpType::destination_unreachable,
                                             net::kIcmpCodePortUnreachable, exchange.request,
                                             quote);
                }
            }
        }
        return result;
    }
};

TEST(FeatureExtraction, FullVectorMatchesResponderConfig) {
    FakeResponder responder;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_TRUE(features.complete());
    EXPECT_EQ(features.icmp_ipid_echo, TriState::no);
    EXPECT_EQ(features.ipid_icmp, IpidClass::incremental);
    EXPECT_EQ(features.ipid_tcp, IpidClass::incremental);
    EXPECT_EQ(features.ipid_udp, IpidClass::incremental);
    EXPECT_EQ(features.ittl_icmp, 255);
    EXPECT_EQ(features.ittl_tcp, 64);
    EXPECT_EQ(features.ittl_udp, 255);
    EXPECT_EQ(features.size_icmp, 84);
    EXPECT_EQ(features.size_tcp, 40);
    EXPECT_EQ(features.size_udp, 56);
    EXPECT_EQ(features.tcp_rst_seq_nonzero, TriState::no);
    // Separate counters per protocol: interleaved merge is not monotonic.
    EXPECT_EQ(features.shared_all, TriState::no);
}

TEST(FeatureExtraction, DetectsIpidEcho) {
    FakeResponder responder;
    responder.echo_ipid = true;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.icmp_ipid_echo, TriState::yes);
}

TEST(FeatureExtraction, DetectsSharedCounter) {
    FakeResponder responder;
    // One counter drives all protocols in send order:
    // indices icmp:0,3,6 tcp:1,4,7 udp:2,5,8 → values must interleave.
    responder.icmp_ipids = {1000, 1030, 1060};
    responder.tcp_ipids = {1010, 1040, 1070};
    responder.udp_ipids = {1020, 1050, 1080};
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.shared_all, TriState::yes);
    EXPECT_EQ(features.shared_tcp_icmp, TriState::yes);
    EXPECT_EQ(features.shared_udp_icmp, TriState::yes);
    EXPECT_EQ(features.shared_tcp_udp, TriState::yes);
}

TEST(FeatureExtraction, DetectsTcpUdpOnlySharing) {
    FakeResponder responder;
    responder.icmp_ipids = {40000, 40001, 40002};  // separate counter far away
    responder.tcp_ipids = {1010, 1040, 1070};
    responder.udp_ipids = {1020, 1050, 1080};
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.shared_all, TriState::no);
    EXPECT_EQ(features.shared_tcp_udp, TriState::yes);
    EXPECT_EQ(features.shared_tcp_icmp, TriState::no);
}

TEST(FeatureExtraction, SharedFlagsFalseForRandomCounters) {
    FakeResponder responder;
    responder.icmp_ipids = {5, 40000, 20000};
    responder.tcp_ipids = {60000, 100, 30000};
    responder.udp_ipids = {7, 50000, 12};
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.ipid_icmp, IpidClass::random);
    EXPECT_EQ(features.shared_all, TriState::no);
    EXPECT_EQ(features.shared_tcp_udp, TriState::no);
}

TEST(FeatureExtraction, PartialMaskWhenProtocolSilent) {
    FakeResponder responder;
    responder.respond_tcp = false;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_FALSE(features.complete());
    EXPECT_TRUE(features.has(ProtoIndex::icmp));
    EXPECT_FALSE(features.has(ProtoIndex::tcp));
    EXPECT_TRUE(features.has(ProtoIndex::udp));
    EXPECT_EQ(features.ipid_tcp, IpidClass::unknown);
    EXPECT_EQ(features.ittl_tcp, 0);
    EXPECT_EQ(features.tcp_rst_seq_nonzero, TriState::unknown);
    EXPECT_EQ(features.shared_tcp_udp, TriState::unknown);
    // ICMP+UDP sharing is still evaluable.
    EXPECT_NE(features.shared_udp_icmp, TriState::unknown);
}

TEST(FeatureExtraction, RstSeqNonZero) {
    FakeResponder responder;
    responder.rst_seq = 0xBEEF0001;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.tcp_rst_seq_nonzero, TriState::yes);
}

TEST(FeatureExtraction, FullQuoteChangesUdpSize) {
    FakeResponder responder;
    responder.quote = 65535;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_EQ(features.size_udp, 68);
}

TEST(FeatureExtraction, EmptyWhenAllSilent) {
    FakeResponder responder;
    responder.respond_icmp = responder.respond_tcp = responder.respond_udp = false;
    const FeatureVector features = extract_features(responder.build());
    EXPECT_TRUE(features.empty());
}

// -------------------------------------------------------------- signatures

TEST(Signature, CanonicalFormMatchesTable6Layout) {
    FakeResponder responder;
    // Mimic the paper's Cisco row: echo=False, r r r, no sharing,
    // iTTL (udp,icmp,tcp) = 255,255,64, sizes 84/40/56, RST seq 0.
    responder.icmp_ipids = {5, 40000, 20000};
    responder.tcp_ipids = {60000, 100, 30000};
    responder.udp_ipids = {7, 50000, 12};
    responder.ittl_icmp = 255;
    responder.ittl_tcp = 64;
    responder.ittl_udp = 255;
    const Signature signature = Signature::from_features(extract_features(responder.build()));
    EXPECT_EQ(signature.key(),
              "False r r r False False False False 255 255 64 84 40 56 0");
    EXPECT_TRUE(signature.is_full());
    EXPECT_EQ(signature.protocols(), "ICMP & TCP & UDP");
}

TEST(Signature, PartialFormUsesPlaceholders) {
    FakeResponder responder;
    responder.respond_tcp = false;
    const Signature signature = Signature::from_features(extract_features(responder.build()));
    EXPECT_TRUE(signature.is_partial());
    EXPECT_EQ(signature.protocol_mask(), 0b101);
    EXPECT_EQ(signature.protocols(), "ICMP & UDP");
    // TCP fields are placeholders.
    EXPECT_NE(signature.key().find(" - "), std::string::npos);
}

TEST(Signature, EmptyMask) {
    FeatureVector empty;
    const Signature signature = Signature::from_features(empty);
    EXPECT_TRUE(signature.is_empty());
}

// ---------------------------------------------------------------- database

/// Distinct salts produce genuinely distinct signatures (the salt drives
/// observable features, not just raw IPID values).
Signature make_signature(std::uint16_t salt) {
    FakeResponder responder;
    responder.ittl_icmp = (salt % 2 == 0) ? 255 : 64;
    responder.ittl_udp = (salt % 3 == 0) ? 255 : 64;
    responder.quote = (salt % 5 == 0) ? 28 : 65535;
    responder.rst_seq = (salt % 7 == 0) ? 0 : 0xBEEF0001;
    return Signature::from_features(extract_features(responder.build()));
}

TEST(SignatureDatabase, ThresholdAdmission) {
    SignatureDatabase db({.min_occurrences = 20});
    const Signature sig = make_signature(100);
    for (int i = 0; i < 19; ++i) db.add_labeled(sig, stack::Vendor::cisco);
    db.finalize();
    EXPECT_EQ(db.lookup(sig), nullptr);  // below threshold

    SignatureDatabase db2({.min_occurrences = 20});
    for (int i = 0; i < 20; ++i) db2.add_labeled(sig, stack::Vendor::cisco);
    db2.finalize();
    const SignatureStats* stats = db2.lookup(sig);
    ASSERT_NE(stats, nullptr);
    EXPECT_TRUE(stats->unique());
    EXPECT_EQ(stats->dominant_vendor(), stack::Vendor::cisco);
}

TEST(SignatureDatabase, NonUniqueWhenVendorsCollide) {
    SignatureDatabase db({.min_occurrences = 5});
    const Signature sig = make_signature(300);
    for (int i = 0; i < 30; ++i) db.add_labeled(sig, stack::Vendor::mikrotik);
    for (int i = 0; i < 10; ++i) db.add_labeled(sig, stack::Vendor::h3c);
    db.finalize();
    const SignatureStats* stats = db.lookup(sig);
    ASSERT_NE(stats, nullptr);
    EXPECT_FALSE(stats->unique());
    EXPECT_EQ(stats->dominant_vendor(), stack::Vendor::mikrotik);
    EXPECT_NEAR(stats->dominant_share(), 0.75, 1e-9);

    const auto counts = db.full_signature_counts();
    EXPECT_EQ(counts.unique, 0u);
    EXPECT_EQ(counts.non_unique, 1u);
}

TEST(SignatureDatabase, ThresholdSweepIsMonotonic) {
    SignatureDatabase db({.min_occurrences = 1});
    util::Rng rng(5);
    for (std::uint16_t s = 0; s < 50; ++s) {
        const Signature sig = make_signature(static_cast<std::uint16_t>(s * 1000));
        const std::size_t occurrences = 1 + rng.below(40);
        for (std::size_t i = 0; i < occurrences; ++i) {
            db.add_labeled(sig, stack::Vendor::cisco);
        }
    }
    db.finalize();
    std::size_t previous = std::numeric_limits<std::size_t>::max();
    for (std::size_t threshold : {1u, 5u, 10u, 20u, 50u}) {
        const auto counts = db.counts_at_threshold(threshold);
        EXPECT_LE(counts.unique + counts.non_unique, previous);
        previous = counts.unique + counts.non_unique;
    }
}

TEST(SignatureDatabase, IgnoresUnknownVendorAndEmptySignatures) {
    SignatureDatabase db({.min_occurrences = 1});
    db.add_labeled(Signature{}, stack::Vendor::cisco);
    db.add_labeled(make_signature(1), stack::Vendor::unknown);
    db.finalize();
    EXPECT_TRUE(db.signatures().empty());
}

// --------------------------------------------------------------- classifier

TEST(Classifier, MatchKinds) {
    SignatureDatabase db({.min_occurrences = 1});
    const Signature unique_sig = make_signature(100);
    const Signature shared_sig = make_signature(301);
    ASSERT_NE(unique_sig, shared_sig);
    FakeResponder partial_responder;
    partial_responder.respond_tcp = false;
    const Signature partial_sig =
        Signature::from_features(extract_features(partial_responder.build()));

    db.add_labeled(unique_sig, stack::Vendor::juniper);
    db.add_labeled(shared_sig, stack::Vendor::mikrotik);
    db.add_labeled(shared_sig, stack::Vendor::h3c);
    db.add_labeled(shared_sig, stack::Vendor::mikrotik);
    db.add_labeled(partial_sig, stack::Vendor::huawei);
    db.finalize();

    const LfpClassifier classifier(db);
    auto unique_result = classifier.classify(unique_sig);
    EXPECT_EQ(unique_result.kind, MatchKind::unique_full);
    EXPECT_EQ(unique_result.vendor, stack::Vendor::juniper);
    EXPECT_DOUBLE_EQ(unique_result.confidence, 1.0);

    auto partial_result = classifier.classify(partial_sig);
    EXPECT_EQ(partial_result.kind, MatchKind::unique_partial);
    EXPECT_EQ(partial_result.vendor, stack::Vendor::huawei);

    auto shared_result = classifier.classify(shared_sig);
    EXPECT_EQ(shared_result.kind, MatchKind::non_unique);
    EXPECT_FALSE(shared_result.vendor.has_value());  // conservative default

    auto missing = classifier.classify(make_signature(60000));
    EXPECT_EQ(missing.kind, MatchKind::none);
    EXPECT_FALSE(missing.identified());

    // Majority mode resolves non-unique signatures to the dominant vendor.
    const LfpClassifier majority(db, {.use_partial = true, .majority_mode = true});
    auto majority_result = majority.classify(shared_sig);
    EXPECT_EQ(majority_result.vendor, stack::Vendor::mikrotik);
    EXPECT_NEAR(majority_result.confidence, 2.0 / 3.0, 1e-9);

    // Partial matching can be disabled.
    const LfpClassifier no_partial(db, {.use_partial = false, .majority_mode = false});
    EXPECT_EQ(no_partial.classify(partial_sig).kind, MatchKind::none);
}

TEST(Classifier, EmptySignatureNeverMatches) {
    SignatureDatabase db({.min_occurrences = 1});
    db.finalize();
    const LfpClassifier classifier(db);
    EXPECT_EQ(classifier.classify(Signature{}).kind, MatchKind::none);
}

}  // namespace
}  // namespace lfp::core
