// Tests for the simulated Internet: valley-free AS routing, topology
// construction, the packet switch, traceroute synthesis, and datasets.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "sim/as_graph.hpp"
#include "sim/datasets.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"
#include "sim/traceroute.hpp"

namespace lfp::sim {
namespace {

// ------------------------------------------------------------------ AsGraph

/// Checks the valley-free property: a path is up* peer? down* in terms of
/// relationship edges.
bool is_valley_free(const AsGraph& graph, const AsPath& path) {
    enum Phase { up, peered, down };
    Phase phase = up;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const AsNode& from = graph.node(path[i]);
        const bool is_up = std::find(from.providers.begin(), from.providers.end(),
                                     path[i + 1]) != from.providers.end();
        const bool is_peer =
            std::find(from.peers.begin(), from.peers.end(), path[i + 1]) != from.peers.end();
        const bool is_down = std::find(from.customers.begin(), from.customers.end(),
                                       path[i + 1]) != from.customers.end();
        if (!is_up && !is_peer && !is_down) return false;  // not even an edge
        if (is_up && phase != up) return false;
        if (is_peer) {
            if (phase != up) return false;
            phase = peered;
        }
        if (is_down) phase = down;
    }
    return true;
}

AsGraph diamond_graph(std::uint32_t& top, std::uint32_t& left, std::uint32_t& right,
                      std::uint32_t& bottom) {
    AsGraph graph;
    top = graph.add_as(AsTier::tier1);
    left = graph.add_as(AsTier::transit);
    right = graph.add_as(AsTier::transit);
    bottom = graph.add_as(AsTier::stub);
    graph.add_provider_customer(top, left);
    graph.add_provider_customer(top, right);
    graph.add_provider_customer(left, bottom);
    graph.add_provider_customer(right, bottom);
    return graph;
}

TEST(AsGraph, CustomerRoutePreferredOverProvider) {
    std::uint32_t top, left, right, bottom;
    AsGraph graph = diamond_graph(top, left, right, bottom);
    const auto table = graph.routes_to(bottom);
    auto path = table.path_from(top);
    ASSERT_TRUE(path.has_value());
    // Top reaches bottom through a customer chain, 3 ASes total.
    EXPECT_EQ(path->size(), 3u);
    EXPECT_EQ(path->front(), top);
    EXPECT_EQ(path->back(), bottom);
    EXPECT_TRUE(is_valley_free(graph, *path));
}

TEST(AsGraph, PeerRouteUsedWhenNoCustomerRoute) {
    AsGraph graph;
    const auto a = graph.add_as(AsTier::transit);
    const auto b = graph.add_as(AsTier::transit);
    const auto stub = graph.add_as(AsTier::stub);
    graph.add_peering(a, b);
    graph.add_provider_customer(b, stub);
    const auto table = graph.routes_to(stub);
    auto path = table.path_from(a);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (AsPath{a, b, stub}));
    EXPECT_TRUE(is_valley_free(graph, *path));
}

TEST(AsGraph, NoValleyThroughCustomer) {
    // d -- customer of a; x -- customer of a. x cannot transit through d's
    // sibling via a "down-up" valley unless a provides it: path x->a->d is
    // valid (up then down); but siblings of x cannot route through x.
    AsGraph graph;
    const auto a = graph.add_as(AsTier::transit);
    const auto x = graph.add_as(AsTier::stub);
    const auto d = graph.add_as(AsTier::stub);
    graph.add_provider_customer(a, x);
    graph.add_provider_customer(a, d);
    const auto table = graph.routes_to(d);
    auto path = table.path_from(x);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (AsPath{x, a, d}));
    EXPECT_TRUE(is_valley_free(graph, *path));
}

TEST(AsGraph, PeerRoutesDoNotTransit) {
    // a peers with b; b peers with c. a must NOT reach c via two peer hops.
    AsGraph graph;
    const auto a = graph.add_as(AsTier::transit);
    const auto b = graph.add_as(AsTier::transit);
    const auto c = graph.add_as(AsTier::transit);
    graph.add_peering(a, b);
    graph.add_peering(b, c);
    const auto table = graph.routes_to(c);
    EXPECT_FALSE(table.path_from(a).has_value());
    EXPECT_TRUE(table.path_from(b).has_value());
}

TEST(AsGraph, ExclusionFindsAlternativeOrNothing) {
    std::uint32_t top, left, right, bottom;
    AsGraph graph = diamond_graph(top, left, right, bottom);
    const auto table = graph.routes_to(bottom);
    auto default_path = table.path_from(top);
    ASSERT_TRUE(default_path.has_value());
    const std::uint32_t used_transit = (*default_path)[1];
    const std::uint32_t other_transit = used_transit == left ? right : left;

    // Avoiding the used transit must route via the other one.
    auto alternative = table.path_avoiding(top, {used_transit});
    ASSERT_TRUE(alternative.has_value());
    EXPECT_EQ((*alternative)[1], other_transit);

    // Avoiding both transits leaves no route.
    auto none = table.path_avoiding(top, {left, right});
    EXPECT_FALSE(none.has_value());
}

TEST(AsGraph, UnknownAsnThrows) {
    AsGraph graph;
    EXPECT_THROW((void)graph.node(12345), std::out_of_range);
}

// ---------------------------------------------------------------- Topology

class TopologyFixture : public ::testing::Test {
  protected:
    static const Topology& topo() {
        static const Topology instance = Topology::build(
            {.seed = 11, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.2,
             .scale = 0.3});
        return instance;
    }
};

TEST_F(TopologyFixture, BuildsRequestedAsCount) {
    EXPECT_EQ(topo().graph().size(), 300u);
    EXPECT_GT(topo().router_count(), 300u);  // at least one per AS
}

TEST_F(TopologyFixture, InterfaceIndexIsConsistent) {
    for (std::size_t i = 0; i < std::min<std::size_t>(topo().router_count(), 200); ++i) {
        for (net::IPv4Address address : topo().router(i).interfaces()) {
            EXPECT_EQ(topo().find_by_interface(address), i);
            EXPECT_TRUE(address.is_routable());
        }
    }
    EXPECT_EQ(topo().find_by_interface(net::IPv4Address::from_octets(203, 0, 113, 1)),
              Topology::npos);
}

TEST_F(TopologyFixture, EveryAsHasGeoAndRouters) {
    std::size_t total = 0;
    for (const AsNode& node : topo().graph().nodes()) {
        EXPECT_NE(topo().geo().lookup(node.asn), nullptr);
        total += topo().routers_in_as(node.asn).size();
    }
    EXPECT_EQ(total, topo().router_count());
}

TEST_F(TopologyFixture, PhantomAddressesAreUnassigned) {
    for (std::size_t i = 0; i < std::min<std::size_t>(topo().phantom_addresses().size(), 100);
         ++i) {
        EXPECT_EQ(topo().find_by_interface(topo().phantom_addresses()[i]), Topology::npos);
    }
    EXPECT_FALSE(topo().phantom_addresses().empty());
}

TEST_F(TopologyFixture, DeterministicAcrossBuilds) {
    const Topology second = Topology::build(
        {.seed = 11, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.2, .scale = 0.3});
    ASSERT_EQ(second.router_count(), topo().router_count());
    for (std::size_t i = 0; i < second.router_count(); i += 37) {
        EXPECT_EQ(second.router(i).interfaces(), topo().router(i).interfaces());
        EXPECT_EQ(second.router(i).vendor(), topo().router(i).vendor());
    }
}

TEST_F(TopologyFixture, ScaleGrowsRouterCounts) {
    const Topology bigger = Topology::build(
        {.seed = 11, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.2, .scale = 0.9});
    EXPECT_GT(bigger.router_count(), topo().router_count() * 2);
}

TEST_F(TopologyFixture, VendorMixFollowsRegionalMarkets) {
    // Count routers by vendor; Cisco should dominate globally, and every
    // vendor should exist somewhere at this size.
    std::map<stack::Vendor, std::size_t> counts;
    for (std::size_t i = 0; i < topo().router_count(); ++i) {
        ++counts[topo().router(i).vendor()];
    }
    EXPECT_GT(counts[stack::Vendor::cisco], topo().router_count() / 5);
    EXPECT_GT(counts.size(), 8u);
}

// ---------------------------------------------------------------- Internet

TEST_F(TopologyFixture, TransactDeliversAndDecrementsTtl) {
    Topology topology = Topology::build(
        {.seed = 21, .num_ases = 50, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.3});
    Internet internet(topology, {.seed = 1, .loss_rate = 0.0});

    // Find a router that responds to ICMP.
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        auto& router = topology.router(i);
        if (!router.responds_icmp()) continue;
        net::IpSendOptions ip;
        ip.source = net::IPv4Address::from_octets(192, 0, 2, 7);
        ip.destination = router.interfaces()[0];
        ip.ttl = 64;
        auto response =
            internet.transact(net::make_icmp_echo_request(ip, 1, 0, net::Bytes(56, 0xA5)));
        ASSERT_TRUE(response.has_value());
        auto parsed = net::parse_packet(*response);
        ASSERT_TRUE(parsed.has_value());
        const int distance = topology.distance_of(i);
        EXPECT_EQ(parsed.value().ip.ttl,
                  router.profile().ittl_icmp - static_cast<std::uint8_t>(distance));
        return;  // one router suffices
    }
    FAIL() << "no ICMP-responsive router found";
}

TEST(Internet, UnknownDestinationIsSilent) {
    Topology topology = Topology::build(
        {.seed = 22, .num_ases = 20, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.3});
    Internet internet(topology, {.seed = 1, .loss_rate = 0.0});
    net::IpSendOptions ip;
    ip.source = net::IPv4Address::from_octets(192, 0, 2, 7);
    ip.destination = net::IPv4Address::from_octets(203, 0, 113, 200);
    EXPECT_FALSE(
        internet.transact(net::make_icmp_echo_request(ip, 1, 0, net::Bytes(8, 0))).has_value());
    EXPECT_EQ(internet.responses_returned(), 0u);
    EXPECT_EQ(internet.packets_sent(), 1u);
}

TEST(Internet, ExpiredTtlDropped) {
    Topology topology = Topology::build(
        {.seed = 23, .num_ases = 20, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.3});
    Internet internet(topology, {.seed = 1, .loss_rate = 0.0});
    net::IpSendOptions ip;
    ip.source = net::IPv4Address::from_octets(192, 0, 2, 7);
    ip.destination = topology.router(0).interfaces()[0];
    ip.ttl = 2;  // below any vantage distance
    EXPECT_FALSE(
        internet.transact(net::make_icmp_echo_request(ip, 1, 0, net::Bytes(8, 0))).has_value());
}

// -------------------------------------------------------------- Traceroute

TEST(Traceroute, FollowsValleyFreePathThroughTopology) {
    Topology topology = Topology::build(
        {.seed = 31, .num_ases = 200, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.4});
    TracerouteSynthesizer synthesizer(topology, 5);
    synthesizer.set_noise(0.0, 0.0);

    std::size_t produced = 0;
    const auto& nodes = topology.graph().nodes();
    for (std::size_t i = 0; i < 50; ++i) {
        const std::uint32_t src = nodes[i % nodes.size()].asn;
        const std::uint32_t dst = nodes[(i * 7 + 3) % nodes.size()].asn;
        if (src == dst) continue;
        auto trace = synthesizer.trace(src, dst);
        if (!trace) continue;
        ++produced;
        EXPECT_EQ(trace->source_asn, src);
        EXPECT_EQ(trace->destination_asn, dst);
        // Every hop maps to a router in an AS on the path (noise disabled).
        for (net::IPv4Address hop : trace->hops) {
            const std::size_t index = topology.find_by_interface(hop);
            ASSERT_NE(index, Topology::npos);
        }
    }
    EXPECT_GT(produced, 20u);
}

TEST(Traceroute, NoiseInjectsUnmappableHops) {
    Topology topology = Topology::build(
        {.seed = 32, .num_ases = 100, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.4});
    TracerouteSynthesizer synthesizer(topology, 6);
    synthesizer.set_noise(0.5, 0.2);
    std::size_t unmapped = 0;
    std::size_t total = 0;
    const auto& nodes = topology.graph().nodes();
    for (std::size_t i = 0; i < 40; ++i) {
        auto trace = synthesizer.trace(nodes[i % nodes.size()].asn,
                                       nodes[(i + 13) % nodes.size()].asn);
        if (!trace) continue;
        for (net::IPv4Address hop : trace->hops) {
            ++total;
            if (!hop.is_routable() || topology.find_by_interface(hop) == Topology::npos) {
                ++unmapped;
            }
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(unmapped) / static_cast<double>(total), 0.3);
}

// ---------------------------------------------------------------- Datasets

class DatasetFixture : public ::testing::Test {
  protected:
    static const Topology& topo() {
        static const Topology instance = Topology::build(
            {.seed = 41, .num_ases = 250, .tier1_count = 6, .transit_fraction = 0.2,
             .scale = 0.4});
        return instance;
    }
    static const std::vector<TracerouteDataset>& snapshots() {
        static const std::vector<TracerouteDataset> instance = [] {
            DatasetConfig config;
            config.seed = 1;
            config.traces_per_snapshot = 3000;
            config.destination_pool = 60;
            DatasetBuilder builder(topo(), config);
            return builder.ripe_snapshots();
        }();
        return instance;
    }
};

TEST_F(DatasetFixture, FiveSnapshotsWithDates) {
    ASSERT_EQ(snapshots().size(), 5u);
    EXPECT_EQ(snapshots()[0].name, "RIPE-1");
    EXPECT_EQ(snapshots()[4].name, "RIPE-5");
    EXPECT_EQ(snapshots()[0].date, "2022-01-24");
    for (const auto& snapshot : snapshots()) {
        EXPECT_GT(snapshot.traces.size(), 2000u);
        EXPECT_GT(snapshot.router_ips().size(), 500u);
    }
}

TEST_F(DatasetFixture, ConsecutiveSnapshotsOverlapLikeRipe) {
    // Paper: ~88% pairwise router-IP overlap between consecutive snapshots.
    for (std::size_t i = 1; i < snapshots().size(); ++i) {
        const auto previous = snapshots()[i - 1].router_ips();
        const auto current = snapshots()[i].router_ips();
        const std::unordered_set<net::IPv4Address> previous_set(previous.begin(),
                                                                previous.end());
        std::size_t common = 0;
        for (net::IPv4Address ip : current) {
            if (previous_set.contains(ip)) ++common;
        }
        const double overlap = static_cast<double>(common) / static_cast<double>(current.size());
        EXPECT_GT(overlap, 0.70) << "snapshot " << i;
        EXPECT_LT(overlap, 0.99) << "snapshot " << i;
    }
}

TEST_F(DatasetFixture, ItdkAliasSetsAreNonSingletonAndResponsive) {
    DatasetConfig config;
    config.seed = 1;
    DatasetBuilder builder(topo(), config);
    const ItdkDataset itdk = builder.itdk();
    ASSERT_GT(itdk.alias_sets.size(), 50u);
    for (const AliasSet& set : itdk.alias_sets) {
        EXPECT_GE(set.addresses.size(), 2u);
        const auto& router = topo().router(set.router_index);
        EXPECT_TRUE(router.responds_icmp() || router.responds_tcp() || router.responds_udp());
        EXPECT_EQ(router.interfaces(), set.addresses);
    }
    // ITDK covers fewer ASes than the traceroute snapshots (paper Table 2).
    EXPECT_LT(itdk.as_count(topo()), snapshots()[4].as_count(topo()));
}

TEST_F(DatasetFixture, RouterIpsAreUniqueAndRoutable) {
    const auto ips = snapshots()[4].router_ips();
    const std::set<net::IPv4Address> unique(ips.begin(), ips.end());
    EXPECT_EQ(unique.size(), ips.size());
    for (net::IPv4Address ip : ips) EXPECT_TRUE(ip.is_routable());
}

// --------------------------------------------------------------------- Geo

TEST(Geo, ContinentNamesAndCodes) {
    EXPECT_EQ(to_string(Continent::north_america), "North America");
    EXPECT_EQ(continent_code(Continent::europe), "EU");
    EXPECT_EQ(continent_code(Continent::oceania), "OC");
}

TEST(Geo, RegistryLookup) {
    GeoRegistry registry;
    registry.assign(64500, {"US", Continent::north_america});
    ASSERT_NE(registry.lookup(64500), nullptr);
    EXPECT_TRUE(registry.is_in_country(64500, "US"));
    EXPECT_FALSE(registry.is_in_country(64500, "DE"));
    EXPECT_FALSE(registry.is_in_country(99999, "US"));
    EXPECT_EQ(registry.lookup(99999), nullptr);
}

TEST(Geo, DrawCountryIsUsHeavy) {
    util::Rng rng(3);
    std::size_t us = 0;
    constexpr std::size_t kTrials = 5000;
    for (std::size_t i = 0; i < kTrials; ++i) {
        if (GeoRegistry::draw_country(rng).country == "US") ++us;
    }
    const double share = static_cast<double>(us) / kTrials;
    EXPECT_GT(share, 0.15);
    EXPECT_LT(share, 0.35);
}

}  // namespace
}  // namespace lfp::sim
