// Unit tests for the vendor stack models: IPID counter machines, the
// simulated router's per-protocol responses, overrides, and SNMP identity.
#include <gtest/gtest.h>

#include "probe/campaign.hpp"
#include "probe/transport.hpp"
#include "snmp/snmpv3.hpp"
#include "stack/profile_catalog.hpp"
#include "stack/simulated_router.hpp"

namespace lfp::stack {
namespace {

const net::IPv4Address kVantage = net::IPv4Address::from_octets(192, 0, 2, 9);
const net::IPv4Address kRouterIp = net::IPv4Address::from_octets(5, 5, 5, 5);

/// Transport that hands packets straight to one router (no loss, no TTL
/// decay) — isolates stack behaviour from the network model.
class DirectTransport final : public probe::SynchronousTransport {
  public:
    explicit DirectTransport(SimulatedRouter& router) : router_(&router) {}
    [[nodiscard]] net::IPv4Address vantage_address() const override { return kVantage; }

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        return router_->handle_packet(packet);
    }

  private:
    SimulatedRouter* router_;
};

/// A profile that always answers everything, with tunable stack features.
StackProfile responsive_profile() {
    StackProfile profile;
    profile.family = "test";
    profile.vendor = Vendor::cisco;
    profile.response = {1.0, 1.0, 1.0, 1.0, 0.0, 1.0};
    profile.mean_traffic_gap = 5.0;
    return profile;
}

SimulatedRouter make_router(const StackProfile& profile, std::uint64_t seed = 1) {
    util::Rng rng(seed);
    SimulatedRouter router(seed, profile, rng);
    router.add_interface(kRouterIp);
    return router;
}

net::Bytes icmp_probe(std::uint16_t ipid, std::uint16_t seq = 0) {
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = kRouterIp;
    ip.identification = ipid;
    return net::make_icmp_echo_request(ip, 7, seq, net::Bytes(56, 0xA5));
}

net::Bytes tcp_probe(bool syn, std::uint32_t ack_value, std::uint16_t port = kProbePort) {
    net::TcpSegment segment;
    segment.source_port = 40000;
    segment.destination_port = port;
    segment.sequence = 0x100;
    segment.acknowledgment = ack_value;
    if (syn) {
        segment.flags.syn = true;
    } else {
        segment.flags.ack = true;
    }
    segment.window = 1024;
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = kRouterIp;
    ip.identification = 0x42;
    return net::make_tcp_packet(ip, segment);
}

net::Bytes udp_probe(std::uint16_t port = kProbePort) {
    net::UdpDatagram datagram;
    datagram.source_port = 40001;
    datagram.destination_port = port;
    datagram.payload.assign(12, 0x00);
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = kRouterIp;
    ip.identification = 0x43;
    return net::make_udp_packet(ip, datagram);
}

// ---------------------------------------------------------------- IpidCounter

TEST(IpidCounter, IncrementalAdvancesModestly) {
    util::Rng rng(3);
    IpidCounter counter(IpidMode::incremental, 100, 10.0);
    std::uint16_t previous = counter.next(rng);
    for (int i = 0; i < 200; ++i) {
        const std::uint16_t current = counter.next(rng);
        const std::uint16_t step = static_cast<std::uint16_t>(current - previous);
        EXPECT_GE(step, 1);
        EXPECT_LT(step, 1000);
        previous = current;
    }
}

TEST(IpidCounter, IncrementalWrapsAround) {
    util::Rng rng(3);
    IpidCounter counter(IpidMode::incremental, 65530, 1.0);
    bool wrapped = false;
    std::uint16_t previous = counter.next(rng);
    for (int i = 0; i < 50; ++i) {
        const std::uint16_t current = counter.next(rng);
        if (current < previous) wrapped = true;
        previous = current;
    }
    EXPECT_TRUE(wrapped);
}

TEST(IpidCounter, ZeroAndStatic) {
    util::Rng rng(4);
    IpidCounter zero(IpidMode::zero, 123, 1.0);
    IpidCounter fixed(IpidMode::static_value, 777, 1.0);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(zero.next(rng), 0);
        EXPECT_EQ(fixed.next(rng), 777);
    }
}

TEST(IpidCounter, StaticValueNeverZero) {
    util::Rng rng(5);
    IpidCounter fixed(IpidMode::static_value, 0, 1.0);
    EXPECT_NE(fixed.next(rng), 0);
}

TEST(IpidCounter, DuplicatePairServesValuesTwice) {
    util::Rng rng(6);
    IpidCounter counter(IpidMode::duplicate_pair, 10, 3.0);
    for (int i = 0; i < 10; ++i) {
        const std::uint16_t a = counter.next(rng);
        const std::uint16_t b = counter.next(rng);
        EXPECT_EQ(a, b);
    }
}

TEST(IpidCounter, RandomSpreadsAcrossRange) {
    util::Rng rng(7);
    IpidCounter counter(IpidMode::random, 0, 1.0);
    std::uint16_t min = 0xFFFF;
    std::uint16_t max = 0;
    for (int i = 0; i < 500; ++i) {
        const std::uint16_t v = counter.next(rng);
        min = std::min(min, v);
        max = std::max(max, v);
    }
    EXPECT_LT(min, 5000);
    EXPECT_GT(max, 60000);
}

// ------------------------------------------------------------ SimulatedRouter

TEST(SimulatedRouter, EchoReplyMirrorsPayloadAndUsesProfileTtl) {
    StackProfile profile = responsive_profile();
    profile.ittl_icmp = 255;
    auto router = make_router(profile);

    auto response = router.handle_packet(icmp_probe(0x1111));
    ASSERT_TRUE(response.has_value());
    auto parsed = net::parse_packet(*response);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().ip.ttl, 255);
    EXPECT_EQ(parsed.value().ip.source, kRouterIp);
    EXPECT_EQ(parsed.value().ip.destination, kVantage);
    EXPECT_EQ(response->size(), 84u);
    const auto* echo = std::get_if<net::IcmpEcho>(parsed.value().icmp());
    ASSERT_NE(echo, nullptr);
    EXPECT_TRUE(echo->is_reply);
    EXPECT_EQ(echo->identifier, 7);
}

TEST(SimulatedRouter, IcmpIpidEchoBehaviour) {
    StackProfile profile = responsive_profile();
    profile.ipid.icmp_echoes_request_ipid = true;
    auto router = make_router(profile);
    auto response = router.handle_packet(icmp_probe(0xABCD));
    ASSERT_TRUE(response.has_value());
    auto parsed = net::parse_packet(*response);
    EXPECT_EQ(parsed.value().ip.identification, 0xABCD);

    StackProfile no_echo = responsive_profile();
    no_echo.ipid.icmp_echoes_request_ipid = false;
    auto router2 = make_router(no_echo);
    auto response2 = router2.handle_packet(icmp_probe(0xABCD));
    auto parsed2 = net::parse_packet(*response2);
    EXPECT_NE(parsed2.value().ip.identification, 0xABCD);
}

TEST(SimulatedRouter, ClosedPortRstBehaviour) {
    // Non-compliant stack: RST to the SYN probe carries sequence zero.
    StackProfile profile = responsive_profile();
    profile.rst_seq_from_ack = false;
    auto router = make_router(profile);

    auto syn_response = router.handle_packet(tcp_probe(/*syn=*/true, 0xBEEF0001));
    ASSERT_TRUE(syn_response.has_value());
    auto parsed = net::parse_packet(*syn_response);
    const auto* rst = parsed.value().tcp();
    ASSERT_NE(rst, nullptr);
    EXPECT_TRUE(rst->flags.rst);
    EXPECT_EQ(rst->sequence, 0u);
    EXPECT_EQ(syn_response->size(), 40u);

    // Compliant stack: sequence taken from the probe's ack field.
    StackProfile compliant = responsive_profile();
    compliant.rst_seq_from_ack = true;
    auto router2 = make_router(compliant);
    auto syn_response2 = router2.handle_packet(tcp_probe(true, 0xBEEF0001));
    auto parsed2 = net::parse_packet(*syn_response2);
    EXPECT_EQ(parsed2.value().tcp()->sequence, 0xBEEF0001);

    // ACK probes always take the incoming ack as the RST sequence.
    auto ack_response = router.handle_packet(tcp_probe(false, 0x1234));
    auto parsed3 = net::parse_packet(*ack_response);
    EXPECT_EQ(parsed3.value().tcp()->sequence, 0x1234u);
    EXPECT_FALSE(parsed3.value().tcp()->flags.ack);
}

TEST(SimulatedRouter, UdpClosedPortQuotesPerProfile) {
    StackProfile minimal = responsive_profile();
    minimal.icmp_quote_limit = 28;
    auto router = make_router(minimal);
    auto response = router.handle_packet(udp_probe());
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->size(), 56u);

    StackProfile full = responsive_profile();
    full.icmp_quote_limit = 65535;
    auto router2 = make_router(full);
    auto response2 = router2.handle_packet(udp_probe());
    ASSERT_TRUE(response2.has_value());
    EXPECT_EQ(response2->size(), 68u);

    auto parsed = net::parse_packet(*response2);
    const auto* error = std::get_if<net::IcmpError>(parsed.value().icmp());
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->type, net::IcmpType::destination_unreachable);
    EXPECT_EQ(error->code, net::kIcmpCodePortUnreachable);
    // The quote embeds our original probe verbatim.
    EXPECT_EQ(error->quoted.size(), 40u);
    auto quoted_header = net::Ipv4Header::parse(error->quoted);
    ASSERT_TRUE(quoted_header.has_value());
    EXPECT_EQ(quoted_header.value().destination, kRouterIp);
}

TEST(SimulatedRouter, SnmpDiscoveryCarriesVendorEngineId) {
    StackProfile profile = responsive_profile();
    profile.vendor = Vendor::juniper;
    auto router = make_router(profile);
    ASSERT_TRUE(router.snmp_enabled());

    snmp::DiscoveryRequest request;
    request.message_id = 99;
    net::UdpDatagram datagram;
    datagram.source_port = 50000;
    datagram.destination_port = snmp::kSnmpPort;
    datagram.payload = request.serialize();
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = kRouterIp;

    auto raw = router.handle_packet(net::make_udp_packet(ip, datagram));
    ASSERT_TRUE(raw.has_value());
    auto parsed = net::parse_packet(*raw);
    const auto* udp = parsed.value().udp();
    ASSERT_NE(udp, nullptr);
    auto response = snmp::DiscoveryResponse::parse(udp->payload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response.value().message_id, 99);
    EXPECT_EQ(response.value().engine_id.enterprise, enterprise_number(Vendor::juniper));
}

TEST(SimulatedRouter, SilentWhenUnresponsive) {
    StackProfile profile = responsive_profile();
    profile.response = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    auto router = make_router(profile);
    EXPECT_FALSE(router.handle_packet(icmp_probe(1)).has_value());
    EXPECT_FALSE(router.handle_packet(tcp_probe(true, 1)).has_value());
    EXPECT_FALSE(router.handle_packet(udp_probe()).has_value());
}

TEST(SimulatedRouter, IgnoresForeignDestinations) {
    auto router = make_router(responsive_profile());
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = net::IPv4Address::from_octets(9, 9, 9, 9);
    auto foreign = net::make_icmp_echo_request(ip, 1, 1, net::Bytes(8, 0));
    EXPECT_FALSE(router.handle_packet(foreign).has_value());
}

TEST(SimulatedRouter, IgnoresMalformedPackets) {
    auto router = make_router(responsive_profile());
    EXPECT_FALSE(router.handle_packet(net::Bytes{1, 2, 3}).has_value());
    net::Bytes corrupted = icmp_probe(1);
    corrupted[25] ^= 0xFF;  // break the ICMP checksum
    EXPECT_FALSE(router.handle_packet(corrupted).has_value());
}

TEST(SimulatedRouter, OverridesChangeIttl) {
    StackProfile profile = responsive_profile();
    profile.ittl_icmp = 64;
    auto router = make_router(profile);
    RouterOverrides overrides;
    overrides.ittl_icmp = 255;
    router.set_overrides(overrides);
    auto response = router.handle_packet(icmp_probe(1));
    auto parsed = net::parse_packet(*response);
    EXPECT_EQ(parsed.value().ip.ttl, 255);
}

TEST(SimulatedRouter, MgmtPortSynAckWhenReachable) {
    StackProfile profile = responsive_profile();
    profile.response.open_mgmt_port = 1.0;
    profile.response.mgmt_scan_reachable = 1.0;
    profile.syn_ack = {14600, 1460, true, true};
    auto router = make_router(profile);
    ASSERT_TRUE(router.mgmt_reachable());

    auto response = router.handle_packet(tcp_probe(true, 0, kMgmtPort));
    ASSERT_TRUE(response.has_value());
    auto parsed = net::parse_packet(*response);
    const auto* syn_ack = parsed.value().tcp();
    ASSERT_NE(syn_ack, nullptr);
    EXPECT_TRUE(syn_ack->flags.syn);
    EXPECT_TRUE(syn_ack->flags.ack);
    EXPECT_EQ(syn_ack->window, 14600);
    EXPECT_EQ(syn_ack->mss(), std::optional<std::uint16_t>(1460));
}

TEST(SimulatedRouter, DeterministicForSameSeed) {
    StackProfile profile = responsive_profile();
    auto a = make_router(profile, 77);
    auto b = make_router(profile, 77);
    for (int i = 0; i < 5; ++i) {
        auto ra = a.handle_packet(icmp_probe(static_cast<std::uint16_t>(i)));
        auto rb = b.handle_packet(icmp_probe(static_cast<std::uint16_t>(i)));
        ASSERT_EQ(ra.has_value(), rb.has_value());
        if (ra) {
            EXPECT_EQ(*ra, *rb);
        }
    }
}

// ------------------------------------------------------------------ Catalog

TEST(ProfileCatalog, EveryVendorHasProfiles) {
    const ProfileCatalog& catalog = standard_catalog();
    for (Vendor vendor : all_vendors()) {
        const auto profiles = catalog.profiles_for(vendor);
        EXPECT_FALSE(profiles.empty()) << to_string(vendor);
        for (const auto& wp : profiles) {
            EXPECT_GT(wp.weight, 0.0);
            EXPECT_EQ(wp.profile.vendor, vendor);
            EXPECT_FALSE(wp.profile.family.empty());
        }
    }
    EXPECT_GE(catalog.size(), 30u);
}

TEST(ProfileCatalog, FamilyNamesAreUniqueAndFindable) {
    const ProfileCatalog& catalog = standard_catalog();
    std::set<std::string> names;
    for (const auto& wp : catalog.all()) {
        EXPECT_TRUE(names.insert(wp.profile.family).second) << wp.profile.family;
        EXPECT_EQ(catalog.find(wp.profile.family), &wp.profile);
    }
    EXPECT_EQ(catalog.find("no-such-family"), nullptr);
}

TEST(ProfileCatalog, IttlValuesAreCanonical) {
    for (const auto& wp : standard_catalog().all()) {
        for (std::uint8_t ttl :
             {wp.profile.ittl_icmp, wp.profile.ittl_tcp, wp.profile.ittl_udp}) {
            EXPECT_TRUE(ttl == 32 || ttl == 64 || ttl == 128 || ttl == 255)
                << wp.profile.family << " ttl=" << int(ttl);
        }
    }
}

TEST(ProfileCatalog, ProbabilitiesInRange) {
    for (const auto& wp : standard_catalog().all()) {
        const auto& r = wp.profile.response;
        for (double p : {r.icmp, r.tcp, r.udp, r.snmpv3, r.open_mgmt_port,
                         r.mgmt_scan_reachable}) {
            EXPECT_GE(p, 0.0) << wp.profile.family;
            EXPECT_LE(p, 1.0) << wp.profile.family;
        }
    }
}

class AllProfilesRespond : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllProfilesRespond, ProducesWellFormedResponses) {
    const auto& wp = standard_catalog().all()[GetParam()];
    StackProfile profile = wp.profile;
    profile.response = {1.0, 1.0, 1.0, 1.0, 0.0, 1.0};  // force responsiveness
    auto router = make_router(profile, 1000 + GetParam());

    auto icmp = router.handle_packet(icmp_probe(5));
    ASSERT_TRUE(icmp.has_value()) << profile.family;
    auto icmp_parsed = net::parse_packet(*icmp);
    ASSERT_TRUE(icmp_parsed.has_value()) << profile.family;
    EXPECT_EQ(icmp_parsed.value().ip.ttl, profile.ittl_icmp);

    auto tcp = router.handle_packet(tcp_probe(true, 0xBEEF0001));
    ASSERT_TRUE(tcp.has_value()) << profile.family;
    auto tcp_parsed = net::parse_packet(*tcp);
    EXPECT_EQ(tcp_parsed.value().ip.ttl, profile.ittl_tcp);
    EXPECT_TRUE(tcp_parsed.value().tcp()->flags.rst);

    auto udp = router.handle_packet(udp_probe());
    ASSERT_TRUE(udp.has_value()) << profile.family;
    auto udp_parsed = net::parse_packet(*udp);
    EXPECT_EQ(udp_parsed.value().ip.ttl, profile.ittl_udp);
    EXPECT_NE(udp_parsed.value().icmp(), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllProfilesRespond,
                         ::testing::Range<std::size_t>(0, standard_catalog().size()));

// ------------------------------------------------------------------- Vendors

TEST(Vendor, StringRoundTrip) {
    for (Vendor vendor : all_vendors()) {
        const auto name = to_string(vendor);
        auto parsed = vendor_from_string(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, vendor);
    }
    EXPECT_FALSE(vendor_from_string("NotAVendor").has_value());
    EXPECT_EQ(to_string(Vendor::unknown), "Unknown");
}

TEST(Vendor, EnterpriseRoundTrip) {
    for (Vendor vendor : all_vendors()) {
        const std::uint32_t enterprise = enterprise_number(vendor);
        EXPECT_NE(enterprise, 0u);
        EXPECT_EQ(vendor_from_enterprise(enterprise), vendor);
    }
    EXPECT_EQ(vendor_from_enterprise(999999), Vendor::unknown);
}

TEST(Vendor, WellKnownEnterpriseNumbers) {
    EXPECT_EQ(enterprise_number(Vendor::cisco), 9u);
    EXPECT_EQ(enterprise_number(Vendor::juniper), 2636u);
    EXPECT_EQ(enterprise_number(Vendor::huawei), 2011u);
    EXPECT_EQ(enterprise_number(Vendor::mikrotik), 14988u);
    EXPECT_EQ(enterprise_number(Vendor::net_snmp), 8072u);
}

}  // namespace
}  // namespace lfp::stack
