// Unit tests for the SNMP substrate: BER codec, engine IDs, SNMPv3
// discovery messages.
#include <gtest/gtest.h>

#include "snmp/ber.hpp"
#include "snmp/engine_id.hpp"
#include "snmp/snmpv3.hpp"
#include "util/rng.hpp"

namespace lfp::snmp {
namespace {

TEST(Ber, IntegerKnownEncodings) {
    EXPECT_EQ(ber_encode(BerValue::integer(0)), (Bytes{0x02, 0x01, 0x00}));
    EXPECT_EQ(ber_encode(BerValue::integer(127)), (Bytes{0x02, 0x01, 0x7F}));
    EXPECT_EQ(ber_encode(BerValue::integer(128)), (Bytes{0x02, 0x02, 0x00, 0x80}));
    EXPECT_EQ(ber_encode(BerValue::integer(-1)), (Bytes{0x02, 0x01, 0xFF}));
    EXPECT_EQ(ber_encode(BerValue::integer(256)), (Bytes{0x02, 0x02, 0x01, 0x00}));
}

class BerIntegerRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BerIntegerRoundTrip, RoundTrips) {
    const std::int64_t value = GetParam();
    auto decoded = ber_decode(ber_encode(BerValue::integer(value)));
    ASSERT_TRUE(decoded.has_value());
    auto result = decoded.value().as_integer();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value(), value);
}

INSTANTIATE_TEST_SUITE_P(Values, BerIntegerRoundTrip,
                         ::testing::Values(0, 1, -1, 127, 128, 255, 256, -128, -129, 65535,
                                           2147483647LL, -2147483648LL, 1099511627776LL));

TEST(Ber, OctetStringRoundTrip) {
    Bytes payload{0x00, 0xFF, 0x80, 0x01};
    auto decoded = ber_decode(ber_encode(BerValue::octet_string(payload)));
    ASSERT_TRUE(decoded.has_value());
    auto result = decoded.value().as_octet_string();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value(), payload);
}

TEST(Ber, LongOctetStringUsesLongLengthForm) {
    const Bytes payload(300, 0x5A);
    const Bytes wire = ber_encode(BerValue::octet_string(payload));
    EXPECT_EQ(wire[1], 0x82);  // two length digits
    auto decoded = ber_decode(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value().as_octet_string().value().size(), 300u);
}

TEST(Ber, OidRoundTrip) {
    const std::vector<std::uint32_t> arcs{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0};
    auto decoded = ber_decode(ber_encode(BerValue::oid(arcs)));
    ASSERT_TRUE(decoded.has_value());
    auto result = decoded.value().as_oid();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result.value(), arcs);
}

TEST(Ber, OidMultiByteArcs) {
    const std::vector<std::uint32_t> arcs{1, 3, 6, 1, 4, 1, 14988, 1};  // MikroTik arc > 127
    auto decoded = ber_decode(ber_encode(BerValue::oid(arcs)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value().as_oid().value(), arcs);
}

TEST(Ber, SequenceNesting) {
    BerValue message = BerValue::sequence({
        BerValue::integer(3),
        BerValue::sequence({BerValue::octet_string("abc"), BerValue::null()}),
        BerValue::context(8, {BerValue::integer(1)}),
    });
    auto decoded = ber_decode(ber_encode(message));
    ASSERT_TRUE(decoded.has_value());
    const BerValue& out = decoded.value();
    ASSERT_EQ(out.children().size(), 3u);
    EXPECT_EQ(out.children()[0].as_integer().value(), 3);
    ASSERT_TRUE(out.children()[2].is_context());
    EXPECT_EQ(out.children()[2].context_number(), 8);
    EXPECT_EQ(out, message);
}

TEST(Ber, RejectsMalformedInput) {
    EXPECT_FALSE(ber_decode(Bytes{}).has_value());
    EXPECT_FALSE(ber_decode(Bytes{0x02}).has_value());                  // tag only
    EXPECT_FALSE(ber_decode(Bytes{0x02, 0x05, 0x01}).has_value());      // short content
    EXPECT_FALSE(ber_decode(Bytes{0x02, 0x01, 0x01, 0x00}).has_value());  // trailing byte
    EXPECT_FALSE(ber_decode(Bytes{0x1F, 0x01, 0x00}).has_value());      // multi-byte tag
    EXPECT_FALSE(ber_decode(Bytes{0x05, 0x01, 0x00}).has_value());      // non-empty null
}

TEST(Ber, RejectsDeepNesting) {
    Bytes bomb;
    for (int i = 0; i < 40; ++i) {
        Bytes wrapped{0x30, static_cast<std::uint8_t>(bomb.size())};
        wrapped.insert(wrapped.end(), bomb.begin(), bomb.end());
        bomb = wrapped;
    }
    EXPECT_FALSE(ber_decode(bomb).has_value());
}

TEST(Ber, TypeAccessorsValidate) {
    EXPECT_FALSE(BerValue::null().as_integer().has_value());
    EXPECT_FALSE(BerValue::integer(1).as_octet_string().has_value());
    EXPECT_FALSE(BerValue::octet_string("x").as_oid().has_value());
    auto child = BerValue::integer(1).child(0);
    EXPECT_FALSE(child.has_value());
}

TEST(EngineId, MacFormatRoundTrip) {
    const EngineId id = make_mac_engine_id(enterprise::kCisco, {1, 2, 3, 4, 5, 6});
    const Bytes wire = id.serialize();
    ASSERT_EQ(wire.size(), 11u);
    EXPECT_EQ(wire[0] & 0x80, 0x80);  // new format bit
    auto parsed = EngineId::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value(), id);
    EXPECT_EQ(parsed.value().enterprise, enterprise::kCisco);
}

TEST(EngineId, TextAndOctetsFormats) {
    const EngineId text = make_text_engine_id(enterprise::kMikroTik, "MikroTik-42");
    auto parsed = EngineId::parse(text.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().format, EngineIdFormat::text);
    EXPECT_EQ(parsed.value().enterprise, enterprise::kMikroTik);

    const EngineId octets = make_octets_engine_id(enterprise::kHuawei, Bytes(8, 0xEE));
    auto parsed2 = EngineId::parse(octets.serialize());
    ASSERT_TRUE(parsed2.has_value());
    EXPECT_EQ(parsed2.value().enterprise, enterprise::kHuawei);
}

TEST(EngineId, Ipv4Format) {
    const auto address = net::IPv4Address::from_octets(5, 6, 7, 8);
    const EngineId id = make_ipv4_engine_id(enterprise::kJuniper, address);
    auto parsed = EngineId::parse(id.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().remainder, (Bytes{5, 6, 7, 8}));
}

TEST(EngineId, RejectsBadLengths) {
    EXPECT_FALSE(EngineId::parse(Bytes{1, 2, 3}).has_value());
    EXPECT_FALSE(EngineId::parse(Bytes(40, 1)).has_value());
    // Old format (high bit clear) must be exactly 12 bytes.
    Bytes old_format(11, 0x01);
    EXPECT_FALSE(EngineId::parse(old_format).has_value());
    Bytes ok_old(12, 0x01);
    auto parsed = EngineId::parse(ok_old);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed.value().new_format);
}

TEST(EngineId, TextTruncatesToWireCap) {
    const std::string long_name(64, 'x');
    const EngineId id = make_text_engine_id(enterprise::kCisco, long_name);
    EXPECT_LE(id.serialize().size(), 32u);
}

TEST(Snmpv3, DiscoveryRequestRoundTrip) {
    DiscoveryRequest request;
    request.message_id = 0x1234;
    const Bytes wire = request.serialize();
    auto parsed = DiscoveryRequest::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().message_id, 0x1234);
}

TEST(Snmpv3, DiscoveryResponseRoundTrip) {
    DiscoveryResponse response;
    response.message_id = 77;
    response.engine_id = make_mac_engine_id(enterprise::kJuniper, {9, 8, 7, 6, 5, 4});
    response.engine_boots = 12;
    response.engine_time = 123456;

    const Bytes wire = response.serialize();
    auto parsed = DiscoveryResponse::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().message_id, 77);
    EXPECT_EQ(parsed.value().engine_id, response.engine_id);
    EXPECT_EQ(parsed.value().engine_boots, 12);
    EXPECT_EQ(parsed.value().engine_time, 123456);
}

TEST(Snmpv3, RequestAndResponseAreDistinct) {
    DiscoveryRequest request;
    request.message_id = 5;
    EXPECT_FALSE(DiscoveryResponse::parse(request.serialize()).has_value());

    DiscoveryResponse response;
    response.message_id = 5;
    response.engine_id = make_mac_engine_id(enterprise::kCisco, {1, 2, 3, 4, 5, 6});
    EXPECT_FALSE(DiscoveryRequest::parse(response.serialize()).has_value());
}

TEST(Snmpv3, ParseRejectsGarbage) {
    EXPECT_FALSE(DiscoveryRequest::parse(Bytes{1, 2, 3}).has_value());
    EXPECT_FALSE(DiscoveryResponse::parse(Bytes(64, 0x30)).has_value());
    // Fuzz-ish: random bytes never crash and never parse.
    util::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Bytes junk(rng.below(64));
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
        EXPECT_FALSE(DiscoveryResponse::parse(junk).has_value());
    }
}

TEST(Snmpv3, UsmOidIsCorrect) {
    const auto oid = usm_stats_unknown_engine_ids_oid();
    const std::vector<std::uint32_t> expected{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0};
    EXPECT_EQ(oid, expected);
}

}  // namespace
}  // namespace lfp::snmp
