// Unit tests for util: RNG, statistics, tables, strings, result.
#include <gtest/gtest.h>

#include <set>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace lfp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound) {
    Rng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
    }
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-3, 3));
    EXPECT_EQ(*seen.begin(), -3);
    EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, ForkIndependentOfParentDrawOrder) {
    Rng parent1(5);
    Rng parent2(5);
    (void)parent2;  // parent2 never draws
    Rng child1 = parent1.fork(17);
    Rng child2 = parent2.fork(17);
    EXPECT_EQ(child1.next(), child2.next());
    // Different tags give different streams.
    Rng parent3(5);
    Rng other = parent3.fork(18);
    Rng parent4(5);
    Rng reference = parent4.fork(17);
    EXPECT_NE(other.next(), reference.next());
}

TEST(Rng, ChanceExtremes) {
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, TrafficGapMeanRoughlyCorrect) {
    Rng rng(15);
    double total = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) total += rng.traffic_gap(50.0);
    const double mean = total / kSamples;
    EXPECT_GT(mean, 40.0);
    EXPECT_LT(mean, 60.0);
}

TEST(Rng, WeightedFollowsWeights) {
    Rng rng(17);
    const std::array<double, 3> weights{0.0, 10.0, 0.0};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(weights), 1u);
}

TEST(Rng, ShuffleKeepsElements) {
    Rng rng(19);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
    auto copy = items;
    shuffle(copy, rng);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

TEST(Ecdf, AtAndQuantile) {
    Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(ecdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(ecdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.max(), 4.0);
    EXPECT_DOUBLE_EQ(ecdf.mean(), 2.5);
}

TEST(Ecdf, EmptyBehaviour) {
    Ecdf ecdf;
    EXPECT_TRUE(ecdf.empty());
    EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.0);
    EXPECT_THROW((void)ecdf.quantile(0.5), std::out_of_range);
    EXPECT_TRUE(ecdf.series().x.empty());
}

TEST(Ecdf, SeriesMonotonic) {
    Ecdf ecdf;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) ecdf.add(rng.uniform() * 100);
    const auto series = ecdf.series(30);
    ASSERT_EQ(series.x.size(), 30u);
    for (std::size_t i = 1; i < series.y.size(); ++i) {
        EXPECT_LE(series.y[i - 1], series.y[i]);
    }
    EXPECT_DOUBLE_EQ(series.y.back(), 1.0);
}

TEST(Ecdf, AddInvalidatesSortedCache) {
    Ecdf ecdf({5.0});
    EXPECT_DOUBLE_EQ(ecdf.at(5.0), 1.0);
    ecdf.add(1.0);
    EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.5);
}

TEST(Histogram, BinningAndPercent) {
    Histogram hist(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) hist.add(0.5);
    for (int i = 0; i < 10; ++i) hist.add(5.5);
    EXPECT_EQ(hist.count(0), 10u);
    EXPECT_EQ(hist.count(5), 10u);
    EXPECT_DOUBLE_EQ(hist.percent(0), 50.0);
    EXPECT_DOUBLE_EQ(hist.bin_low(5), 5.0);
    EXPECT_DOUBLE_EQ(hist.bin_high(5), 6.0);
}

TEST(Histogram, OutOfRangeCountsTowardTotal) {
    Histogram hist(0.0, 10.0, 5);
    hist.add(-1.0);
    hist.add(11.0);
    hist.add(5.0);
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_EQ(hist.count(2), 1u);
}

TEST(Histogram, RejectsBadBounds) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Counter, TopAndFractions) {
    Counter counter;
    counter.add("cisco", 10);
    counter.add("juniper", 5);
    counter.add("huawei", 5);
    counter.add("cisco");
    EXPECT_EQ(counter.total(), 21u);
    EXPECT_EQ(counter.get("cisco"), 11u);
    EXPECT_EQ(counter.get("missing"), 0u);
    EXPECT_NEAR(counter.fraction("cisco"), 11.0 / 21.0, 1e-12);
    const auto top = counter.top(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, "cisco");
    EXPECT_EQ(top[1].first, "huawei");  // tie broken lexicographically
}

TEST(Stats, MeanAndMedian) {
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Strings, Split) {
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, JoinRoundTrip) {
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, "-"), "x-y-z");
    EXPECT_EQ(join(std::vector<std::string>{}, "-"), "");
}

TEST(Strings, HexAndLower) {
    const std::vector<std::uint8_t> bytes{0x80, 0x00, 0xAB};
    EXPECT_EQ(hex(bytes), "80:00:ab");
    EXPECT_EQ(hex({}), "");
    EXPECT_EQ(to_lower("MiXeD"), "mixed");
    EXPECT_TRUE(starts_with("SSH-2.0-Cisco", "SSH-"));
    EXPECT_FALSE(starts_with("SSH", "SSH-"));
}

TEST(Result, ValueAndError) {
    Result<int> ok(7);
    EXPECT_TRUE(ok.has_value());
    EXPECT_EQ(ok.value(), 7);
    EXPECT_EQ(ok.value_or(9), 7);

    Result<int> bad(make_error("boom"));
    EXPECT_FALSE(bad.has_value());
    EXPECT_EQ(bad.error().message, "boom");
    EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Table, FormatHelpers) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_percent(0.5), "50.0%");
    EXPECT_EQ(format_count(1234567), "1,234,567");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(0), "0");
}

TEST(Table, PrintsAlignedRows) {
    TablePrinter table("demo");
    table.header({"a", "long-column"});
    table.row({"1", "2"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("long-column"), std::string::npos);
    EXPECT_NE(text.find("| 1"), std::string::npos);
}

TEST(Table, EcdfRendering) {
    Ecdf ecdf({1, 2, 3, 4, 5});
    std::ostringstream out;
    print_ecdf(out, "cdf", ecdf, 5, "hops");
    EXPECT_NE(out.str().find("hops"), std::string::npos);
    EXPECT_NE(out.str().find("#"), std::string::npos);
}

}  // namespace
}  // namespace lfp::util
