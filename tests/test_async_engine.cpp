// Tests for the batched asynchronous probe engine: the fixed global send
// order across window sizes, serial-vs-windowed result equivalence on the
// simulated Internet (including loss and delivery jitter), configurable
// IPID/msgID bases, and a ≥1k-target stress run.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pipeline.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "snmp/snmpv3.hpp"

namespace lfp::probe {
namespace {

/// Records wire order; never answers.
class WireTapTransport final : public SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(192, 0, 2, 7);
    }
    std::vector<net::Bytes> packets;

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        packets.emplace_back(packet.begin(), packet.end());
        return std::nullopt;
    }
};

std::vector<net::IPv4Address> make_targets(std::size_t count) {
    std::vector<net::IPv4Address> targets;
    targets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        targets.push_back(net::IPv4Address::from_octets(
            10, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i), 1));
    }
    return targets;
}

/// Interface IPs sampled across the whole world (strided, so edge ASes with
/// open SNMP show up alongside filtered backbones), padded with phantom
/// (dead) addresses for the non-responsive case.
std::vector<net::IPv4Address> world_targets(const sim::Topology& topology, std::size_t limit) {
    std::vector<net::IPv4Address> targets;
    const std::size_t stride = std::max<std::size_t>(1, topology.router_count() / limit);
    for (std::size_t offset = 0; offset < stride && targets.size() < limit; ++offset) {
        for (std::size_t i = offset; i < topology.router_count() && targets.size() < limit;
             i += stride) {
            targets.push_back(topology.router(i).interfaces().front());
        }
    }
    for (std::size_t i = 0; i < topology.phantom_addresses().size() && targets.size() < limit;
         ++i) {
        targets.push_back(topology.phantom_addresses()[i]);
    }
    return targets;
}

TEST(AsyncEngine, GlobalSendOrderIdenticalAcrossWindowSizes) {
    const auto targets = make_targets(12);
    WireTapTransport serial_tap;
    Campaign serial(serial_tap, {.window = 1});
    serial.run(targets);

    WireTapTransport windowed_tap;
    Campaign windowed(windowed_tap, {.window = 8});
    windowed.run(targets);

    // Byte-identical wire order: the IPID-sharing features depend on it.
    ASSERT_EQ(serial_tap.packets.size(), targets.size() * 10);
    ASSERT_EQ(windowed_tap.packets.size(), serial_tap.packets.size());
    EXPECT_EQ(serial_tap.packets, windowed_tap.packets);
}

TEST(AsyncEngine, ConfigurableIpidAndMessageIdBases) {
    const auto targets = make_targets(2);
    WireTapTransport tap;
    Campaign campaign(tap, {.ipid_base = 0x9000, .snmp_message_id_base = 0x1111});
    auto results = campaign.run(targets);

    // Probe IPIDs count up from the base in global send order; the SNMP
    // probe consumes one IPID per target too (slot 10 of each batch).
    EXPECT_EQ(results[0].probes[0][0].request_ipid, 0x9000);
    EXPECT_EQ(results[0].probes[1][0].request_ipid, 0x9001);
    EXPECT_EQ(results[1].probes[0][0].request_ipid, 0x9000 + 10);

    // The SNMP discovery requests carry msgIDs from the configured base.
    for (std::size_t t = 0; t < targets.size(); ++t) {
        auto parsed = net::parse_packet(tap.packets[t * 10 + 9]);
        ASSERT_TRUE(parsed.has_value());
        const auto* udp = parsed.value().udp();
        ASSERT_NE(udp, nullptr);
        auto discovery = snmp::DiscoveryRequest::parse(udp->payload);
        ASSERT_TRUE(discovery.has_value());
        EXPECT_EQ(discovery.value().message_id,
                  static_cast<std::int32_t>(0x1111 + t));
    }

    // A second campaign pinned to the same bases replays identically.
    WireTapTransport replay_tap;
    Campaign replay(replay_tap, {.ipid_base = 0x9000, .snmp_message_id_base = 0x1111});
    replay.run(targets);
    EXPECT_EQ(tap.packets, replay_tap.packets);
}

TEST(AsyncEngine, SerialAndWindowedResultsAreIdentical) {
    const sim::TopologyConfig topo_config{
        .seed = 83, .num_ases = 120, .tier1_count = 6, .transit_fraction = 0.2, .scale = 0.6};
    const sim::InternetConfig net_config{.seed = 9, .loss_rate = 0.01};

    auto run_with = [&](std::size_t window, std::chrono::microseconds rtt, double jitter) {
        // Fresh deterministic world per run: identical seeds rebuild the
        // identical Internet, so any divergence comes from the engine.
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, net_config);
        SimTransport transport(internet, SimTransport::Options{.rtt = rtt, .jitter = jitter});
        Campaign campaign(transport, {.window = window,
                                      .response_timeout = std::chrono::milliseconds(250)});
        const auto targets = world_targets(topology, 160);
        return campaign.run(targets);
    };

    const auto serial = run_with(1, std::chrono::microseconds(0), 0.0);
    // Out-of-order delivery: 200µs RTT with ±80% jitter reorders inbound
    // packets across the window; results must not care.
    const auto windowed7 = run_with(7, std::chrono::microseconds(200), 0.8);
    const auto windowed32 = run_with(32, std::chrono::microseconds(200), 0.8);

    ASSERT_EQ(serial.size(), windowed7.size());
    ASSERT_EQ(serial.size(), windowed32.size());
    std::size_t responsive = 0;
    std::size_t with_snmp = 0;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], windowed7[i]) << "target " << i;
        EXPECT_EQ(serial[i], windowed32[i]) << "target " << i;
        if (serial[i].any_response()) ++responsive;
        if (serial[i].snmp) ++with_snmp;
    }
    // The comparison only means something if the world actually talked back.
    EXPECT_GT(responsive, serial.size() / 2);
    EXPECT_GT(with_snmp, 0u);
}

TEST(AsyncEngine, DuplicateTargetsInWindowMatchSerial) {
    const sim::TopologyConfig topo_config{
        .seed = 29, .num_ases = 60, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5};

    auto run_with = [&](std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 2, .loss_rate = 0.0});
        SimTransport transport(internet);
        Campaign campaign(transport, {.window = window});
        // The same address twice (plus neighbours): flow keys collide, so
        // the engine must hold the duplicate back until the first completes.
        auto targets = world_targets(topology, 6);
        targets.insert(targets.begin() + 1, targets.front());
        targets.push_back(targets.front());
        return campaign.run(targets);
    };

    const auto serial = run_with(1);
    const auto windowed = run_with(16);
    ASSERT_EQ(serial.size(), windowed.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], windowed[i]) << "target " << i;
    }
    // Both copies of the duplicate address carry full, distinct exchanges
    // (the second run observes the router's counters advanced by the first).
    EXPECT_EQ(serial[0].target, serial[1].target);
    EXPECT_NE(serial[0].probes[0][0].request_ipid, serial[1].probes[0][0].request_ipid);
}

TEST(AsyncEngine, PipelineShardingMatchesSingleThread) {
    const sim::TopologyConfig topo_config{
        .seed = 19, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5};

    auto measure_with = [&](std::size_t window, std::size_t workers) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.005});
        SimTransport transport(internet);
        core::PipelineConfig config;
        config.campaign.window = window;
        config.worker_threads = workers;
        config.shard_grain = 16;
        core::LfpPipeline pipeline(transport, config);
        const auto targets = world_targets(topology, 120);
        return pipeline.measure("equivalence", targets);
    };

    const auto baseline = measure_with(1, 1);
    const auto sharded = measure_with(32, 4);
    ASSERT_EQ(baseline.records.size(), sharded.records.size());
    for (std::size_t i = 0; i < baseline.records.size(); ++i) {
        EXPECT_EQ(baseline.records[i].probes, sharded.records[i].probes) << i;
        EXPECT_EQ(baseline.records[i].features, sharded.records[i].features) << i;
        EXPECT_EQ(baseline.records[i].signature, sharded.records[i].signature) << i;
        EXPECT_EQ(baseline.records[i].snmp_vendor, sharded.records[i].snmp_vendor) << i;
    }
    EXPECT_EQ(baseline.responsive_count(), sharded.responsive_count());
    EXPECT_EQ(baseline.snmp_count(), sharded.snmp_count());
}

TEST(AsyncEngine, StressThousandTargetsWindowed) {
    sim::Topology topology = sim::Topology::build({.seed = 7,
                                                   .num_ases = 500,
                                                   .tier1_count = 10,
                                                   .transit_fraction = 0.18,
                                                   .scale = 1.0});
    sim::Internet internet(topology, {.seed = 11, .loss_rate = 0.004});
    SimTransport transport(internet);
    Campaign campaign(transport, {.window = 64});

    const auto targets = world_targets(topology, 1200);
    ASSERT_GE(targets.size(), 1000u) << "world too small for the stress test";

    const auto results = campaign.run(targets);
    ASSERT_EQ(results.size(), targets.size());
    EXPECT_EQ(campaign.packets_sent(), targets.size() * 10);

    std::size_t responsive = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        // Result order is input order even though completions interleave.
        EXPECT_EQ(results[i].target, targets[i]);
        if (results[i].any_response()) ++responsive;
    }
    EXPECT_GT(responsive, results.size() / 2);
    EXPECT_GT(campaign.responses_received(), 0u);
    EXPECT_EQ(campaign.stray_responses(), 0u);
}

TEST(TargetProbeResult, PartialResponsivenessHelper) {
    TargetProbeResult result;
    EXPECT_FALSE(result.partially_responsive());
    result.probes[1][0].response = net::Bytes{1};
    EXPECT_TRUE(result.partially_responsive(ProtoIndex::tcp));
    EXPECT_FALSE(result.protocol_responsive(ProtoIndex::tcp));
    EXPECT_TRUE(result.partially_responsive());
    result.probes[1][1].response = net::Bytes{1};
    result.probes[1][2].response = net::Bytes{1};
    // All rounds answered: fully responsive, no longer partial.
    EXPECT_TRUE(result.protocol_responsive(ProtoIndex::tcp));
    EXPECT_FALSE(result.partially_responsive(ProtoIndex::tcp));
    EXPECT_FALSE(result.partially_responsive());
}

}  // namespace
}  // namespace lfp::probe
