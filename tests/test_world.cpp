// Integration tests over the full experiment world: the end-to-end pipeline
// reproduces the paper's headline *shapes* at reduced scale, and the whole
// run is deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "analysis/as_analysis.hpp"
#include "analysis/experiment_world.hpp"
#include "analysis/path_analysis.hpp"

namespace lfp::analysis {
namespace {

/// One modest world shared by all tests in this file (building it runs the
/// full six-dataset measurement campaign).
class WorldFixture : public ::testing::Test {
  protected:
    static WorldConfig config() {
        WorldConfig cfg;
        cfg.seed = 91;
        cfg.num_ases = 600;
        cfg.scale = 0.35;
        cfg.traces_per_snapshot = 8000;
        cfg.signature_min_occurrences = 10;  // smaller world, smaller threshold
        return cfg;
    }
    static const ExperimentWorld& world() {
        static const std::unique_ptr<ExperimentWorld> instance =
            ExperimentWorld::create(config());
        return *instance;
    }
};

TEST_F(WorldFixture, SixMeasurementsInDatasetOrder) {
    ASSERT_EQ(world().measurements().size(), 6u);
    EXPECT_EQ(world().measurements()[0].name, "RIPE-1");
    EXPECT_EQ(world().ripe5_measurement().name, "RIPE-5");
    EXPECT_EQ(world().itdk_measurement().name, "ITDK");
    EXPECT_EQ(&world().measurement("RIPE-3"), &world().measurements()[2]);
    EXPECT_THROW((void)world().measurement("nope"), std::out_of_range);
}

TEST_F(WorldFixture, MeasurementLookupErrorNamesTheDatasets) {
    try {
        (void)world().measurement("RIPE-9");
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("RIPE-9"), std::string::npos) << what;   // the missing name
        EXPECT_NE(what.find("RIPE-1"), std::string::npos) << what;   // the available names
        EXPECT_NE(what.find("ITDK"), std::string::npos) << what;
    }
}

TEST_F(WorldFixture, TenPacketsPerTarget) {
    std::size_t targets = 0;
    for (const auto& measurement : world().measurements()) {
        targets += measurement.records.size();
    }
    EXPECT_EQ(world().packets_sent(), targets * 10);
}

TEST_F(WorldFixture, ResponsivenessMatchesPaperShape) {
    // Paper Table 3: RIPE snapshots ≈ 66-73% responsive; ITDK higher (≈91%).
    const auto& ripe5 = world().ripe5_measurement();
    const double ripe_responsive = static_cast<double>(ripe5.responsive_count()) /
                                   static_cast<double>(ripe5.records.size());
    EXPECT_GT(ripe_responsive, 0.55);
    EXPECT_LT(ripe_responsive, 0.85);

    const auto& itdk = world().itdk_measurement();
    const double itdk_responsive = static_cast<double>(itdk.responsive_count()) /
                                   static_cast<double>(itdk.records.size());
    EXPECT_GT(itdk_responsive, ripe_responsive);
    EXPECT_GT(itdk_responsive, 0.9);
}

TEST_F(WorldFixture, SnmpLabelsAreMinorityOfResponsive) {
    // Paper: ≈28% of responsive IPs answer SNMPv3.
    const auto& ripe5 = world().ripe5_measurement();
    const double share = static_cast<double>(ripe5.snmp_count()) /
                         static_cast<double>(ripe5.responsive_count());
    EXPECT_GT(share, 0.15);
    EXPECT_LT(share, 0.45);
}

TEST_F(WorldFixture, LfpDoublesCoverage) {
    // The headline: SNMPv3+LFP identifies ≈2x the IPs SNMPv3 alone does.
    const auto& ripe5 = world().ripe5_measurement();
    std::size_t snmp = 0;
    std::size_t combined = 0;
    for (const auto& record : ripe5.records) {
        if (record.snmp_vendor) ++snmp;
        if (record.snmp_vendor || record.lfp.identified()) ++combined;
    }
    ASSERT_GT(snmp, 0u);
    const double gain = static_cast<double>(combined) / static_cast<double>(snmp);
    EXPECT_GT(gain, 1.5);
    EXPECT_LT(gain, 3.5);
}

TEST_F(WorldFixture, MostLabeledIpsMapToUniqueSignatures) {
    // Paper §4.4: >82% of the labeled dataset (SNMPv3 ∩ fully LFP-responsive,
    // the paper's signature-extraction population) carries a unique
    // signature.
    std::size_t labeled = 0;
    std::size_t unique = 0;
    for (const auto& measurement : world().measurements()) {
        for (const auto& record : measurement.records) {
            if (!record.snmp_vendor || !record.features.complete()) continue;
            ++labeled;
            const auto* stats = world().database().lookup(record.signature);
            if (stats != nullptr && stats->unique()) ++unique;
        }
    }
    ASSERT_GT(labeled, 1000u);
    const double share = static_cast<double>(unique) / static_cast<double>(labeled);
    EXPECT_GT(share, 0.7);
}

TEST_F(WorldFixture, UniqueMatchesAgreeWithGroundTruth) {
    // LFP's unique-signature verdicts should almost always match the actual
    // simulated vendor (the paper reports ≈95-99% accuracy for majors).
    std::size_t checked = 0;
    std::size_t correct = 0;
    const auto& topology = world().topology();
    for (const auto& record : world().ripe5_measurement().records) {
        if (record.lfp.kind != core::MatchKind::unique_full) continue;
        const std::size_t index = topology.find_by_interface(record.probes.target);
        if (index == sim::Topology::npos) continue;
        ++checked;
        if (record.lfp.vendor == topology.router(index).vendor()) ++correct;
    }
    ASSERT_GT(checked, 500u);
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.95);
}

TEST_F(WorldFixture, SnmpLabelsAlwaysMatchGroundTruth) {
    const auto& topology = world().topology();
    for (const auto& record : world().itdk_measurement().records) {
        if (!record.snmp_vendor) continue;
        const std::size_t index = topology.find_by_interface(record.probes.target);
        ASSERT_NE(index, sim::Topology::npos);
        EXPECT_EQ(*record.snmp_vendor, topology.router(index).vendor());
    }
}

TEST_F(WorldFixture, CiscoDominatesLabeledData) {
    // Paper Table 5: Cisco ≈ half the labeled IPs, Juniper/Huawei ≈ 10% each.
    std::map<stack::Vendor, std::size_t> counts;
    std::size_t total = 0;
    for (const auto& measurement : world().measurements()) {
        for (const auto& record : measurement.records) {
            if (!record.snmp_vendor) continue;
            ++counts[*record.snmp_vendor];
            ++total;
        }
    }
    ASSERT_GT(total, 1000u);
    const double cisco = static_cast<double>(counts[stack::Vendor::cisco]) /
                         static_cast<double>(total);
    EXPECT_GT(cisco, 0.3);
    EXPECT_LT(cisco, 0.7);
    EXPECT_GT(counts[stack::Vendor::mikrotik], counts[stack::Vendor::ericsson]);
}

TEST_F(WorldFixture, AliasSetInterfacesAgreeOnVendor) {
    // Paper §7.2: ≈99% of alias sets report one vendor across interfaces.
    const auto lfp_map =
        VendorMap::from_measurement(world().itdk_measurement(), VendorMap::Method::lfp);
    const auto snmp_map =
        VendorMap::from_measurement(world().itdk_measurement(), VendorMap::Method::snmpv3);
    const auto verdicts = map_routers(world().itdk(), world().topology(), snmp_map, lfp_map);
    std::size_t conflicting = 0;
    std::size_t identified = 0;
    for (const auto& verdict : verdicts) {
        if (!verdict.combined()) continue;
        ++identified;
        if (verdict.conflicting_interfaces) ++conflicting;
    }
    ASSERT_GT(identified, 100u);
    EXPECT_LT(static_cast<double>(conflicting) / static_cast<double>(identified), 0.05);
}

TEST_F(WorldFixture, DeterministicAcrossRebuilds) {
    auto second = ExperimentWorld::create(config());
    ASSERT_EQ(second->measurements().size(), world().measurements().size());
    for (std::size_t m = 0; m < second->measurements().size(); ++m) {
        const auto& a = world().measurements()[m];
        const auto& b = second->measurements()[m];
        ASSERT_EQ(a.records.size(), b.records.size()) << a.name;
        EXPECT_EQ(a.snmp_count(), b.snmp_count());
        for (std::size_t r = 0; r < a.records.size(); r += 97) {
            EXPECT_EQ(a.records[r].signature, b.records[r].signature);
            EXPECT_EQ(a.records[r].lfp.vendor, b.records[r].lfp.vendor);
        }
    }
    EXPECT_EQ(second->database().signatures().size(),
              world().database().signatures().size());
}

TEST_F(WorldFixture, PathAnalysisIdentifiesMostPaths) {
    // Paper §6: with ≥3 hops, ≥1 hop identifiable on ~82% of paths, ≥2 on
    // ~62%. Assert the coarse shape.
    const auto combined = VendorMap::from_measurement(world().ripe5_measurement(),
                                                      VendorMap::Method::combined);
    PathAnalyzer analyzer(world().topology(), combined);
    const auto stats = analyzer.analyze(world().ripe5().traces, PathScope::all, {.min_hops = 3});
    ASSERT_GT(stats.paths_considered, 1000u);
    const double at_least_one = static_cast<double>(stats.paths_with_k_identified(1)) /
                                static_cast<double>(stats.paths_considered);
    const double at_least_two = static_cast<double>(stats.paths_with_k_identified(2)) /
                                static_cast<double>(stats.paths_considered);
    EXPECT_GT(at_least_one, 0.6);
    EXPECT_GT(at_least_two, 0.4);
    EXPECT_LT(at_least_two, at_least_one);
}

/// Scoped environment override (restores the previous value on destruction).
class ScopedEnv {
  public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        const char* previous = std::getenv(name);
        if (previous != nullptr) saved_ = previous;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (saved_) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    const char* name_;
    std::optional<std::string> saved_;
};

TEST(WorldConfigEnv, ReadsCampaignKnobs) {
    ScopedEnv window("LFP_WINDOW", "64");
    ScopedEnv workers("LFP_WORKERS", "3");
    ScopedEnv vantages("LFP_VANTAGES", "4");
    ScopedEnv pps("LFP_PPS", "25000.5");
    ScopedEnv passes("LFP_PASSES", "3");
    const WorldConfig config = WorldConfig::from_env();
    EXPECT_EQ(config.window, 64u);
    EXPECT_EQ(config.worker_threads, 3u);
    EXPECT_EQ(config.vantages, 4u);
    EXPECT_DOUBLE_EQ(config.packets_per_second, 25000.5);
    EXPECT_EQ(config.passes, 3u);
}

TEST(WorldConfigEnv, RejectsBadPacingAndPassKnobs) {
    {
        ScopedEnv pps("LFP_PPS", "-100");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv pps("LFP_PPS", "brisk");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv passes("LFP_PASSES", "0");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv passes("LFP_PASSES", "1000");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    // The documented defaults: unpaced, single pass.
    const WorldConfig config = WorldConfig::from_env();
    EXPECT_DOUBLE_EQ(config.packets_per_second, 0.0);
    EXPECT_EQ(config.passes, 1u);
}

TEST(WorldConfigEnv, RejectsZeroVantages) {
    ScopedEnv vantages("LFP_VANTAGES", "0");
    try {
        (void)WorldConfig::from_env();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("LFP_VANTAGES"), std::string::npos)
            << error.what();
    }
}

TEST(WorldConfigEnv, RejectsAbsurdValues) {
    {
        ScopedEnv window("LFP_WINDOW", "0");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv window("LFP_WINDOW", "9999999");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv vantages("LFP_VANTAGES", "100000");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv workers("LFP_WORKERS", "not-a-number");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        // strtoull would silently wrap "-1" to 2^64-1; from_env must reject.
        ScopedEnv traces("LFP_TRACES", "-1");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv scale("LFP_SCALE", "fast");
        EXPECT_THROW((void)WorldConfig::from_env(), std::invalid_argument);
    }
    // worker_threads = 0 is the documented "one per hardware thread".
    ScopedEnv workers("LFP_WORKERS", "0");
    EXPECT_EQ(WorldConfig::from_env().worker_threads, 0u);
}

TEST(WorldConfigEnv, ValidateRejectsDirectMisconfiguration) {
    WorldConfig config;
    config.vantages = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.vantages = 2;
    config.window = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.window = 32;
    config.validate();
}

}  // namespace
}  // namespace lfp::analysis
