// Tests for the census-as-a-service layer: RCU-style snapshot publication
// (lock-free readers vs concurrent publishes, version retention), the
// pass-aware absorb-with-retraction sink, byte-identity of served answers
// against the batch pipeline over an identically-seeded world, the
// recurring-pass scheduler, and the wire protocol (framing + the full
// command surface, no socket required).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace lfp {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- fixtures

/// A small deterministic sim world, rebuilt from fixed seeds — two
/// instances probe to byte-identical records (stateful routers mean one
/// instance cannot be probed twice identically, so byte-identity tests
/// build two).
struct ServeWorld {
    ServeWorld()
        : topology(sim::Topology::build({.seed = 77,
                                         .num_ases = 60,
                                         .tier1_count = 4,
                                         .transit_fraction = 0.2,
                                         .scale = 0.4})),
          internet(topology, {.seed = 13, .loss_rate = 0.02}),
          transport(std::make_unique<probe::SimTransport>(internet)) {}

    [[nodiscard]] core::CensusPlan plan(std::size_t limit = 120) const {
        core::CensusPlan plan;
        plan.name = "serve";
        for (std::size_t i = 0; i < topology.router_count() && plan.targets.size() < limit;
             ++i) {
            plan.targets.push_back(topology.router(i).interfaces().front());
        }
        plan.vantages.push_back(transport.get());
        plan.campaign.window = 16;
        plan.passes = 2;
        plan.worker_threads = 2;
        return plan;
    }

    [[nodiscard]] serve::AsnResolver resolver() {
        sim::Topology* topo = &topology;
        return [topo](net::IPv4Address address) -> std::optional<std::uint32_t> {
            const std::size_t index = topo->find_by_interface(address);
            if (index == sim::Topology::npos) return std::nullopt;
            return topo->asn_of(index);
        };
    }

    sim::Topology topology;
    sim::Internet internet;
    std::unique_ptr<probe::SimTransport> transport;
};

serve::ServiceConfig on_demand_config(ServeWorld& world) {
    serve::ServiceConfig config;
    config.name = "serve";
    config.run_immediately = false;
    config.asn = world.resolver();
    return config;
}

std::shared_ptr<const serve::Snapshot> empty_snapshot(std::uint64_t version) {
    serve::SnapshotBuilder builder;
    return builder.build(version, {});
}

core::TargetRecord labeled(const std::string& key, std::optional<stack::Vendor> vendor) {
    core::TargetRecord record;
    record.features.protocol_mask = 0b111;  // non-empty feature row
    record.signature = core::Signature::from_parts(key, 0b111);
    record.snmp_vendor = vendor;
    return record;
}

// ----------------------------------------------------------- SnapshotStore

TEST(SnapshotStore, PublishCurrentAndRetention) {
    serve::SnapshotStore store(3);
    EXPECT_EQ(store.current(), nullptr);
    EXPECT_EQ(store.version(1), nullptr);

    for (std::uint64_t v = 1; v <= 6; ++v) {
        EXPECT_EQ(store.publish(empty_snapshot(v)), v);
    }
    ASSERT_NE(store.current(), nullptr);
    EXPECT_EQ(store.current()->version(), 6u);

    // Ring of 3: versions 4..6 retained, 1..3 aged out.
    EXPECT_EQ(store.version(3), nullptr);
    for (std::uint64_t v = 4; v <= 6; ++v) {
        ASSERT_NE(store.version(v), nullptr);
        EXPECT_EQ(store.version(v)->version(), v);
    }
    const auto retained = store.retained();
    ASSERT_EQ(retained.size(), 3u);
    EXPECT_EQ(retained.front()->version(), 4u);
    EXPECT_EQ(retained.back()->version(), 6u);

    // A zero retain limit clamps to one — the current snapshot is always
    // reachable by version.
    serve::SnapshotStore tight(0);
    EXPECT_EQ(tight.retain_limit(), 1u);
}

TEST(SnapshotStore, ReadersNeverObserveTornOrBackwardVersions) {
    serve::SnapshotStore store(4);
    constexpr std::uint64_t kVersions = 200;
    std::vector<std::shared_ptr<const serve::Snapshot>> prebuilt;
    prebuilt.reserve(kVersions);
    for (std::uint64_t v = 1; v <= kVersions; ++v) prebuilt.push_back(empty_snapshot(v));

    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&store, &done, &failed] {
            std::uint64_t last_seen = 0;
            while (!done.load(std::memory_order_acquire)) {
                const auto snapshot = store.current();
                if (snapshot == nullptr) continue;  // before the first publish
                const std::uint64_t version = snapshot->version();
                // The RCU contract: a held snapshot stays valid, and the
                // published version never goes backward.
                if (version < last_seen || version == 0 || version > kVersions) {
                    failed.store(true, std::memory_order_release);
                    return;
                }
                last_seen = version;
            }
        });
    }
    for (auto& snapshot : prebuilt) store.publish(std::move(snapshot));
    done.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(store.current()->version(), kVersions);
}

// ------------------------------------------- pass-aware absorb/retraction

TEST(SignatureAbsorbSink, RetractionMakesIncrementalFeedMatchFinalOnly) {
    // Incremental per-pass feed: repeated global indices supersede earlier
    // records — the sink retracts the superseded contribution before
    // absorbing the upgrade.
    const core::SignatureDbConfig config{.min_occurrences = 1};
    core::SignatureDatabase incremental(config);
    core::SignatureAbsorbSink sink(incremental, nullptr, {.retract_superseded = true});
    sink.accept(0, labeled("sigA", stack::Vendor::cisco));
    sink.accept(1, labeled("sigB", stack::Vendor::juniper));
    sink.accept(2, labeled("sigC", std::nullopt));            // unlabeled pass-0 record
    sink.accept(0, labeled("sigA2", stack::Vendor::cisco));   // signature upgraded on retry
    sink.accept(1, labeled("sigB", stack::Vendor::nokia));    // label changed on retry
    sink.accept(2, labeled("sigC", stack::Vendor::huawei));   // label gained on retry
    sink.finish();
    incremental.finalize();

    // Final-records-only absorption of the same census.
    core::SignatureDatabase final_only(config);
    for (const auto& record :
         {labeled("sigA2", stack::Vendor::cisco), labeled("sigB", stack::Vendor::nokia),
          labeled("sigC", stack::Vendor::huawei)}) {
        final_only.add_labeled(record.signature, *record.snmp_vendor);
    }
    final_only.finalize();

    ASSERT_EQ(incremental.signatures().size(), final_only.signatures().size());
    for (const auto& [signature, stats] : final_only.signatures()) {
        const core::SignatureStats* incremental_stats = incremental.lookup(signature);
        ASSERT_NE(incremental_stats, nullptr) << signature.key();
        EXPECT_EQ(incremental_stats->total, stats.total) << signature.key();
        EXPECT_EQ(incremental_stats->vendor_counts, stats.vendor_counts) << signature.key();
    }
    // The fully-retracted signature is gone, not present-with-zero.
    EXPECT_EQ(incremental.lookup(core::Signature::from_parts("sigA", 0b111)), nullptr);

    // Without retraction the superseded contributions linger — the flag is
    // doing the work.
    core::SignatureDatabase additive(config);
    core::SignatureAbsorbSink plain(additive, nullptr);
    plain.accept(0, labeled("sigA", stack::Vendor::cisco));
    plain.accept(0, labeled("sigA2", stack::Vendor::cisco));
    additive.finalize();
    EXPECT_NE(additive.lookup(core::Signature::from_parts("sigA", 0b111)), nullptr);
}

// ------------------------------------------------ served == batch pipeline

TEST(ServeByteIdentity, SnapshotAnswersMatchBatchClassifications) {
    // Serving side: one census through the SnapshotBuilder path.
    ServeWorld serving_world;
    serve::CensusService service(serving_world.plan(), on_demand_config(serving_world));
    EXPECT_EQ(service.run_census_now(), 1u);
    const auto snapshot = service.store().current();
    ASSERT_NE(snapshot, nullptr);

    // Reference side: the classic batch pipeline over a *fresh* world
    // rebuilt from the same seeds (simulated routers are stateful, so the
    // serving world cannot simply be probed again).
    ServeWorld batch_world;
    core::CensusRunner runner(batch_world.plan());
    core::Measurement measurement = runner.run_passes();
    const core::SignatureDatabase database =
        runner.build_database(std::span<const core::Measurement>(&measurement, 1));
    runner.classify(measurement, database);

    // Byte-identical CSV export — same records, same classifications, same
    // pass provenance, same order.
    std::ostringstream served;
    std::ostringstream batch;
    io::export_measurement_csv(served, snapshot->expand());
    io::export_measurement_csv(batch, measurement);
    EXPECT_EQ(served.str(), batch.str());

    // Same pass trajectory.
    ASSERT_EQ(snapshot->pass_stats().size(), runner.last_pass_stats().size());
    for (std::size_t p = 0; p < snapshot->pass_stats().size(); ++p) {
        EXPECT_EQ(snapshot->pass_stats()[p], runner.last_pass_stats()[p]) << "pass " << p;
    }

    // Point lookups agree with the batch records field by field.
    const serve::QueryEngine engine(service.store());
    std::size_t responsive = 0;
    for (const auto& record : measurement.records) {
        const serve::VendorAnswer answer = engine.vendor_of(record.probes.target);
        ASSERT_TRUE(answer.known) << record.probes.target.to_string();
        EXPECT_EQ(answer.version, 1u);
        EXPECT_EQ(answer.snmp_vendor, record.snmp_vendor);
        EXPECT_EQ(answer.lfp_vendor, record.lfp.vendor);
        EXPECT_EQ(answer.kind, record.lfp.kind);
        EXPECT_EQ(answer.confidence, record.lfp.confidence);
        EXPECT_EQ(answer.pass, record.pass);
        if (answer.responsive) ++responsive;
    }
    EXPECT_EQ(responsive, snapshot->counts().responsive);
    EXPECT_GT(responsive, 0u);

    // The AS aggregates cover exactly the targets the resolver places.
    std::size_t routers_in_mixes = 0;
    for (const auto& [asn, mix] : snapshot->as_mixes()) {
        EXPECT_EQ(mix.asn, asn);
        routers_in_mixes += mix.routers_total;
    }
    EXPECT_EQ(routers_in_mixes, measurement.records.size());
}

// ---------------------------------------------------------- PassScheduler

TEST(PassScheduler, OnDemandTriggersRunExactlyWhenAsked) {
    std::atomic<int> passes{0};
    serve::PassScheduler scheduler([&passes] { ++passes; },
                                   {.interval = 0ms, .run_immediately = false});
    scheduler.start();
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(passes.load(), 0);  // nothing fires without a trigger

    scheduler.trigger();
    ASSERT_TRUE(scheduler.wait_for_passes(1, 5000ms));
    scheduler.trigger();
    ASSERT_TRUE(scheduler.wait_for_passes(2, 5000ms));
    EXPECT_EQ(passes.load(), 2);
    EXPECT_EQ(scheduler.passes_completed(), 2u);

    scheduler.stop();
    scheduler.stop();  // idempotent
    EXPECT_FALSE(scheduler.wait_for_passes(3, 10ms));
}

TEST(PassScheduler, IntervalModeFiresRepeatedly) {
    std::atomic<int> passes{0};
    serve::PassScheduler scheduler([&passes] { ++passes; },
                                   {.interval = 5ms, .run_immediately = true});
    scheduler.start();
    EXPECT_TRUE(scheduler.wait_for_passes(3, 5000ms));
    scheduler.stop();
    EXPECT_GE(passes.load(), 3);
}

TEST(PassScheduler, TriggerAloneStartsTheThread) {
    std::atomic<int> passes{0};
    serve::PassScheduler scheduler([&passes] { ++passes; },
                                   {.interval = 0ms, .run_immediately = false});
    scheduler.trigger();  // no explicit start()
    EXPECT_TRUE(scheduler.wait_for_passes(1, 5000ms));
}

TEST(CensusService, TriggeredCensusesPublishSuccessiveVersions) {
    ServeWorld world;
    serve::CensusService service(world.plan(40), on_demand_config(world));
    service.start();
    EXPECT_EQ(service.store().current(), nullptr);  // run_immediately = false

    service.trigger();
    ASSERT_TRUE(service.wait_for_census(1, 30000ms));
    ASSERT_NE(service.store().current(), nullptr);
    EXPECT_EQ(service.store().current()->version(), 1u);

    service.trigger();
    ASSERT_TRUE(service.wait_for_census(2, 30000ms));
    EXPECT_EQ(service.store().current()->version(), 2u);
    EXPECT_EQ(service.censuses_completed(), 2u);
    service.stop();

    // Both versions retained: the diff path has something to compare.
    EXPECT_NE(service.store().version(1), nullptr);
    EXPECT_NE(service.store().version(2), nullptr);
}

// ------------------------------------------------------------ wire framing

TEST(WireFraming, RoundTripsFramesFedInArbitraryChunks) {
    const std::string big(100'000, 'x');
    std::vector<std::uint8_t> stream;
    for (const std::string& payload : {std::string("hello"), std::string("y"), big}) {
        const auto frame = serve::encode_frame(payload);
        stream.insert(stream.end(), frame.begin(), frame.end());
    }

    serve::FrameDecoder decoder;
    std::vector<std::string> decoded;
    for (std::size_t i = 0; i < stream.size(); i += 7) {
        decoder.feed(stream.data() + i, std::min<std::size_t>(7, stream.size() - i));
        while (auto payload = decoder.next()) decoded.push_back(*payload);
    }
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0], "hello");
    EXPECT_EQ(decoded[1], "y");
    EXPECT_EQ(decoded[2], big);
    EXPECT_FALSE(decoder.error());
}

TEST(WireFraming, OversizedFrameIsAProtocolError) {
    const std::uint32_t absurd = serve::kMaxFramePayload + 1;
    const std::uint8_t header[4] = {
        static_cast<std::uint8_t>(absurd & 0xFF),
        static_cast<std::uint8_t>((absurd >> 8) & 0xFF),
        static_cast<std::uint8_t>((absurd >> 16) & 0xFF),
        static_cast<std::uint8_t>((absurd >> 24) & 0xFF),
    };
    serve::FrameDecoder decoder;
    decoder.feed(header, sizeof(header));
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_TRUE(decoder.error());
    EXPECT_NE(decoder.error_reason().find("exceeds the cap"), std::string::npos)
        << decoder.error_reason();
}

TEST(WireFraming, ZeroLengthFrameIsAProtocolError) {
    // An all-zero length prefix is what a desynchronized or garbage stream
    // most often looks like; no real command or response is ever empty.
    const std::uint8_t header[4] = {0, 0, 0, 0};
    serve::FrameDecoder decoder;
    decoder.feed(header, sizeof(header));
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_TRUE(decoder.error());
    EXPECT_EQ(decoder.error_reason(), "zero-length frame");

    // The decoder stays latched: later valid bytes are not reinterpreted.
    const auto good = serve::encode_frame("PING");
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_TRUE(decoder.error());
}

// --------------------------------------------------------- request handling

TEST(WireRequests, FullCommandSurface) {
    ServeWorld world;
    serve::CensusService service(world.plan(60), on_demand_config(world));
    const serve::QueryEngine engine(service.store());

    // Before any census: queries answer version 0, EXPORT refuses.
    EXPECT_EQ(serve::handle_request("PING", service, engine).response, "OK pong");
    EXPECT_TRUE(serve::handle_request("STATS", service, engine)
                    .response.find("version=0") != std::string::npos);
    EXPECT_TRUE(serve::handle_request("EXPORT", service, engine).response.rfind("ERR", 0) == 0);
    EXPECT_TRUE(serve::handle_request("DIFF 1 2", service, engine).response.rfind("ERR", 0) ==
                0);

    // TRIGGER is synchronous on the wire: it returns the published version.
    EXPECT_EQ(serve::handle_request("TRIGGER", service, engine).response, "OK version=1");
    EXPECT_EQ(serve::handle_request("TRIGGER", service, engine).response, "OK version=2");

    const auto snapshot = service.store().current();
    ASSERT_NE(snapshot, nullptr);
    const std::string first_ip =
        net::IPv4Address(snapshot->records().front().target).to_string();

    const std::string vendor = serve::handle_request("VENDOR " + first_ip, service, engine)
                                   .response;
    EXPECT_TRUE(vendor.rfind("OK version=2 ip=" + first_ip, 0) == 0) << vendor;
    EXPECT_NE(vendor.find("known=1"), std::string::npos) << vendor;
    EXPECT_NE(vendor.find("asn="), std::string::npos) << vendor;

    // Unknown address answers known=0; garbage answers ERR.
    EXPECT_NE(serve::handle_request("VENDOR 203.0.113.99", service, engine)
                  .response.find("known=0"),
              std::string::npos);
    EXPECT_TRUE(serve::handle_request("VENDOR not-an-ip", service, engine)
                    .response.rfind("ERR", 0) == 0);

    // ASMIX of the first target's AS covers at least that router.
    const auto asn = snapshot->asn_of(net::IPv4Address(snapshot->records().front().target));
    ASSERT_TRUE(asn.has_value());
    const std::string asmix =
        serve::handle_request("ASMIX " + std::to_string(*asn), service, engine).response;
    EXPECT_NE(asmix.find("routers="), std::string::npos) << asmix;
    EXPECT_NE(serve::handle_request("ASMIX 4294967000", service, engine)
                  .response.find("unknown"),
              std::string::npos);
    EXPECT_TRUE(serve::handle_request("ASMIX x", service, engine).response.rfind("ERR", 0) ==
                0);

    // PATH over three census targets: every hop known.
    std::string path_request = "PATH";
    for (std::size_t i = 0; i < 3 && i < snapshot->records().size(); ++i) {
        path_request += ' ' + net::IPv4Address(snapshot->records()[i].target).to_string();
    }
    const std::string path = serve::handle_request(path_request, service, engine).response;
    EXPECT_NE(path.find("hops=3 known=3"), std::string::npos) << path;

    // DIFF of the two published versions.
    const std::string diff = serve::handle_request("DIFF 1 2", service, engine).response;
    EXPECT_TRUE(diff.rfind("OK from=1 to=2", 0) == 0) << diff;
    EXPECT_NE(diff.find("from_passes=2 to_passes=2"), std::string::npos) << diff;
    EXPECT_TRUE(serve::handle_request("DIFF 1 99", service, engine).response.rfind("ERR", 0) ==
                0);

    // EXPORT returns the raw CSV (header first, no OK prefix).
    const std::string csv = serve::handle_request("EXPORT", service, engine).response;
    EXPECT_TRUE(csv.rfind("ip,responsive_protocols,", 0) == 0);

    // Operand and verb errors.
    EXPECT_TRUE(serve::handle_request("", service, engine).response.rfind("ERR", 0) == 0);
    EXPECT_TRUE(serve::handle_request("PING extra", service, engine).response.rfind("ERR", 0) ==
                0);
    EXPECT_TRUE(serve::handle_request("VENDOR", service, engine).response.rfind("ERR", 0) == 0);
    EXPECT_TRUE(serve::handle_request("DIFF 1", service, engine).response.rfind("ERR", 0) == 0);
    EXPECT_TRUE(serve::handle_request("NONSENSE", service, engine).response.rfind("ERR", 0) ==
                0);

    // SHUTDOWN answers and raises the flag.
    const serve::RequestOutcome shutdown = serve::handle_request("SHUTDOWN", service, engine);
    EXPECT_EQ(shutdown.response, "OK bye");
    EXPECT_TRUE(shutdown.shutdown);
    EXPECT_FALSE(serve::handle_request("PING", service, engine).shutdown);
}

// ------------------------------------------------------------- QueryEngine

TEST(QueryEngine, AnswersBeforeFirstPublishAreVersionZero) {
    serve::SnapshotStore store;
    const serve::QueryEngine engine(store);
    const serve::VendorAnswer vendor = engine.vendor_of(net::IPv4Address(0x01020304));
    EXPECT_EQ(vendor.version, 0u);
    EXPECT_FALSE(vendor.known);

    const serve::AsMixAnswer mix = engine.as_mix(42);
    EXPECT_EQ(mix.version, 0u);
    EXPECT_FALSE(mix.mix.has_value());

    const std::vector<net::IPv4Address> hops = {net::IPv4Address(0x01020304)};
    const serve::PathProfile profile = engine.path_profile(hops);
    EXPECT_EQ(profile.version, 0u);
    ASSERT_EQ(profile.hops.size(), 1u);
    EXPECT_FALSE(profile.hops.front().known);
    EXPECT_TRUE(profile.combination.empty());

    EXPECT_FALSE(engine.diff(1, 2).has_value());
}

// ------------------------------------------------------- durability (disk)

/// A fresh scratch directory under the system temp dir, removed on scope
/// exit.
class ScratchDir {
  public:
    explicit ScratchDir(const std::string& tag)
        : path_(std::filesystem::temp_directory_path() /
                ("lfp-test-" + tag + "-" + std::to_string(::getpid()))) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

  private:
    std::filesystem::path path_;
};

TEST(SnapshotPersistence, SaveLoadRoundTripsEveryServedAnswer) {
    ScratchDir dir("snap-roundtrip");
    ServeWorld world;
    serve::CensusService service(world.plan(), on_demand_config(world));
    ASSERT_EQ(service.run_census_now(), 1u);
    const auto original = service.store().current();
    ASSERT_NE(original, nullptr);

    const std::filesystem::path file = dir.path() / "one.snap";
    ASSERT_TRUE(serve::save_snapshot_file(file, *original));

    serve::ServiceConfig config = on_demand_config(world);
    const auto loaded =
        serve::load_snapshot_file(file, {.database = config.database, .asn = config.asn});
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->restored());
    EXPECT_FALSE(original->restored());
    EXPECT_EQ(loaded->version(), original->version());
    EXPECT_EQ(loaded->name(), original->name());
    EXPECT_EQ(loaded->created_unix_ms(), original->created_unix_ms());
    ASSERT_EQ(loaded->pass_stats().size(), original->pass_stats().size());

    // The reloaded snapshot serves byte-identical answers: same records,
    // same rebuilt signature database, same CSV export.
    std::ostringstream before;
    std::ostringstream after;
    io::export_measurement_csv(before, original->expand());
    io::export_measurement_csv(after, loaded->expand());
    EXPECT_EQ(before.str(), after.str());
    EXPECT_EQ(loaded->counts(), original->counts());
    EXPECT_EQ(loaded->as_mixes().size(), original->as_mixes().size());
}

TEST(SnapshotPersistence, LoadRejectsTruncationAndGarbage) {
    ScratchDir dir("snap-garbage");
    ServeWorld world;
    serve::CensusService service(world.plan(40), on_demand_config(world));
    ASSERT_EQ(service.run_census_now(), 1u);
    const std::filesystem::path file = dir.path() / "one.snap";
    ASSERT_TRUE(serve::save_snapshot_file(file, *service.store().current()));

    // Every prefix of a valid file is rejected, never crashes, never loads.
    std::ifstream in(file, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    for (std::size_t length : {std::size_t{0}, std::size_t{4}, std::size_t{7}, std::size_t{20},
                               bytes.size() / 2, bytes.size() - 1}) {
        const std::filesystem::path cut = dir.path() / "cut.snap";
        std::ofstream out(cut, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(length));
        out.close();
        EXPECT_EQ(serve::load_snapshot_file(cut), nullptr) << "prefix of " << length;
    }

    // Wrong magic is rejected outright.
    bytes[0] ^= 0x40;
    const std::filesystem::path bad = dir.path() / "bad.snap";
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    EXPECT_EQ(serve::load_snapshot_file(bad), nullptr);
    EXPECT_EQ(serve::load_snapshot_file(dir.path() / "missing.snap"), nullptr);
}

TEST(SnapshotPersistence, StorePersistsPublishesAndPrunesToRetention) {
    ScratchDir dir("snap-store");
    serve::SnapshotStore store(2, dir.path().string());
    for (std::uint64_t v = 1; v <= 5; ++v) store.publish(empty_snapshot(v));
    EXPECT_EQ(store.persist_failures(), 0u);

    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
        files.push_back(entry.path().filename().string());
    }
    std::sort(files.begin(), files.end());
    // Retention applies on disk as in memory: only the newest two survive.
    ASSERT_EQ(files.size(), 2u) << files.size() << " files on disk";
    EXPECT_EQ(files[0], "snapshot-v4.snap");
    EXPECT_EQ(files[1], "snapshot-v5.snap");

    const auto latest = serve::load_latest_snapshot(dir.path());
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->version(), 5u);
}

TEST(CensusService, RestoreLatestServesDegradedUntilFreshCensus) {
    ScratchDir dir("snap-restore");

    // First life: run two censuses with persistence on.
    std::string reference_csv;
    {
        ServeWorld world;
        serve::ServiceConfig config = on_demand_config(world);
        config.state_dir = dir.path().string();
        serve::CensusService service(world.plan(), config);
        ASSERT_EQ(service.run_census_now(), 1u);
        ASSERT_EQ(service.run_census_now(), 2u);
        std::ostringstream csv;
        io::export_measurement_csv(csv, service.store().current()->expand());
        reference_csv = csv.str();
    }

    // Second life: a fresh service over a fresh world restores v2 from disk
    // and answers degraded until the next census publishes v3.
    ServeWorld world;
    serve::ServiceConfig config = on_demand_config(world);
    config.state_dir = dir.path().string();
    serve::CensusService service(world.plan(), config);
    ASSERT_TRUE(service.restore_latest());
    EXPECT_EQ(service.censuses_completed(), 0u);  // a restore is not a census

    const auto restored = service.store().current();
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->version(), 2u);
    EXPECT_TRUE(restored->restored());
    std::ostringstream csv;
    io::export_measurement_csv(csv, restored->expand());
    EXPECT_EQ(csv.str(), reference_csv);

    // STATS stamps the degraded state and the snapshot's age.
    const serve::QueryEngine engine(service.store());
    const std::string degraded = serve::handle_request("STATS", service, engine).response;
    EXPECT_NE(degraded.find(" degraded=1 age_ms="), std::string::npos) << degraded;
    EXPECT_NE(degraded.find(" version=2 "), std::string::npos) << degraded;

    // The next census publishes v3 (numbering continues) and clears the
    // degraded stamp. A restored snapshot is never re-persisted, so disk
    // now holds exactly the original v1/v2 files plus the fresh v3.
    EXPECT_EQ(service.run_census_now(), 3u);
    const std::string fresh = serve::handle_request("STATS", service, engine).response;
    EXPECT_EQ(fresh.find("degraded"), std::string::npos) << fresh;
    EXPECT_NE(fresh.find(" version=3 "), std::string::npos) << fresh;
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 3u);

    // An empty or missing state dir restores nothing.
    serve::ServiceConfig no_state = on_demand_config(world);
    serve::CensusService cold(world.plan(40), no_state);
    EXPECT_FALSE(cold.restore_latest());
}

#ifndef _WIN32

TEST(ServeConnection, MidFrameDisconnectReturnsWithoutHanging) {
    ServeWorld world;
    serve::CensusService service(world.plan(40), on_demand_config(world));
    const serve::QueryEngine engine(service.store());

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Client thread: one full PING, then half a frame, then vanish.
    std::thread client([fd = fds[0]] {
        ASSERT_TRUE(serve::write_frame(fd, "PING"));
        const auto reply = serve::read_frame(fd);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(*reply, "OK pong");
        const auto torn = serve::encode_frame("STATS");
        // Length prefix plus two payload bytes — the frame never completes.
        ASSERT_GT(torn.size(), 6u);
        EXPECT_EQ(::write(fd, torn.data(), 6), 6);
        ::close(fd);  // peer vanishes mid-frame
    });

    // The server must observe EOF and return false — not spin, not crash,
    // not treat the torn frame as a request.
    EXPECT_FALSE(serve::serve_connection(fds[1], service, engine));
    client.join();
    ::close(fds[1]);
}

TEST(ServeConnection, ProtocolViolationAnswersStructuredErrorThenCloses) {
    ServeWorld world;
    serve::CensusService service(world.plan(40), on_demand_config(world));
    const serve::QueryEngine engine(service.store());

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::thread client([fd = fds[0]] {
        const std::uint8_t zero_header[4] = {0, 0, 0, 0};
        EXPECT_EQ(::write(fd, zero_header, sizeof(zero_header)), 4);
        const auto reply = serve::read_frame(fd);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(*reply, "ERR protocol: zero-length frame");
        // And then the connection is gone.
        EXPECT_FALSE(serve::read_frame(fd).has_value());
        ::close(fd);
    });

    EXPECT_FALSE(serve::serve_connection(fds[1], service, engine));
    ::close(fds[1]);
    client.join();
}

TEST(ServeConnection, ShutdownFrameEndsTheConnectionWithTrue) {
    ServeWorld world;
    serve::CensusService service(world.plan(40), on_demand_config(world));
    const serve::QueryEngine engine(service.store());

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread client([fd = fds[0]] {
        ASSERT_TRUE(serve::write_frame(fd, "SHUTDOWN"));
        const auto reply = serve::read_frame(fd);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(*reply, "OK bye");
        ::close(fd);
    });
    EXPECT_TRUE(serve::serve_connection(fds[1], service, engine));
    ::close(fds[1]);
    client.join();
}

#endif  // !_WIN32

}  // namespace
}  // namespace lfp
