// Tests for the vantage-aware CensusPlan/CensusRunner API: plan validation,
// affinity-grouped lane assignment, multi-vantage determinism (V ∈ {1,2,4}
// merged byte-identical under loss and jitter), the RIPE-5 four-vantage vs
// serial equivalence, and the sharded build_database / classify stages.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/census.hpp"
#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"
#include "sim/datasets.hpp"
#include "sim/internet.hpp"

namespace lfp::core {
namespace {

/// Never answers; probes vanish. Enough for ID-lane and validation tests.
class SilentTransport final : public probe::SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(192, 0, 2, 7);
    }

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t>) override {
        return std::nullopt;
    }
};

/// Up to `per_router` interface IPs of every router (so alias interfaces of
/// one stateful router appear as distinct targets), padded with phantom
/// (dead) addresses — the worst case for lane partitioning.
std::vector<net::IPv4Address> world_targets(const sim::Topology& topology, std::size_t limit,
                                            std::size_t per_router = 2) {
    std::vector<net::IPv4Address> targets;
    for (std::size_t i = 0; i < topology.router_count() && targets.size() < limit; ++i) {
        const auto& interfaces = topology.router(i).interfaces();
        for (std::size_t k = 0; k < std::min(per_router, interfaces.size()) &&
                                targets.size() < limit;
             ++k) {
            targets.push_back(interfaces[k]);
        }
    }
    for (std::size_t i = 0; i < topology.phantom_addresses().size() && targets.size() < limit;
         ++i) {
        targets.push_back(topology.phantom_addresses()[i]);
    }
    return targets;
}

/// Router-affinity keys: alias interfaces share their router's key; unknown
/// addresses are independent singletons.
std::vector<std::uint64_t> affinity_keys(const sim::Topology& topology,
                                         const std::vector<net::IPv4Address>& targets) {
    std::vector<std::uint64_t> keys;
    keys.reserve(targets.size());
    for (net::IPv4Address ip : targets) {
        const std::size_t router = topology.find_by_interface(ip);
        keys.push_back(router != sim::Topology::npos ? static_cast<std::uint64_t>(router)
                                                     : 0x8000000000000000ULL | ip.value());
    }
    return keys;
}

TEST(CensusPlan, ValidationRejectsBadPlans) {
    CensusPlan plan;
    EXPECT_THROW(plan.validate(), std::invalid_argument);  // no vantages

    SilentTransport transport;
    plan.vantages = {&transport};
    plan.validate();  // minimal valid plan

    plan.vantages.push_back(nullptr);
    EXPECT_THROW(plan.validate(), std::invalid_argument);  // null transport
    plan.vantages.pop_back();

    plan.campaign.window = 0;
    EXPECT_THROW(plan.validate(), std::invalid_argument);  // serial is window=1, not 0
    plan.campaign.window = CensusPlan::kMaxWindow + 1;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.campaign.window = 32;

    plan.worker_threads = CensusPlan::kMaxWorkers + 1;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.worker_threads = 0;

    plan.shard_grain = 0;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.shard_grain = 64;

    plan.targets = {net::IPv4Address::from_octets(10, 0, 0, 1),
                    net::IPv4Address::from_octets(10, 0, 0, 2)};
    plan.assignment = {0};
    EXPECT_THROW(plan.validate(), std::invalid_argument);  // size mismatch
    plan.assignment = {0, 7};
    EXPECT_THROW(plan.validate(), std::invalid_argument);  // lane out of range
    plan.assignment = {0, 0};
    plan.validate();
}

TEST(CensusPlan, ValidationErrorsNameTheKnob) {
    CensusPlan plan;
    try {
        plan.validate();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("vantage"), std::string::npos) << error.what();
    }
}

TEST(CensusPlan, AssignmentByAffinityGroupsEqualKeys) {
    const std::vector<std::uint64_t> keys{7, 3, 7, 9, 3, 7, 11};
    const auto assignment = CensusPlan::assignment_by_affinity(keys, 2);
    ASSERT_EQ(assignment.size(), keys.size());
    // Equal keys share a lane...
    EXPECT_EQ(assignment[0], assignment[2]);
    EXPECT_EQ(assignment[0], assignment[5]);
    EXPECT_EQ(assignment[1], assignment[4]);
    // ...and distinct groups are spread round-robin in first-appearance
    // order: 7 -> lane 0, 3 -> lane 1, 9 -> lane 0, 11 -> lane 1.
    EXPECT_EQ(assignment[0], 0u);
    EXPECT_EQ(assignment[1], 1u);
    EXPECT_EQ(assignment[3], 0u);
    EXPECT_EQ(assignment[6], 1u);
    // Every lane is within range.
    for (std::uint32_t lane : assignment) EXPECT_LT(lane, 2u);
}

TEST(CensusRunner, IdLanesDeriveFromGlobalIndex) {
    SilentTransport transport;
    CensusPlan plan;
    plan.vantages = {&transport};
    plan.campaign.ipid_base = 0x9000;
    CensusRunner runner(std::move(plan));

    const std::vector<net::IPv4Address> first{net::IPv4Address::from_octets(10, 0, 0, 1),
                                              net::IPv4Address::from_octets(10, 0, 0, 2)};
    const std::vector<net::IPv4Address> second{net::IPv4Address::from_octets(10, 0, 0, 3)};
    auto a = runner.measure("first", first);
    auto b = runner.measure("second", second);

    // Target i of the run carries ipid_base + (global index) * 10, and a
    // later measure() continues the lane where the previous one stopped —
    // exactly like one long serial campaign.
    EXPECT_EQ(a.records[0].probes.probes[0][0].request_ipid, 0x9000);
    EXPECT_EQ(a.records[1].probes.probes[0][0].request_ipid, 0x9000 + 10);
    EXPECT_EQ(b.records[0].probes.probes[0][0].request_ipid, 0x9000 + 20);
}

TEST(CensusRunner, SingleVantageMatchesLfpPipeline) {
    const sim::TopologyConfig topo_config{
        .seed = 19, .num_ases = 80, .tier1_count = 5, .transit_fraction = 0.2, .scale = 0.5};

    auto census = [&] {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.005});
        probe::SimTransport transport(internet);
        CensusPlan plan;
        plan.name = "equivalence";
        plan.vantages = {&transport};
        plan.campaign.window = 16;
        plan.targets = world_targets(topology, 150);
        CensusRunner runner(std::move(plan));
        return runner.run();
    }();

    auto pipeline = [&] {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 3, .loss_rate = 0.005});
        probe::SimTransport transport(internet);
        PipelineConfig config;
        config.campaign.window = 16;
        LfpPipeline pipe(transport, config);
        const auto targets = world_targets(topology, 150);
        return pipe.measure("equivalence", targets);
    }();

    EXPECT_EQ(census, pipeline);
}

TEST(CensusRunner, MultiVantageMergeIsByteIdenticalUnderLossAndJitter) {
    const sim::TopologyConfig topo_config{
        .seed = 7, .num_ases = 500, .tier1_count = 10, .transit_fraction = 0.18, .scale = 1.0};

    auto run_with = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 11, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(
                internet, probe::SimTransport::Options{.rtt = std::chrono::microseconds(200),
                                                       .jitter = 0.8}));
        }
        CensusPlan plan;
        plan.name = "multi-vantage";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = window;
        plan.campaign.response_timeout = std::chrono::milliseconds(250);
        plan.targets = world_targets(topology, 1000);
        plan.assignment =
            CensusPlan::assignment_by_affinity(affinity_keys(topology, plan.targets),
                                               vantage_count);
        plan.worker_threads = 4;
        CensusRunner runner(std::move(plan));
        return runner.run();
    };

    const auto serial = run_with(1, 1);
    ASSERT_EQ(serial.records.size(), 1000u);
    // The equivalence only means something if the world talked back.
    EXPECT_GT(serial.responsive_count(), serial.records.size() / 2);

    const auto two_lanes = run_with(2, 16);
    const auto four_lanes = run_with(4, 32);
    EXPECT_EQ(serial, two_lanes);
    EXPECT_EQ(serial, four_lanes);
}

TEST(CensusRunner, DefaultAssignmentPinsDuplicateAddressesToOneLane) {
    // Duplicate targets share a backend router whose counters must see them
    // in serial order; the default (assignment-free) partition must group
    // them even though round-robin would split them across lanes.
    const sim::TopologyConfig topo_config{
        .seed = 29, .num_ases = 60, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5};

    auto run_with = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 2, .loss_rate = 0.0});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(internet));
        }
        CensusPlan plan;
        plan.name = "duplicates";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = window;
        plan.targets = world_targets(topology, 8, 1);
        // The same address three times, at positions round-robin would
        // scatter over three different lanes.
        plan.targets.insert(plan.targets.begin() + 1, plan.targets.front());
        plan.targets.push_back(plan.targets.front());
        CensusRunner runner(std::move(plan));
        return runner.run();
    };

    const auto serial = run_with(1, 1);
    const auto four_lanes = run_with(4, 8);
    ASSERT_GT(serial.responsive_count(), 0u);
    EXPECT_EQ(serial, four_lanes);
    // The copies observed the router's counters advance between visits.
    EXPECT_EQ(serial.records[0].probes.target, serial.records[1].probes.target);
    EXPECT_NE(serial.records[0].probes.probes[0][0].request_ipid,
              serial.records[1].probes.probes[0][0].request_ipid);
}

TEST(CensusRunner, Ripe5FourVantagesMatchSerialRun) {
    // The acceptance scenario: the RIPE-5 snapshot's router IPs (interface
    // aliases included), probed by a 4-vantage census, must merge to the
    // byte-identical Measurement of a single-vantage serial run.
    const sim::TopologyConfig topo_config{
        .seed = 23, .num_ases = 300, .tier1_count = 8, .transit_fraction = 0.18, .scale = 0.5};
    const sim::Topology reference = sim::Topology::build(topo_config);
    sim::DatasetConfig dataset_config;
    dataset_config.seed = 0xDA7A;
    dataset_config.traces_per_snapshot = 4000;
    const auto snapshots = sim::DatasetBuilder(reference, dataset_config).ripe_snapshots();
    const auto targets = snapshots.back().router_ips();
    ASSERT_EQ(snapshots.back().name, "RIPE-5");
    ASSERT_GT(targets.size(), 500u);

    auto run_with = [&](std::size_t vantage_count, std::size_t window) {
        sim::Topology topology = sim::Topology::build(topo_config);
        sim::Internet internet(topology, {.seed = 31, .loss_rate = 0.004});
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        for (std::size_t v = 0; v < vantage_count; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(internet));
        }
        CensusPlan plan;
        plan.name = "RIPE-5";
        for (const auto& transport : transports) plan.vantages.push_back(transport.get());
        plan.campaign.window = window;
        plan.targets = targets;
        plan.assignment =
            CensusPlan::assignment_by_affinity(affinity_keys(topology, targets), vantage_count);
        CensusRunner runner(std::move(plan));
        return runner.run();
    };

    const auto serial = run_with(1, 1);
    const auto four_lanes = run_with(4, 32);
    EXPECT_GT(serial.responsive_count(), serial.records.size() / 2);
    EXPECT_EQ(serial, four_lanes);
}

/// Fixture with one labeled measurement for the sharded-stage tests.
class ShardedStages : public ::testing::Test {
  protected:
    static const Measurement& measurement() {
        static const Measurement instance = [] {
            sim::Topology topology = sim::Topology::build({.seed = 13,
                                                           .num_ases = 200,
                                                           .tier1_count = 6,
                                                           .transit_fraction = 0.2,
                                                           .scale = 0.8});
            sim::Internet internet(topology, {.seed = 5, .loss_rate = 0.004});
            probe::SimTransport transport(internet);
            CensusPlan plan;
            plan.vantages = {&transport};
            plan.campaign.window = 32;
            plan.targets = world_targets(topology, 600, 1);
            CensusRunner runner(std::move(plan));
            return runner.run();
        }();
        return instance;
    }
};

TEST_F(ShardedStages, BuildDatabaseIdenticalAtAnyWorkerCount) {
    const auto& m = measurement();
    const std::vector<Measurement> measurements{m, m, m};  // three "datasets"
    const SignatureDbConfig config{.min_occurrences = 3};

    const auto serial = LfpPipeline::build_database(measurements, config, 1);
    const auto four = LfpPipeline::build_database(measurements, config, 4);
    const auto hardware = LfpPipeline::build_database(measurements, config, 0);

    ASSERT_GT(serial.signatures().size(), 0u);
    EXPECT_TRUE(serial.signatures() == four.signatures());
    EXPECT_TRUE(serial.signatures() == hardware.signatures());
    EXPECT_EQ(serial.full_signature_counts().unique, four.full_signature_counts().unique);
    EXPECT_EQ(serial.full_signature_counts().non_unique,
              hardware.full_signature_counts().non_unique);
}

TEST_F(ShardedStages, ClassifyIdenticalAtAnyWorkerCount) {
    const auto& base = measurement();
    const std::vector<Measurement> corpus{base, base, base};
    const auto database = LfpPipeline::build_database(corpus, {.min_occurrences = 3});

    Measurement serial = base;
    LfpPipeline::classify_measurement(serial, database, {}, 1);
    std::size_t identified = 0;
    for (const auto& record : serial.records) {
        if (record.lfp.identified()) ++identified;
    }
    ASSERT_GT(identified, 0u) << "classification must label something for the test to bite";

    Measurement four = base;
    LfpPipeline::classify_measurement(four, database, {}, 4, 16);
    Measurement hardware = base;
    LfpPipeline::classify_measurement(hardware, database, {}, 0, 16);

    EXPECT_EQ(serial, four);
    EXPECT_EQ(serial, hardware);
}

}  // namespace
}  // namespace lfp::core
