// Tests for the response demultiplexer: flow-key round trips for every
// probe shape, matching under interleaved/out-of-order delivery, stray
// rejection, and cancellation.
#include <gtest/gtest.h>

#include <algorithm>

#include "probe/demux.hpp"

namespace lfp::probe {
namespace {

const net::IPv4Address kVantage = net::IPv4Address::from_octets(192, 0, 2, 7);
const net::IPv4Address kTarget = net::IPv4Address::from_octets(10, 1, 2, 3);
const net::IPv4Address kOtherRouter = net::IPv4Address::from_octets(10, 9, 9, 9);

net::IpSendOptions outbound(net::IPv4Address target = kTarget) {
    net::IpSendOptions ip;
    ip.source = kVantage;
    ip.destination = target;
    ip.identification = 0x4242;
    return ip;
}

net::IpSendOptions inbound(net::IPv4Address source = kTarget) {
    net::IpSendOptions ip;
    ip.source = source;
    ip.destination = kVantage;
    ip.identification = 0x9999;
    return ip;
}

net::ParsedPacket parse(const net::Bytes& packet) {
    auto parsed = net::parse_packet(packet);
    EXPECT_TRUE(parsed.has_value());
    return parsed.value();
}

TEST(FlowKey, IcmpEchoRoundTrip) {
    const auto request =
        net::make_icmp_echo_request(outbound(), /*identifier=*/0x1234, /*sequence=*/2,
                                    net::Bytes(56, 0xA5));
    auto request_key = request_flow_key(parse(request));
    ASSERT_TRUE(request_key.has_value());
    EXPECT_EQ(request_key->target, kTarget.value());

    net::IcmpEcho echo;
    echo.identifier = 0x1234;
    echo.sequence = 2;
    echo.payload = net::Bytes(56, 0xA5);
    const auto reply = net::make_icmp_echo_reply(inbound(), echo);
    auto reply_key = response_flow_key(parse(reply));
    ASSERT_TRUE(reply_key.has_value());
    EXPECT_EQ(*request_key, *reply_key);
}

TEST(FlowKey, EchoRequestIsNotAResponse) {
    const auto request =
        net::make_icmp_echo_request(outbound(), 0x1234, 0, net::Bytes(8, 0));
    EXPECT_FALSE(response_flow_key(parse(request)).has_value());
}

TEST(FlowKey, TcpPortSwapRoundTrip) {
    net::TcpSegment segment;
    segment.source_port = 43211;
    segment.destination_port = 33533;
    segment.flags.ack = true;
    segment.acknowledgment = 0xBEEF0001;
    const auto request = net::make_tcp_packet(outbound(), segment);
    auto request_key = request_flow_key(parse(request));
    ASSERT_TRUE(request_key.has_value());

    net::TcpSegment rst;
    rst.source_port = 33533;
    rst.destination_port = 43211;
    rst.flags.rst = true;
    const auto response = net::make_tcp_packet(inbound(), rst);
    auto response_key = response_flow_key(parse(response));
    ASSERT_TRUE(response_key.has_value());
    EXPECT_EQ(*request_key, *response_key);
}

TEST(FlowKey, UdpDirectReplyRoundTrip) {
    net::UdpDatagram datagram;
    datagram.source_port = 43218;
    datagram.destination_port = 161;
    datagram.payload = net::Bytes(16, 0x30);
    const auto request = net::make_udp_packet(outbound(), datagram);
    auto request_key = request_flow_key(parse(request));
    ASSERT_TRUE(request_key.has_value());

    net::UdpDatagram reply;
    reply.source_port = 161;
    reply.destination_port = 43218;
    reply.payload = net::Bytes(24, 0x30);
    const auto response = net::make_udp_packet(inbound(), reply);
    auto response_key = response_flow_key(parse(response));
    ASSERT_TRUE(response_key.has_value());
    EXPECT_EQ(*request_key, *response_key);
}

TEST(FlowKey, IcmpErrorQuotingUdpRoundTrip) {
    net::UdpDatagram datagram;
    datagram.source_port = 43211;
    datagram.destination_port = 33533;
    datagram.payload = net::Bytes(12, 0x00);
    const auto request = net::make_udp_packet(outbound(), datagram);
    auto request_key = request_flow_key(parse(request));
    ASSERT_TRUE(request_key.has_value());

    // Port unreachable from the target, quoting our whole probe.
    const auto error =
        net::make_icmp_error(inbound(), net::IcmpType::destination_unreachable,
                             net::kIcmpCodePortUnreachable, request, request.size());
    auto response_key = response_flow_key(parse(error));
    ASSERT_TRUE(response_key.has_value());
    EXPECT_EQ(*request_key, *response_key);
}

TEST(FlowKey, IcmpErrorQuotingTcpProbeRejected) {
    // TCP responsiveness means an actual RST; an admin-prohibited ICMP
    // error quoting the TCP probe must not key into the TCP slot.
    net::TcpSegment segment;
    segment.source_port = 43211;
    segment.destination_port = 33533;
    segment.flags.ack = true;
    const auto request = net::make_tcp_packet(outbound(), segment);

    const auto error =
        net::make_icmp_error(inbound(), net::IcmpType::destination_unreachable,
                             /*code=*/13, request, request.size());
    EXPECT_FALSE(response_flow_key(parse(error)).has_value());
}

TEST(FlowKey, IcmpErrorFromIntermediateRouterRejected) {
    net::UdpDatagram datagram;
    datagram.source_port = 43211;
    datagram.destination_port = 33533;
    const auto request = net::make_udp_packet(outbound(), datagram);

    // Same quote, but emitted by a router that is not the probed address:
    // the quoted destination no longer matches the error's source.
    const auto error =
        net::make_icmp_error(inbound(kOtherRouter), net::IcmpType::time_exceeded,
                             net::kIcmpCodeTtlExceeded, request, request.size());
    EXPECT_FALSE(response_flow_key(parse(error)).has_value());
}

TEST(ResponseDemux, MatchesOutOfOrderAndConsumes) {
    ResponseDemux demux;
    std::vector<net::Bytes> requests;
    std::vector<net::Bytes> responses;
    for (std::uint16_t round = 0; round < 3; ++round) {
        auto ip = outbound();
        const auto request =
            net::make_icmp_echo_request(ip, 0x7000, round, net::Bytes(8, 0));
        auto key = request_flow_key(parse(request));
        ASSERT_TRUE(key.has_value());
        demux.expect(*key, SlotRef{5, round});
        requests.push_back(request);

        net::IcmpEcho echo;
        echo.identifier = 0x7000;
        echo.sequence = round;
        echo.payload = net::Bytes(8, 0);
        responses.push_back(net::make_icmp_echo_reply(inbound(), echo));
    }
    EXPECT_EQ(demux.outstanding(), 3u);

    // Deliver in reverse order: every response still finds its slot.
    std::reverse(responses.begin(), responses.end());
    std::vector<std::uint16_t> resolved;
    for (const auto& response : responses) {
        auto slot = demux.match(parse(response));
        ASSERT_TRUE(slot.has_value());
        EXPECT_EQ(slot->target, 5u);
        resolved.push_back(slot->slot);
    }
    EXPECT_EQ(resolved, (std::vector<std::uint16_t>{2, 1, 0}));
    EXPECT_EQ(demux.outstanding(), 0u);
    EXPECT_EQ(demux.stray_responses(), 0u);

    // A duplicate delivery is a stray: the slot was consumed.
    EXPECT_FALSE(demux.match(parse(responses[0])).has_value());
    EXPECT_EQ(demux.stray_responses(), 1u);
}

TEST(ResponseDemux, InterleavedTargetsResolveIndependently) {
    ResponseDemux demux;
    const auto target_a = net::IPv4Address::from_octets(10, 0, 0, 1);
    const auto target_b = net::IPv4Address::from_octets(10, 0, 0, 2);
    for (std::uint64_t handle = 0; handle < 2; ++handle) {
        const auto target = handle == 0 ? target_a : target_b;
        const auto request = net::make_icmp_echo_request(
            outbound(target), /*identifier=*/0x11, /*sequence=*/0, net::Bytes(8, 0));
        auto key = request_flow_key(parse(request));
        ASSERT_TRUE(key.has_value());
        demux.expect(*key, SlotRef{handle, 0});
    }

    // B answers before A; identical id/seq, distinct source addresses.
    net::IcmpEcho echo;
    echo.identifier = 0x11;
    echo.sequence = 0;
    echo.payload = net::Bytes(8, 0);
    auto slot_b = demux.match(parse(net::make_icmp_echo_reply(inbound(target_b), echo)));
    ASSERT_TRUE(slot_b.has_value());
    EXPECT_EQ(slot_b->target, 1u);
    auto slot_a = demux.match(parse(net::make_icmp_echo_reply(inbound(target_a), echo)));
    ASSERT_TRUE(slot_a.has_value());
    EXPECT_EQ(slot_a->target, 0u);
}

TEST(ResponseDemux, CancelTargetDropsOnlyItsSlots) {
    ResponseDemux demux;
    for (std::uint64_t handle = 0; handle < 3; ++handle) {
        const auto target = net::IPv4Address::from_octets(
            10, 0, 1, static_cast<std::uint8_t>(handle + 1));
        const auto request =
            net::make_icmp_echo_request(outbound(target), 0x22, 0, net::Bytes(8, 0));
        demux.expect(request_flow_key(parse(request)).value(), SlotRef{handle, 0});
    }
    demux.cancel_target(1);
    EXPECT_EQ(demux.outstanding(), 2u);

    net::IcmpEcho echo;
    echo.identifier = 0x22;
    echo.sequence = 0;
    echo.payload = net::Bytes(8, 0);
    const auto cancelled = net::IPv4Address::from_octets(10, 0, 1, 2);
    EXPECT_FALSE(demux.match(parse(net::make_icmp_echo_reply(inbound(cancelled), echo))));
    const auto alive = net::IPv4Address::from_octets(10, 0, 1, 3);
    EXPECT_TRUE(demux.match(parse(net::make_icmp_echo_reply(inbound(alive), echo))));
}

}  // namespace
}  // namespace lfp::probe
