// Wire-engine tests: the RFC 1624 incremental checksum primitive, the
// shared send-retry policy, the no-privilege DgramWireBackend over real
// loopback sockets (batched/serial byte-identity, partial batches, lane
// isolation), RawSocketTransport construction paths, and the campaign's
// SNMP template patcher (patched discovery packets must be byte-identical
// to fresh serialization across every msgID encoding-length class).
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <random>
#include <vector>

#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "probe/campaign.hpp"
#include "probe/raw_socket_transport.hpp"
#include "probe/transport.hpp"
#include "probe/wire.hpp"
#include "snmp/snmpv3.hpp"
#include "stack/simulated_router.hpp"
#include "util/arena.hpp"

namespace lfp {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// RFC 1624 incremental checksum
// ---------------------------------------------------------------------------

net::Bytes random_words_packet(std::mt19937& rng, std::size_t words) {
    net::Bytes bytes(words * 2);
    std::uniform_int_distribution<int> byte(0, 255);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    return bytes;
}

TEST(ChecksumUpdate, MatchesFullRecomputeOnRandomHeaders) {
    std::mt19937 rng(1624);
    std::uniform_int_distribution<int> word_count(4, 32);
    std::uniform_int_distribution<int> word_value(0, 0xFFFF);
    for (int trial = 0; trial < 2000; ++trial) {
        net::Bytes packet = random_words_packet(rng, static_cast<std::size_t>(word_count(rng)));
        const std::uint16_t before = net::internet_checksum(packet);

        // Rewrite one aligned 16-bit word and compare the incremental
        // update against a full re-sum of the mutated packet.
        std::uniform_int_distribution<std::size_t> pick(0, packet.size() / 2 - 1);
        const std::size_t offset = pick(rng) * 2;
        const auto old_word =
            static_cast<std::uint16_t>((packet[offset] << 8) | packet[offset + 1]);
        const auto new_word = static_cast<std::uint16_t>(word_value(rng));
        packet[offset] = static_cast<std::uint8_t>(new_word >> 8);
        packet[offset + 1] = static_cast<std::uint8_t>(new_word & 0xFF);

        ASSERT_EQ(net::checksum_update(before, old_word, new_word),
                  net::internet_checksum(packet))
            << "trial " << trial << " offset " << offset;
    }
}

TEST(ChecksumUpdate, ChainsAcrossMultipleWordRewrites) {
    // The patcher chains several updates (IPID, two destination words); the
    // chain must equal one full recompute, in any order.
    std::mt19937 rng(42);
    for (int trial = 0; trial < 500; ++trial) {
        net::Bytes packet = random_words_packet(rng, 10);
        std::uint16_t sum = net::internet_checksum(packet);
        std::uniform_int_distribution<int> word_value(0, 0xFFFF);
        for (std::size_t offset : {std::size_t{4}, std::size_t{16}, std::size_t{18}}) {
            const auto old_word =
                static_cast<std::uint16_t>((packet[offset] << 8) | packet[offset + 1]);
            const auto new_word = static_cast<std::uint16_t>(word_value(rng));
            packet[offset] = static_cast<std::uint8_t>(new_word >> 8);
            packet[offset + 1] = static_cast<std::uint8_t>(new_word & 0xFF);
            sum = net::checksum_update(sum, old_word, new_word);
        }
        ASSERT_EQ(sum, net::internet_checksum(packet)) << "trial " << trial;
    }
}

// ---------------------------------------------------------------------------
// Send-retry policy
// ---------------------------------------------------------------------------

TEST(SendRetry, TransientErrorsRetryThenSucceed) {
    std::uint64_t transient = 0;
    std::uint64_t failures = 0;
    int calls = 0;
    const bool sent = probe::send_with_retry(
        [&]() -> long {
            if (++calls <= 2) {
                errno = EAGAIN;
                return -1;
            }
            return 1;
        },
        transient, failures);
    EXPECT_TRUE(sent);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(transient, 2u);
    EXPECT_EQ(failures, 0u);
}

TEST(SendRetry, HardErrorFailsImmediately) {
    std::uint64_t transient = 0;
    std::uint64_t failures = 0;
    int calls = 0;
    const bool sent = probe::send_with_retry(
        [&]() -> long {
            ++calls;
            errno = EACCES;
            return -1;
        },
        transient, failures);
    EXPECT_FALSE(sent);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(transient, 0u);
    EXPECT_EQ(failures, 1u);
}

TEST(SendRetry, ExhaustionCountsOneFailure) {
    std::uint64_t transient = 0;
    std::uint64_t failures = 0;
    const bool sent = probe::send_with_retry(
        []() -> long {
            errno = ENOBUFS;
            return -1;
        },
        transient, failures);
    EXPECT_FALSE(sent);
    EXPECT_GE(transient, 2u);  // every attempt but the policy's cap retried
    EXPECT_EQ(failures, 1u);
}

// ---------------------------------------------------------------------------
// DgramWireBackend over loopback
// ---------------------------------------------------------------------------

probe::WireConfig dgram_config(probe::WireMode mode, const std::string& source,
                               std::size_t batch = 64) {
    probe::WireConfig config;
    config.mode = mode;
    config.batch = batch;
    config.source = source;
    return config;
}

/// Drains `receiver` until `expect` packets arrived or ~2s elapsed.
std::vector<net::Bytes> drain_packets(probe::DgramWireBackend& receiver, std::size_t expect,
                                      util::BufferPool& pool) {
    std::vector<net::Bytes> got;
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (got.size() < expect && std::chrono::steady_clock::now() < deadline) {
        receiver.receive(50ms, pool, got);
    }
    return got;
}

std::vector<net::Bytes> loopback_roundtrip(probe::WireMode mode,
                                           const std::vector<net::Bytes>& packets,
                                           std::size_t batch = 64) {
    probe::DgramWireBackend receiver(dgram_config(mode, "127.0.0.1", batch));
    probe::DgramWireBackend sender(dgram_config(mode, "127.0.0.1", batch));
    EXPECT_TRUE(receiver.ready()) << receiver.status();
    EXPECT_TRUE(sender.ready()) << sender.status();
    EXPECT_TRUE(sender.set_peer(receiver.local_address(), receiver.local_port()));
    sender.send(std::span<const net::Bytes>(packets.data(), packets.size()));
    util::BufferPool pool;
    return drain_packets(receiver, packets.size(), pool);
}

/// Sorted copy, so arrival-order differences never mask content diffs.
std::vector<net::Bytes> sorted(std::vector<net::Bytes> packets) {
    std::sort(packets.begin(), packets.end());
    return packets;
}

TEST(DgramWire, BatchedDeliversByteIdenticalToSerial) {
    // Varied sizes break GSO runs mid-batch; every packet must still arrive
    // with identical bytes under both modes.
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> size(20, 900);
    std::uniform_int_distribution<int> byte(0, 255);
    std::vector<net::Bytes> packets;
    for (int i = 0; i < 40; ++i) {
        net::Bytes packet(static_cast<std::size_t>(size(rng)));
        for (auto& b : packet) b = static_cast<std::uint8_t>(byte(rng));
        packets.push_back(std::move(packet));
    }

    const auto serial = loopback_roundtrip(probe::WireMode::serial, packets);
    const auto batched = loopback_roundtrip(probe::WireMode::batched, packets);

    ASSERT_EQ(serial.size(), packets.size());
    ASSERT_EQ(batched.size(), packets.size());
    EXPECT_EQ(sorted(serial), sorted(packets));
    EXPECT_EQ(sorted(batched), sorted(packets));
}

TEST(DgramWire, PartialBatchesFlushCompletely) {
    // 11 equal-size packets through a batch depth of 4: the flush loop must
    // issue several syscalls and deliver every packet exactly once.
    std::vector<net::Bytes> packets;
    for (std::uint8_t i = 0; i < 11; ++i) {
        packets.emplace_back(net::Bytes(84, i));
    }
    probe::DgramWireBackend receiver(dgram_config(probe::WireMode::batched, "127.0.0.1", 4));
    probe::DgramWireBackend sender(dgram_config(probe::WireMode::batched, "127.0.0.1", 4));
    ASSERT_TRUE(receiver.ready()) << receiver.status();
    ASSERT_TRUE(sender.ready()) << sender.status();
    ASSERT_TRUE(sender.set_peer(receiver.local_address(), receiver.local_port()));

    sender.send(std::span<const net::Bytes>(packets.data(), packets.size()));
    EXPECT_EQ(sender.counters().packets_sent, packets.size());
    EXPECT_EQ(sender.counters().send_failures, 0u);
    EXPECT_GE(sender.counters().send_syscalls, 1u);

    util::BufferPool pool;
    const auto got = drain_packets(receiver, packets.size(), pool);
    ASSERT_EQ(got.size(), packets.size());
    EXPECT_EQ(sorted(got), sorted(packets));
    EXPECT_EQ(receiver.counters().packets_received, packets.size());
}

TEST(DgramWire, PerSourceLanesAreIsolated) {
    // Two receive lanes on distinct loopback addresses: each sender aims at
    // one lane, and neither lane may observe the other's traffic.
    probe::DgramWireBackend lane_a(dgram_config(probe::WireMode::batched, "127.0.0.2"));
    probe::DgramWireBackend lane_b(dgram_config(probe::WireMode::batched, "127.0.0.3"));
    ASSERT_TRUE(lane_a.ready()) << lane_a.status();
    ASSERT_TRUE(lane_b.ready()) << lane_b.status();
    EXPECT_EQ(lane_a.local_address().to_string(), "127.0.0.2");
    EXPECT_EQ(lane_b.local_address().to_string(), "127.0.0.3");

    probe::DgramWireBackend sender_a(dgram_config(probe::WireMode::batched, "127.0.0.2"));
    probe::DgramWireBackend sender_b(dgram_config(probe::WireMode::batched, "127.0.0.3"));
    ASSERT_TRUE(sender_a.set_peer(lane_a.local_address(), lane_a.local_port()));
    ASSERT_TRUE(sender_b.set_peer(lane_b.local_address(), lane_b.local_port()));

    const std::vector<net::Bytes> to_a(3, net::Bytes(64, 0xAA));
    const std::vector<net::Bytes> to_b(5, net::Bytes(64, 0xBB));
    sender_a.send(std::span<const net::Bytes>(to_a.data(), to_a.size()));
    sender_b.send(std::span<const net::Bytes>(to_b.data(), to_b.size()));

    util::BufferPool pool_a;
    util::BufferPool pool_b;
    const auto got_a = drain_packets(lane_a, to_a.size(), pool_a);
    const auto got_b = drain_packets(lane_b, to_b.size(), pool_b);
    ASSERT_EQ(got_a.size(), to_a.size());
    ASSERT_EQ(got_b.size(), to_b.size());
    for (const auto& packet : got_a) EXPECT_EQ(packet, net::Bytes(64, 0xAA));
    for (const auto& packet : got_b) EXPECT_EQ(packet, net::Bytes(64, 0xBB));
}

TEST(DgramWire, ReceivePoolRecyclesBuffers) {
    // Returning consumed buffers to the pool must make subsequent receives
    // allocation-free (pool hits instead of misses).
    probe::DgramWireBackend receiver(dgram_config(probe::WireMode::batched, "127.0.0.1"));
    probe::DgramWireBackend sender(dgram_config(probe::WireMode::batched, "127.0.0.1"));
    ASSERT_TRUE(sender.set_peer(receiver.local_address(), receiver.local_port()));

    util::BufferPool pool;
    const std::vector<net::Bytes> wave(8, net::Bytes(100, 0x5A));
    sender.send(std::span<const net::Bytes>(wave.data(), wave.size()));
    auto got = drain_packets(receiver, wave.size(), pool);
    ASSERT_EQ(got.size(), wave.size());
    for (auto& packet : got) pool.release(std::move(packet));

    const std::uint64_t misses_before = pool.misses();
    sender.send(std::span<const net::Bytes>(wave.data(), wave.size()));
    got = drain_packets(receiver, wave.size(), pool);
    ASSERT_EQ(got.size(), wave.size());
    EXPECT_EQ(pool.misses(), misses_before) << "second wave should reuse pooled buffers";
    EXPECT_GT(pool.hits(), 0u);
}

// ---------------------------------------------------------------------------
// WireConfig / RawSocketTransport surfaces
// ---------------------------------------------------------------------------

TEST(WireConfig, FromEnvParsesKnobs) {
    setenv("LFP_WIRE_BACKEND", "serial", 1);
    setenv("LFP_WIRE_BATCH", "7", 1);
    auto config = probe::WireConfig::from_env();
    EXPECT_EQ(config.mode, probe::WireMode::serial);
    EXPECT_EQ(config.batch, 7u);

    setenv("LFP_WIRE_BACKEND", "definitely-not-a-backend", 1);
    config = probe::WireConfig::from_env();
    EXPECT_EQ(config.mode, probe::WireMode::batched) << "unknown names keep the default";

    unsetenv("LFP_WIRE_BACKEND");
    unsetenv("LFP_WIRE_BATCH");

    probe::WireConfig clamped;
    clamped.batch = 0;
    EXPECT_EQ(clamped.clamped_batch(), 1u);
    clamped.batch = probe::WireConfig::kMaxBatch + 100;
    EXPECT_EQ(clamped.clamped_batch(), probe::WireConfig::kMaxBatch);
}

TEST(RawSocketTransport, DryRunNeverOpensSockets) {
    probe::RawSocketTransport::Options options;
    options.dry_run = true;
    probe::RawSocketTransport transport(options);
    EXPECT_FALSE(transport.ready());
    EXPECT_TRUE(transport.drained()) << "no sockets -> provably silent";
    EXPECT_EQ(transport.backend(), nullptr);
    EXPECT_EQ(transport.send_failures(), 0u);

    // The recycle path must be callable regardless of readiness.
    transport.recycle(net::Bytes(32, 0));
    std::vector<net::Bytes> out;
    transport.poll_responses_into(0ms, out);
    EXPECT_TRUE(out.empty());
}

TEST(RawSocketTransport, LanesFromEnvBuildsOneLanePerSource) {
    setenv("LFP_WIRE_SOURCES", "127.0.0.7,127.0.0.8", 1);
    auto lanes = probe::RawSocketTransport::lanes_from_env();
    unsetenv("LFP_WIRE_SOURCES");
    ASSERT_EQ(lanes.size(), 2u);
    // Raw sockets need CAP_NET_RAW; when the environment grants it the lane
    // must be bound to its source, otherwise it reports not-ready cleanly.
    if (lanes[0]->ready()) {
        EXPECT_EQ(lanes[0]->vantage_address().to_string(), "127.0.0.7");
        EXPECT_EQ(lanes[1]->vantage_address().to_string(), "127.0.0.8");
    } else {
        EXPECT_FALSE(lanes[0]->status().empty());
    }

    unsetenv("LFP_WIRE_SOURCES");
    EXPECT_TRUE(probe::RawSocketTransport::lanes_from_env().empty());
}

// ---------------------------------------------------------------------------
// SNMP template patching (campaign send path)
// ---------------------------------------------------------------------------

/// Records every packet the campaign emits; answers nothing, so the run
/// terminates on the drained() fast path.
class CaptureTransport final : public probe::SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(10, 0, 0, 9);
    }

    std::vector<net::Bytes> sent;

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        sent.emplace_back(packet.begin(), packet.end());
        return std::nullopt;
    }
};

/// What Campaign::build_snmp_probe serializes — rebuilt here from public
/// pieces so the test can assert the patched wire bytes are identical to a
/// fresh serialization.
net::Bytes fresh_snmp_packet(net::IPv4Address vantage, net::IPv4Address target,
                             std::uint16_t source_port, std::uint8_t ttl,
                             std::int32_t message_id, std::uint16_t ipid) {
    snmp::DiscoveryRequest discovery;
    discovery.message_id = message_id;
    net::UdpDatagram datagram;
    datagram.source_port = static_cast<std::uint16_t>(source_port + 7);
    datagram.destination_port = snmp::kSnmpPort;
    datagram.payload = discovery.serialize();
    net::IpSendOptions ip;
    ip.source = vantage;
    ip.destination = target;
    ip.identification = ipid;
    ip.ttl = ttl;
    return net::make_udp_packet(ip, datagram);
}

TEST(SnmpTemplatePatch, PatchedPacketsAreByteIdenticalToFreshBuilds) {
    // One base per msgID BER length class, plus one straddling the 1->2
    // byte boundary mid-run: the per-class template cache must produce
    // byte-for-byte what fresh serialization would, for every target.
    const std::uint32_t bases[] = {0x10, 0x7E, 0x1000, 0x100000, 0x1000000, 0x7FFFFFF0};
    for (const std::uint32_t base : bases) {
        CaptureTransport transport;
        probe::Campaign::Config config;
        config.window = 4;
        config.snmp_message_id_base = base;
        config.response_timeout = 50ms;
        probe::Campaign campaign(transport, config);

        std::vector<net::IPv4Address> targets;
        for (std::uint8_t i = 1; i <= 5; ++i) {
            targets.push_back(net::IPv4Address::from_octets(192, 0, 2, i));
        }
        campaign.run(targets);

        // Pick the SNMP discovery packets out of the capture (destination
        // port 161; the other UDP probes aim at the probe port).
        std::size_t snmp_seen = 0;
        for (const net::Bytes& raw : transport.sent) {
            auto parsed = net::parse_packet(raw);
            ASSERT_TRUE(parsed.has_value()) << "campaign emitted an unparseable packet";
            const auto* udp = parsed.value().udp();
            if (udp == nullptr || udp->destination_port != snmp::kSnmpPort) continue;

            const std::size_t index = snmp_seen++;
            auto request = snmp::DiscoveryRequest::parse(udp->payload);
            ASSERT_TRUE(request.has_value());
            const auto expected_id = static_cast<std::int32_t>((base + index) & 0x7FFFFFFF);
            EXPECT_EQ(request.value().message_id, expected_id);

            const net::Bytes expected = fresh_snmp_packet(
                transport.vantage_address(), targets[index], config.source_port,
                config.probe_ttl, expected_id,
                static_cast<std::uint16_t>(config.ipid_base + index * 10 + 9));
            EXPECT_EQ(raw, expected)
                << "base 0x" << std::hex << base << " target " << std::dec << index;
        }
        EXPECT_EQ(snmp_seen, targets.size());
    }
}

}  // namespace
}  // namespace lfp
