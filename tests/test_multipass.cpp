// Tests for the multi-pass retry scheduler and token-bucket send pacing:
// pass-N ID bases as pure functions of (pass, global index), byte-
// determinism of multi-pass runs, strict full-signature convergence on a
// lossy sim, the RetrySink predicate, pacing byte-neutrality (paced ==
// unpaced at any cap, including effectively-infinite), and the TokenBucket
// arithmetic itself under synthetic time.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/census.hpp"
#include "core/record_sink.hpp"
#include "probe/campaign.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"
#include "snmp/snmpv3.hpp"
#include "util/token_bucket.hpp"

namespace lfp {
namespace {

std::vector<net::IPv4Address> world_targets(const sim::Topology& topology, std::size_t limit) {
    std::vector<net::IPv4Address> targets;
    for (std::size_t i = 0; i < topology.router_count() && targets.size() < limit; ++i) {
        targets.push_back(topology.router(i).interfaces().front());
    }
    return targets;
}

std::size_t full_signature_count(const core::Measurement& measurement) {
    std::size_t full = 0;
    for (const auto& record : measurement.records) {
        if (record.probes.all_protocols_responsive()) ++full;
    }
    return full;
}

/// A lossy world rebuilt from fixed seeds: per-packet-hash loss, so the
/// same packet bytes always draw the same fate and a pass under shifted
/// IPIDs draws fresh fates.
struct LossyWorld {
    explicit LossyWorld(double loss_rate)
        : topology(sim::Topology::build({.seed = 77,
                                         .num_ases = 200,
                                         .tier1_count = 6,
                                         .transit_fraction = 0.2,
                                         .scale = 0.6})),
          internet(topology, {.seed = 13, .loss_rate = loss_rate}) {}

    sim::Topology topology;
    sim::Internet internet;
};

/// A multi-pass CensusRunner over a LossyWorld, with its vantage transports
/// owned alongside it.
struct PassHarness {
    PassHarness(LossyWorld& world, std::size_t passes, std::size_t vantages = 1) {
        core::CensusPlan plan;
        for (std::size_t v = 0; v < vantages; ++v) {
            transports.push_back(std::make_unique<probe::SimTransport>(world.internet));
            plan.vantages.push_back(transports.back().get());
        }
        plan.campaign.window = 16;
        plan.passes = passes;
        runner = std::make_unique<core::CensusRunner>(std::move(plan));
    }

    std::vector<std::unique_ptr<probe::SimTransport>> transports;
    std::unique_ptr<core::CensusRunner> runner;
};

core::Measurement run_passes_over(LossyWorld& world, std::size_t passes,
                                  std::size_t vantages = 1) {
    PassHarness harness(world, passes, vantages);
    return harness.runner->measure_passes("multipass", world_targets(world.topology, 250), {},
                                          passes);
}

// ---------------------------------------------------------------------------
// Multi-pass retry scheduling
// ---------------------------------------------------------------------------

TEST(MultiPass, PassIdBasesArePureFunctionsOfPassAndGlobalIndex) {
    // Every record — whatever pass won it — must carry exactly the IPIDs
    // and msgID of (pass, global index): ipid_base + pass*stride + g*10
    // onward in send order. That is the determinism contract that makes a
    // multi-pass census replayable.
    LossyWorld world(0.03);
    auto measurement = run_passes_over(world, 3);

    const probe::Campaign::Config defaults;
    std::size_t retried_records = 0;
    for (std::size_t g = 0; g < measurement.records.size(); ++g) {
        const auto& record = measurement.records[g];
        if (record.pass > 0) ++retried_records;
        const auto expected_base = static_cast<std::uint16_t>(
            defaults.ipid_base + record.pass * core::CensusPlan::kPassIpidStride +
            g * 10);
        std::uint32_t send_index = 0;
        for (std::size_t round = 0; round < probe::kRoundsPerProtocol; ++round) {
            for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
                const auto& exchange = record.probes.probes[p][round];
                EXPECT_EQ(exchange.request_ipid,
                          static_cast<std::uint16_t>(expected_base + send_index))
                    << "target " << g << " pass " << record.pass << " slot " << send_index;
                ++send_index;
            }
        }
    }
    EXPECT_GT(retried_records, 0u)
        << "at 3% loss some records must have been won by a retry pass";
}

TEST(MultiPass, TwoPassRunIsByteDeterministic) {
    LossyWorld world_a(0.03);
    LossyWorld world_b(0.03);
    const auto first = run_passes_over(world_a, 2);
    const auto second = run_passes_over(world_b, 2);
    EXPECT_EQ(first, second) << "same seeds, same passes => byte-identical measurement";
}

TEST(MultiPass, ConvergesToStrictlyMoreFullSignaturesThanOnePass) {
    // The acceptance property: on a lossy sim, 2 passes complete strictly
    // more signatures than 1 pass over the identical target list, and a
    // single-pass run through the multi-pass entry point is byte-identical
    // to the classic measure().
    LossyWorld world_one(0.03);
    LossyWorld world_two(0.03);
    const auto one_pass = run_passes_over(world_one, 1);
    PassHarness harness_two(world_two, 2);
    const auto two_pass = harness_two.runner->measure_passes(
        "multipass", world_targets(world_two.topology, 250), {}, 2);

    ASSERT_EQ(one_pass.records.size(), two_pass.records.size());
    const std::size_t full_one = full_signature_count(one_pass);
    const std::size_t full_two = full_signature_count(two_pass);
    EXPECT_GT(full_two, full_one)
        << "a retry pass under fresh ID lanes must convert some partial "
           "signatures into full ones";

    const auto& stats = harness_two.runner->last_pass_stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].probed, one_pass.records.size());
    EXPECT_GT(stats[0].incomplete, 0u);
    EXPECT_EQ(stats[1].probed, stats[0].incomplete);
    EXPECT_GT(stats[1].upgraded, 0u);
    EXPECT_LT(stats[1].incomplete, stats[0].incomplete);

    // Records that pass 0 completed are untouched by the retry pass.
    for (std::size_t g = 0; g < one_pass.records.size(); ++g) {
        if (two_pass.records[g].pass == 0) {
            EXPECT_EQ(one_pass.records[g], two_pass.records[g]) << "target " << g;
        }
    }

    // The merge is monotone on every evidence axis: relative to the
    // identical-seed single-pass run (= this run's pass 0), a retried
    // record never has fewer answered rounds of *any* protocol and never
    // loses an SNMP answer it already had — sideways trades keep pass 0.
    for (std::size_t g = 0; g < one_pass.records.size(); ++g) {
        for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
            EXPECT_GE(two_pass.records[g].probes.responses_for(
                          static_cast<probe::ProtoIndex>(p)),
                      one_pass.records[g].probes.responses_for(
                          static_cast<probe::ProtoIndex>(p)))
                << "target " << g << " protocol " << p;
        }
        EXPECT_GE(two_pass.records[g].probes.snmp.has_value(),
                  one_pass.records[g].probes.snmp.has_value())
            << "target " << g;
    }
}

TEST(MultiPass, MeasurePassesDefaultsToPlanPassCount) {
    // Omitting the passes argument must honor the plan's configured count,
    // exactly like run_passes().
    LossyWorld world(0.03);
    PassHarness harness(world, 2);
    const auto measurement =
        harness.runner->measure_passes("plan-default", world_targets(world.topology, 250));
    EXPECT_EQ(measurement.records.size(), 250u);
    EXPECT_EQ(harness.runner->last_pass_stats().size(), 2u)
        << "plan.passes = 2 must drive two passes when the argument is omitted";
}

TEST(MultiPass, SinglePassEntryPointMatchesMeasure) {
    LossyWorld world_a(0.03);
    LossyWorld world_b(0.03);
    const auto classic = [&] {
        probe::SimTransport transport(world_a.internet);
        core::CensusPlan plan;
        plan.vantages = {&transport};
        plan.campaign.window = 16;
        core::CensusRunner runner(std::move(plan));
        return runner.measure("multipass", world_targets(world_a.topology, 250));
    }();
    const auto through_passes = run_passes_over(world_b, 1);
    EXPECT_EQ(classic, through_passes);
}

TEST(MultiPass, MultiVantageMultiPassMatchesSingleVantage) {
    // The pass loop must compose with vantage lanes: 4 lanes x 2 passes is
    // byte-identical to 1 lane x 2 passes (retry subsets re-group by
    // backend hint exactly like the primary pass).
    LossyWorld world_a(0.03);
    LossyWorld world_b(0.03);
    const auto one_lane = run_passes_over(world_a, 2);
    const auto four_lanes = run_passes_over(world_b, 2, 4);
    EXPECT_EQ(one_lane, four_lanes);
}

TEST(MultiPass, RetrySinkPredicate) {
    core::TargetRecord record;  // fully silent
    EXPECT_FALSE(core::RetrySink::incomplete(record));
    EXPECT_TRUE(core::RetrySink::incomplete(record, {.retry_silent = true}));

    // One ICMP answer, everything else silent: missing-protocol — retried
    // by default, opt-out for populations where protocol silence is policy.
    // (A single answered round is also partially_responsive on ICMP, so
    // silence the rest of the ICMP row to isolate the missing-protocol
    // case below.)
    record.probes.probes[0][0].response = net::Bytes{1};
    EXPECT_TRUE(core::RetrySink::incomplete(record));
    record.probes.probes[0][1].response = net::Bytes{1};
    record.probes.probes[0][2].response = net::Bytes{1};  // ICMP now full
    EXPECT_TRUE(core::RetrySink::incomplete(record));
    EXPECT_FALSE(core::RetrySink::incomplete(record, {.retry_missing_protocol = false}));

    // Loss-shaped intra-protocol gap: retried even with the opt-out.
    record.probes.probes[0][2].response.reset();
    EXPECT_TRUE(core::RetrySink::incomplete(record, {.retry_missing_protocol = false}));
    record.probes.probes[0][2].response = net::Bytes{1};
    record.probes.probes[0][1].response.reset();
    record.probes.probes[0][2].response.reset();

    // All nine probes answered: complete, never retried — unless the only
    // gap is the (independent) SNMP answer and the caller opted in to
    // chasing it.
    for (auto& row : record.probes.probes) {
        for (auto& exchange : row) exchange.response = net::Bytes{1};
    }
    EXPECT_FALSE(core::RetrySink::incomplete(record));
    EXPECT_FALSE(core::RetrySink::incomplete(record, {.retry_silent = true}));
    EXPECT_TRUE(core::RetrySink::incomplete(record, {.retry_missing_snmp = true}));
    record.probes.snmp = snmp::DiscoveryResponse{};
    EXPECT_FALSE(core::RetrySink::incomplete(record, {.retry_missing_snmp = true}));
    record.probes.snmp.reset();

    // Loss-shaped: one round of one protocol missing => retry.
    record.probes.probes[2][1].response.reset();
    EXPECT_TRUE(core::RetrySink::incomplete(record));
}

TEST(MultiPass, PlanValidationRejectsBadPassCounts) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 5, .num_ases = 40, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.4});
    sim::Internet internet(topology, {.seed = 1});
    probe::SimTransport transport(internet);

    core::CensusPlan zero;
    zero.vantages = {&transport};
    zero.passes = 0;
    EXPECT_THROW(core::CensusRunner{std::move(zero)}, std::invalid_argument);

    core::CensusPlan absurd;
    absurd.vantages = {&transport};
    absurd.passes = core::CensusPlan::kMaxPasses + 1;
    EXPECT_THROW(core::CensusRunner{std::move(absurd)}, std::invalid_argument);

    core::CensusPlan negative_pps;
    negative_pps.vantages = {&transport};
    negative_pps.campaign.packets_per_second = -1.0;
    EXPECT_THROW(core::CensusRunner{std::move(negative_pps)}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Token-bucket pacing
// ---------------------------------------------------------------------------

TEST(Pacing, PacedRunIsByteIdenticalToUnpaced) {
    // Pacing only delays admissions; at an effectively infinite cap and at
    // a moderate finite cap the records must match the unpaced run byte
    // for byte.
    auto run_with = [](double pps) {
        LossyWorld world(0.01);
        probe::SimTransport transport(world.internet);
        probe::Campaign campaign(transport, {.window = 16, .packets_per_second = pps});
        return campaign.run(world_targets(world.topology, 120));
    };

    const auto unpaced = run_with(0.0);
    const auto effectively_infinite = run_with(1e12);
    const auto moderate = run_with(50'000.0);
    ASSERT_EQ(unpaced.size(), 120u);
    EXPECT_EQ(unpaced, effectively_infinite);
    EXPECT_EQ(unpaced, moderate);
}

TEST(Pacing, CapBoundsTheSendRate) {
    // 40 targets x 10 packets at 4000 pps with a 10-packet burst cannot
    // finish faster than (400 - 10) / 4000 ≈ 97 ms. Loose lower bound —
    // timing asserts only that pacing really throttled the sender.
    LossyWorld world(0.0);
    probe::SimTransport transport(world.internet);
    probe::Campaign campaign(transport, {.window = 16,
                                         .packets_per_second = 4000.0,
                                         .pacing_burst = 10.0});
    const auto targets = world_targets(world.topology, 40);
    const auto start = std::chrono::steady_clock::now();
    const auto results = campaign.run(targets);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_EQ(results.size(), 40u);
    EXPECT_GE(elapsed, std::chrono::milliseconds(50))
        << "a 4000 pps cap must stretch 400 packets beyond 50 ms";
}

TEST(Pacing, RejectsNegativeOrNanRates) {
    LossyWorld world(0.0);
    const auto targets = world_targets(world.topology, 4);
    {
        probe::SimTransport transport(world.internet);
        probe::Campaign campaign(transport, {.window = 4, .packets_per_second = -5.0});
        EXPECT_THROW(campaign.run(targets), std::invalid_argument);
    }
    {
        // NaN compares false to everything, so a naive `< 0` check would
        // silently run unpaced; the engine must reject it instead — even
        // on an empty run (the config is broken regardless of targets).
        probe::SimTransport transport(world.internet);
        probe::Campaign campaign(
            transport,
            {.window = 4, .packets_per_second = std::numeric_limits<double>::quiet_NaN()});
        EXPECT_THROW(campaign.run(targets), std::invalid_argument);
        EXPECT_THROW(campaign.run({}), std::invalid_argument);
    }
    {
        probe::SimTransport transport(world.internet);
        probe::Campaign campaign(
            transport,
            {.window = 4,
             .packets_per_second = 1000.0,
             .pacing_burst = std::numeric_limits<double>::quiet_NaN()});
        EXPECT_THROW(campaign.run(targets), std::invalid_argument);
    }
}

TEST(TokenBucket, SyntheticTimeArithmetic) {
    using Clock = util::TokenBucket::Clock;
    const Clock::time_point t0{};
    util::TokenBucket bucket(100.0, 10.0, t0);  // 100 tokens/sec, burst 10

    // Starts full: the opening burst passes, the 11th token does not.
    EXPECT_TRUE(bucket.try_acquire(10.0, t0));
    EXPECT_FALSE(bucket.try_acquire(1.0, t0));

    // 50 ms refills 5 tokens; 4 pass, then the bucket holds ~1.
    const auto t1 = t0 + std::chrono::milliseconds(50);
    EXPECT_TRUE(bucket.try_acquire(4.0, t1));
    EXPECT_FALSE(bucket.try_acquire(2.0, t1));
    EXPECT_NEAR(bucket.available(t1), 1.0, 1e-6);

    // Refill caps at the burst no matter how long the idle gap.
    const auto t2 = t1 + std::chrono::hours(1);
    EXPECT_NEAR(bucket.available(t2), 10.0, 1e-6);

    // A request larger than the burst is served from a full bucket rather
    // than deadlocking.
    EXPECT_TRUE(bucket.try_acquire(64.0, t2));
    EXPECT_NEAR(bucket.available(t2), 0.0, 1e-6);

    // Time never runs backwards for the bucket.
    EXPECT_FALSE(bucket.try_acquire(1.0, t0));
}

}  // namespace
}  // namespace lfp
