// Unit tests for the net substrate: addresses, checksums, IPv4/ICMP/TCP/UDP
// codecs, and whole-packet building/parsing.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/icmp.hpp"
#include "net/ip_address.hpp"
#include "net/ipv4.hpp"
#include "net/packet_builder.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"

namespace lfp::net {
namespace {

const IPv4Address kSrc = IPv4Address::from_octets(192, 0, 2, 1);
const IPv4Address kDst = IPv4Address::from_octets(198, 51, 100, 7);

TEST(IPv4Address, ParseValid) {
    auto a = IPv4Address::parse("10.1.2.3");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a.value().to_string(), "10.1.2.3");
    EXPECT_EQ(a.value().octet(0), 10);
    EXPECT_EQ(a.value().octet(3), 3);
}

struct BadAddressCase {
    const char* text;
};
class IPv4AddressBadParse : public ::testing::TestWithParam<BadAddressCase> {};

TEST_P(IPv4AddressBadParse, Rejects) {
    EXPECT_FALSE(IPv4Address::parse(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(Malformed, IPv4AddressBadParse,
                         ::testing::Values(BadAddressCase{""}, BadAddressCase{"1.2.3"},
                                           BadAddressCase{"1.2.3.4.5"}, BadAddressCase{"256.1.1.1"},
                                           BadAddressCase{"1..2.3"}, BadAddressCase{"a.b.c.d"},
                                           BadAddressCase{"1.2.3.4 "}, BadAddressCase{"01.2.3.4"},
                                           BadAddressCase{"-1.2.3.4"}));

TEST(IPv4Address, SpecialRanges) {
    EXPECT_TRUE(IPv4Address::from_octets(10, 0, 0, 1).is_private());
    EXPECT_TRUE(IPv4Address::from_octets(172, 16, 0, 1).is_private());
    EXPECT_TRUE(IPv4Address::from_octets(172, 31, 255, 1).is_private());
    EXPECT_FALSE(IPv4Address::from_octets(172, 32, 0, 1).is_private());
    EXPECT_TRUE(IPv4Address::from_octets(192, 168, 5, 5).is_private());
    EXPECT_TRUE(IPv4Address::from_octets(127, 0, 0, 1).is_special());
    EXPECT_TRUE(IPv4Address::from_octets(169, 254, 1, 1).is_special());
    EXPECT_TRUE(IPv4Address::from_octets(224, 0, 0, 1).is_special());
    EXPECT_TRUE(IPv4Address::from_octets(100, 64, 1, 1).is_special());
    EXPECT_TRUE(IPv4Address::from_octets(8, 8, 8, 8).is_routable());
    EXPECT_FALSE(IPv4Address::from_octets(10, 1, 1, 1).is_routable());
}

TEST(Checksum, KnownVector) {
    // RFC 1071 example data.
    const std::vector<std::uint8_t> data{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
    EXPECT_EQ(internet_checksum(data), 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF));
}

TEST(Checksum, OddLengthPads) {
    const std::vector<std::uint8_t> data{0xAB};
    EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xAB00 & 0xFFFF));
}

TEST(Checksum, SelfVerifies) {
    std::vector<std::uint8_t> data{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                                   0x40, 0x01, 0x00, 0x00, 0xc0, 0x00, 0x02, 0x01,
                                   0xc6, 0x33, 0x64, 0x07};
    const std::uint16_t checksum = internet_checksum(data);
    data[10] = static_cast<std::uint8_t>(checksum >> 8);
    data[11] = static_cast<std::uint8_t>(checksum & 0xFF);
    EXPECT_TRUE(checksum_ok(data));
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
    Ipv4Header header;
    header.tos = 0x10;
    header.total_length = 40;
    header.identification = 0xBEEF;
    header.flags_fragment = Ipv4Header::kFlagDontFragment;
    header.ttl = 57;
    header.protocol = Protocol::tcp;
    header.source = kSrc;
    header.destination = kDst;

    Bytes wire;
    ByteWriter writer(wire);
    header.serialize(writer);
    ASSERT_EQ(wire.size(), Ipv4Header::kSize);
    EXPECT_TRUE(checksum_ok(wire));

    auto parsed = Ipv4Header::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value(), header);
}

TEST(Ipv4Header, RejectsCorruption) {
    Ipv4Header header;
    header.source = kSrc;
    header.destination = kDst;
    Bytes wire;
    ByteWriter writer(wire);
    header.serialize(writer);

    Bytes truncated(wire.begin(), wire.begin() + 10);
    EXPECT_FALSE(Ipv4Header::parse(truncated).has_value());

    Bytes flipped = wire;
    flipped[12] ^= 0xFF;  // corrupt source address -> checksum mismatch
    EXPECT_FALSE(Ipv4Header::parse(flipped).has_value());

    Bytes wrong_version = wire;
    wrong_version[0] = 0x65;
    EXPECT_FALSE(Ipv4Header::parse(wrong_version).has_value());
}

TEST(Ipv4Header, RewriteTtlKeepsChecksumValid) {
    Ipv4Header header;
    header.source = kSrc;
    header.destination = kDst;
    header.ttl = 64;
    Bytes wire;
    ByteWriter writer(wire);
    header.serialize(writer);

    ASSERT_TRUE(rewrite_ttl(wire, 33));
    EXPECT_TRUE(checksum_ok(wire));
    auto parsed = Ipv4Header::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().ttl, 33);

    std::vector<std::uint8_t> too_short(10, 0);
    EXPECT_FALSE(rewrite_ttl(too_short, 5));
}

TEST(Ipv4Header, PeekHelpers) {
    Ipv4Header header;
    header.source = kSrc;
    header.destination = kDst;
    header.ttl = 49;
    Bytes wire;
    ByteWriter writer(wire);
    header.serialize(writer);

    auto destination = peek_destination(wire);
    ASSERT_TRUE(destination.has_value());
    EXPECT_EQ(destination.value(), kDst);
    auto ttl = peek_ttl(wire);
    ASSERT_TRUE(ttl.has_value());
    EXPECT_EQ(ttl.value(), 49);
    EXPECT_FALSE(peek_destination(std::vector<std::uint8_t>(4)).has_value());
}

TEST(Icmp, EchoRoundTrip) {
    IcmpEcho echo;
    echo.is_reply = false;
    echo.identifier = 0x1234;
    echo.sequence = 2;
    echo.payload.assign(56, 0xA5);

    const Bytes wire = serialize_icmp(IcmpMessage{echo});
    EXPECT_EQ(wire.size(), 8u + 56u);
    auto parsed = parse_icmp(wire);
    ASSERT_TRUE(parsed.has_value());
    const auto* out = std::get_if<IcmpEcho>(&parsed.value());
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, echo);
}

TEST(Icmp, ErrorQuoteRoundTrip) {
    IcmpError error;
    error.type = IcmpType::destination_unreachable;
    error.code = kIcmpCodePortUnreachable;
    error.quoted.assign(28, 0x42);

    const Bytes wire = serialize_icmp(IcmpMessage{error});
    auto parsed = parse_icmp(wire);
    ASSERT_TRUE(parsed.has_value());
    const auto* out = std::get_if<IcmpError>(&parsed.value());
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, error);
}

TEST(Icmp, RejectsBadChecksumAndTruncation) {
    IcmpEcho echo;
    echo.payload.assign(4, 1);
    Bytes wire = serialize_icmp(IcmpMessage{echo});
    wire[5] ^= 0x40;
    EXPECT_FALSE(parse_icmp(wire).has_value());
    EXPECT_FALSE(parse_icmp(std::vector<std::uint8_t>{8, 0, 0}).has_value());
}

TEST(Tcp, RoundTripWithOptions) {
    TcpSegment segment;
    segment.source_port = 43211;
    segment.destination_port = 33533;
    segment.sequence = 0xDEADBEEF;
    segment.acknowledgment = 0x1;
    segment.flags.syn = true;
    segment.window = 64240;
    segment.options.push_back({TcpOptionKind::mss, {0x05, 0xB4}});
    segment.options.push_back({TcpOptionKind::sack_permitted, {}});
    segment.options.push_back({TcpOptionKind::nop, {}});
    segment.options.push_back({TcpOptionKind::timestamps, Bytes(8, 0x01)});

    const Bytes wire = serialize_tcp(segment, kSrc, kDst);
    EXPECT_EQ(wire.size() % 4, 0u);
    auto parsed = parse_tcp(wire, kSrc, kDst);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().source_port, segment.source_port);
    EXPECT_EQ(parsed.value().sequence, segment.sequence);
    EXPECT_TRUE(parsed.value().flags.syn);
    EXPECT_EQ(parsed.value().mss(), std::optional<std::uint16_t>(1460));
    bool saw_sack = false;
    bool saw_ts = false;
    for (const auto& option : parsed.value().options) {
        if (option.kind == TcpOptionKind::sack_permitted) saw_sack = true;
        if (option.kind == TcpOptionKind::timestamps) saw_ts = true;
    }
    EXPECT_TRUE(saw_sack);
    EXPECT_TRUE(saw_ts);
}

TEST(Tcp, ChecksumBindsAddresses) {
    TcpSegment segment;
    segment.source_port = 1;
    segment.destination_port = 2;
    const Bytes wire = serialize_tcp(segment, kSrc, kDst);
    EXPECT_TRUE(parse_tcp(wire, kSrc, kDst).has_value());
    // Same bytes against a different pseudo-header address must fail.
    // (Swapping src/dst would NOT change the sum — addition commutes — so
    // use a genuinely different address.)
    const auto other = IPv4Address::from_octets(203, 0, 113, 99);
    EXPECT_FALSE(parse_tcp(wire, kSrc, other).has_value());
}

TEST(Tcp, FlagsByteRoundTrip) {
    for (int bits = 0; bits < 64; ++bits) {
        const auto flags = TcpFlags::from_byte(static_cast<std::uint8_t>(bits));
        EXPECT_EQ(flags.to_byte(), bits);
    }
}

TEST(Tcp, RejectsBadOptionLength) {
    TcpSegment segment;
    Bytes wire = serialize_tcp(segment, kSrc, kDst);
    EXPECT_FALSE(parse_tcp(std::vector<std::uint8_t>(wire.begin(), wire.begin() + 12), kSrc, kDst)
                     .has_value());
}

TEST(Udp, RoundTrip) {
    UdpDatagram datagram;
    datagram.source_port = 43211;
    datagram.destination_port = 161;
    datagram.payload.assign(12, 0x00);
    const Bytes wire = serialize_udp(datagram, kSrc, kDst);
    EXPECT_EQ(wire.size(), 20u);
    auto parsed = parse_udp(wire, kSrc, kDst);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value(), datagram);
}

TEST(Udp, RejectsBadLengthAndChecksum) {
    UdpDatagram datagram;
    datagram.payload.assign(4, 7);
    Bytes wire = serialize_udp(datagram, kSrc, kDst);
    wire[9] ^= 0x01;  // corrupt payload
    EXPECT_FALSE(parse_udp(wire, kSrc, kDst).has_value());
    EXPECT_FALSE(parse_udp(std::vector<std::uint8_t>{0, 1, 2}, kSrc, kDst).has_value());
}

TEST(PacketBuilder, EchoRequestEndToEnd) {
    IpSendOptions ip;
    ip.source = kSrc;
    ip.destination = kDst;
    ip.identification = 0x77;
    ip.ttl = 64;
    const Bytes payload(56, 0xA5);
    const Bytes packet = make_icmp_echo_request(ip, 9, 1, payload);
    EXPECT_EQ(packet.size(), 84u);  // the paper's 84-byte echo

    auto parsed = parse_packet(packet);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value().ip.protocol, Protocol::icmp);
    EXPECT_EQ(parsed.value().ip.identification, 0x77);
    const auto* icmp = parsed.value().icmp();
    ASSERT_NE(icmp, nullptr);
    const auto* echo = std::get_if<IcmpEcho>(icmp);
    ASSERT_NE(echo, nullptr);
    EXPECT_EQ(echo->payload.size(), 56u);
}

TEST(PacketBuilder, IcmpErrorQuoteLimits) {
    IpSendOptions ip;
    ip.source = kDst;
    ip.destination = kSrc;
    // Offending packet: a 40-byte UDP probe (20 IP + 8 UDP + 12 payload).
    IpSendOptions probe_ip;
    probe_ip.source = kSrc;
    probe_ip.destination = kDst;
    UdpDatagram probe;
    probe.source_port = 4000;
    probe.destination_port = 33533;
    probe.payload.assign(12, 0);
    const Bytes offending = make_udp_packet(probe_ip, probe);
    ASSERT_EQ(offending.size(), 40u);

    // RFC 792 minimal quote: IP header + 8 -> 56-byte response.
    const Bytes minimal = make_icmp_error(ip, IcmpType::destination_unreachable,
                                          kIcmpCodePortUnreachable, offending, 28);
    EXPECT_EQ(minimal.size(), 56u);
    // Full quote -> 68-byte response (Linux-style stacks).
    const Bytes full = make_icmp_error(ip, IcmpType::destination_unreachable,
                                       kIcmpCodePortUnreachable, offending, 65535);
    EXPECT_EQ(full.size(), 68u);
}

TEST(PacketBuilder, ParseRejectsGarbage) {
    EXPECT_FALSE(parse_packet(std::vector<std::uint8_t>{}).has_value());
    EXPECT_FALSE(parse_packet(std::vector<std::uint8_t>(19, 0)).has_value());
    std::vector<std::uint8_t> zeros(64, 0);
    EXPECT_FALSE(parse_packet(zeros).has_value());
}

}  // namespace
}  // namespace lfp::net
