// Tests for the probing layer: campaign structure (9+1 probes, interleaved
// send order), sim transport behaviour, and raw-socket dry-run.
#include <gtest/gtest.h>

#include "probe/campaign.hpp"
#include "probe/raw_socket_transport.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "stack/profile_catalog.hpp"

namespace lfp::probe {
namespace {

/// Transport that records every packet and never answers.
class RecordingTransport final : public SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(192, 0, 2, 7);
    }
    std::vector<net::Bytes> packets;

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        packets.emplace_back(packet.begin(), packet.end());
        return std::nullopt;
    }
};

TEST(Campaign, SendsNineProbesPlusSnmp) {
    RecordingTransport transport;
    Campaign campaign(transport);
    const auto target = net::IPv4Address::from_octets(5, 0, 0, 1);
    auto result = campaign.probe_target(target);
    EXPECT_EQ(transport.packets.size(), 10u);
    EXPECT_EQ(campaign.packets_sent(), 10u);
    EXPECT_EQ(campaign.responses_received(), 0u);
    EXPECT_FALSE(result.any_response());
    EXPECT_EQ(result.target, target);
}

TEST(Campaign, ProbesInterleaveProtocolsInSendOrder) {
    RecordingTransport transport;
    Campaign campaign(transport);
    campaign.probe_target(net::IPv4Address::from_octets(5, 0, 0, 2));
    // Expected wire order: icmp,tcp,udp × 3 rounds, then SNMP (UDP).
    const std::array<net::Protocol, 10> expected{
        net::Protocol::icmp, net::Protocol::tcp, net::Protocol::udp,
        net::Protocol::icmp, net::Protocol::tcp, net::Protocol::udp,
        net::Protocol::icmp, net::Protocol::tcp, net::Protocol::udp,
        net::Protocol::udp};
    ASSERT_EQ(transport.packets.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        auto parsed = net::parse_packet(transport.packets[i]);
        ASSERT_TRUE(parsed.has_value()) << "packet " << i;
        EXPECT_EQ(parsed.value().ip.protocol, expected[i]) << "packet " << i;
    }
}

TEST(Campaign, ProbePacketShapesMatchPaper) {
    RecordingTransport transport;
    Campaign campaign(transport);
    campaign.probe_target(net::IPv4Address::from_octets(5, 0, 0, 3));

    // ICMP echo: 84 bytes total.
    auto icmp = net::parse_packet(transport.packets[0]);
    EXPECT_EQ(icmp.value().ip.total_length, 84);

    // TCP rounds: ACK, ACK, SYN with non-zero ack field.
    auto tcp0 = net::parse_packet(transport.packets[1]);
    auto tcp1 = net::parse_packet(transport.packets[4]);
    auto tcp2 = net::parse_packet(transport.packets[7]);
    EXPECT_TRUE(tcp0.value().tcp()->flags.ack);
    EXPECT_TRUE(tcp1.value().tcp()->flags.ack);
    EXPECT_TRUE(tcp2.value().tcp()->flags.syn);
    EXPECT_FALSE(tcp2.value().tcp()->flags.ack);
    EXPECT_NE(tcp2.value().tcp()->acknowledgment, 0u);
    EXPECT_EQ(tcp0.value().tcp()->destination_port, 33533);

    // UDP probes: 12-byte zero payload to the closed port.
    auto udp = net::parse_packet(transport.packets[2]);
    ASSERT_NE(udp.value().udp(), nullptr);
    EXPECT_EQ(udp.value().udp()->payload.size(), 12u);
    EXPECT_EQ(udp.value().udp()->destination_port, 33533);
    for (std::uint8_t byte : udp.value().udp()->payload) EXPECT_EQ(byte, 0);

    // Final packet: SNMPv3 discovery to port 161.
    auto snmp_packet = net::parse_packet(transport.packets[9]);
    ASSERT_NE(snmp_packet.value().udp(), nullptr);
    EXPECT_EQ(snmp_packet.value().udp()->destination_port, 161);
}

TEST(Campaign, SnmpCanBeDisabled) {
    RecordingTransport transport;
    Campaign campaign(transport, {.icmp_payload_bytes = 56,
                                  .udp_payload_bytes = 12,
                                  .source_port = 43211,
                                  .probe_ttl = 64,
                                  .send_snmp = false});
    campaign.probe_target(net::IPv4Address::from_octets(5, 0, 0, 4));
    EXPECT_EQ(transport.packets.size(), 9u);
}

TEST(Campaign, GlobalSendIndicesAreSequential) {
    RecordingTransport transport;
    Campaign campaign(transport);
    auto result = campaign.probe_target(net::IPv4Address::from_octets(5, 0, 0, 5));
    std::vector<std::uint32_t> indices;
    for (const auto& row : result.probes) {
        for (const auto& exchange : row) indices.push_back(exchange.send_index);
    }
    std::sort(indices.begin(), indices.end());
    for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

TEST(Campaign, RequestIpidsAreDistinct) {
    RecordingTransport transport;
    Campaign campaign(transport);
    auto result = campaign.probe_target(net::IPv4Address::from_octets(5, 0, 0, 6));
    std::set<std::uint16_t> ipids;
    for (const auto& row : result.probes) {
        for (const auto& exchange : row) ipids.insert(exchange.request_ipid);
    }
    EXPECT_EQ(ipids.size(), 9u);
}

TEST(Campaign, EndToEndAgainstSimulatedRouter) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 51, .num_ases = 40, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.4});
    sim::Internet internet(topology, {.seed = 1, .loss_rate = 0.0});
    SimTransport transport(internet);
    Campaign campaign(transport);

    // Probe a fully responsive router and validate the result structure.
    for (std::size_t i = 0; i < topology.router_count(); ++i) {
        const auto& router = topology.router(i);
        if (!(router.responds_icmp() && router.responds_tcp() && router.responds_udp())) {
            continue;
        }
        auto result = campaign.probe_target(router.interfaces()[0]);
        EXPECT_TRUE(result.fully_responsive());
        EXPECT_EQ(result.responses_for(ProtoIndex::icmp), 3u);
        EXPECT_EQ(result.responses_for(ProtoIndex::tcp), 3u);
        EXPECT_EQ(result.responses_for(ProtoIndex::udp), 3u);
        if (router.snmp_enabled()) {
            ASSERT_TRUE(result.snmp.has_value());
            EXPECT_EQ(result.snmp->engine_id.enterprise,
                      stack::enterprise_number(router.vendor()));
        }
        return;
    }
    FAIL() << "no fully responsive router in topology";
}

TEST(Campaign, RunProbesAllTargets) {
    RecordingTransport transport;
    Campaign campaign(transport);
    const std::vector<net::IPv4Address> targets{net::IPv4Address::from_octets(5, 0, 0, 7),
                                                net::IPv4Address::from_octets(5, 0, 0, 8),
                                                net::IPv4Address::from_octets(5, 0, 0, 9)};
    auto results = campaign.run(targets);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(transport.packets.size(), 30u);
    for (std::size_t i = 0; i < targets.size(); ++i) EXPECT_EQ(results[i].target, targets[i]);
}

TEST(RawSocketTransport, DryRunNeverAnswers) {
    RawSocketTransport transport({.timeout = std::chrono::milliseconds(1), .dry_run = true});
    EXPECT_FALSE(transport.ready());
    EXPECT_EQ(transport.status(), "dry-run (no sockets opened)");
    net::IpSendOptions ip;
    ip.source = transport.vantage_address();
    ip.destination = net::IPv4Address::from_octets(127, 0, 0, 1);
    EXPECT_FALSE(
        transport.transact(net::make_icmp_echo_request(ip, 1, 0, net::Bytes(8, 0))).has_value());
}

TEST(TargetProbeResult, ResponsivenessAccounting) {
    TargetProbeResult result;
    EXPECT_EQ(result.responsive_protocol_count(), 0u);
    EXPECT_FALSE(result.any_response());
    result.probes[0][0].response = net::Bytes{1};
    EXPECT_EQ(result.responsive_protocol_count(), 1u);
    EXPECT_FALSE(result.protocol_responsive(ProtoIndex::icmp));  // needs all 3
    result.probes[0][1].response = net::Bytes{1};
    result.probes[0][2].response = net::Bytes{1};
    EXPECT_TRUE(result.protocol_responsive(ProtoIndex::icmp));
    EXPECT_TRUE(result.any_response());
}

}  // namespace
}  // namespace lfp::probe
