// Scale-engine acceptance tests: the spill-to-disk census path must be
// byte-equivalent to the in-memory path on a real multi-pass run
// (classifications, CSV export, signature database), the template-patched
// probe packets must be field-correct and checksum-valid, the probe hot
// path must run allocation-free in steady state, and a slow record
// consumer must not make the engine's threads burn cores busy-waiting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/resource.h>
#endif

#include "core/census.hpp"
#include "core/record_sink.hpp"
#include "core/signature_db.hpp"
#include "io/csv_export.hpp"
#include "io/signature_store.hpp"
#include "net/packet_builder.hpp"
#include "sim/scale_world.hpp"

// ---- global allocation counter ------------------------------------------
// Binary-wide operator-new override (counting only, behaviour unchanged):
// the steady-state zero-allocation claim for the probe hot path is
// asserted as "the counter does not move between two emission points".
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lfp {
namespace {

std::vector<net::IPv4Address> scale_targets(std::size_t count) {
    std::vector<net::IPv4Address> targets;
    targets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        targets.push_back(net::IPv4Address(static_cast<std::uint32_t>(0x0B000000 + i)));
    }
    return targets;
}

core::Measurement run_scale_census(std::size_t target_count, bool spill,
                                   std::vector<core::PassStats>* stats_out = nullptr) {
    sim::ScaleTransport transport(
        {.seed = 42, .responsive_fraction = 0.6, .loss_rate = 0.03});
    core::CensusPlan plan;
    plan.vantages = {&transport};
    plan.campaign.window = 128;
    plan.passes = 2;
    plan.spill = spill;
    plan.spill_config.segment_records = 1 << 12;  // force many segments
    core::CensusRunner runner(std::move(plan));

    core::CollectingSink sink("scale");
    runner.stream_passes(scale_targets(target_count), {}, 2, sink);
    if (stats_out != nullptr) *stats_out = runner.last_pass_stats();
    return sink.take();
}

core::SignatureDatabase absorb_database(const core::Measurement& measurement) {
    core::SignatureDatabase database({.min_occurrences = 1});
    for (const auto& record : measurement.records) {
        if (record.snmp_vendor && !record.features.empty()) {
            database.add_labeled(record.signature, *record.snmp_vendor);
        }
    }
    database.finalize();
    return database;
}

TEST(ScaleCensus, SpillPathMatchesInMemoryPathOnMultiPassWorld) {
    // The acceptance property: a 100k-target, 2-pass census over the
    // deterministic ScaleTransport world produces byte-identical derived
    // artifacts whether the record set lives in RAM or spills to disk.
    // (The raw packet bytes are the one permitted difference — the spill
    // path drops them by design — so equality is asserted on the compact
    // projection, which carries everything downstream consumers read.)
    constexpr std::size_t kTargets = 100'000;
    std::vector<core::PassStats> memory_stats;
    std::vector<core::PassStats> spill_stats;
    const auto in_memory = run_scale_census(kTargets, false, &memory_stats);
    const auto spilled = run_scale_census(kTargets, true, &spill_stats);

    ASSERT_EQ(in_memory.records.size(), kTargets);
    ASSERT_EQ(spilled.records.size(), kTargets);
    EXPECT_EQ(memory_stats, spill_stats);

    std::size_t retried = 0;
    for (std::size_t g = 0; g < kTargets; ++g) {
        ASSERT_EQ(core::CompactRecord::from_record(in_memory.records[g]),
                  core::CompactRecord::from_record(spilled.records[g]))
            << "target " << g;
        if (spilled.records[g].pass > 0) ++retried;
    }
    EXPECT_GT(retried, 0u) << "at 3% loss the retry pass must have upgraded records, "
                              "or the multi-pass half of the equivalence is untested";

    // Classification CSVs are byte-identical (pass provenance included).
    std::ostringstream memory_csv;
    std::ostringstream spill_csv;
    io::export_measurement_csv(memory_csv, in_memory);
    io::export_measurement_csv(spill_csv, spilled);
    EXPECT_EQ(memory_csv.str(), spill_csv.str());

    // Signature databases serialize byte-identically too.
    const auto memory_db = absorb_database(in_memory);
    const auto spill_db = absorb_database(spilled);
    std::ostringstream memory_store;
    std::ostringstream spill_store;
    io::save_signatures(memory_store, memory_db, memory_stats);
    io::save_signatures(spill_store, spill_db, spill_stats);
    EXPECT_GT(memory_db.signatures().size(), 0u);
    EXPECT_EQ(memory_store.str(), spill_store.str());
}

// ---------------------------------------------------------------------------
// Template-patched probe packets
// ---------------------------------------------------------------------------

/// Captures every sent packet, answering nothing.
class CaptureTransport final : public probe::SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address(0x0A000001);
    }
    std::vector<net::Bytes> sent;

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> packet) override {
        sent.emplace_back(packet.begin(), packet.end());
        return std::nullopt;
    }
};

TEST(ScaleCensus, PatchedProbePacketsAreFieldCorrect) {
    // The hot path rewrites cached template packets (destination, IPID,
    // ICMP identifier, checksums) instead of rebuilding each probe.
    // parse_packet validates every checksum, so a parse success plus
    // field assertions pins the patching byte-for-byte.
    CaptureTransport transport;
    probe::Campaign campaign(transport, {.send_snmp = false, .window = 8});
    const auto targets = scale_targets(7);
    const auto results = campaign.run(targets);
    ASSERT_EQ(results.size(), targets.size());
    ASSERT_EQ(transport.sent.size(), targets.size() * 9);

    const probe::Campaign::Config defaults;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const auto& result = results[i];
        for (std::size_t round = 0; round < probe::kRoundsPerProtocol; ++round) {
            for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
                const std::size_t slot = core::probe_slot(p, round);
                const auto& request = result.probes[p][round].request;
                ASSERT_FALSE(request.empty());

                const auto parsed = net::parse_packet(request);
                ASSERT_TRUE(parsed.has_value())
                    << "target " << i << " slot " << slot << ": " << parsed.error().message;
                EXPECT_EQ(parsed.value().ip.destination, targets[i]);
                EXPECT_EQ(parsed.value().ip.source, transport.vantage_address());
                EXPECT_EQ(parsed.value().ip.ttl, defaults.probe_ttl);
                EXPECT_EQ(parsed.value().ip.identification,
                          static_cast<std::uint16_t>(defaults.ipid_base + i * 9 + slot));

                switch (static_cast<probe::ProtoIndex>(p)) {
                    case probe::ProtoIndex::icmp: {
                        const auto* icmp = parsed.value().icmp();
                        ASSERT_NE(icmp, nullptr);
                        const auto* echo = std::get_if<net::IcmpEcho>(icmp);
                        ASSERT_NE(echo, nullptr);
                        const std::uint32_t ip = targets[i].value();
                        EXPECT_EQ(echo->identifier,
                                  static_cast<std::uint16_t>(ip ^ (ip >> 16)));
                        EXPECT_EQ(echo->payload.size(), defaults.icmp_payload_bytes);
                        break;
                    }
                    case probe::ProtoIndex::tcp: {
                        const auto* tcp = parsed.value().tcp();
                        ASSERT_NE(tcp, nullptr);
                        // Each round probes from its own local port so the
                        // demux flow keys stay distinct.
                        EXPECT_EQ(tcp->source_port,
                                  static_cast<std::uint16_t>(defaults.source_port + round));
                        break;
                    }
                    case probe::ProtoIndex::udp: {
                        const auto* udp = parsed.value().udp();
                        ASSERT_NE(udp, nullptr);
                        EXPECT_EQ(udp->source_port,
                                  static_cast<std::uint16_t>(defaults.source_port + round));
                        EXPECT_EQ(udp->payload.size(), defaults.udp_payload_bytes);
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

/// Silent and allocation-free: every probe is swallowed without a response
/// and without touching the heap.
class SilentNoAllocTransport final : public probe::SynchronousTransport {
  public:
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address(0x0A000001);
    }

  protected:
    std::optional<net::Bytes> exchange(std::span<const std::uint8_t> /*packet*/) override {
        return std::nullopt;
    }
};

TEST(ScaleCensus, ProbeHotPathIsAllocationFreeInSteadyState) {
    // With SNMP off (BER serialization is the one documented per-target
    // allocation) and request retention off, the streaming probe loop must
    // reuse its pools outright: between emission #500 and #1500 of a
    // 2000-target run, the process-wide allocation counter may not move.
    SilentNoAllocTransport transport;
    probe::Campaign campaign(transport, {.send_snmp = false,
                                         .keep_request_bytes = false,
                                         .window = 64});
    const auto targets = scale_targets(2000);

    std::uint64_t allocs_at_500 = 0;
    std::uint64_t allocs_at_1500 = 0;
    std::size_t emitted = 0;
    campaign.run_streaming(targets, {},
                           [&](std::size_t, probe::TargetProbeResult&&) {
                               ++emitted;
                               if (emitted == 500) {
                                   allocs_at_500 =
                                       g_alloc_count.load(std::memory_order_relaxed);
                               } else if (emitted == 1500) {
                                   allocs_at_1500 =
                                       g_alloc_count.load(std::memory_order_relaxed);
                               }
                               return true;
                           });
    ASSERT_EQ(emitted, targets.size());
    EXPECT_EQ(allocs_at_1500 - allocs_at_500, 0u)
        << "steady-state probing of 1000 targets must not allocate";
}

// ---------------------------------------------------------------------------
// Slow consumer
// ---------------------------------------------------------------------------

class SleepySink final : public core::RecordSink {
  public:
    void accept(std::uint64_t, core::TargetRecord&&) override {
        ++accepted;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::size_t accepted = 0;
};

#ifdef __linux__
double process_cpu_seconds() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    const auto seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

TEST(ScaleCensus, SlowConsumerDoesNotBusySpinTheEngine) {
    // A sink that sleeps per record stretches the census to ~400 ms of
    // wall time during which the sender/receiver threads are starved of
    // work. With the bounded-spin backoff on the ring and the idle loops
    // they must sleep too: total process CPU stays well under wall time
    // (two busy-spinning threads would show CPU ≈ 2x wall).
    sim::ScaleTransport transport({.seed = 3, .responsive_fraction = 1.0});
    core::CensusPlan plan;
    plan.vantages = {&transport};
    plan.campaign.window = 32;
    core::CensusRunner runner(std::move(plan));

    SleepySink sink;
    const double cpu_before = process_cpu_seconds();
    const auto wall_before = std::chrono::steady_clock::now();
    runner.stream(scale_targets(400), {}, sink);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_before)
            .count();
    const double cpu = process_cpu_seconds() - cpu_before;

    EXPECT_EQ(sink.accepted, 400u);
    ASSERT_GE(wall, 0.3) << "the sleeping sink should dominate the run";
    EXPECT_LT(cpu, 0.75 * wall)
        << "idle engine threads must yield/sleep, not busy-spin (cpu " << cpu << "s over "
        << wall << "s wall)";
}
#endif  // __linux__

}  // namespace
}  // namespace lfp
