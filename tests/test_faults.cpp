// Fault-injection harness tests: the FaultPlan knob surface, per-class
// decorator semantics over a scripted inner transport, seed-determinism of
// faulted runs, fuzz-style demux/parser survival under heavy corruption,
// census completion under send loss, and the CensusRunner watchdog — a
// wedged lane is torn down and its targets requeued onto the surviving
// lane with byte-identical merged output.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment_world.hpp"
#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "net/packet_builder.hpp"
#include "probe/sim_transport.hpp"
#include "sim/faults.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace lfp {
namespace {

using namespace std::chrono_literals;

/// Scoped environment override (restores the previous value on destruction).
class ScopedEnv {
  public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        const char* previous = std::getenv(name);
        if (previous != nullptr) saved_ = previous;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (saved_) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    const char* name_;
    std::optional<std::string> saved_;
};

/// Scripted inner transport: records what reaches the wire, hands back
/// whatever the test queued. Satisfies the one-sender/one-receiver contract
/// trivially (tests drive it single-threaded).
class ScriptedTransport final : public probe::ProbeTransport {
  public:
    void send_batch(std::span<const net::Bytes> packets) override {
        sent.insert(sent.end(), packets.begin(), packets.end());
    }
    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds) override {
        std::vector<net::Bytes> out = std::move(queued);
        queued.clear();
        return out;
    }
    [[nodiscard]] bool drained() const override { return queued.empty(); }
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return net::IPv4Address::from_octets(192, 0, 2, 7);
    }
    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override { return 5ms; }

    std::vector<net::Bytes> sent;
    std::vector<net::Bytes> queued;
};

net::Bytes probe_packet(std::uint16_t id) {
    net::IpSendOptions ip;
    ip.source = net::IPv4Address::from_octets(192, 0, 2, 7);
    ip.destination = net::IPv4Address::from_octets(198, 51, 100, 2);
    ip.identification = id;
    return net::make_icmp_echo_request(ip, id, 1, net::Bytes(24, 0x55));
}

std::vector<net::Bytes> corpus(std::size_t count) {
    std::vector<net::Bytes> packets;
    for (std::size_t i = 0; i < count; ++i) {
        packets.push_back(probe_packet(static_cast<std::uint16_t>(1000 + i)));
    }
    return packets;
}

std::vector<net::IPv4Address> world_targets(const sim::Topology& topology, std::size_t limit) {
    std::vector<net::IPv4Address> targets;
    for (std::size_t i = 0; i < topology.router_count() && targets.size() < limit; ++i) {
        targets.push_back(topology.router(i).interfaces().front());
    }
    return targets;
}

/// A lossless deterministic world rebuilt from fixed seeds, so faulted and
/// clean runs differ only by the injected faults.
struct FaultWorld {
    FaultWorld()
        : topology(sim::Topology::build({.seed = 77,
                                         .num_ases = 120,
                                         .tier1_count = 4,
                                         .transit_fraction = 0.2,
                                         .scale = 0.5})),
          internet(topology, {.seed = 13, .loss_rate = 0.0}) {}

    sim::Topology topology;
    sim::Internet internet;
};

// ----------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DefaultsInjectNothingAndValidate) {
    const sim::FaultPlan plan;
    EXPECT_FALSE(plan.any());
    plan.validate();

    sim::FaultPlan wedged;
    wedged.wedge_after = 0;
    EXPECT_TRUE(wedged.any());

    sim::FaultPlan corrupting;
    corrupting.corrupt_rate = 0.01;
    EXPECT_TRUE(corrupting.any());
}

TEST(FaultPlan, ValidateRejectsRatesOutsideUnitInterval) {
    sim::FaultPlan plan;
    plan.truncate_rate = 1.5;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.truncate_rate = 0.0;
    plan.send_fail_rate = -0.1;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.send_fail_rate = 1.0;  // inclusive bounds are legal
    plan.validate();

    // The decorator constructor enforces the same contract.
    ScriptedTransport inner;
    sim::FaultPlan bad;
    bad.duplicate_rate = 2.0;
    EXPECT_THROW(sim::FaultInjectingTransport(inner, bad), std::invalid_argument);
}

TEST(FaultPlan, FromEnvReadsEveryKnob) {
    ScopedEnv seed("LFP_FAULT_SEED", "99");
    ScopedEnv send("LFP_FAULT_SEND", "0.25");
    ScopedEnv truncate("LFP_FAULT_TRUNCATE", "0.1");
    ScopedEnv corrupt("LFP_FAULT_CORRUPT", "0.2");
    ScopedEnv duplicate("LFP_FAULT_DUPLICATE", "0.3");
    ScopedEnv reorder("LFP_FAULT_REORDER", "0.4");
    ScopedEnv stall("LFP_FAULT_STALL", "0.5");
    ScopedEnv wedge("LFP_FAULT_WEDGE_AFTER", "1234");
    const sim::FaultPlan plan = sim::FaultPlan::from_env();
    EXPECT_EQ(plan.seed, 99u);
    EXPECT_DOUBLE_EQ(plan.send_fail_rate, 0.25);
    EXPECT_DOUBLE_EQ(plan.truncate_rate, 0.1);
    EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.2);
    EXPECT_DOUBLE_EQ(plan.duplicate_rate, 0.3);
    EXPECT_DOUBLE_EQ(plan.reorder_rate, 0.4);
    EXPECT_DOUBLE_EQ(plan.stall_rate, 0.5);
    EXPECT_EQ(plan.wedge_after, 1234u);
    EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, FromEnvRejectsGarbageNamingTheVariable) {
    {
        ScopedEnv send("LFP_FAULT_SEND", "often");
        try {
            (void)sim::FaultPlan::from_env();
            FAIL() << "expected std::invalid_argument";
        } catch (const std::invalid_argument& error) {
            EXPECT_NE(std::string(error.what()).find("LFP_FAULT_SEND"), std::string::npos)
                << error.what();
        }
    }
    {
        ScopedEnv wedge("LFP_FAULT_WEDGE_AFTER", "-3");
        EXPECT_THROW((void)sim::FaultPlan::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv send("LFP_FAULT_SEND", "1.5");  // parses, fails validate()
        EXPECT_THROW((void)sim::FaultPlan::from_env(), std::invalid_argument);
    }
    // Defaults with a clean environment: inject nothing.
    EXPECT_FALSE(sim::FaultPlan::from_env().any());
}

// --------------------------------------------------- decorator fault classes

TEST(FaultInjection, CleanPlanIsATransparentPipe) {
    ScriptedTransport inner;
    sim::FaultInjectingTransport faulty(inner, {});
    const auto packets = corpus(16);
    faulty.send_batch(packets);
    EXPECT_EQ(inner.sent, packets);

    inner.queued = corpus(4);
    EXPECT_FALSE(faulty.drained());
    EXPECT_EQ(faulty.poll_responses(0ms), corpus(4));
    EXPECT_TRUE(faulty.drained());
    EXPECT_EQ(faulty.injected_total(), 0u);
    EXPECT_EQ(faulty.vantage_address(), inner.vantage_address());
    EXPECT_EQ(faulty.transact_timeout(), inner.transact_timeout());
}

TEST(FaultInjection, SendFailuresDropPacketsBeforeTheWire) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.send_fail_rate = 1.0;
    sim::FaultInjectingTransport faulty(inner, plan);
    faulty.send_batch(corpus(20));
    EXPECT_TRUE(inner.sent.empty());
    EXPECT_EQ(faulty.send_faults(), 20u);
    EXPECT_EQ(faulty.injected_total(), 20u);

    // A partial rate drops a deterministic subset, in order.
    ScriptedTransport inner_half;
    plan.send_fail_rate = 0.5;
    sim::FaultInjectingTransport half(inner_half, plan);
    const auto packets = corpus(200);
    half.send_batch(packets);
    EXPECT_GT(half.send_faults(), 50u);
    EXPECT_LT(half.send_faults(), 150u);
    EXPECT_EQ(inner_half.sent.size() + half.send_faults(), packets.size());

    // Same plan, same packets => the identical subset survives.
    ScriptedTransport inner_again;
    sim::FaultInjectingTransport again(inner_again, plan);
    again.send_batch(packets);
    EXPECT_EQ(inner_again.sent, inner_half.sent);
}

TEST(FaultInjection, WedgeSwallowsSendsAndNeverDrains) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.wedge_after = 0;  // wedged from birth
    sim::FaultInjectingTransport faulty(inner, plan);
    EXPECT_TRUE(faulty.wedged());
    faulty.send_batch(corpus(8));
    EXPECT_TRUE(inner.sent.empty()) << "a wedged lane must not touch the inner transport";
    EXPECT_EQ(faulty.swallowed_by_wedge(), 8u);

    inner.queued = corpus(2);  // even queued responses never surface
    EXPECT_TRUE(faulty.poll_responses(0ms).empty());
    EXPECT_FALSE(faulty.drained()) << "a wedged lane can never prove silence";
}

TEST(FaultInjection, WedgeAfterThresholdPassesTheEarlyPackets) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.wedge_after = 5;
    sim::FaultInjectingTransport faulty(inner, plan);
    EXPECT_FALSE(faulty.wedged());
    faulty.send_batch(corpus(3));
    EXPECT_EQ(inner.sent.size(), 3u);
    EXPECT_FALSE(faulty.wedged());
    faulty.send_batch(corpus(4));  // packets 3,4 pass; 5,6 swallowed
    EXPECT_EQ(inner.sent.size(), 5u);
    EXPECT_TRUE(faulty.wedged());
    EXPECT_EQ(faulty.swallowed_by_wedge(), 2u);
}

TEST(FaultInjection, TruncationShortensDeterministically) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.truncate_rate = 1.0;
    sim::FaultInjectingTransport faulty(inner, plan);
    const auto originals = corpus(12);
    inner.queued = originals;
    const auto delivered = faulty.poll_responses(0ms);
    ASSERT_EQ(delivered.size(), originals.size());
    EXPECT_EQ(faulty.truncated(), originals.size());
    for (std::size_t i = 0; i < delivered.size(); ++i) {
        EXPECT_LT(delivered[i].size(), originals[i].size()) << "packet " << i;
        // A truncation is a prefix cut, never a rewrite.
        EXPECT_TRUE(std::equal(delivered[i].begin(), delivered[i].end(),
                               originals[i].begin()))
            << "packet " << i;
    }
}

TEST(FaultInjection, CorruptionFlipsExactlyOneBit) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.corrupt_rate = 1.0;
    sim::FaultInjectingTransport faulty(inner, plan);
    const auto originals = corpus(12);
    inner.queued = originals;
    const auto delivered = faulty.poll_responses(0ms);
    ASSERT_EQ(delivered.size(), originals.size());
    EXPECT_EQ(faulty.corrupted(), originals.size());
    for (std::size_t i = 0; i < delivered.size(); ++i) {
        ASSERT_EQ(delivered[i].size(), originals[i].size());
        int flipped_bits = 0;
        for (std::size_t b = 0; b < delivered[i].size(); ++b) {
            flipped_bits += __builtin_popcount(delivered[i][b] ^ originals[i][b]);
        }
        EXPECT_EQ(flipped_bits, 1) << "packet " << i;
    }
}

TEST(FaultInjection, DuplicationDeliversTheResponseTwice) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.duplicate_rate = 1.0;
    sim::FaultInjectingTransport faulty(inner, plan);
    const auto originals = corpus(6);
    inner.queued = originals;
    const auto delivered = faulty.poll_responses(0ms);
    ASSERT_EQ(delivered.size(), originals.size() * 2);
    EXPECT_EQ(faulty.duplicated(), originals.size());
    for (std::size_t i = 0; i < originals.size(); ++i) {
        EXPECT_EQ(delivered[2 * i], originals[i]);
        EXPECT_EQ(delivered[2 * i + 1], originals[i]);
    }
}

TEST(FaultInjection, StallHoldsResponsesExactlyOnePollCycle) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.stall_rate = 1.0;
    sim::FaultInjectingTransport faulty(inner, plan);
    const auto originals = corpus(5);
    inner.queued = originals;
    EXPECT_TRUE(faulty.poll_responses(0ms).empty());  // everything held back
    EXPECT_EQ(faulty.stalled(), originals.size());
    EXPECT_FALSE(faulty.drained()) << "held packets keep the pipe non-drained";
    EXPECT_EQ(faulty.poll_responses(0ms), originals);  // released next cycle
    EXPECT_TRUE(faulty.drained());
}

TEST(FaultInjection, ReorderingPermutesButNeverLosesResponses) {
    ScriptedTransport inner;
    sim::FaultPlan plan;
    plan.reorder_rate = 0.5;
    sim::FaultInjectingTransport faulty(inner, plan);
    const auto originals = corpus(64);
    inner.queued = originals;
    auto delivered = faulty.poll_responses(0ms);
    ASSERT_EQ(delivered.size(), originals.size());
    EXPECT_GT(faulty.reordered(), 10u);
    EXPECT_LT(faulty.reordered(), 54u);
    EXPECT_NE(delivered, originals) << "at rate 0.5 some packet must have moved";
    // Same multiset: reordering moves packets, it never drops or invents.
    auto sorted_delivered = delivered;
    auto sorted_originals = originals;
    std::sort(sorted_delivered.begin(), sorted_delivered.end());
    std::sort(sorted_originals.begin(), sorted_originals.end());
    EXPECT_EQ(sorted_delivered, sorted_originals);
}

// ------------------------------------------- fuzz: the engine under faults

TEST(FaultedCensus, HeavyCorruptionNeverCrashesAndCountsInjections) {
    // The demux/parser acceptance property: a census over a transport that
    // truncates, corrupts, duplicates, reorders, and stalls a third of all
    // traffic completes normally — damaged packets are dropped (parse) or
    // counted as strays (demux), duplicates are idempotent, and nothing
    // ever crashes or hangs.
    FaultWorld world;
    probe::SimTransport inner(world.internet);
    sim::FaultPlan plan;
    plan.truncate_rate = 0.3;
    plan.corrupt_rate = 0.3;
    plan.duplicate_rate = 0.3;
    plan.reorder_rate = 0.3;
    plan.stall_rate = 0.3;
    sim::FaultInjectingTransport faulty(inner, plan);

    core::CensusPlan census;
    census.vantages.push_back(&faulty);
    census.campaign.window = 16;
    core::CensusRunner runner(std::move(census));
    const auto targets = world_targets(world.topology, 200);
    const core::Measurement measurement = runner.measure("faulted", targets);

    ASSERT_EQ(measurement.records.size(), targets.size());
    EXPECT_GT(faulty.truncated(), 0u);
    EXPECT_GT(faulty.corrupted(), 0u);
    EXPECT_GT(faulty.duplicated(), 0u);
    EXPECT_GT(faulty.reordered(), 0u);
    EXPECT_GT(faulty.stalled(), 0u);
    // Corruption breaks checksums, so damaged responses are dropped before
    // the demux: plenty of targets still answer on their surviving slots,
    // but with ~half of all responses damaged, almost no target completes a
    // full signature.
    EXPECT_GT(measurement.responsive_count(), 0u);
    std::size_t full = 0;
    for (const auto& record : measurement.records) {
        if (record.probes.all_protocols_responsive()) ++full;
    }
    EXPECT_LT(full, targets.size() / 2);
}

TEST(FaultedCensus, IdenticallySeededFaultedRunsAreByteIdentical) {
    sim::FaultPlan plan;
    plan.truncate_rate = 0.2;
    plan.corrupt_rate = 0.2;
    plan.duplicate_rate = 0.2;
    plan.send_fail_rate = 0.1;

    auto run_once = [&plan]() {
        FaultWorld world;
        probe::SimTransport inner(world.internet);
        sim::FaultInjectingTransport faulty(inner, plan);
        core::CensusPlan census;
        census.vantages.push_back(&faulty);
        census.campaign.window = 16;
        core::CensusRunner runner(std::move(census));
        return runner.measure("faulted", world_targets(world.topology, 150));
    };
    const core::Measurement first = run_once();
    const core::Measurement second = run_once();
    EXPECT_EQ(first, second)
        << "fault decisions are pure functions of (seed, packet bytes): "
           "two identically seeded runs must agree byte for byte";
}

TEST(FaultedCensus, SendLossLowersCoverageButCompletes) {
    FaultWorld clean_world;
    probe::SimTransport clean_transport(clean_world.internet);
    core::CensusPlan clean_plan;
    clean_plan.vantages.push_back(&clean_transport);
    clean_plan.campaign.window = 16;
    core::CensusRunner clean_runner(std::move(clean_plan));
    const auto clean =
        clean_runner.measure("clean", world_targets(clean_world.topology, 150));

    FaultWorld world;
    probe::SimTransport inner(world.internet);
    sim::FaultPlan plan;
    plan.send_fail_rate = 0.3;
    sim::FaultInjectingTransport faulty(inner, plan);
    core::CensusPlan census;
    census.vantages.push_back(&faulty);
    census.campaign.window = 16;
    core::CensusRunner runner(std::move(census));
    const auto lossy = runner.measure("lossy", world_targets(world.topology, 150));

    EXPECT_GT(faulty.send_faults(), 0u);
    ASSERT_EQ(lossy.records.size(), clean.records.size());
    EXPECT_LT(lossy.responsive_count(), clean.responsive_count());
    EXPECT_GT(lossy.responsive_count(), 0u);
}

// ------------------------------------------------ watchdog + lane requeue

TEST(Watchdog, PlanValidationRejectsNegativeDeadline) {
    FaultWorld world;
    probe::SimTransport transport(world.internet);
    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    plan.watchdog = std::chrono::milliseconds(-5);
    EXPECT_THROW(core::CensusRunner{std::move(plan)}, std::invalid_argument);
}

TEST(Watchdog, WedgedLaneRequeuesOntoSurvivorByteIdentically) {
    const std::size_t target_count = 120;

    // Reference: two healthy lanes over a fresh world.
    FaultWorld reference_world;
    probe::SimTransport ref_lane0(reference_world.internet);
    probe::SimTransport ref_lane1(reference_world.internet);
    core::CensusPlan reference_plan;
    reference_plan.vantages = {&ref_lane0, &ref_lane1};
    reference_plan.campaign.window = 16;
    core::CensusRunner reference_runner(std::move(reference_plan));
    const auto reference = reference_runner.measure(
        "census", world_targets(reference_world.topology, target_count));

    // Faulted: the same plan, lane 1 wedged from birth — it swallows its
    // sends before the (stateful) inner transport, so its targets' routers
    // are untouched and the survivor's re-probe is the first traffic they
    // see, exactly as in the reference run.
    FaultWorld world;
    probe::SimTransport lane0(world.internet);
    probe::SimTransport lane1_inner(world.internet);
    sim::FaultPlan wedge;
    wedge.wedge_after = 0;
    sim::FaultInjectingTransport lane1(lane1_inner, wedge);
    core::CensusPlan plan;
    plan.vantages = {&lane0, &lane1};
    plan.campaign.window = 16;
    plan.watchdog = 400ms;
    core::CensusRunner runner(std::move(plan));
    const auto supervised =
        runner.measure("census", world_targets(world.topology, target_count));

    EXPECT_EQ(runner.lanes_recovered(), 1u);
    EXPECT_GT(lane1.swallowed_by_wedge(), 0u);
    ASSERT_EQ(supervised.records.size(), reference.records.size());
    EXPECT_EQ(supervised, reference)
        << "requeued targets carry their original global indices, so the "
           "merged stream must be byte-identical to the unfaulted run";

    // Belt and braces: the CSV artefact (the census's external contract).
    std::ostringstream reference_csv;
    std::ostringstream supervised_csv;
    io::export_measurement_csv(reference_csv, reference);
    io::export_measurement_csv(supervised_csv, supervised);
    EXPECT_EQ(supervised_csv.str(), reference_csv.str());
}

TEST(Watchdog, LastLaneWedgingThrowsInsteadOfSpinning) {
    FaultWorld world;
    probe::SimTransport inner(world.internet);
    sim::FaultPlan wedge;
    wedge.wedge_after = 0;
    sim::FaultInjectingTransport lane(inner, wedge);
    core::CensusPlan plan;
    plan.vantages.push_back(&lane);
    plan.campaign.window = 8;
    plan.watchdog = 200ms;
    core::CensusRunner runner(std::move(plan));
    try {
        (void)runner.measure("census", world_targets(world.topology, 20));
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("watchdog"), std::string::npos)
            << error.what();
    }
}

TEST(Watchdog, EnvKnobEnablesSupervisionWhenThePlanLeavesItZero) {
    ScopedEnv watchdog("LFP_WATCHDOG_MS", "400");
    FaultWorld world;
    probe::SimTransport lane0(world.internet);
    probe::SimTransport lane1_inner(world.internet);
    sim::FaultPlan wedge;
    wedge.wedge_after = 0;
    sim::FaultInjectingTransport lane1(lane1_inner, wedge);
    core::CensusPlan plan;
    plan.vantages = {&lane0, &lane1};
    plan.campaign.window = 16;  // plan.watchdog stays 0 — the env supplies it
    core::CensusRunner runner(std::move(plan));
    const auto measurement = runner.measure("census", world_targets(world.topology, 60));
    EXPECT_EQ(runner.lanes_recovered(), 1u);
    EXPECT_EQ(measurement.records.size(), 60u);
}

TEST(Watchdog, UnparseableEnvKnobThrows) {
    ScopedEnv watchdog("LFP_WATCHDOG_MS", "soon");
    FaultWorld world;
    probe::SimTransport transport(world.internet);
    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    core::CensusRunner runner(std::move(plan));
    EXPECT_THROW((void)runner.measure("census", world_targets(world.topology, 5)),
                 std::invalid_argument);
}

// --------------------------------------------- world-level fault plumbing

TEST(WorldFaults, EnvKnobsReachTheWorldConfigAndWrapTransports) {
    {
        ScopedEnv corrupt("LFP_FAULT_CORRUPT", "0.15");
        const analysis::WorldConfig config = analysis::WorldConfig::from_env();
        EXPECT_DOUBLE_EQ(config.faults.corrupt_rate, 0.15);
        EXPECT_TRUE(config.faults.any());
    }
    {
        ScopedEnv corrupt("LFP_FAULT_CORRUPT", "7.0");
        EXPECT_THROW((void)analysis::WorldConfig::from_env(), std::invalid_argument);
    }

    // A faulted world wraps every vantage transport in the decorator and
    // still completes its full measurement campaign.
    analysis::WorldConfig config;
    config.seed = 91;
    config.num_ases = 80;
    config.scale = 0.3;
    config.traces_per_snapshot = 500;
    config.signature_min_occurrences = 3;
    config.faults.send_fail_rate = 0.05;
    config.faults.truncate_rate = 0.05;
    const auto world = analysis::ExperimentWorld::create(config);
    ASSERT_FALSE(world->fault_transports().empty());
    std::uint64_t injected = 0;
    for (const auto& transport : world->fault_transports()) {
        injected += transport->injected_total();
    }
    EXPECT_GT(injected, 0u) << "a faulted world that injected nothing is misconfigured";
    EXPECT_EQ(world->measurements().size(), 6u);

    // The healthy path stays undecorated: no wrappers, no overhead.
    analysis::WorldConfig clean = config;
    clean.faults = {};
    clean.num_ases = 40;
    clean.traces_per_snapshot = 200;
    const auto healthy = analysis::ExperimentWorld::create(clean);
    EXPECT_TRUE(healthy->fault_transports().empty());
}

}  // namespace
}  // namespace lfp
