// Path-census tests: TracerouteSynthesizer property sweep (per-flow
// determinism, valley-free hop sequences, noise fractions, no self-hops),
// PathTargets dedup/provenance semantics (a shared router interface is
// probed once and credited to every path), byte-identity of the path
// census across vantage counts — including under a wedged lane with
// watchdog requeue — measured-vs-ground-truth agreement, the lfp_majority
// SNMP-fallback regression, the LFP_PATH_* config surface, and the
// PATHCENSUS / PATH @<index> wire verbs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/path_census.hpp"
#include "core/census.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/faults.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"
#include "sim/traceroute.hpp"

namespace lfp {
namespace {

using namespace std::chrono_literals;

/// Scoped environment override (restores the previous value on destruction).
class ScopedEnv {
  public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        const char* previous = std::getenv(name);
        if (previous != nullptr) saved_ = previous;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (saved_) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    const char* name_;
    std::optional<std::string> saved_;
};

/// A deterministic world rebuilt from fixed seeds; loss defaults to zero so
/// byte-identity comparisons see every response.
struct PathWorld {
    explicit PathWorld(double loss = 0.0)
        : topology(sim::Topology::build({.seed = 77,
                                         .num_ases = 120,
                                         .tier1_count = 4,
                                         .transit_fraction = 0.2,
                                         .scale = 0.5})),
          internet(topology, {.seed = 13, .loss_rate = loss}) {}

    sim::Topology topology;
    sim::Internet internet;
};

analysis::PathCensusConfig small_sweep() {
    analysis::PathCensusConfig config;
    config.sources = 3;
    config.destinations = 12;
    config.flows_per_pair = 1;
    return config;
}

/// Collapses a trace's hops to the AS sequence of the routers they resolve
/// to (noise hops — private or phantom — resolve to no router and drop
/// out), merging consecutive duplicates.
std::vector<std::uint32_t> hop_as_sequence(const sim::Topology& topology,
                                           const sim::Traceroute& trace) {
    std::vector<std::uint32_t> sequence;
    for (const net::IPv4Address hop : trace.hops) {
        const std::size_t index = topology.find_by_interface(hop);
        if (index == sim::Topology::npos) continue;
        const std::uint32_t asn = topology.asn_of(index);
        if (sequence.empty() || sequence.back() != asn) sequence.push_back(asn);
    }
    return sequence;
}

/// Valley-free check (Gao-Rexford): an AS path must look like
/// up* (peer)? down* — once a peer or customer (down) edge is taken, no
/// provider (up) or peer edge may follow.
bool valley_free(const sim::AsGraph& graph, const std::vector<std::uint32_t>& path) {
    bool descending = false;  // true once a peer or down edge was taken
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const sim::AsNode& from = graph.node(path[i]);
        const std::uint32_t to = path[i + 1];
        const bool up = std::find(from.providers.begin(), from.providers.end(), to) !=
                        from.providers.end();
        const bool down = std::find(from.customers.begin(), from.customers.end(), to) !=
                          from.customers.end();
        const bool peer = std::find(from.peers.begin(), from.peers.end(), to) !=
                          from.peers.end();
        if (!up && !down && !peer) return false;  // not even adjacent
        if (descending && (up || peer)) return false;
        if (peer || down) descending = true;
    }
    return true;
}

/// Transport decorator counting probe packets per destination address
/// (IPv4 header bytes 16–19); everything else forwards to the inner
/// transport, including backend_hint so alias grouping still works.
class CountingTransport final : public probe::ProbeTransport {
  public:
    explicit CountingTransport(probe::ProbeTransport& inner) : inner_(&inner) {}

    void send_batch(std::span<const net::Bytes> packets) override {
        for (const net::Bytes& packet : packets) {
            if (packet.size() < 20) continue;
            const std::uint32_t destination =
                (static_cast<std::uint32_t>(packet[16]) << 24) |
                (static_cast<std::uint32_t>(packet[17]) << 16) |
                (static_cast<std::uint32_t>(packet[18]) << 8) |
                static_cast<std::uint32_t>(packet[19]);
            ++counts_[net::IPv4Address(destination)];
        }
        inner_->send_batch(packets);
    }
    std::vector<net::Bytes> poll_responses(std::chrono::milliseconds timeout) override {
        return inner_->poll_responses(timeout);
    }
    [[nodiscard]] bool drained() const override { return inner_->drained(); }
    [[nodiscard]] net::IPv4Address vantage_address() const override {
        return inner_->vantage_address();
    }
    [[nodiscard]] std::chrono::milliseconds transact_timeout() const override {
        return inner_->transact_timeout();
    }
    [[nodiscard]] std::optional<std::uint64_t> backend_hint(
        net::IPv4Address target) const override {
        return inner_->backend_hint(target);
    }

    [[nodiscard]] std::uint64_t count(net::IPv4Address target) const {
        auto it = counts_.find(target);
        return it == counts_.end() ? 0 : it->second;
    }

  private:
    probe::ProbeTransport* inner_;
    std::unordered_map<net::IPv4Address, std::uint64_t> counts_;
};

// ------------------------------------------------------- TracerouteProperty

TEST(TracerouteProperty, SameFlowTripleYieldsIdenticalTrace) {
    PathWorld world;
    sim::TracerouteSynthesizer first(world.topology, 99);
    sim::TracerouteSynthesizer second(world.topology, 99);
    const auto& nodes = world.topology.graph().nodes();
    std::size_t compared = 0;
    for (std::size_t i = 0; i < nodes.size() && compared < 24; i += 7) {
        const std::uint32_t src = nodes[i].asn;
        const std::uint32_t dst = nodes[(i + 31) % nodes.size()].asn;
        for (std::uint64_t flow = 0; flow < 2; ++flow) {
            const auto a = first.trace(src, dst, flow);
            const auto b = second.trace(src, dst, flow);
            ASSERT_EQ(a.has_value(), b.has_value());
            if (!a) continue;
            EXPECT_EQ(a->hops, b->hops);
            EXPECT_EQ(a->source, b->source);
            EXPECT_EQ(a->destination, b->destination);
            // Replaying the triple on the *same* synthesizer must also
            // reproduce it (no hidden stream state).
            const auto replay = first.trace(src, dst, flow);
            ASSERT_TRUE(replay.has_value());
            EXPECT_EQ(replay->hops, a->hops);
            ++compared;
        }
    }
    EXPECT_GE(compared, 8u) << "world too small for the property sweep";
}

TEST(TracerouteProperty, EveryHopSequenceIsValleyFree) {
    PathWorld world;
    sim::TracerouteSynthesizer synthesizer(world.topology, 7);
    // Noise replaces a hop in place, so a noisy trace can lose an AS from
    // the resolved sequence entirely; the valley-free invariant is a
    // property of the routing, so assert it on noiseless traces.
    synthesizer.set_noise(0.0, 0.0);
    const auto& nodes = world.topology.graph().nodes();
    std::size_t checked = 0;
    for (std::size_t i = 0; i < nodes.size(); i += 3) {
        const std::uint32_t src = nodes[i].asn;
        const std::uint32_t dst = nodes[(i * 13 + 5) % nodes.size()].asn;
        const auto trace = synthesizer.trace(src, dst, 0);
        if (!trace) continue;
        const std::vector<std::uint32_t> sequence = hop_as_sequence(world.topology, *trace);
        EXPECT_TRUE(valley_free(world.topology.graph(), sequence))
            << "violation on " << src << " -> " << dst;
        ++checked;
    }
    EXPECT_GE(checked, 10u);
}

TEST(TracerouteProperty, NoiseFractionsHonoredWithinBounds) {
    PathWorld world;
    sim::TracerouteSynthesizer synthesizer(world.topology, 21);
    const double stale = 0.2;
    const double priv = 0.1;
    synthesizer.set_noise(stale, priv);
    std::size_t total = 0;
    std::size_t private_hops = 0;
    std::size_t phantom_hops = 0;
    const auto& nodes = world.topology.graph().nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto trace =
            synthesizer.trace(nodes[i].asn, nodes[(i + 17) % nodes.size()].asn, 0);
        if (!trace) continue;
        for (const net::IPv4Address hop : trace->hops) {
            ++total;
            if (!hop.is_routable()) {
                ++private_hops;
            } else if (world.topology.find_by_interface(hop) == sim::Topology::npos) {
                ++phantom_hops;  // routable but bound to no router: stale
            }
        }
    }
    ASSERT_GE(total, 200u) << "not enough hops for a statistical bound";
    const double private_fraction = static_cast<double>(private_hops) /
                                    static_cast<double>(total);
    const double stale_fraction = static_cast<double>(phantom_hops) /
                                  static_cast<double>(total);
    EXPECT_NEAR(private_fraction, priv, 0.06);
    EXPECT_NEAR(stale_fraction, stale, 0.08);
}

TEST(TracerouteProperty, HopsNeverIncludeEndpoints) {
    PathWorld world;
    sim::TracerouteSynthesizer synthesizer(world.topology, 4);
    synthesizer.set_noise(0.1, 0.05);
    const auto& nodes = world.topology.graph().nodes();
    std::size_t checked = 0;
    for (std::size_t i = 0; i < nodes.size(); i += 2) {
        const auto trace =
            synthesizer.trace(nodes[i].asn, nodes[(i + 11) % nodes.size()].asn, 0);
        if (!trace) continue;
        for (const net::IPv4Address hop : trace->hops) {
            EXPECT_NE(hop, trace->destination)
                << "the targeted host must never appear as a hop";
            EXPECT_NE(hop, trace->source);
        }
        ++checked;
    }
    EXPECT_GE(checked, 10u);
}

// ------------------------------------------------------------- PathTargets

TEST(PathTargets, DedupProvenanceAndCounters) {
    const net::IPv4Address a(0x05010101);  // routable
    const net::IPv4Address b(0x05010102);
    const net::IPv4Address c(0x05010103);
    const net::IPv4Address private_hop(0x0A000001);  // 10.0.0.1
    const std::vector<std::vector<net::IPv4Address>> paths = {
        {a, b, private_hop, a},  // a repeats inside one path
        {b, c},
        {c, a},
    };
    const core::PathTargets targets = core::PathTargets::from_paths(paths);

    ASSERT_EQ(targets.targets.size(), 3u);
    EXPECT_EQ(targets.targets[0], a);  // first-appearance order
    EXPECT_EQ(targets.targets[1], b);
    EXPECT_EQ(targets.targets[2], c);

    EXPECT_EQ(targets.hops_listed, 8u);
    EXPECT_EQ(targets.unroutable_dropped, 1u);
    // a twice more (in-path repeat + path 2), b once, c once.
    EXPECT_EQ(targets.duplicates_collapsed, 4u);

    ASSERT_EQ(targets.provenance.size(), 3u);
    EXPECT_EQ(targets.provenance[0], (std::vector<std::uint32_t>{0, 2}));  // a: paths 0, 2
    EXPECT_EQ(targets.provenance[1], (std::vector<std::uint32_t>{0, 1}));  // b: paths 0, 1
    EXPECT_EQ(targets.provenance[2], (std::vector<std::uint32_t>{1, 2}));  // c: paths 1, 2
    EXPECT_EQ(targets.first_path, (std::vector<std::uint32_t>{0, 0, 1}));
}

TEST(PathTargets, SharedHopProbedOnceCreditedToEveryPath) {
    PathWorld world;
    probe::SimTransport inner(world.internet);
    CountingTransport transport(inner);

    // Three synthetic paths sharing one router interface; two more
    // interfaces are unique to one path each.
    const net::IPv4Address shared = world.topology.router(0).interfaces().front();
    const net::IPv4Address only_a = world.topology.router(1).interfaces().front();
    const net::IPv4Address only_b = world.topology.router(2).interfaces().front();
    const std::vector<std::vector<net::IPv4Address>> paths = {
        {shared, only_a},
        {shared, only_b},
        {shared},
    };

    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    plan.campaign.window = 8;
    core::CensusRunner runner(std::move(plan));
    core::CollectingSink sink("paths");
    runner.stream_paths(paths, {}, 1, sink);
    const core::Measurement measurement = sink.take();

    // One record per *distinct* interface, and the shared hop saw exactly
    // as many packets as a single-path hop — probed once, not three times.
    ASSERT_EQ(measurement.records.size(), 3u);
    EXPECT_GT(transport.count(shared), 0u);
    EXPECT_EQ(transport.count(shared), transport.count(only_a));
    EXPECT_EQ(transport.count(shared), transport.count(only_b));

    // ...while the provenance credits it to all three paths.
    const core::PathTargets& targets = runner.last_path_targets();
    ASSERT_EQ(targets.targets.size(), 3u);
    EXPECT_EQ(targets.targets[0], shared);
    EXPECT_EQ(targets.provenance[0], (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(targets.provenance[1], (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(targets.provenance[2], (std::vector<std::uint32_t>{1}));
}

TEST(PathTargets, MultiPassMergeNeverRegressesDuplicateHops) {
    // A lossy world probed with retries: the merged record of every target
    // must answer at least as much per protocol as the identical world's
    // single-pass record (strict-improvement merge; duplicate hops across
    // paths collapse to one global index, so retries can never double-count
    // or regress them).
    const analysis::PathCensusConfig config = small_sweep();

    auto run = [&config](std::size_t passes) {
        PathWorld world(0.25);
        probe::SimTransport transport(world.internet);
        core::CensusPlan plan;
        plan.vantages.push_back(&transport);
        plan.campaign.window = 8;
        core::CensusRunner runner(std::move(plan));
        const analysis::PathCensus census(world.topology, config);
        const analysis::PathDiscovery discovery = census.discover();
        return runner.measure_paths("paths", discovery.hop_lists(), discovery.trace_source,
                                    passes);
    };

    const core::Measurement single = run(1);
    const core::Measurement multi = run(3);
    ASSERT_EQ(multi.records.size(), single.records.size());
    ASSERT_FALSE(multi.records.empty());
    for (std::size_t i = 0; i < multi.records.size(); ++i) {
        const std::uint16_t single_mask =
            core::probe_response_mask(single.records[i].probes);
        const std::uint16_t multi_mask = core::probe_response_mask(multi.records[i].probes);
        for (std::size_t protocol = 0; protocol < 3; ++protocol) {
            EXPECT_GE(core::mask_responses_for(multi_mask, protocol),
                      core::mask_responses_for(single_mask, protocol))
                << "record " << i << " protocol " << protocol
                << ": a retry pass regressed the merge";
        }
        EXPECT_GE(multi.records[i].snmp_vendor.has_value(),
                  single.records[i].snmp_vendor.has_value());
    }
}

// -------------------------------------------------------------- PathCensus

TEST(PathCensus, DiscoveryIsDeterministic) {
    PathWorld world;
    const analysis::PathCensus census(world.topology, small_sweep());
    const analysis::PathDiscovery first = census.discover();
    const analysis::PathDiscovery second = census.discover();
    EXPECT_EQ(first.sources, second.sources);
    EXPECT_EQ(first.destinations, second.destinations);
    EXPECT_EQ(first.trace_source, second.trace_source);
    ASSERT_EQ(first.traces.size(), second.traces.size());
    ASSERT_FALSE(first.traces.empty());
    for (std::size_t i = 0; i < first.traces.size(); ++i) {
        EXPECT_EQ(first.traces[i].hops, second.traces[i].hops);
    }
}

TEST(PathCensus, ByteIdenticalAcrossVantageCounts) {
    const analysis::PathCensusConfig config = small_sweep();

    struct Run {
        std::string csv;
        std::vector<net::IPv4Address> targets;
        std::vector<double> vendors_per_path;
    };
    auto run_at = [&config](std::size_t vantage_count) {
        PathWorld world;  // fresh stateful world per vantage count
        std::vector<std::unique_ptr<probe::SimTransport>> transports;
        core::CensusPlan plan;
        for (std::size_t lane = 0; lane < vantage_count; ++lane) {
            transports.push_back(std::make_unique<probe::SimTransport>(world.internet));
            plan.vantages.push_back(transports.back().get());
        }
        plan.campaign.window = 8;
        plan.passes = 2;
        core::CensusRunner runner(std::move(plan));
        const analysis::PathCensus census(world.topology, config);
        const analysis::PathCensusResult result = census.run(runner);
        Run out;
        std::ostringstream csv;
        io::export_measurement_csv(csv, result.measurement);
        out.csv = csv.str();
        out.targets = result.targets.targets;
        out.vendors_per_path =
            result.stats(world.topology, analysis::PathScope::all).vendors_per_path
                .sorted_samples();
        return out;
    };

    const Run v1 = run_at(1);
    ASSERT_FALSE(v1.targets.empty());
    for (const std::size_t count : {2u, 4u}) {
        const Run v = run_at(count);
        EXPECT_EQ(v.targets, v1.targets) << "V=" << count
                                         << ": the discovered target set moved";
        EXPECT_EQ(v.csv, v1.csv) << "V=" << count << ": measurement not byte-identical";
        EXPECT_EQ(v.vendors_per_path, v1.vendors_per_path) << "V=" << count;
    }
}

TEST(PathCensus, WedgedLaneRequeueKeepsPathCensusByteIdentical) {
    const analysis::PathCensusConfig config = small_sweep();

    // Reference: two healthy lanes.
    PathWorld reference_world;
    probe::SimTransport ref_lane0(reference_world.internet);
    probe::SimTransport ref_lane1(reference_world.internet);
    core::CensusPlan reference_plan;
    reference_plan.vantages = {&ref_lane0, &ref_lane1};
    reference_plan.campaign.window = 8;
    core::CensusRunner reference_runner(std::move(reference_plan));
    const analysis::PathCensus reference_census(reference_world.topology, config);
    const analysis::PathCensusResult reference = reference_census.run(reference_runner);

    // Faulted: lane 1 wedged from birth (sends swallowed before the
    // stateful inner transport), watchdog requeues onto the survivor.
    PathWorld world;
    probe::SimTransport lane0(world.internet);
    probe::SimTransport lane1_inner(world.internet);
    sim::FaultPlan wedge;
    wedge.wedge_after = 0;
    sim::FaultInjectingTransport lane1(lane1_inner, wedge);
    core::CensusPlan plan;
    plan.vantages = {&lane0, &lane1};
    plan.campaign.window = 8;
    plan.watchdog = 400ms;
    core::CensusRunner runner(std::move(plan));
    const analysis::PathCensus census(world.topology, config);
    const analysis::PathCensusResult supervised = census.run(runner);

    EXPECT_EQ(runner.lanes_recovered(), 1u);
    EXPECT_EQ(supervised.targets.targets, reference.targets.targets);
    EXPECT_EQ(supervised.measurement, reference.measurement)
        << "watchdog requeue must not change what a path census measures";

    std::ostringstream reference_csv;
    std::ostringstream supervised_csv;
    io::export_measurement_csv(reference_csv, reference.measurement);
    io::export_measurement_csv(supervised_csv, supervised.measurement);
    EXPECT_EQ(supervised_csv.str(), reference_csv.str());
}

TEST(PathCensus, MeasuredMapAgreesWithGroundTruth) {
    PathWorld world(0.02);
    probe::SimTransport transport(world.internet);
    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    plan.campaign.window = 8;
    plan.passes = 2;
    core::CensusRunner runner(std::move(plan));
    const analysis::PathCensus census(world.topology, small_sweep());
    const analysis::PathCensusResult result = census.run(runner);

    const analysis::VendorMap truth = census.ground_truth(result.targets);
    const analysis::PathAgreement agreement =
        analysis::PathCensus::agreement(result.vendors, truth, result.targets);
    EXPECT_GT(agreement.truth_known, 0u);
    EXPECT_GT(agreement.measured_known, 0u);
    EXPECT_GT(agreement.both_known, 0u);
    EXPECT_GE(agreement.accuracy(), 0.9)
        << "measured and oracle maps disagree on commonly-identified hops";

    // The §6 analyses run from the measured map: scope filtering and the
    // routable-hops denominator are map-independent, so the paths
    // considered must match the oracle's exactly.
    const analysis::PathStats measured_stats =
        result.stats(world.topology, analysis::PathScope::all);
    const analysis::PathAnalyzer truth_analyzer(world.topology, truth);
    const analysis::PathStats truth_stats =
        truth_analyzer.analyze(result.discovery.traces, analysis::PathScope::all, {});
    EXPECT_EQ(measured_stats.paths_considered, truth_stats.paths_considered);
    EXPECT_GT(measured_stats.paths_considered, 0u);
}

TEST(PathCensus, NoiseCountersSurfaceStaleAndPrivateHops) {
    PathWorld world;
    probe::SimTransport transport(world.internet);
    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    plan.campaign.window = 8;
    core::CensusRunner runner(std::move(plan));

    analysis::PathCensusConfig config = small_sweep();
    config.destinations = 20;
    config.stale_fraction = 0.15;
    config.private_fraction = 0.1;
    const analysis::PathCensus census(world.topology, config);
    const analysis::PathCensusResult result = census.run(runner);

    // Private hops are filtered before probing (address-level noise);
    // phantom hops survive the filter, get probed, and answer nothing in a
    // loss-free world (response-level noise).
    EXPECT_GT(result.targets.unroutable_dropped, 0u);
    EXPECT_GT(result.stale_unresponsive, 0u);
    for (const net::IPv4Address target : result.targets.targets) {
        EXPECT_TRUE(target.is_routable());
    }
}

// ------------------------------------------------------- PathCensusConfig

TEST(PathCensusConfig, EnvOverridesAndValidation) {
    {
        ScopedEnv sources("LFP_PATH_SOURCES", "3");
        ScopedEnv dests("LFP_PATH_DESTS", "9");
        ScopedEnv flows("LFP_PATH_FLOWS", "2");
        ScopedEnv stale("LFP_PATH_STALE", "0.25");
        ScopedEnv priv("LFP_PATH_PRIVATE", "0");
        const analysis::PathCensusConfig config = analysis::PathCensusConfig::from_env();
        EXPECT_EQ(config.sources, 3u);
        EXPECT_EQ(config.destinations, 9u);
        EXPECT_EQ(config.flows_per_pair, 2u);
        EXPECT_DOUBLE_EQ(config.stale_fraction, 0.25);
        EXPECT_DOUBLE_EQ(config.private_fraction, 0.0);
    }
    {
        ScopedEnv sources("LFP_PATH_SOURCES", "0");
        EXPECT_THROW((void)analysis::PathCensusConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv stale("LFP_PATH_STALE", "1.5");
        EXPECT_THROW((void)analysis::PathCensusConfig::from_env(), std::invalid_argument);
    }
    {
        ScopedEnv dests("LFP_PATH_DESTS", "not-a-number");
        EXPECT_THROW((void)analysis::PathCensusConfig::from_env(), std::invalid_argument);
    }
}

// ------------------------------------------ VendorMap measurement methods

TEST(VendorMapMeasurement, LfpMajorityKeepsSnmpLabeledNonUniqueTargets) {
    // Regression: a headline-mode classification leaves non-unique matches
    // vendorless; lfp_majority used to silently drop such targets even
    // when SNMP evidence named the vendor — knowing strictly less than
    // `combined` about an SNMP-labeled router.
    core::Measurement measurement;
    core::TargetRecord record;
    record.probes.target = net::IPv4Address(0x05020202);
    record.snmp_vendor = stack::Vendor::juniper;
    record.lfp.kind = core::MatchKind::non_unique;
    record.lfp.vendor = std::nullopt;  // headline mode: no majority verdict
    measurement.records.push_back(record);

    const auto majority = analysis::VendorMap::from_measurement(
        measurement, analysis::VendorMap::Method::lfp_majority);
    const auto looked_up = majority.lookup(record.probes.target);
    ASSERT_TRUE(looked_up.has_value());
    EXPECT_EQ(*looked_up, stack::Vendor::juniper);

    // Strict-LFP maps must still exclude it (no unique match), combined
    // must still include it — the fallback changes lfp_majority only.
    EXPECT_FALSE(analysis::VendorMap::from_measurement(measurement,
                                                       analysis::VendorMap::Method::lfp)
                     .lookup(record.probes.target)
                     .has_value());
    EXPECT_TRUE(analysis::VendorMap::from_measurement(measurement,
                                                      analysis::VendorMap::Method::combined)
                    .lookup(record.probes.target)
                    .has_value());
}

TEST(VendorMapMeasurement, LfpMajorityPrefersMajorityVerdictOverSnmp) {
    // When majority mode *did* stamp a vendor, that verdict wins — the
    // SNMP fallback fills gaps, it does not override the method.
    core::Measurement measurement;
    core::TargetRecord record;
    record.probes.target = net::IPv4Address(0x05020203);
    record.snmp_vendor = stack::Vendor::juniper;
    record.lfp.kind = core::MatchKind::non_unique;
    record.lfp.vendor = stack::Vendor::cisco;
    measurement.records.push_back(record);

    const auto majority = analysis::VendorMap::from_measurement(
        measurement, analysis::VendorMap::Method::lfp_majority);
    const auto looked_up = majority.lookup(record.probes.target);
    ASSERT_TRUE(looked_up.has_value());
    EXPECT_EQ(*looked_up, stack::Vendor::cisco);
}

// ------------------------------------------------------------ serve verbs

TEST(ServePathCensus, PathCensusVerbPublishesAndAnswersMeasuredPaths) {
    PathWorld world(0.02);
    auto transport = std::make_unique<probe::SimTransport>(world.internet);
    core::CensusPlan plan;
    plan.name = "serve";
    plan.vantages.push_back(transport.get());
    plan.campaign.window = 8;
    plan.passes = 2;

    serve::ServiceConfig config;
    config.name = "serve";
    config.run_immediately = false;
    sim::Topology* topology = &world.topology;
    config.paths = [topology]() {
        analysis::PathCensusConfig sweep = small_sweep();
        const analysis::PathCensus census(*topology, sweep);
        analysis::PathDiscovery discovery = census.discover();
        serve::PathSweep out;
        out.paths = discovery.hop_lists();
        out.path_lane = std::move(discovery.trace_source);
        return out;
    };

    serve::CensusService service(std::move(plan), config);
    const serve::QueryEngine engine(service.store());

    // Before any census: measured-path queries fail cleanly.
    EXPECT_EQ(serve::handle_request("PATH @0", service, engine).response.rfind("ERR", 0), 0u);

    const std::string census_response =
        serve::handle_request("PATHCENSUS", service, engine).response;
    ASSERT_EQ(census_response.rfind("OK version=1", 0), 0u) << census_response;
    EXPECT_NE(census_response.find(" paths="), std::string::npos);

    const auto snapshot = service.store().current();
    ASSERT_NE(snapshot, nullptr);
    ASSERT_FALSE(snapshot->paths().empty());
    EXPECT_FALSE(snapshot->records().empty());

    // PATH @0 answers hops + verdicts from the published snapshot.
    const std::string profile = serve::handle_request("PATH @0", service, engine).response;
    ASSERT_EQ(profile.rfind("OK version=1", 0), 0u) << profile;
    EXPECT_NE(profile.find("hops=" + std::to_string(snapshot->paths().front().size())),
              std::string::npos)
        << profile;

    // The engine answer matches querying the same hops explicitly.
    const auto direct = engine.path_profile(snapshot->paths().front());
    const auto measured = engine.measured_path(0);
    ASSERT_TRUE(measured.has_value());
    EXPECT_EQ(measured.value().known_hops, direct.known_hops);
    EXPECT_EQ(measured.value().identified_hops, direct.identified_hops);
    EXPECT_EQ(measured.value().combination, direct.combination);

    // Out-of-range and malformed indices fail cleanly.
    EXPECT_EQ(serve::handle_request("PATH @999999", service, engine).response.rfind("ERR", 0),
              0u);
    EXPECT_EQ(serve::handle_request("PATH @x", service, engine).response.rfind("ERR", 0), 0u);
}

TEST(ServePathCensus, PathCensusVerbWithoutSourceFailsCleanly) {
    PathWorld world;
    auto transport = std::make_unique<probe::SimTransport>(world.internet);
    core::CensusPlan plan;
    plan.name = "serve";
    plan.targets.push_back(world.topology.router(0).interfaces().front());
    plan.vantages.push_back(transport.get());
    plan.campaign.window = 8;

    serve::ServiceConfig config;
    config.run_immediately = false;
    serve::CensusService service(std::move(plan), config);
    const serve::QueryEngine engine(service.store());

    EXPECT_FALSE(service.has_path_source());
    const std::string response =
        serve::handle_request("PATHCENSUS", service, engine).response;
    EXPECT_EQ(response.rfind("ERR", 0), 0u) << response;

    // A plain census publishes a snapshot without measured paths.
    EXPECT_EQ(serve::handle_request("TRIGGER", service, engine).response, "OK version=1");
    EXPECT_EQ(serve::handle_request("PATH @0", service, engine).response.rfind("ERR", 0), 0u);
}

}  // namespace
}  // namespace lfp
