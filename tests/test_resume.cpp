// Crash-tolerant census resume: the checkpoint manifest round-trips and
// rejects damage, corrupted spill segments are salvaged around, and — the
// acceptance test — a checkpointed spilled census killed with SIGKILL
// mid-run resumes in a fresh process and produces byte-identical CSV and
// signature output to an uninterrupted run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/census.hpp"
#include "core/checkpoint.hpp"
#include "core/record_sink.hpp"
#include "io/csv_export.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace lfp {
namespace {

using namespace std::chrono_literals;

/// A fresh scratch directory under the system temp dir, removed on scope
/// exit.
class ScratchDir {
  public:
    explicit ScratchDir(const std::string& tag)
        : path_(std::filesystem::temp_directory_path() /
                ("lfp-test-" + tag + "-" + std::to_string(::getpid()))) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

  private:
    std::filesystem::path path_;
};

core::CensusManifest sample_manifest() {
    core::CensusManifest manifest;
    manifest.index_base = 7;
    manifest.target_count = 5;
    manifest.segment_records = 2;
    manifest.completed_passes = 2;
    manifest.segments = {{"lfp-spill-1-0.seg", 2}, {"lfp-spill-1-1.seg", 2},
                         {"lfp-spill-1-2.seg", 1}};
    manifest.masks = {0x1FF, 0x003, 0x000, 0x3FF, 0x007};
    manifest.pass_stats = {{.probed = 5, .upgraded = 0, .incomplete = 3},
                           {.probed = 3, .upgraded = 2, .incomplete = 1}};
    manifest.retry_lists = {{8, 9, 11}};
    return manifest;
}

TEST(CheckpointManifest, RoundTripsEveryField) {
    ScratchDir dir("manifest");
    const core::CensusManifest manifest = sample_manifest();
    core::write_manifest(dir.path(), manifest);

    const auto read = core::read_manifest(dir.path());
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->index_base, manifest.index_base);
    EXPECT_EQ(read->target_count, manifest.target_count);
    EXPECT_EQ(read->segment_records, manifest.segment_records);
    EXPECT_EQ(read->completed_passes, manifest.completed_passes);
    EXPECT_EQ(read->segments, manifest.segments);
    EXPECT_EQ(read->masks, manifest.masks);
    EXPECT_EQ(read->pass_stats, manifest.pass_stats);
    EXPECT_EQ(read->retry_lists, manifest.retry_lists);

    // Rewrite-in-place (the per-pass-boundary journal) replaces atomically.
    core::CensusManifest second = manifest;
    second.completed_passes = 3;
    second.retry_lists.push_back({9});
    second.pass_stats.push_back({.probed = 1, .upgraded = 1, .incomplete = 0});
    core::write_manifest(dir.path(), second);
    const auto reread = core::read_manifest(dir.path());
    ASSERT_TRUE(reread.has_value());
    EXPECT_EQ(reread->completed_passes, 3u);
    ASSERT_EQ(reread->retry_lists.size(), 2u);

    core::remove_manifest(dir.path());
    EXPECT_FALSE(core::read_manifest(dir.path()).has_value());
    core::remove_manifest(dir.path());  // idempotent
}

TEST(CheckpointManifest, RejectsDamageInsteadOfResumingWrong) {
    ScratchDir dir("manifest-damage");
    EXPECT_FALSE(core::read_manifest(dir.path()).has_value());  // absent

    core::write_manifest(dir.path(), sample_manifest());
    const std::filesystem::path file = core::manifest_path(dir.path());
    std::ifstream in(file, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 32u);

    auto rewrite = [&file](const std::vector<char>& content) {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(content.data(), static_cast<std::streamsize>(content.size()));
    };

    // Every truncation point is rejected.
    for (std::size_t length : {std::size_t{0}, std::size_t{4}, std::size_t{17},
                               bytes.size() / 2, bytes.size() - 1}) {
        rewrite(std::vector<char>(bytes.begin(), bytes.begin() + length));
        EXPECT_FALSE(core::read_manifest(dir.path()).has_value()) << "prefix " << length;
    }

    // Bad magic is rejected.
    std::vector<char> bad_magic = bytes;
    bad_magic[0] ^= 0x20;
    rewrite(bad_magic);
    EXPECT_FALSE(core::read_manifest(dir.path()).has_value());

    // The intact bytes still parse (the damage above was the problem).
    rewrite(bytes);
    EXPECT_TRUE(core::read_manifest(dir.path()).has_value());
}

// ------------------------------------------------------------ segment salvage

core::TargetRecord record_for(std::uint32_t address, std::uint16_t pass) {
    core::TargetRecord record;
    record.probes.target = net::IPv4Address(address);
    record.pass = pass;
    record.features.protocol_mask = 0b111;
    record.signature = core::Signature::from_features(record.features);
    return record;
}

TEST(SegmentSalvage, SkipsCorruptSegmentsAndKeepsTheRest) {
    ScratchDir dir("salvage");
    core::SpillConfig config;
    config.directory = dir.path().string();
    config.segment_records = 4;
    config.keep_segments = true;
    std::vector<std::filesystem::path> paths;
    {
        core::SpillSink sink(config);
        for (std::uint64_t g = 0; g < 12; ++g) {
            sink.accept(g, record_for(0x0A000000u + static_cast<std::uint32_t>(g), 0));
        }
        sink.flush();
        for (const auto& segment : sink.segment_manifest()) paths.push_back(segment.path);
    }
    ASSERT_EQ(paths.size(), 3u);

    // Flip a byte in the middle segment's magic.
    {
        std::fstream corrupt(paths[1], std::ios::binary | std::ios::in | std::ios::out);
        corrupt.seekp(0);
        corrupt.put('X');
    }

    const auto salvage = core::SpillSink::read_segment_files(paths);
    EXPECT_EQ(salvage.records.size(), 8u) << "two good segments of four records each";
    ASSERT_EQ(salvage.skipped.size(), 1u);
    EXPECT_EQ(salvage.skipped.front().first, paths[1]);
    EXPECT_FALSE(salvage.skipped.front().second.empty()) << "a skip names its reason";
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(salvage.records[i].target, 0x0A000000u + i);
        EXPECT_EQ(salvage.records[4 + i].target, 0x0A000008u + i);
    }

    // The throwing single-file reader rejects the corrupt segment…
    EXPECT_THROW((void)core::SpillSink::read_segment_file(paths[1]), std::runtime_error);
    // …and the Result variant reports instead of throwing.
    EXPECT_FALSE(core::SpillSink::try_read_segment_file(paths[1]).has_value());

    // A truncated tail (crash mid-record-write) is tolerated in-band: the
    // complete records parse, the torn one is dropped.
    const auto full_size = std::filesystem::file_size(paths[2]);
    std::filesystem::resize_file(paths[2], full_size - sizeof(core::CompactRecord) / 2);
    const auto tail = core::SpillSink::read_segment_file(paths[2]);
    EXPECT_EQ(tail.size(), 3u);

    // Total loss is still a value, not an error: everything in `skipped`.
    const std::vector<std::filesystem::path> all_bad = {paths[1],
                                                        dir.path() / "missing.seg"};
    const auto nothing = core::SpillSink::read_segment_files(all_bad);
    EXPECT_TRUE(nothing.records.empty());
    EXPECT_EQ(nothing.skipped.size(), 2u);
}

#ifndef _WIN32

// --------------------------------------------------------- kill -9 + resume

/// The shared census shape: a lossy multi-pass spilled census, paced so a
/// pass takes long enough for the parent to land a SIGKILL mid-run.
struct ResumePlanShape {
    std::size_t targets = 300;
    std::size_t passes = 3;
    double pps = 0.0;  ///< 0 = unpaced (reference); paced in the victim
};

core::Measurement run_census(const std::string& checkpoint_dir, const ResumePlanShape& shape,
                             bool* resumed = nullptr,
                             std::vector<core::PassStats>* stats = nullptr) {
    sim::Topology topology = sim::Topology::build(
        {.seed = 77, .num_ases = 150, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.5});
    sim::Internet internet(topology, {.seed = 13, .loss_rate = 0.05});
    probe::SimTransport transport(internet);

    core::CensusPlan plan;
    plan.vantages.push_back(&transport);
    plan.campaign.window = 16;
    plan.campaign.packets_per_second = shape.pps;
    plan.passes = shape.passes;
    plan.spill = true;
    plan.spill_config.segment_records = 64;  // several segments per pass
    plan.checkpoint_dir = checkpoint_dir;

    std::vector<net::IPv4Address> targets;
    for (std::size_t i = 0; i < topology.router_count() && targets.size() < shape.targets;
         ++i) {
        targets.push_back(topology.router(i).interfaces().front());
    }

    core::CensusRunner runner(std::move(plan));
    core::Measurement measurement =
        runner.measure_passes("resume", targets, {}, shape.passes);
    if (resumed != nullptr) *resumed = runner.resumed_from_checkpoint();
    if (stats != nullptr) *stats = runner.last_pass_stats();
    return measurement;
}

TEST(CrashResume, Sigkilled9CensusResumesByteIdentically) {
    ScratchDir dir("crash-resume");

    // The victim: a paced checkpointed census in a forked child. The pace
    // (1.5k pps against ~3k packets in pass 0 and ~1k in each retry pass)
    // stretches every pass to seconds, so the parent — polling at 10ms —
    // reliably lands its kill mid-census, shortly after the pass-0 boundary
    // manifest appears and long before the run could finish.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: run to completion if never killed (the parent kills
        // us first). _exit, never exit — no gtest teardown in the fork.
        try {
            (void)run_census(dir.path().string(), {.pps = 1500.0});
        } catch (...) {
        }
        ::_exit(0);
    }

    // Parent: wait for the first pass boundary to be journaled, then kill
    // without ceremony.
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    bool manifest_seen = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (core::read_manifest(dir.path()).has_value()) {
            manifest_seen = true;
            break;
        }
        std::this_thread::sleep_for(10ms);
    }
    ASSERT_TRUE(manifest_seen) << "no checkpoint appeared within the deadline";
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The on-disk state survived the kill: a manifest and its segments.
    const auto manifest = core::read_manifest(dir.path());
    ASSERT_TRUE(manifest.has_value());
    EXPECT_GE(manifest->completed_passes, 1u);
    EXPECT_GT(manifest->target_count, 0u);
    EXPECT_EQ(manifest->masks.size(), manifest->target_count);

    // Resume in this process over a fresh world (the sim analogue of a
    // process restart) and run to completion, unpaced.
    bool resumed = false;
    std::vector<core::PassStats> resumed_stats;
    const core::Measurement recovered =
        run_census(dir.path().string(), {.pps = 0.0}, &resumed, &resumed_stats);
    EXPECT_TRUE(resumed);

    // Reference: the identical census, never interrupted, no checkpointing.
    std::vector<core::PassStats> reference_stats;
    const core::Measurement reference =
        run_census("", {.pps = 0.0}, nullptr, &reference_stats);

    // Byte identity of the records and of both external artefacts.
    EXPECT_EQ(recovered, reference);
    EXPECT_EQ(resumed_stats, reference_stats);
    std::ostringstream recovered_csv;
    std::ostringstream reference_csv;
    io::export_measurement_csv(recovered_csv, recovered);
    io::export_measurement_csv(reference_csv, reference);
    EXPECT_EQ(recovered_csv.str(), reference_csv.str());
    std::ostringstream recovered_stats_csv;
    std::ostringstream reference_stats_csv;
    io::export_pass_stats_csv(recovered_stats_csv, resumed_stats);
    io::export_pass_stats_csv(reference_stats_csv, reference_stats);
    EXPECT_EQ(recovered_stats_csv.str(), reference_stats_csv.str());

    // A clean finish retires the checkpoint: manifest gone, segments gone —
    // the next census in this directory starts fresh.
    EXPECT_FALSE(core::read_manifest(dir.path()).has_value());
    std::size_t leftover_segments = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
        if (entry.path().extension() == ".seg") ++leftover_segments;
    }
    EXPECT_EQ(leftover_segments, 0u);
}

TEST(CrashResume, ManifestFromADifferentRunIsIgnored) {
    ScratchDir dir("resume-mismatch");
    // A manifest whose target count disagrees with the plan must be ignored
    // (fresh start), not adopted into a wrong-shaped census.
    core::CensusManifest stale = sample_manifest();
    stale.target_count = 12345;
    core::write_manifest(dir.path(), stale);

    bool resumed = true;
    const core::Measurement measurement =
        run_census(dir.path().string(), {.targets = 100, .passes = 2}, &resumed);
    EXPECT_FALSE(resumed) << "a mismatched manifest must not be adopted";
    EXPECT_EQ(measurement.records.size(), 100u);
    // The completed census cleared the (rewritten) manifest behind itself.
    EXPECT_FALSE(core::read_manifest(dir.path()).has_value());
}

#endif  // !_WIN32

}  // namespace
}  // namespace lfp
