// Tests for the bounded lock-free SPSC ring: capacity rounding, FIFO order
// across wraparound, full/empty edges, move-only elements, and a
// million-element cross-thread stress run (the case the ThreadSanitizer CI
// job exists for — one producer racing one consumer through every
// wraparound and full/empty transition).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace lfp::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderAcrossWraparound) {
    // A tiny ring forces the indices through many wraparounds; order must
    // survive every one of them.
    SpscRing<int> ring(4);
    int out = 0;
    int next_push = 0;
    int next_pop = 0;
    for (int round = 0; round < 100; ++round) {
        // Alternate fill levels so head/tail cross the wrap point at
        // varying offsets.
        const int burst = 1 + round % static_cast<int>(ring.capacity());
        for (int i = 0; i < burst; ++i) ASSERT_TRUE(ring.try_push(next_push++));
        for (int i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.try_pop(out));
            EXPECT_EQ(out, next_pop++);
        }
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullAndEmptyEdges) {
    SpscRing<int> ring(4);
    int out = 0;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.try_pop(out)) << "pop from empty must fail";

    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.try_push(99)) << "push to full must fail";

    // One slot freed, one push possible again — exactly one.
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.try_push(4));
    EXPECT_FALSE(ring.try_push(5));

    for (int expected = 1; expected <= 4; ++expected) {
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, expected);
    }
    EXPECT_FALSE(ring.try_pop(out));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyElements) {
    SpscRing<std::unique_ptr<int>> ring(8);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.try_push(std::make_unique<int>(i)));
    }
    std::unique_ptr<int> out;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.try_pop(out));
        ASSERT_NE(out, nullptr);
        EXPECT_EQ(*out, i);
    }
}

TEST(SpscRing, CrossThreadMillionElementStress) {
    // One producer races one consumer through a deliberately small ring, so
    // the run exercises full-ring and empty-ring transitions millions of
    // times. Values arrive exactly once, in order — and under TSAN this is
    // the proof the unfenced fast paths are actually race-free.
    constexpr std::uint64_t kCount = 1'000'000;
    SpscRing<std::uint64_t> ring(128);

    std::thread producer([&ring] {
        for (std::uint64_t value = 0; value < kCount; ++value) {
            while (!ring.try_push(std::uint64_t{value})) std::this_thread::yield();
        }
    });

    std::uint64_t received = 0;
    std::uint64_t checksum = 0;
    std::uint64_t out = 0;
    while (received < kCount) {
        if (ring.try_pop(out)) {
            ASSERT_EQ(out, received) << "order broke after " << received << " elements";
            checksum += out;
            ++received;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();

    EXPECT_EQ(received, kCount);
    EXPECT_EQ(checksum, kCount * (kCount - 1) / 2);
    EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace lfp::util
