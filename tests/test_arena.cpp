// Unit tests for the hot-path allocation machinery (util/arena.hpp) and
// the open-addressing hash containers (util/flat_hash.hpp) the probe
// engine's steady state is built on. The backward-shift deletion of the
// FlatMap is the subtle part — it gets an adversarial collision-chain
// test rather than just smoke coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/arena.hpp"
#include "util/flat_hash.hpp"

namespace lfp {
namespace {

// ---------------------------------------------------------------------------
// BumpArena
// ---------------------------------------------------------------------------

TEST(BumpArena, BumpsWithinOneBlockAndAligns) {
    util::BumpArena arena(1 << 12);
    const auto a = arena.make_span<std::uint8_t>(3);
    const auto b = arena.make_span<std::uint64_t>(4);
    ASSERT_EQ(a.size(), 3u);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % alignof(std::uint64_t), 0u);
    EXPECT_EQ(arena.bytes_allocated(), 3u + 4u * sizeof(std::uint64_t));
    for (auto& v : b) v = 7;  // writable, distinct storage
    EXPECT_EQ(a[0], 0u) << "make_span value-initializes";
}

TEST(BumpArena, ResetKeepsLargestBlockAndStopsGrowing) {
    util::BumpArena arena(256);
    // Force several blocks, including one oversized one.
    (void)arena.make_span<std::uint8_t>(200);
    (void)arena.make_span<std::uint8_t>(200);
    (void)arena.make_span<std::uint8_t>(4000);  // dedicated oversized block
    const std::size_t peak_reserved = arena.bytes_reserved();
    EXPECT_GE(peak_reserved, 4000u + 256u);

    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    const std::size_t kept = arena.bytes_reserved();
    EXPECT_GE(kept, 4000u) << "the largest block survives reset";
    EXPECT_LT(kept, peak_reserved) << "the smaller blocks are returned";

    // A steady-state pass of the same shape fits in the kept block: the
    // reserve footprint must not move across repeated reset cycles.
    for (int pass = 0; pass < 3; ++pass) {
        (void)arena.make_span<std::uint8_t>(3900);
        arena.reset();
        EXPECT_EQ(arena.bytes_reserved(), kept) << "pass " << pass;
    }
    EXPECT_EQ(arena.resets(), 4u);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPool, RecyclesCapacityAfterWarmup) {
    util::BufferPool pool;
    pool.prime(2, 128);
    EXPECT_EQ(pool.available(), 2u);

    auto first = pool.acquire();
    EXPECT_GE(first.capacity(), 128u);
    first.assign(100, 0xAB);
    const auto* storage = first.data();
    pool.release(std::move(first));

    auto second = pool.acquire();
    EXPECT_EQ(second.data(), storage) << "a released buffer is reused, capacity intact";
    EXPECT_TRUE(second.empty()) << "acquire() clears contents but keeps capacity";
    EXPECT_EQ(pool.hits(), 2u);
    EXPECT_EQ(pool.misses(), 0u);

    pool.release(std::move(second));
    (void)pool.acquire();
    (void)pool.acquire();  // second live acquire outruns the primed pair
    auto miss = pool.acquire();
    EXPECT_TRUE(miss.empty());
    EXPECT_EQ(pool.misses(), 1u);
}

// ---------------------------------------------------------------------------
// FlatMap / FlatSet
// ---------------------------------------------------------------------------

/// Forces every key into one bucket neighbourhood so erase() must exercise
/// backward-shift compaction across a maximal collision chain.
struct CollidingHash {
    std::size_t operator()(std::uint32_t) const noexcept { return 42; }
};

TEST(FlatMap, InsertFindEraseSurvivesRehash) {
    util::FlatMap<std::uint32_t, std::string, std::hash<std::uint32_t>> map;
    map.reserve(4);
    constexpr std::uint32_t kCount = 1000;  // far past any initial capacity
    for (std::uint32_t k = 0; k < kCount; ++k) {
        map.insert_or_assign(k, std::to_string(k));
    }
    ASSERT_EQ(map.size(), kCount);
    for (std::uint32_t k = 0; k < kCount; ++k) {
        const auto* value = map.find(k);
        ASSERT_NE(value, nullptr) << k;
        EXPECT_EQ(*value, std::to_string(k));
    }
    EXPECT_FALSE(map.contains(kCount + 1));

    // insert_or_assign really assigns.
    map.insert_or_assign(7, "seven");
    EXPECT_EQ(*map.find(7), "seven");

    // Erase every third key; the rest must stay reachable.
    for (std::uint32_t k = 0; k < kCount; k += 3) EXPECT_TRUE(map.erase(k));
    EXPECT_FALSE(map.erase(0)) << "double erase reports absence";
    for (std::uint32_t k = 0; k < kCount; ++k) {
        EXPECT_EQ(map.contains(k), k % 3 != 0) << k;
    }

    std::size_t visited = 0;
    map.for_each([&](const std::uint32_t&, const std::string&) { ++visited; });
    EXPECT_EQ(visited, map.size());
}

TEST(FlatMap, BackwardShiftDeletionKeepsCollisionChainsIntact) {
    // All keys collide into one chain. Deleting from the front, middle and
    // back of the chain must never strand a later key behind an empty slot
    // — the classic open-addressing deletion bug.
    util::FlatMap<std::uint32_t, int, CollidingHash> map;
    for (std::uint32_t k = 0; k < 12; ++k) map.insert_or_assign(k, static_cast<int>(k));

    EXPECT_TRUE(map.erase(0));   // head of the chain
    EXPECT_TRUE(map.erase(6));   // middle
    EXPECT_TRUE(map.erase(11));  // tail
    for (std::uint32_t k = 0; k < 12; ++k) {
        const bool erased = k == 0 || k == 6 || k == 11;
        ASSERT_EQ(map.contains(k), !erased) << k;
        if (!erased) {
            EXPECT_EQ(*map.find(k), static_cast<int>(k));
        }
    }
    // Reinsertion after the shifts still works.
    map.insert_or_assign(6, -6);
    EXPECT_EQ(*map.find(6), -6);
    EXPECT_EQ(map.size(), 10u);
}

TEST(FlatSet, InsertIsIdempotentAndEraseReports) {
    util::FlatSet<std::uint32_t> set;
    set.reserve(8);
    EXPECT_TRUE(set.insert(5));
    EXPECT_FALSE(set.insert(5)) << "duplicate insert is a no-op";
    EXPECT_TRUE(set.insert(9));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(5));
    EXPECT_TRUE(set.erase(5));
    EXPECT_FALSE(set.erase(5));
    EXPECT_FALSE(set.contains(5));
    EXPECT_TRUE(set.contains(9));
}

}  // namespace
}  // namespace lfp
