// Tests for the comparison baselines: Hershel, the Nmap-like scanner, the
// SNMPv3-only fingerprinter, and the iTTL-tuple classifier.
#include <gtest/gtest.h>

#include "baselines/hershel.hpp"
#include "baselines/ittl_fingerprint.hpp"
#include "baselines/nmap_like.hpp"
#include "baselines/snmpv3_only.hpp"
#include "probe/sim_transport.hpp"
#include "sim/internet.hpp"

namespace lfp::baselines {
namespace {

using stack::Vendor;

class BaselineFixture : public ::testing::Test {
  protected:
    BaselineFixture()
        : topology_(sim::Topology::build({.seed = 81,
                                          .num_ases = 420,
                                          .tier1_count = 6,
                                          .transit_fraction = 0.25,
                                          .scale = 1.0})),
          internet_(topology_, {.seed = 9, .loss_rate = 0.0}),
          transport_(internet_) {}

    /// First router matching a predicate.
    template <typename Pred>
    const stack::SimulatedRouter* find_router(Pred&& pred) {
        for (std::size_t i = 0; i < topology_.router_count(); ++i) {
            const auto& router = topology_.router(i);
            if (pred(router)) return &router;
        }
        return nullptr;
    }

    sim::Topology topology_;
    sim::Internet internet_;
    probe::SimTransport transport_;
};

// ------------------------------------------------------------------ Hershel

TEST(HershelClassify, LinuxObservationsMatchLinux) {
    HershelClassifier classifier;
    SynAckObservation linux_box;
    linux_box.window = 29200;
    linux_box.initial_ttl = 64;
    linux_box.mss = 1460;
    linux_box.sack_permitted = true;
    linux_box.timestamps = true;
    const auto verdict = classifier.classify(linux_box);
    EXPECT_EQ(verdict.os_label, "Linux 4.x");
    EXPECT_FALSE(verdict.vendor.has_value());  // "Linux" carries no router vendor
    EXPECT_GT(verdict.score, 0.9);
}

TEST(HershelClassify, ClassicIosMatchesCisco) {
    HershelClassifier classifier;
    SynAckObservation ios;
    ios.window = 4128;
    ios.initial_ttl = 255;
    ios.mss = 536;
    const auto verdict = classifier.classify(ios);
    EXPECT_EQ(verdict.vendor, Vendor::cisco);
}

TEST_F(BaselineFixture, HershelNeedsOpenPort) {
    HershelClassifier classifier;
    const auto* closed = find_router([](const auto& router) {
        return router.responds_tcp() && !router.mgmt_reachable();
    });
    ASSERT_NE(closed, nullptr);
    // Closed port → RST, not SYN-ACK → no fingerprint.
    EXPECT_FALSE(classifier.fingerprint(transport_, closed->interfaces()[0]).has_value());

    const auto* open = find_router([](const auto& router) { return router.mgmt_reachable(); });
    ASSERT_NE(open, nullptr);
    const auto verdict = classifier.fingerprint(transport_, open->interfaces()[0]);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->observation.window, open->profile().syn_ack.window);
    EXPECT_GE(classifier.packets_sent(), 2u);
}

TEST_F(BaselineFixture, HershelMisreadsRouterVendorsMostly) {
    // Paper §7.3.2: <1% vendor accuracy on the top-3 router vendors.
    HershelClassifier classifier;
    std::size_t fingerprinted = 0;
    std::size_t vendor_correct = 0;
    for (std::size_t i = 0; i < topology_.router_count(); ++i) {
        const auto& router = topology_.router(i);
        if (!router.mgmt_reachable()) continue;
        const auto vendor = router.vendor();
        if (vendor != Vendor::juniper && vendor != Vendor::huawei) continue;
        auto verdict = classifier.fingerprint(transport_, router.interfaces()[0]);
        if (!verdict) continue;
        ++fingerprinted;
        if (verdict->vendor == vendor) ++vendor_correct;
    }
    ASSERT_GT(fingerprinted, 10u);
    EXPECT_LT(static_cast<double>(vendor_correct) / static_cast<double>(fingerprinted), 0.05);
}

// ---------------------------------------------------------------- Nmap-like

TEST_F(BaselineFixture, NmapNeedsOpenPortForOsMatch) {
    NmapLikeScanner scanner;
    const auto* closed = find_router([](const auto& router) {
        return router.responds_tcp() && !router.mgmt_reachable();
    });
    ASSERT_NE(closed, nullptr);
    auto result = scanner.scan(transport_, closed->interfaces()[0]);
    EXPECT_TRUE(result.responsive);  // RSTs count as responses
    EXPECT_FALSE(result.os_match.has_value());

    const auto* open = find_router([](const auto& router) {
        return router.mgmt_reachable() && router.responds_tcp();
    });
    ASSERT_NE(open, nullptr);
    auto open_result = scanner.scan(transport_, open->interfaces()[0]);
    EXPECT_TRUE(open_result.responsive);
}

TEST_F(BaselineFixture, NmapSendsOrdersOfMagnitudeMorePackets) {
    NmapLikeScanner scanner;
    std::size_t scanned = 0;
    std::uint64_t total_sent = 0;
    for (std::size_t i = 0; i < topology_.router_count() && scanned < 20; i += 7) {
        const auto& router = topology_.router(i);
        auto result = scanner.scan(transport_, router.interfaces()[0]);
        total_sent += result.packets_sent;
        ++scanned;
    }
    const double mean_packets = static_cast<double>(total_sent) / static_cast<double>(scanned);
    // LFP sends 10; Nmap must average >= 100x that (paper: ~1538).
    EXPECT_GT(mean_packets, 1000.0);
}

TEST_F(BaselineFixture, NmapIdentifiesClassicCiscoWhenPortOpen) {
    NmapLikeScanner scanner;
    std::size_t attempted = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < topology_.router_count(); ++i) {
        const auto& router = topology_.router(i);
        if (router.vendor() != Vendor::cisco || !router.mgmt_reachable() ||
            !router.responds_tcp()) {
            continue;
        }
        // Classic IOS trains the Nmap database; Linux-based NX-OS does not.
        // Firmware variants ("IOS 15 legacy", ...) share the same SYN-ACK.
        if (!router.profile().family.starts_with("IOS 1")) continue;
        auto result = scanner.scan(transport_, router.interfaces()[0]);
        ++attempted;
        if (result.vendor == Vendor::cisco) ++correct;
        if (attempted >= 12) break;
    }
    ASSERT_GE(attempted, 3u);
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(attempted), 0.7);
}

// -------------------------------------------------------------- SNMPv3-only

TEST_F(BaselineFixture, Snmpv3OnlyMatchesRouterTraits) {
    Snmpv3OnlyFingerprinter fingerprinter;
    std::size_t enabled_checked = 0;
    std::size_t disabled_checked = 0;
    for (std::size_t i = 0; i < topology_.router_count(); ++i) {
        const auto& router = topology_.router(i);
        auto result = fingerprinter.fingerprint(transport_, router.interfaces()[0]);
        if (router.snmp_enabled()) {
            ASSERT_TRUE(result.responded) << i;
            ASSERT_TRUE(result.vendor.has_value());
            EXPECT_EQ(*result.vendor, router.vendor());
            ++enabled_checked;
        } else {
            EXPECT_FALSE(result.responded);
            ++disabled_checked;
        }
        if (enabled_checked >= 20 && disabled_checked >= 20) break;
    }
    EXPECT_GE(enabled_checked, 20u);
    EXPECT_GE(disabled_checked, 20u);
    EXPECT_EQ(fingerprinter.packets_sent(), enabled_checked + disabled_checked);
}

// ------------------------------------------------------------------- iTTL

TEST(IttlClassifier, AmbiguousTuplesYieldNoVerdict) {
    // Build two measurements: Cisco and Huawei share an iTTL tuple (the
    // paper's example of the technique's weakness); Juniper is distinct.
    core::Measurement measurement;
    auto add = [&measurement](Vendor vendor, std::uint8_t icmp, std::uint8_t tcp,
                              std::uint8_t udp) {
        core::TargetRecord record;
        record.snmp_vendor = vendor;
        record.features.protocol_mask = 0b111;
        record.features.ittl_icmp = icmp;
        record.features.ittl_tcp = tcp;
        record.features.ittl_udp = udp;
        measurement.records.push_back(record);
    };
    for (int i = 0; i < 10; ++i) add(Vendor::cisco, 255, 255, 255);
    for (int i = 0; i < 10; ++i) add(Vendor::huawei, 255, 255, 255);
    for (int i = 0; i < 10; ++i) add(Vendor::juniper, 64, 64, 255);

    IttlClassifier classifier;
    classifier.train({&measurement, 1});
    EXPECT_EQ(classifier.unique_tuples(), 1u);
    EXPECT_EQ(classifier.ambiguous_tuples(), 1u);

    core::FeatureVector juniper_like;
    juniper_like.protocol_mask = 0b111;
    juniper_like.ittl_icmp = 64;
    juniper_like.ittl_tcp = 64;
    juniper_like.ittl_udp = 255;
    EXPECT_EQ(classifier.classify(juniper_like), Vendor::juniper);

    core::FeatureVector shared;
    shared.protocol_mask = 0b111;
    shared.ittl_icmp = 255;
    shared.ittl_tcp = 255;
    shared.ittl_udp = 255;
    EXPECT_FALSE(classifier.classify(shared).has_value());

    core::FeatureVector partial;
    partial.protocol_mask = 0b011;
    EXPECT_FALSE(classifier.classify(partial).has_value());
}

}  // namespace
}  // namespace lfp::baselines
