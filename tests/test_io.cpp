// Tests for the io layer: signature store round-trips and CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "io/csv_export.hpp"
#include "io/signature_store.hpp"

namespace lfp::io {
namespace {

core::Signature sig(const std::string& key, std::uint8_t mask = 0b111) {
    return core::Signature::from_parts(key, mask);
}

core::SignatureDatabase sample_database() {
    core::SignatureDatabase db({.min_occurrences = 1});
    db.add_labeled(sig("False r r r False False False False 255 64 64 84 40 56 0"),
                   stack::Vendor::juniper, 1234);
    db.add_labeled(sig("False r r r False False False False 255 255 64 84 40 56 0"),
                   stack::Vendor::cisco, 999);
    // A shared (non-unique) signature.
    db.add_labeled(sig("True i z i False False False False 64 64 64 84 40 68 0"),
                   stack::Vendor::mikrotik, 300);
    db.add_labeled(sig("True i z i False False False False 64 64 64 84 40 68 0"),
                   stack::Vendor::h3c, 40);
    // A partial signature.
    db.add_labeled(sig("- - r r - - - True 255 - - - 40 56 -", 0b110),
                   stack::Vendor::huawei, 60);
    db.finalize();
    return db;
}

TEST(SignatureStore, RoundTripPreservesEverything) {
    const auto original = sample_database();
    std::stringstream buffer;
    save_signatures(buffer, original);

    auto loaded = load_signatures(buffer, {.min_occurrences = 1});
    ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
    const auto& db = loaded.value();
    EXPECT_EQ(db.signatures().size(), original.signatures().size());

    for (const auto& [signature, stats] : original.signatures()) {
        const auto* loaded_stats = db.lookup(signature);
        ASSERT_NE(loaded_stats, nullptr) << signature.key();
        EXPECT_EQ(loaded_stats->total, stats.total);
        EXPECT_EQ(loaded_stats->vendor_counts, stats.vendor_counts);
        EXPECT_EQ(loaded_stats->unique(), stats.unique());
    }
}

TEST(SignatureStore, LoadAppliesThreshold) {
    const auto original = sample_database();
    std::stringstream buffer;
    save_signatures(buffer, original);
    auto loaded = load_signatures(buffer, {.min_occurrences = 500});
    ASSERT_TRUE(loaded.has_value());
    // Only the two big signatures survive a 500-sample threshold.
    EXPECT_EQ(loaded.value().signatures().size(), 2u);
}

TEST(SignatureStore, LoadedDatabaseClassifies) {
    const auto original = sample_database();
    std::stringstream buffer;
    save_signatures(buffer, original);
    auto loaded = load_signatures(buffer, {.min_occurrences = 1});
    ASSERT_TRUE(loaded.has_value());

    const core::LfpClassifier classifier(loaded.value());
    const auto verdict =
        classifier.classify(sig("False r r r False False False False 255 64 64 84 40 56 0"));
    EXPECT_EQ(verdict.vendor, stack::Vendor::juniper);
    EXPECT_EQ(verdict.kind, core::MatchKind::unique_full);

    const auto partial =
        classifier.classify(sig("- - r r - - - True 255 - - - 40 56 -", 0b110));
    EXPECT_EQ(partial.kind, core::MatchKind::unique_partial);
    EXPECT_EQ(partial.vendor, stack::Vendor::huawei);
}

TEST(SignatureStore, CommentsAndBlankLinesIgnored) {
    std::stringstream in("# comment\n\n7 | False r r r - - - - 255 64 64 84 40 56 0 | "
                         "Cisco=25\n");
    auto loaded = load_signatures(in, {.min_occurrences = 1});
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded.value().signatures().size(), 1u);
}

struct BadLineCase {
    const char* line;
    const char* why;
};
class SignatureStoreBadInput : public ::testing::TestWithParam<BadLineCase> {};

TEST_P(SignatureStoreBadInput, Rejects) {
    std::stringstream in(GetParam().line);
    auto loaded = load_signatures(in, {.min_occurrences = 1});
    EXPECT_FALSE(loaded.has_value()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SignatureStoreBadInput,
    ::testing::Values(
        BadLineCase{"7 | only two fields", "missing vendor field"},
        BadLineCase{"9 | sig | Cisco=1", "mask out of range"},
        BadLineCase{"x | sig | Cisco=1", "mask not a number"},
        BadLineCase{"7 | sig | NotAVendor=1", "unknown vendor"},
        BadLineCase{"7 | sig | Cisco=0", "zero count"},
        BadLineCase{"7 | sig | Cisco", "missing ="},
        BadLineCase{"7 |  | Cisco=5", "empty signature"}));

TEST(SignatureStore, FileRoundTrip) {
    const auto original = sample_database();
    const std::string path = "/tmp/lfp_sig_store_test.txt";
    ASSERT_TRUE(save_signatures_file(path, original));
    auto loaded = load_signatures_file(path, {.min_occurrences = 1});
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded.value().signatures().size(), original.signatures().size());
    EXPECT_FALSE(load_signatures_file("/no/such/dir/f.txt").has_value());
}

TEST(SignatureStore, PassStatsRoundTrip) {
    const auto original = sample_database();
    const std::vector<core::PassStats> stats = {{.probed = 500, .upgraded = 0, .incomplete = 25},
                                                {.probed = 25, .upgraded = 18, .incomplete = 7}};
    std::stringstream buffer;
    save_signatures(buffer, original, stats);

    // A loader that asks for the trajectory gets it back verbatim.
    std::vector<core::PassStats> loaded_stats;
    auto loaded = load_signatures(buffer, {.min_occurrences = 1}, &loaded_stats);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded.value().signatures().size(), original.signatures().size());
    ASSERT_EQ(loaded_stats.size(), stats.size());
    EXPECT_EQ(loaded_stats[0], stats[0]);
    EXPECT_EQ(loaded_stats[1], stats[1]);

    // The metadata lines are comments to a loader that doesn't ask.
    std::stringstream again;
    save_signatures(again, original, stats);
    auto plain = load_signatures(again, {.min_occurrences = 1});
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain.value().signatures().size(), original.signatures().size());

    // Files without metadata leave a requested vector empty.
    std::stringstream bare;
    save_signatures(bare, original);
    std::vector<core::PassStats> none = {{.probed = 1}};
    ASSERT_TRUE(load_signatures(bare, {.min_occurrences = 1}, &none).has_value());
    EXPECT_TRUE(none.empty());
}

TEST(SignatureStore, TruncatedPassMetadataIsStructuredError) {
    // A '#:' line is the writer's own structured trailer: cut short
    // mid-write it must fail the load with a structured error naming the
    // line — not be best-effort-skipped as a comment — whether or not the
    // caller asked for the trajectory back.
    const auto truncated_cases = {
        "#: pass 0 probed 500 upgraded",          // field name without value
        "#: pass 0 probed 500",                   // missing trailing fields
        "#: pass 0 probed abc upgraded 0 incomplete 1",  // non-numeric count
        "#: pass",                                // bare prefix
        "#: probed 500 upgraded 0 incomplete 1",  // wrong leading word
        "#: pass 9999 probed 1 upgraded 0 incomplete 0",  // absurd pass index
    };
    for (const char* bad_line : truncated_cases) {
        std::stringstream buffer;
        save_signatures(buffer, sample_database());
        buffer << bad_line << '\n';

        std::vector<core::PassStats> stats;
        const auto with_stats = load_signatures(buffer, {.min_occurrences = 1}, &stats);
        EXPECT_FALSE(with_stats.has_value()) << bad_line;
        if (!with_stats.has_value()) {
            EXPECT_NE(with_stats.error().message.find("pass metadata"), std::string::npos)
                << with_stats.error().message;
        }

        std::stringstream again;
        save_signatures(again, sample_database());
        again << bad_line << '\n';
        EXPECT_FALSE(load_signatures(again, {.min_occurrences = 1}).has_value())
            << bad_line << " (no pass_stats out-param)";
    }

    // An intact trailer after real signature lines still loads.
    std::stringstream good;
    save_signatures(good, sample_database(),
                    std::vector<core::PassStats>{{.probed = 9, .upgraded = 1, .incomplete = 2}});
    EXPECT_TRUE(load_signatures(good, {.min_occurrences = 1}).has_value());
}

TEST(CsvEscape, QuotesWhenNeeded) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExport, MeasurementRows) {
    core::Measurement measurement;
    core::TargetRecord record;
    record.probes.target = net::IPv4Address::from_octets(5, 1, 2, 3);
    record.snmp_vendor = stack::Vendor::cisco;
    record.lfp.vendor = stack::Vendor::cisco;
    record.lfp.kind = core::MatchKind::unique_full;
    record.signature = core::Signature::from_parts("a b c", 0b111);
    record.pass = 2;
    measurement.records.push_back(record);

    std::stringstream out;
    export_measurement_csv(out, measurement);
    const std::string text = out.str();
    EXPECT_NE(text.find("ip,responsive_protocols,snmp_vendor,lfp_vendor,match_kind,pass,signature"),
              std::string::npos);
    EXPECT_NE(text.find("5.1.2.3,0,Cisco,Cisco,unique,2,a b c"), std::string::npos);
}

TEST(CsvExport, PassStatsRows) {
    const std::vector<core::PassStats> stats = {{.probed = 1000, .upgraded = 0, .incomplete = 40},
                                                {.probed = 40, .upgraded = 31, .incomplete = 9}};
    std::stringstream out;
    export_pass_stats_csv(out, stats);
    EXPECT_EQ(out.str(), "pass,probed,upgraded,incomplete\n0,1000,0,40\n1,40,31,9\n");
}

TEST(CsvExport, TracerouteRows) {
    sim::TracerouteDataset dataset;
    sim::Traceroute trace;
    trace.source_asn = 100;
    trace.destination_asn = 200;
    trace.source = net::IPv4Address::from_octets(223, 0, 0, 1);
    trace.destination = net::IPv4Address::from_octets(223, 0, 0, 2);
    trace.hops = {net::IPv4Address::from_octets(5, 0, 0, 1),
                  net::IPv4Address::from_octets(5, 0, 0, 2)};
    dataset.traces.push_back(trace);

    std::stringstream out;
    export_traceroutes_csv(out, dataset);
    EXPECT_NE(out.str().find("100,200,223.0.0.1,223.0.0.2,5.0.0.1;5.0.0.2"),
              std::string::npos);
}

TEST(CsvExport, AliasSetAndCoverageRows) {
    sim::ItdkDataset itdk;
    itdk.alias_sets.push_back({7, {net::IPv4Address::from_octets(5, 0, 0, 1),
                                   net::IPv4Address::from_octets(5, 0, 0, 2)}});
    std::stringstream alias_out;
    export_alias_sets_csv(alias_out, itdk);
    EXPECT_NE(alias_out.str().find("7,5.0.0.1;5.0.0.2"), std::string::npos);

    analysis::AsCoverage coverage;
    coverage.asn = 64500;
    coverage.routers_total = 10;
    coverage.routers_identified = 8;
    coverage.vendor_counts[stack::Vendor::cisco] = 8;
    std::stringstream coverage_out;
    export_as_coverage_csv(coverage_out, {coverage});
    EXPECT_NE(coverage_out.str().find("64500,10,8,1,Cisco,1"), std::string::npos);
}

}  // namespace
}  // namespace lfp::io
