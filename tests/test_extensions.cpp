// Tests for the extension analyses: family-level fingerprinting (§7.4),
// longitudinal stability (§8), and the feature-ablation framework.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/ablation.hpp"
#include "analysis/family_analysis.hpp"
#include "analysis/longitudinal.hpp"
#include "io/signature_store.hpp"

namespace lfp::analysis {
namespace {

core::Signature sig(const std::string& key, std::uint8_t mask = 0b111) {
    return core::Signature::from_parts(key, mask);
}

// ---------------------------------------------------------------- families

TEST(FamilyClassifier, UniqueAndAmbiguousSeparation) {
    FamilyClassifier classifier(3);
    for (int i = 0; i < 10; ++i) classifier.train(sig("A"), "IOS-XR");
    for (int i = 0; i < 10; ++i) classifier.train(sig("B"), "NX-OS");
    for (int i = 0; i < 6; ++i) classifier.train(sig("C"), "IOS 15");
    for (int i = 0; i < 6; ++i) classifier.train(sig("C"), "IOS 12");
    classifier.train(sig("D"), "rare");  // below threshold
    classifier.finalize();

    EXPECT_EQ(classifier.classify(sig("A")), "IOS-XR");
    EXPECT_EQ(classifier.classify(sig("B")), "NX-OS");
    EXPECT_FALSE(classifier.classify(sig("C")).has_value());  // ambiguous
    EXPECT_FALSE(classifier.classify(sig("D")).has_value());  // below threshold
    EXPECT_FALSE(classifier.classify(sig("E")).has_value());  // unknown

    const auto counts = classifier.counts();
    EXPECT_EQ(counts.unique, 2u);
    EXPECT_EQ(counts.ambiguous, 1u);

    const auto per_family = classifier.unique_signatures_per_family();
    EXPECT_EQ(per_family.at("IOS-XR"), 1u);
    EXPECT_EQ(per_family.at("NX-OS"), 1u);
    EXPECT_FALSE(per_family.contains("IOS 15"));
}

TEST(FamilyClassifier, IgnoresEmptyInput) {
    FamilyClassifier classifier(1);
    classifier.train(core::Signature{}, "IOS");
    classifier.train(sig("A"), "");
    classifier.finalize();
    EXPECT_EQ(classifier.counts().unique, 0u);
}

// -------------------------------------------------------------- longitudinal

core::Measurement snapshot(const std::string& name,
                           const std::vector<std::pair<std::uint32_t, std::string>>& entries) {
    core::Measurement measurement;
    measurement.name = name;
    for (const auto& [ip_value, key] : entries) {
        core::TargetRecord record;
        record.probes.target = net::IPv4Address(ip_value);
        record.features.protocol_mask = 0b111;  // marks the record responsive
        record.signature = core::Signature::from_parts(key, 0b111);
        measurement.records.push_back(std::move(record));
    }
    return measurement;
}

TEST(Longitudinal, StabilityAccounting) {
    // IP 1: stable everywhere. IP 2: changes in snapshot 3. IP 3: appears
    // only in the first two snapshots.
    std::vector<core::Measurement> snapshots;
    snapshots.push_back(snapshot("S1", {{1, "sigA"}, {2, "sigB"}, {3, "sigC"}}));
    snapshots.push_back(snapshot("S2", {{1, "sigA"}, {2, "sigB"}, {3, "sigC"}}));
    snapshots.push_back(snapshot("S3", {{1, "sigA"}, {2, "sigB2"}}));

    const auto report = signature_stability(snapshots);
    ASSERT_EQ(report.pairs.size(), 2u);
    EXPECT_EQ(report.pairs[0].common_ips, 3u);
    EXPECT_EQ(report.pairs[0].identical_signature, 3u);
    EXPECT_EQ(report.pairs[1].common_ips, 2u);
    EXPECT_EQ(report.pairs[1].identical_signature, 1u);
    EXPECT_EQ(report.pairs[1].changed_signature, 1u);
    EXPECT_DOUBLE_EQ(report.pairs[0].stability(), 1.0);

    EXPECT_EQ(report.ips_in_all_snapshots, 2u);
    EXPECT_EQ(report.stable_in_all, 1u);
    EXPECT_DOUBLE_EQ(report.overall_stability(), 0.5);
}

TEST(Longitudinal, VendorChangeDetection) {
    auto s1 = snapshot("S1", {{1, "sigA"}});
    auto s2 = snapshot("S2", {{1, "sigB"}});
    s1.records[0].lfp.vendor = stack::Vendor::cisco;
    s1.records[0].lfp.kind = core::MatchKind::unique_full;
    s2.records[0].lfp.vendor = stack::Vendor::juniper;
    s2.records[0].lfp.kind = core::MatchKind::unique_full;
    std::vector<core::Measurement> snapshots{std::move(s1), std::move(s2)};

    const auto report = signature_stability(snapshots);
    ASSERT_EQ(report.pairs.size(), 1u);
    EXPECT_EQ(report.pairs[0].vendor_changed, 1u);
}

TEST(Longitudinal, EmptyInput) {
    const auto report = signature_stability({});
    EXPECT_TRUE(report.pairs.empty());
    EXPECT_DOUBLE_EQ(report.overall_stability(), 0.0);
}

TEST(Longitudinal, PassProvenanceOnlyDiffIsFullyStable) {
    // Two censuses of the same world can measure identical signatures while
    // *winning* them on different retry passes (one run's pass 0 probe was
    // lost, a later pass repaired it). That provenance is metadata: a
    // longitudinal diff must report every common IP identical — pass
    // numbers and pass trajectories must never register as churn.
    auto first = snapshot("march", {{1, "sigA"}, {2, "sigB"}, {3, "sigC"}});
    auto second = snapshot("april", {{1, "sigA"}, {2, "sigB"}, {3, "sigC"}});
    for (auto& record : first.records) record.pass = 0;
    second.records[0].pass = 1;  // repaired on the first retry pass
    second.records[2].pass = 2;  // repaired on the second

    const std::vector<core::Measurement> snapshots{std::move(first), std::move(second)};
    const auto report = signature_stability(snapshots);
    ASSERT_EQ(report.pairs.size(), 1u);
    EXPECT_EQ(report.pairs[0].common_ips, 3u);
    EXPECT_EQ(report.pairs[0].identical_signature, 3u);
    EXPECT_EQ(report.pairs[0].changed_signature, 0u);
    EXPECT_EQ(report.pairs[0].vendor_changed, 0u);
    EXPECT_DOUBLE_EQ(report.pairs[0].stability(), 1.0);

    // The trajectories themselves differ, and they round-trip through the
    // io signature-store format end to end: the diff consumer can load both
    // censuses' PassStats and see *why* the pass numbers differ without the
    // signatures having moved at all.
    const std::vector<core::PassStats> first_stats = {
        {.probed = 3, .upgraded = 0, .incomplete = 0}};
    const std::vector<core::PassStats> second_stats = {
        {.probed = 3, .upgraded = 0, .incomplete = 2},
        {.probed = 2, .upgraded = 1, .incomplete = 1},
        {.probed = 1, .upgraded = 1, .incomplete = 0}};
    core::SignatureDatabase database;
    for (const auto& record : snapshots[1].records) {
        database.add_labeled(record.signature, stack::Vendor::cisco);
    }
    std::stringstream first_buffer;
    std::stringstream second_buffer;
    io::save_signatures(first_buffer, database, first_stats);
    io::save_signatures(second_buffer, database, second_stats);

    std::vector<core::PassStats> first_loaded;
    std::vector<core::PassStats> second_loaded;
    ASSERT_TRUE(
        io::load_signatures(first_buffer, {.min_occurrences = 1}, &first_loaded).has_value());
    ASSERT_TRUE(
        io::load_signatures(second_buffer, {.min_occurrences = 1}, &second_loaded).has_value());
    ASSERT_EQ(first_loaded.size(), 1u);
    ASSERT_EQ(second_loaded.size(), 3u);
    EXPECT_EQ(first_loaded, first_stats);
    EXPECT_EQ(second_loaded, second_stats);
}

// ------------------------------------------------------------------ ablation

core::FeatureVector rich_features() {
    core::FeatureVector features;
    features.protocol_mask = 0b111;
    features.icmp_ipid_echo = core::TriState::no;
    features.ipid_icmp = core::IpidClass::random;
    features.ipid_tcp = core::IpidClass::incremental;
    features.ipid_udp = core::IpidClass::incremental;
    features.shared_all = core::TriState::no;
    features.shared_tcp_icmp = core::TriState::no;
    features.shared_udp_icmp = core::TriState::no;
    features.shared_tcp_udp = core::TriState::yes;
    features.ittl_icmp = 255;
    features.ittl_tcp = 64;
    features.ittl_udp = 255;
    features.size_icmp = 84;
    features.size_tcp = 40;
    features.size_udp = 56;
    features.tcp_rst_seq_nonzero = core::TriState::no;
    return features;
}

TEST(Ablation, MasksNeutraliseGroups) {
    const auto base = rich_features();

    auto no_ipid = apply_ablation(base, {.drop_ipid_classes = true});
    EXPECT_EQ(no_ipid.ipid_icmp, core::IpidClass::unknown);
    EXPECT_EQ(no_ipid.ipid_udp, core::IpidClass::unknown);
    EXPECT_EQ(no_ipid.ittl_icmp, 255);  // untouched

    auto no_ittl = apply_ablation(base, {.drop_ittl = true});
    EXPECT_EQ(no_ittl.ittl_icmp, 0);
    EXPECT_EQ(no_ittl.ipid_icmp, core::IpidClass::random);

    auto no_shared = apply_ablation(base, {.drop_shared_flags = true});
    EXPECT_EQ(no_shared.shared_tcp_udp, core::TriState::unknown);

    auto no_sizes = apply_ablation(base, {.drop_sizes = true});
    EXPECT_EQ(no_sizes.size_udp, 0);

    auto no_rst = apply_ablation(base, {.drop_rst_seq = true});
    EXPECT_EQ(no_rst.tcp_rst_seq_nonzero, core::TriState::unknown);

    // Ablation changes the canonical signature.
    EXPECT_NE(core::Signature::from_features(base),
              core::Signature::from_features(no_ittl));
}

TEST(Ablation, LabelsAreDescriptive) {
    EXPECT_EQ(AblationMask{}.label(), "full feature set");
    EXPECT_EQ((AblationMask{.drop_ittl = true}.label()), "without ittl");
    EXPECT_EQ((AblationMask{.drop_ipid_classes = true, .drop_ittl = true}.label()),
              "without ipid+ittl");
}

TEST(Ablation, StandardMasksCoverAllGroups) {
    const auto masks = standard_ablation_masks();
    ASSERT_GE(masks.size(), 8u);
    EXPECT_EQ(masks.front().label(), "full feature set");
    // Last mask is the iTTL-only configuration.
    const auto& ittl_only = masks.back();
    EXPECT_TRUE(ittl_only.drop_ipid_classes);
    EXPECT_FALSE(ittl_only.drop_ittl);
}

TEST(Ablation, FewerFeaturesNeverIncreaseSignatureCount) {
    // Synthetic labeled corpus with two vendors split by iTTL and sizes.
    core::Measurement measurement;
    auto add = [&measurement](stack::Vendor vendor, std::uint8_t ittl, std::uint16_t udp_size) {
        for (int i = 0; i < 30; ++i) {
            core::TargetRecord record;
            record.probes.target = net::IPv4Address(
                0x05000000u + static_cast<std::uint32_t>(measurement.records.size()));
            record.snmp_vendor = vendor;
            auto features = rich_features();
            features.ittl_icmp = ittl;
            features.size_udp = udp_size;
            record.features = features;
            record.signature = core::Signature::from_features(features);
            measurement.records.push_back(std::move(record));
        }
    };
    add(stack::Vendor::cisco, 255, 56);
    add(stack::Vendor::juniper, 64, 56);
    add(stack::Vendor::huawei, 255, 68);

    sim::Topology topology = sim::Topology::build(
        {.seed = 5, .num_ases = 20, .tier1_count = 4, .transit_fraction = 0.2, .scale = 0.2});

    const std::vector<AblationMask> masks{
        {}, {.drop_ittl = true}, {.drop_ittl = true, .drop_sizes = true}};
    const auto results = run_ablations({&measurement, 1}, topology, masks,
                                       {.min_occurrences = 5});
    ASSERT_EQ(results.size(), 3u);
    // Full set separates all three vendors.
    EXPECT_EQ(results[0].unique_signatures, 3u);
    // Without iTTL, Cisco and Juniper collapse (only sizes differ Huawei).
    EXPECT_EQ(results[1].unique_signatures, 1u);
    EXPECT_EQ(results[1].non_unique_signatures, 1u);
    // Without iTTL and sizes, everything collapses into one shared signature.
    EXPECT_EQ(results[2].unique_signatures, 0u);
    EXPECT_EQ(results[2].non_unique_signatures, 1u);
    // Coverage monotonically decreases across these nested ablations.
    EXPECT_GE(results[0].coverage, results[1].coverage);
    EXPECT_GE(results[1].coverage, results[2].coverage);
}

}  // namespace
}  // namespace lfp::analysis
