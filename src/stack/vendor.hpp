// Router vendor identities and their IANA enterprise numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace lfp::stack {

/// The vendors tracked by the study (Table 5 plus the "other" bucket that
/// appears in the precision/recall appendix).
enum class Vendor : std::uint8_t {
    cisco,
    juniper,
    huawei,
    mikrotik,
    h3c,
    nokia,  // Alcatel-Lucent / Nokia SR
    ericsson,
    brocade,
    ruijie,
    net_snmp,  // generic net-snmp agents on Linux-based platforms
    zte,
    extreme,
    arista,
    fortinet,
    dlink,
    adva,
    unknown,
};

constexpr std::size_t kVendorCount = 16;  // excluding `unknown`

[[nodiscard]] std::string_view to_string(Vendor vendor) noexcept;

/// Parses the exact names produced by to_string (case-insensitive).
[[nodiscard]] std::optional<Vendor> vendor_from_string(std::string_view name) noexcept;

/// IANA private enterprise number used in this vendor's SNMP engine IDs.
[[nodiscard]] std::uint32_t enterprise_number(Vendor vendor) noexcept;

/// Reverse mapping used by the SNMPv3 labeler. Unrecognised numbers map to
/// `unknown`.
[[nodiscard]] Vendor vendor_from_enterprise(std::uint32_t enterprise) noexcept;

/// All concrete vendors (excludes `unknown`).
[[nodiscard]] std::span<const Vendor> all_vendors() noexcept;

}  // namespace lfp::stack
