// Stack behaviour profiles: the per-OS-family parameters that determine how a
// simulated router answers probes. Each profile corresponds to one TCP/IP
// stack implementation (an OS family of a vendor); the observable differences
// between profiles are exactly the features LFP fingerprints (Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "snmp/engine_id.hpp"
#include "stack/vendor.hpp"

namespace lfp::stack {

/// How a stack generates the IPID field of its responses.
enum class IpidMode : std::uint8_t {
    incremental,     ///< shared or per-protocol monotonic counter
    random,          ///< PRNG per packet
    zero,            ///< always zero (common with DF set)
    static_value,    ///< constant non-zero value
    duplicate_pair,  ///< counter advances every *second* packet
};

[[nodiscard]] std::string_view to_string(IpidMode mode) noexcept;

/// Counter group ids: protocols with the same group share one counter
/// (the source of LFP's four shared-counter features).
struct IpidBehaviour {
    IpidMode icmp = IpidMode::incremental;
    IpidMode tcp = IpidMode::incremental;
    IpidMode udp = IpidMode::incremental;
    std::uint8_t icmp_group = 0;
    std::uint8_t tcp_group = 0;
    std::uint8_t udp_group = 0;
    bool icmp_echoes_request_ipid = false;  ///< reply IPID := request IPID
};

/// SYN-ACK parameters used when a management port is open (consumed by the
/// Hershel and Nmap baselines, not by LFP itself).
struct SynAckBehaviour {
    std::uint16_t window = 4128;
    std::uint16_t mss = 536;
    bool sack_permitted = false;
    bool timestamps = false;
};

/// Probability knobs: how often an *instance* of this profile is reachable /
/// enabled for each protocol. Instances draw once at construction, matching
/// the paper's observation that an IP answers all three probes of a protocol
/// or none (Figures 5/6).
struct ResponsePolicy {
    double icmp = 0.9;
    double tcp = 0.6;
    double udp = 0.6;
    double snmpv3 = 0.3;
    double open_mgmt_port = 0.02;  ///< TCP/22 open at all (banner leaked once)
    /// Given an open management port, probability it is still reachable from
    /// an arbitrary scanning vantage (ACLs tighten over time) — the quantity
    /// bounding Nmap's coverage in the §7.3 comparison.
    double mgmt_scan_reachable = 0.25;
};

struct StackProfile {
    std::string family;  ///< e.g. "IOS-XR 7"
    Vendor vendor = Vendor::unknown;

    IpidBehaviour ipid;

    /// Initial TTLs per response protocol (the iTTL features).
    std::uint8_t ittl_icmp = 255;
    std::uint8_t ittl_tcp = 255;
    std::uint8_t ittl_udp = 255;

    /// Bytes of the offending datagram quoted in ICMP errors. RFC 792
    /// minimum is IP header + 8; Linux-derived stacks quote everything.
    std::size_t icmp_quote_limit = 28;

    /// RST sequence number for our SYN probe carrying a non-zero ack field:
    /// true → seq taken from the ack field (non-zero), false → zero.
    bool rst_seq_from_ack = false;

    /// Whether ACK probes to closed ports elicit a RST at all.
    bool rst_to_ack_probe = true;

    ResponsePolicy response;
    SynAckBehaviour syn_ack;
    snmp::EngineIdFormat engine_format = snmp::EngineIdFormat::mac;
    std::string banner;  ///< management-service banner, e.g. "SSH-2.0-Cisco-1.25"

    /// Typical background IPID consumption between two of our probes; the
    /// mean of the per-instance traffic gap draw. Busy cores burn hundreds
    /// of IDs between probes.
    double mean_traffic_gap = 40.0;
};

}  // namespace lfp::stack
