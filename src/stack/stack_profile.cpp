#include "stack/stack_profile.hpp"

namespace lfp::stack {

std::string_view to_string(IpidMode mode) noexcept {
    switch (mode) {
        case IpidMode::incremental: return "incremental";
        case IpidMode::random: return "random";
        case IpidMode::zero: return "zero";
        case IpidMode::static_value: return "static";
        case IpidMode::duplicate_pair: return "duplicate";
    }
    return "?";
}

}  // namespace lfp::stack
