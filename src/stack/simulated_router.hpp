// A simulated router instance: one or more interface IPs backed by a stack
// profile. It consumes raw IPv4 probe packets and produces raw response
// packets, byte-identical to what a live router of that profile would emit —
// the substitution for the paper's live probing targets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet_builder.hpp"
#include "snmp/engine_id.hpp"
#include "stack/stack_profile.hpp"
#include "util/rng.hpp"

namespace lfp::stack {

/// The closed port LFP probes (paper §3.3).
constexpr std::uint16_t kProbePort = 33533;
constexpr std::uint16_t kMgmtPort = 22;

/// One IPID counter state machine (per counter group of a router).
class IpidCounter {
  public:
    IpidCounter() = default;
    IpidCounter(IpidMode mode, std::uint16_t initial, double mean_gap) noexcept
        : mode_(mode), value_(initial), static_value_(initial == 0 ? 0x1234 : initial),
          mean_gap_(mean_gap) {}

    /// Value for the next emitted packet; advances internal state.
    std::uint16_t next(util::Rng& rng) noexcept;

    [[nodiscard]] IpidMode mode() const noexcept { return mode_; }

  private:
    IpidMode mode_ = IpidMode::incremental;
    std::uint16_t value_ = 0;
    std::uint16_t static_value_ = 0x1234;
    double mean_gap_ = 0;
    bool serve_duplicate_ = false;
    std::uint16_t duplicate_value_ = 0;
};

/// Operator configuration overrides (the §8 evasion discussion): a router
/// can deviate from its stack's defaults, confusing the classifier.
struct RouterOverrides {
    std::optional<std::uint8_t> ittl_icmp;
    std::optional<std::uint8_t> ittl_tcp;
    std::optional<std::uint8_t> ittl_udp;
    std::optional<std::size_t> icmp_quote_limit;
};

class SimulatedRouter {
  public:
    /// `seed_rng` is forked for this router's private stream, so router
    /// construction order does not perturb other routers' behaviour.
    /// `posture` scales the data-plane response probabilities and
    /// `snmp_posture` the SNMPv3 exposure (AS security-posture factors;
    /// 1.0 = profile defaults). Backbone operators filter SNMP far more
    /// aggressively than ICMP.
    SimulatedRouter(std::uint64_t router_id, const StackProfile& profile, util::Rng& seed_rng,
                    double posture = 1.0, double snmp_posture = 1.0);

    void add_interface(net::IPv4Address address) { interfaces_.push_back(address); }

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] const StackProfile& profile() const noexcept { return *profile_; }
    [[nodiscard]] Vendor vendor() const noexcept { return profile_->vendor; }
    [[nodiscard]] const std::vector<net::IPv4Address>& interfaces() const noexcept {
        return interfaces_;
    }

    /// Instance-level reachability traits, drawn once at construction: a
    /// router answers all probes of a protocol or none (paper Figures 5/6).
    [[nodiscard]] bool responds_icmp() const noexcept { return responds_icmp_; }
    [[nodiscard]] bool responds_tcp() const noexcept { return responds_tcp_; }
    [[nodiscard]] bool responds_udp() const noexcept { return responds_udp_; }
    [[nodiscard]] bool snmp_enabled() const noexcept { return snmp_enabled_; }
    [[nodiscard]] bool mgmt_port_open() const noexcept { return mgmt_port_open_; }
    [[nodiscard]] bool mgmt_reachable() const noexcept {
        return mgmt_port_open_ && mgmt_reachable_;
    }
    [[nodiscard]] const snmp::EngineId& engine_id() const noexcept { return engine_id_; }

    void set_overrides(const RouterOverrides& overrides) { overrides_ = overrides; }

    /// Forces the management service open (used by the §7.3 banner-sample
    /// study: Censys knew the banner historically even if the instance draw
    /// left the port closed). Scan-time reachability still applies.
    void set_mgmt_port_open(bool open) noexcept { mgmt_port_open_ = open; }
    [[nodiscard]] const RouterOverrides& overrides() const noexcept { return overrides_; }

    /// Processes one raw IPv4 packet addressed to one of our interfaces.
    /// Returns the raw response packet, or nullopt for silence.
    std::optional<net::Bytes> handle_packet(std::span<const std::uint8_t> packet);

  private:
    std::optional<net::Bytes> handle_icmp(const net::ParsedPacket& probe);
    std::optional<net::Bytes> handle_tcp(const net::ParsedPacket& probe,
                                         std::span<const std::uint8_t> raw);
    std::optional<net::Bytes> handle_udp(const net::ParsedPacket& probe,
                                         std::span<const std::uint8_t> raw);
    std::optional<net::Bytes> handle_snmp(const net::ParsedPacket& probe);

    [[nodiscard]] std::uint8_t ittl_icmp() const noexcept {
        return overrides_.ittl_icmp.value_or(profile_->ittl_icmp);
    }
    [[nodiscard]] std::uint8_t ittl_tcp() const noexcept {
        return overrides_.ittl_tcp.value_or(profile_->ittl_tcp);
    }
    [[nodiscard]] std::uint8_t ittl_udp() const noexcept {
        return overrides_.ittl_udp.value_or(profile_->ittl_udp);
    }
    [[nodiscard]] std::size_t quote_limit() const noexcept {
        return overrides_.icmp_quote_limit.value_or(profile_->icmp_quote_limit);
    }

    std::uint16_t next_ipid(std::uint8_t group) { return counters_[group].next(rng_); }

    std::uint64_t id_;
    const StackProfile* profile_;
    std::vector<net::IPv4Address> interfaces_;
    util::Rng rng_;
    std::array<IpidCounter, 3> counters_;
    snmp::EngineId engine_id_;
    std::int32_t engine_boots_ = 1;
    std::int32_t engine_time_ = 0;
    bool responds_icmp_ = false;
    bool responds_tcp_ = false;
    bool responds_udp_ = false;
    bool snmp_enabled_ = false;
    bool mgmt_port_open_ = false;
    bool mgmt_reachable_ = false;
    RouterOverrides overrides_;
};

}  // namespace lfp::stack
