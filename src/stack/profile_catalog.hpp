// The catalog of stack profiles the simulation draws routers from.
//
// Each vendor ships several OS families / product lines with distinct stack
// behaviour (the paper finds 25 distinct Cisco signatures, 15 Juniper, ...).
// Profiles also deliberately *collide* across vendors that share stack
// lineage (H3C/Huawei Comware ancestry, Linux-derived MikroTik / net-snmp /
// D-Link), producing the non-unique signatures the paper reports.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "stack/stack_profile.hpp"

namespace lfp::stack {

/// A profile plus its prevalence among this vendor's deployed routers.
struct WeightedProfile {
    StackProfile profile;
    double weight = 1.0;
};

class ProfileCatalog {
  public:
    /// All profiles of one vendor with deployment weights (empty span if the
    /// vendor has no modelled profile).
    [[nodiscard]] std::span<const WeightedProfile> profiles_for(Vendor vendor) const;

    /// Lookup by family name (e.g. "IOS 15"); nullptr if absent.
    [[nodiscard]] const StackProfile* find(std::string_view family) const;

    [[nodiscard]] std::span<const WeightedProfile> all() const { return profiles_; }
    [[nodiscard]] std::size_t size() const { return profiles_.size(); }

    /// Builds the standard study catalog.
    static ProfileCatalog standard();

  private:
    std::vector<WeightedProfile> profiles_;
    // Index ranges into profiles_ per vendor (profiles_ sorted by vendor).
    struct Range {
        std::size_t begin = 0;
        std::size_t end = 0;
    };
    std::vector<Range> ranges_;  // indexed by Vendor value
};

/// Shared immutable instance of the standard catalog.
const ProfileCatalog& standard_catalog();

}  // namespace lfp::stack
