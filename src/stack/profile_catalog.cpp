#include "stack/profile_catalog.hpp"

#include <algorithm>

namespace lfp::stack {

namespace {

using snmp::EngineIdFormat;

// Convenience constructors ---------------------------------------------------

IpidBehaviour ipid_all(IpidMode mode) {
    IpidBehaviour b;
    b.icmp = b.tcp = b.udp = mode;
    b.icmp_group = b.tcp_group = b.udp_group = 0;
    return b;
}

IpidBehaviour ipid_per_proto(IpidMode icmp, IpidMode tcp, IpidMode udp) {
    IpidBehaviour b;
    b.icmp = icmp;
    b.tcp = tcp;
    b.udp = udp;
    b.icmp_group = 0;
    b.tcp_group = 1;
    b.udp_group = 2;
    return b;
}

/// One shared counter for all three protocols (classic single global IPID).
IpidBehaviour ipid_shared_all() {
    IpidBehaviour b = ipid_all(IpidMode::incremental);
    return b;
}

/// TCP and UDP share a counter; ICMP has its own.
IpidBehaviour ipid_shared_tcp_udp(IpidMode icmp_mode) {
    IpidBehaviour b;
    b.icmp = icmp_mode;
    b.tcp = b.udp = IpidMode::incremental;
    b.icmp_group = 1;
    b.tcp_group = 0;
    b.udp_group = 0;
    return b;
}

constexpr std::size_t kQuoteRfc792 = 28;   // IP header + 8 bytes
constexpr std::size_t kQuoteFull = 65535;  // quote as much as fits (Linux)

}  // namespace

ProfileCatalog ProfileCatalog::standard() {
    ProfileCatalog catalog;
    auto& out = catalog.profiles_;

    auto add = [&out](Vendor vendor, std::string family, double weight, IpidBehaviour ipid,
                      std::uint8_t ittl_icmp, std::uint8_t ittl_tcp, std::uint8_t ittl_udp,
                      std::size_t quote, bool rst_from_ack, ResponsePolicy response,
                      EngineIdFormat fmt, std::string banner, double mean_gap,
                      SynAckBehaviour syn_ack = {}) {
        StackProfile p;
        p.family = std::move(family);
        p.vendor = vendor;
        p.ipid = ipid;
        p.ittl_icmp = ittl_icmp;
        p.ittl_tcp = ittl_tcp;
        p.ittl_udp = ittl_udp;
        p.icmp_quote_limit = quote;
        p.rst_seq_from_ack = rst_from_ack;
        p.response = response;
        p.engine_format = fmt;
        p.banner = std::move(banner);
        p.mean_traffic_gap = mean_gap;
        p.syn_ack = syn_ack;
        out.push_back({std::move(p), weight});
    };

    // ---------------------------------------------------------------- Cisco
    // Flagship IOS matches the Table 6 Cisco row:
    //   echo=False, ipid r r r, no shared counters,
    //   iTTL (udp,icmp,tcp) = 255,255,64, sizes 84/40/56, RST seq zero.
    add(Vendor::cisco, "IOS 15", 0.34, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                      IpidMode::random),
        /*icmp*/ 255, /*tcp*/ 64, /*udp*/ 255, kQuoteRfc792, false,
        {.icmp = 0.93, .tcp = 0.72, .udp = 0.70, .snmpv3 = 0.46, .open_mgmt_port = 0.035},
        EngineIdFormat::mac, "SSH-2.0-Cisco-1.25", 60.0, {4096, 536, false, false});
    add(Vendor::cisco, "IOS-XE", 0.22, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                      IpidMode::random),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.93, .tcp = 0.72, .udp = 0.70, .snmpv3 = 0.44, .open_mgmt_port = 0.03},
        EngineIdFormat::mac, "SSH-2.0-Cisco-1.25", 70.0, {4096, 1460, false, false});
    add(Vendor::cisco, "IOS-XR 7", 0.16, ipid_shared_all(),
        255, 255, 255, kQuoteRfc792, true,
        {.icmp = 0.95, .tcp = 0.78, .udp = 0.76, .snmpv3 = 0.40, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-Cisco-2.0", 180.0, {16384, 1460, false, false});
    add(Vendor::cisco, "NX-OS", 0.08, ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                                     IpidMode::incremental),
        255, 64, 64, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.6, .udp = 0.6, .snmpv3 = 0.38, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.4 Cisco Nexus", 90.0,
        {29200, 1460, true, true});
    add(Vendor::cisco, "IOS 12", 0.09, ipid_shared_all(),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.88, .tcp = 0.65, .udp = 0.62, .snmpv3 = 0.5, .open_mgmt_port = 0.05},
        EngineIdFormat::mac, "SSH-1.99-Cisco-1.25", 30.0, {4128, 536, false, false});
    add(Vendor::cisco, "ASR 9k", 0.05, ipid_shared_tcp_udp(IpidMode::random),
        255, 255, 255, kQuoteRfc792, true,
        {.icmp = 0.95, .tcp = 0.8, .udp = 0.78, .snmpv3 = 0.35, .open_mgmt_port = 0.015},
        EngineIdFormat::mac, "SSH-2.0-Cisco-2.0", 400.0, {16384, 1460, false, false});
    add(Vendor::cisco, "Catalyst IOS", 0.04, ipid_per_proto(IpidMode::static_value,
                                                            IpidMode::random, IpidMode::random),
        255, 64, 255, kQuoteRfc792, false,
        {.icmp = 0.85, .tcp = 0.55, .udp = 0.5, .snmpv3 = 0.52, .open_mgmt_port = 0.06},
        EngineIdFormat::mac, "SSH-2.0-Cisco-1.25", 15.0, {4128, 536, false, false});
    add(Vendor::cisco, "ME 3600", 0.02, ipid_per_proto(IpidMode::zero, IpidMode::random,
                                                       IpidMode::random),
        255, 255, 64, kQuoteRfc792, false,
        {.icmp = 0.85, .tcp = 0.6, .udp = 0.55, .snmpv3 = 0.42, .open_mgmt_port = 0.03},
        EngineIdFormat::mac, "SSH-2.0-Cisco-1.25", 25.0, {4128, 536, false, false});

    // -------------------------------------------------------------- Juniper
    // Flagship JunOS matches the Table 6 Juniper row:
    //   echo=False, r r r, no shared, iTTL (udp,icmp,tcp)=255,64,64,
    //   sizes 84/40/56, RST seq zero.
    add(Vendor::juniper, "JunOS MX", 0.45, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                          IpidMode::random),
        /*icmp*/ 64, /*tcp*/ 64, /*udp*/ 255, kQuoteRfc792, false,
        {.icmp = 0.95, .tcp = 0.8, .udp = 0.78, .snmpv3 = 0.20, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 JUNOS", 120.0, {16384, 1460, false, true});
    add(Vendor::juniper, "JunOS EX", 0.17, ipid_shared_tcp_udp(IpidMode::random),
        64, 64, 255, kQuoteRfc792, false,
        {.icmp = 0.92, .tcp = 0.74, .udp = 0.7, .snmpv3 = 0.24, .open_mgmt_port = 0.03},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 JUNOS", 40.0, {16384, 1460, false, true});
    add(Vendor::juniper, "JunOS SRX", 0.14, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                           IpidMode::incremental),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.88, .tcp = 0.7, .udp = 0.66, .snmpv3 = 0.18, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 JUNOS", 55.0, {16384, 1460, true, true});
    add(Vendor::juniper, "JunOS PTX", 0.13, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                           IpidMode::random),
        255, 64, 255, kQuoteRfc792, true,
        {.icmp = 0.95, .tcp = 0.82, .udp = 0.8, .snmpv3 = 0.16, .open_mgmt_port = 0.012},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 JUNOS", 300.0, {16384, 1460, false, true});
    add(Vendor::juniper, "JunOS QFX", 0.11, ipid_per_proto(IpidMode::incremental,
                                                           IpidMode::random, IpidMode::random),
        64, 64, 255, kQuoteRfc792, false,
        {.icmp = 0.9, .tcp = 0.72, .udp = 0.7, .snmpv3 = 0.22, .open_mgmt_port = 0.025},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 JUNOS", 35.0, {16384, 1460, false, true});

    // --------------------------------------------------------------- Huawei
    // VRP shares the Cisco iTTL tuple (the paper notes Huawei == Cisco iTTL),
    // but differs in IPID behaviour: one shared incremental counter.
    add(Vendor::huawei, "VRP 8", 0.5, ipid_shared_all(),
        255, 64, 255, kQuoteRfc792, false,
        {.icmp = 0.92, .tcp = 0.7, .udp = 0.68, .snmpv3 = 0.32, .open_mgmt_port = 0.03},
        EngineIdFormat::octets, "SSH-2.0-HUAWEI-1.5", 80.0, {8192, 1460, false, false});
    add(Vendor::huawei, "VRP 5", 0.28, ipid_shared_tcp_udp(IpidMode::incremental),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.9, .tcp = 0.66, .udp = 0.64, .snmpv3 = 0.34, .open_mgmt_port = 0.04},
        EngineIdFormat::octets, "SSH-2.0-HUAWEI-1.5", 45.0, {8192, 536, false, false});
    add(Vendor::huawei, "CloudEngine", 0.12, ipid_per_proto(IpidMode::incremental,
                                                            IpidMode::zero, IpidMode::incremental),
        255, 64, 255, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.64, .udp = 0.62, .snmpv3 = 0.28, .open_mgmt_port = 0.02},
        EngineIdFormat::octets, "SSH-2.0-HUAWEI-2.0", 70.0, {29200, 1460, true, true});
    add(Vendor::huawei, "NE Router", 0.1, ipid_per_proto(IpidMode::duplicate_pair,
                                                         IpidMode::incremental,
                                                         IpidMode::incremental),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.93, .tcp = 0.72, .udp = 0.7, .snmpv3 = 0.3, .open_mgmt_port = 0.02},
        EngineIdFormat::octets, "SSH-2.0-HUAWEI-1.5", 150.0, {8192, 1460, false, false});

    // ------------------------------------------------------------- MikroTik
    // RouterOS is Linux-derived: ICMP echoes the request IPID, ICMP errors
    // quote the full datagram, iTTL 64 across the board.
    add(Vendor::mikrotik, "RouterOS 6", 0.52, [] {
            IpidBehaviour b = ipid_shared_tcp_udp(IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.62, .udp = 0.6, .snmpv3 = 0.5, .open_mgmt_port = 0.1},
        EngineIdFormat::text, "SSH-2.0-ROSSSH", 20.0, {14600, 1460, true, true});
    add(Vendor::mikrotik, "RouterOS 7", 0.3, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.6, .udp = 0.58, .snmpv3 = 0.48, .open_mgmt_port = 0.1},
        EngineIdFormat::text, "SSH-2.0-ROSSSH", 18.0, {64240, 1460, true, true});
    add(Vendor::mikrotik, "RouterOS 6 CHR", 0.08, [] {
            IpidBehaviour b = ipid_all(IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.92, .tcp = 0.66, .udp = 0.64, .snmpv3 = 0.52, .open_mgmt_port = 0.12},
        EngineIdFormat::text, "SSH-2.0-ROSSSH", 25.0, {14600, 1460, true, true});
    add(Vendor::mikrotik, "RouterOS 5", 0.06, [] {
            IpidBehaviour b = ipid_shared_tcp_udp(IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 255, kQuoteFull, false,
        {.icmp = 0.85, .tcp = 0.55, .udp = 0.52, .snmpv3 = 0.45, .open_mgmt_port = 0.12},
        EngineIdFormat::text, "SSH-2.0-ROSSSH", 12.0, {14600, 536, true, false});
    add(Vendor::mikrotik, "SwOS", 0.04, ipid_per_proto(IpidMode::static_value, IpidMode::zero,
                                                       IpidMode::static_value),
        64, 64, 64, kQuoteRfc792, false,
        {.icmp = 0.8, .tcp = 0.4, .udp = 0.4, .snmpv3 = 0.4, .open_mgmt_port = 0.05},
        EngineIdFormat::text, "SSH-2.0-ROSSSH", 5.0, {5840, 536, false, false});

    // ------------------------------------------------------------------ H3C
    // Comware shares lineage with Huawei VRP (H3C was Huawei-3Com); Comware 5
    // is stack-identical to VRP 5 → a deliberately non-unique signature.
    add(Vendor::h3c, "Comware 5", 0.55, ipid_shared_tcp_udp(IpidMode::incremental),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.88, .tcp = 0.6, .udp = 0.58, .snmpv3 = 0.3, .open_mgmt_port = 0.05},
        EngineIdFormat::octets, "SSH-2.0-Comware-5.20", 45.0, {8192, 536, false, false});
    add(Vendor::h3c, "Comware 7", 0.35, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.88, .tcp = 0.58, .udp = 0.56, .snmpv3 = 0.26, .open_mgmt_port = 0.04},
        EngineIdFormat::octets, "SSH-2.0-Comware-7.1", 30.0, {64240, 1460, true, true});
    add(Vendor::h3c, "SecPath", 0.1, ipid_per_proto(IpidMode::incremental, IpidMode::incremental,
                                                    IpidMode::static_value),
        255, 64, 64, kQuoteRfc792, false,
        {.icmp = 0.85, .tcp = 0.55, .udp = 0.5, .snmpv3 = 0.22, .open_mgmt_port = 0.03},
        EngineIdFormat::octets, "SSH-2.0-Comware-7.1", 25.0, {8192, 1460, false, false});

    // -------------------------------------------------------- Alcatel/Nokia
    add(Vendor::nokia, "SR-OS 7750", 0.7, ipid_per_proto(IpidMode::random, IpidMode::zero,
                                                         IpidMode::incremental),
        255, 255, 255, kQuoteRfc792, true,
        {.icmp = 0.95, .tcp = 0.8, .udp = 0.78, .snmpv3 = 0.09, .open_mgmt_port = 0.01},
        EngineIdFormat::octets, "SSH-2.0-OpenSSH_6.6 TiMOS", 250.0, {10240, 1460, false, false});
    add(Vendor::nokia, "SR-OS 7250", 0.3, ipid_per_proto(IpidMode::random, IpidMode::static_value,
                                                         IpidMode::incremental),
        255, 255, 64, kQuoteRfc792, true,
        {.icmp = 0.92, .tcp = 0.74, .udp = 0.72, .snmpv3 = 0.1, .open_mgmt_port = 0.015},
        EngineIdFormat::octets, "SSH-2.0-OpenSSH_6.6 TiMOS", 140.0, {10240, 1460, false, false});

    // --------------------------------------------------------------Ericsson
    add(Vendor::ericsson, "SmartEdge", 1.0, ipid_per_proto(IpidMode::static_value,
                                                           IpidMode::incremental,
                                                           IpidMode::random),
        255, 64, 255, kQuoteRfc792, true,
        {.icmp = 0.9, .tcp = 0.75, .udp = 0.72, .snmpv3 = 0.08, .open_mgmt_port = 0.01},
        EngineIdFormat::mac, "SSH-2.0-SSH_server Ericsson", 90.0, {8192, 1460, false, false});

    // --------------------------------------------------------------- Brocade
    // NetIron is a classic Foundry stack; CER runs a Linux control plane.
    add(Vendor::brocade, "NetIron", 0.6, ipid_shared_all(),
        64, 64, 64, kQuoteRfc792, false,
        {.icmp = 0.88, .tcp = 0.62, .udp = 0.6, .snmpv3 = 0.36, .open_mgmt_port = 0.05},
        EngineIdFormat::mac, "SSH-2.0-RomSShell_4.62", 35.0, {16384, 1460, false, false});
    add(Vendor::brocade, "CER Linux", 0.4, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.85, .tcp = 0.58, .udp = 0.55, .snmpv3 = 0.33, .open_mgmt_port = 0.06},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_5.8", 22.0, {14600, 1460, true, true});

    // ---------------------------------------------------------------- Ruijie
    add(Vendor::ruijie, "RGOS", 1.0, ipid_shared_tcp_udp(IpidMode::duplicate_pair),
        255, 64, 255, kQuoteRfc792, false,
        {.icmp = 0.86, .tcp = 0.6, .udp = 0.56, .snmpv3 = 0.3, .open_mgmt_port = 0.04},
        EngineIdFormat::octets, "SSH-2.0-RGOS_SSH", 30.0, {8192, 536, false, false});

    // --------------------------------------------------------------net-snmp
    // Generic Linux boxes acting as routers; stack-identical to other
    // Linux-derived platforms → heavily non-unique.
    add(Vendor::net_snmp, "Linux router", 0.7, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.65, .udp = 0.6, .snmpv3 = 0.5, .open_mgmt_port = 0.15},
        EngineIdFormat::octets, "SSH-2.0-OpenSSH_8.2p1", 15.0, {64240, 1460, true, true});
    add(Vendor::net_snmp, "Linux legacy", 0.3, [] {
            IpidBehaviour b = ipid_shared_tcp_udp(IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.88, .tcp = 0.6, .udp = 0.58, .snmpv3 = 0.52, .open_mgmt_port = 0.18},
        EngineIdFormat::octets, "SSH-2.0-OpenSSH_5.3", 10.0, {5840, 1460, true, true});

    // ------------------------------------------------------------------- ZTE
    // ZXR10 shares NE-router-like behaviour (stack lineage) → non-unique
    // with Huawei's NE family.
    add(Vendor::zte, "ZXR10", 1.0, ipid_per_proto(IpidMode::duplicate_pair,
                                                  IpidMode::incremental, IpidMode::incremental),
        255, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.88, .tcp = 0.64, .udp = 0.6, .snmpv3 = 0.22, .open_mgmt_port = 0.03},
        EngineIdFormat::octets, "SSH-2.0-ZTE_SSH", 60.0, {8192, 1460, false, false});

    // --------------------------------------------------------------- Extreme
    add(Vendor::extreme, "EXOS", 1.0, ipid_per_proto(IpidMode::incremental, IpidMode::random,
                                                     IpidMode::zero),
        64, 255, 64, kQuoteRfc792, false,
        {.icmp = 0.85, .tcp = 0.6, .udp = 0.55, .snmpv3 = 0.25, .open_mgmt_port = 0.05},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.5 ExtremeXOS", 20.0, {16384, 1460, true, false});

    // ---------------------------------------------------------------- Arista
    add(Vendor::arista, "EOS", 1.0, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 255, kQuoteFull, false,
        {.icmp = 0.9, .tcp = 0.7, .udp = 0.65, .snmpv3 = 0.2, .open_mgmt_port = 0.04},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_7.8 Arista", 45.0, {29200, 1460, true, true});

    // -------------------------------------------------------------- Fortinet
    add(Vendor::fortinet, "FortiOS", 1.0, ipid_per_proto(IpidMode::random, IpidMode::random,
                                                         IpidMode::static_value),
        255, 64, 64, kQuoteRfc792, false,
        {.icmp = 0.8, .tcp = 0.5, .udp = 0.45, .snmpv3 = 0.15, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-FortiSSH", 25.0, {5840, 1460, false, false});

    // ---------------------------------------------------------------- D-Link
    // Cheap Linux-based CPE-grade gear; collides with the Linux family.
    add(Vendor::dlink, "DGS Linux", 1.0, [] {
            IpidBehaviour b = ipid_per_proto(IpidMode::incremental, IpidMode::zero,
                                             IpidMode::incremental);
            b.icmp_echoes_request_ipid = true;
            return b;
        }(),
        64, 64, 64, kQuoteFull, false,
        {.icmp = 0.82, .tcp = 0.5, .udp = 0.48, .snmpv3 = 0.3, .open_mgmt_port = 0.1},
        EngineIdFormat::mac, "SSH-2.0-OpenSSH_6.0", 8.0, {14600, 1460, true, true});

    // ------------------------------------------------------------------ ADVA
    add(Vendor::adva, "FSP 150", 1.0, ipid_per_proto(IpidMode::static_value, IpidMode::random,
                                                     IpidMode::incremental),
        64, 255, 255, kQuoteRfc792, false,
        {.icmp = 0.8, .tcp = 0.5, .udp = 0.45, .snmpv3 = 0.18, .open_mgmt_port = 0.02},
        EngineIdFormat::mac, "SSH-2.0-ADVA", 12.0, {8192, 536, false, false});

    // Firmware-generation variants: older trains of a family quote more of
    // the offending datagram in ICMP errors (RFC 1812 permits it), changing
    // the UDP response size — multiplying per-vendor signatures the way the
    // paper observes (25 distinct Cisco signatures, 15 Juniper, ...).
    {
        std::vector<WeightedProfile> variants;
        for (auto& wp : out) {
            if (wp.profile.icmp_quote_limit != kQuoteRfc792) continue;
            WeightedProfile legacy = wp;
            legacy.profile.family += " legacy";
            legacy.profile.icmp_quote_limit = 32;  // 60-byte port unreachable
            legacy.weight = wp.weight * 0.30;
            wp.weight *= 0.85;
            variants.push_back(std::move(legacy));

            const Vendor v = wp.profile.vendor;
            if (v == Vendor::cisco || v == Vendor::juniper || v == Vendor::huawei) {
                WeightedProfile early = wp;
                early.profile.family += " early";
                early.profile.icmp_quote_limit = 36;  // 64-byte port unreachable
                early.weight = wp.weight * 0.14;
                variants.push_back(std::move(early));
            }
        }
        for (auto& variant : variants) out.push_back(std::move(variant));
    }

    // Global SNMPv3 exposure correction: per-profile values describe the
    // relative vendor tendencies; this factor calibrates the absolute rate
    // so ≈28% of responsive IPs answer SNMPv3 (paper Table 3).
    for (auto& wp : out) wp.profile.response.snmpv3 *= 1.6;

    // Scan-time management reachability varies by vendor deployment culture
    // (backbone gear sits behind ACLs; CPE-grade gear stays exposed). These
    // values bound Nmap's coverage in the §7.3 comparison.
    for (auto& wp : out) {
        switch (wp.profile.vendor) {
            case Vendor::cisco: wp.profile.response.mgmt_scan_reachable = 0.22; break;
            case Vendor::juniper: wp.profile.response.mgmt_scan_reachable = 0.38; break;
            case Vendor::huawei: wp.profile.response.mgmt_scan_reachable = 0.40; break;
            case Vendor::ericsson: wp.profile.response.mgmt_scan_reachable = 0.06; break;
            case Vendor::mikrotik: wp.profile.response.mgmt_scan_reachable = 0.18; break;
            case Vendor::nokia: wp.profile.response.mgmt_scan_reachable = 0.28; break;
            default: wp.profile.response.mgmt_scan_reachable = 0.25; break;
        }
    }

    // Sort by vendor so per-vendor ranges are contiguous.
    std::stable_sort(out.begin(), out.end(), [](const WeightedProfile& a,
                                                const WeightedProfile& b) {
        return static_cast<int>(a.profile.vendor) < static_cast<int>(b.profile.vendor);
    });
    catalog.ranges_.assign(kVendorCount + 1, {});
    for (std::size_t i = 0; i < out.size(); ++i) {
        auto v = static_cast<std::size_t>(out[i].profile.vendor);
        if (catalog.ranges_[v].end == 0) catalog.ranges_[v].begin = i;
        catalog.ranges_[v].end = i + 1;
    }
    return catalog;
}

std::span<const WeightedProfile> ProfileCatalog::profiles_for(Vendor vendor) const {
    const auto v = static_cast<std::size_t>(vendor);
    if (v >= ranges_.size()) return {};
    const Range r = ranges_[v];
    if (r.end <= r.begin) return {};
    return std::span<const WeightedProfile>(profiles_).subspan(r.begin, r.end - r.begin);
}

const StackProfile* ProfileCatalog::find(std::string_view family) const {
    for (const auto& wp : profiles_) {
        if (wp.profile.family == family) return &wp.profile;
    }
    return nullptr;
}

const ProfileCatalog& standard_catalog() {
    static const ProfileCatalog catalog = ProfileCatalog::standard();
    return catalog;
}

}  // namespace lfp::stack
