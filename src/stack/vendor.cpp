#include "stack/vendor.hpp"

#include <array>

#include "snmp/engine_id.hpp"
#include "util/strings.hpp"

namespace lfp::stack {

namespace {

struct VendorRecord {
    Vendor vendor;
    std::string_view name;
    std::uint32_t enterprise;
};

constexpr std::array<VendorRecord, kVendorCount> kRecords{{
    {Vendor::cisco, "Cisco", snmp::enterprise::kCisco},
    {Vendor::juniper, "Juniper", snmp::enterprise::kJuniper},
    {Vendor::huawei, "Huawei", snmp::enterprise::kHuawei},
    {Vendor::mikrotik, "MikroTik", snmp::enterprise::kMikroTik},
    {Vendor::h3c, "H3C", snmp::enterprise::kH3c},
    {Vendor::nokia, "Alcatel/Nokia", snmp::enterprise::kNokia},
    {Vendor::ericsson, "Ericsson", snmp::enterprise::kEricsson},
    {Vendor::brocade, "Brocade", snmp::enterprise::kBrocade},
    {Vendor::ruijie, "Ruijie", snmp::enterprise::kRuijie},
    {Vendor::net_snmp, "net-snmp", snmp::enterprise::kNetSnmp},
    {Vendor::zte, "ZTE", snmp::enterprise::kZte},
    {Vendor::extreme, "Extreme", snmp::enterprise::kExtreme},
    {Vendor::arista, "Arista", snmp::enterprise::kArista},
    {Vendor::fortinet, "Fortinet", snmp::enterprise::kFortinet},
    {Vendor::dlink, "D-Link", snmp::enterprise::kDlink},
    {Vendor::adva, "ADVA", snmp::enterprise::kAdva},
}};

constexpr std::array<Vendor, kVendorCount> kAllVendors = [] {
    std::array<Vendor, kVendorCount> out{};
    for (std::size_t i = 0; i < kRecords.size(); ++i) out[i] = kRecords[i].vendor;
    return out;
}();

}  // namespace

std::string_view to_string(Vendor vendor) noexcept {
    for (const auto& r : kRecords) {
        if (r.vendor == vendor) return r.name;
    }
    return "Unknown";
}

std::optional<Vendor> vendor_from_string(std::string_view name) noexcept {
    const std::string lowered = util::to_lower(name);
    for (const auto& r : kRecords) {
        if (util::to_lower(r.name) == lowered) return r.vendor;
    }
    return std::nullopt;
}

std::uint32_t enterprise_number(Vendor vendor) noexcept {
    for (const auto& r : kRecords) {
        if (r.vendor == vendor) return r.enterprise;
    }
    return 0;
}

Vendor vendor_from_enterprise(std::uint32_t enterprise) noexcept {
    for (const auto& r : kRecords) {
        if (r.enterprise == enterprise) return r.vendor;
    }
    return Vendor::unknown;
}

std::span<const Vendor> all_vendors() noexcept { return kAllVendors; }

}  // namespace lfp::stack
