#include "stack/simulated_router.hpp"

#include <algorithm>

#include "snmp/snmpv3.hpp"

namespace lfp::stack {

std::uint16_t IpidCounter::next(util::Rng& rng) noexcept {
    switch (mode_) {
        case IpidMode::zero: return 0;
        case IpidMode::static_value: return static_value_;
        case IpidMode::random: return static_cast<std::uint16_t>(rng.next() & 0xFFFF);
        case IpidMode::incremental: {
            // Background traffic consumed IDs since our last response.
            value_ = static_cast<std::uint16_t>(value_ + 1 + rng.traffic_gap(mean_gap_));
            return value_;
        }
        case IpidMode::duplicate_pair: {
            if (serve_duplicate_) {
                serve_duplicate_ = false;
                return duplicate_value_;
            }
            value_ = static_cast<std::uint16_t>(value_ + 1 + rng.traffic_gap(mean_gap_));
            duplicate_value_ = value_;
            serve_duplicate_ = true;
            return value_;
        }
    }
    return 0;
}

SimulatedRouter::SimulatedRouter(std::uint64_t router_id, const StackProfile& profile,
                                 util::Rng& seed_rng, double posture, double snmp_posture)
    : id_(router_id), profile_(&profile), rng_(seed_rng.fork(router_id * 2 + 1)) {
    const IpidBehaviour& b = profile.ipid;
    // Build one counter per referenced group; groups map protocols that share
    // a counter to the same state machine. A group's mode is the mode of the
    // first protocol referencing it.
    std::array<IpidMode, 3> group_mode{IpidMode::incremental, IpidMode::incremental,
                                       IpidMode::incremental};
    std::array<bool, 3> seen{};
    auto visit = [&](std::uint8_t group, IpidMode mode) {
        if (!seen[group]) {
            group_mode[group] = mode;
            seen[group] = true;
        }
    };
    visit(b.icmp_group, b.icmp);
    visit(b.tcp_group, b.tcp);
    visit(b.udp_group, b.udp);
    for (std::size_t g = 0; g < 3; ++g) {
        const auto initial = static_cast<std::uint16_t>(rng_.next() & 0xFFFF);
        counters_[g] = IpidCounter(group_mode[g], initial, profile.mean_traffic_gap);
    }

    const ResponsePolicy& r = profile.response;
    responds_icmp_ = rng_.chance(std::min(1.0, r.icmp * posture));
    // TCP and UDP closed-port reachability is governed by the same ACL in
    // practice; the paper reports near-identical TCP and UDP response rates
    // (Figures 5/6). Draw one flag and flip each protocol rarely.
    const double closed_ports = std::min(1.0, 0.5 * (r.tcp + r.udp) * posture);
    const bool closed_respond = rng_.chance(closed_ports);
    // No flips at the deterministic extremes (0 or 1) so fully-open and
    // fully-dark configurations stay exact.
    const double flip = (closed_ports > 0.0 && closed_ports < 1.0) ? 0.04 : 0.0;
    responds_tcp_ = closed_respond ? !rng_.chance(flip) : rng_.chance(flip);
    responds_udp_ = closed_respond ? !rng_.chance(flip) : rng_.chance(flip);
    snmp_enabled_ = rng_.chance(std::min(1.0, r.snmpv3 * snmp_posture));
    mgmt_port_open_ = rng_.chance(r.open_mgmt_port);
    mgmt_reachable_ = rng_.chance(r.mgmt_scan_reachable);

    // Engine identity: stable per router.
    const std::uint32_t enterprise = enterprise_number(profile.vendor);
    switch (profile.engine_format) {
        case snmp::EngineIdFormat::mac: {
            std::array<std::uint8_t, 6> mac{};
            for (auto& byte : mac) byte = static_cast<std::uint8_t>(rng_.next() & 0xFF);
            engine_id_ = snmp::make_mac_engine_id(enterprise, mac);
            break;
        }
        case snmp::EngineIdFormat::text:
            engine_id_ = snmp::make_text_engine_id(
                enterprise, std::string(to_string(profile.vendor)) + "-" +
                                std::to_string(router_id));
            break;
        case snmp::EngineIdFormat::ipv4:
        case snmp::EngineIdFormat::ipv6:
        case snmp::EngineIdFormat::octets:
        case snmp::EngineIdFormat::enterprise_specific:
        default: {
            net::Bytes octets(8);
            for (auto& byte : octets) byte = static_cast<std::uint8_t>(rng_.next() & 0xFF);
            engine_id_ = snmp::make_octets_engine_id(enterprise, std::move(octets));
            break;
        }
    }
    engine_boots_ = static_cast<std::int32_t>(1 + rng_.below(60));
    engine_time_ = static_cast<std::int32_t>(rng_.below(60u * 60 * 24 * 500));
}

std::optional<net::Bytes> SimulatedRouter::handle_packet(std::span<const std::uint8_t> packet) {
    auto parsed = net::parse_packet(packet);
    if (!parsed) return std::nullopt;  // malformed packets are dropped silently
    const net::ParsedPacket& probe = parsed.value();
    if (std::find(interfaces_.begin(), interfaces_.end(), probe.ip.destination) ==
        interfaces_.end()) {
        return std::nullopt;  // not addressed to us
    }
    switch (probe.ip.protocol) {
        case net::Protocol::icmp: return handle_icmp(probe);
        case net::Protocol::tcp: return handle_tcp(probe, packet);
        case net::Protocol::udp: {
            const auto* udp = probe.udp();
            if (udp != nullptr && udp->destination_port == snmp::kSnmpPort) {
                return handle_snmp(probe);
            }
            return handle_udp(probe, packet);
        }
    }
    return std::nullopt;
}

std::optional<net::Bytes> SimulatedRouter::handle_icmp(const net::ParsedPacket& probe) {
    if (!responds_icmp_) return std::nullopt;
    const auto* message = probe.icmp();
    if (message == nullptr) return std::nullopt;
    const auto* echo = std::get_if<net::IcmpEcho>(message);
    if (echo == nullptr || echo->is_reply) return std::nullopt;

    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = ittl_icmp();
    ip.identification = profile_->ipid.icmp_echoes_request_ipid
                            ? probe.ip.identification
                            : next_ipid(profile_->ipid.icmp_group);
    return net::make_icmp_echo_reply(ip, *echo);
}

std::optional<net::Bytes> SimulatedRouter::handle_tcp(const net::ParsedPacket& probe,
                                                      std::span<const std::uint8_t> raw) {
    (void)raw;
    const auto* segment = probe.tcp();
    if (segment == nullptr) return std::nullopt;

    // Open management port: complete the handshake's first step. This path
    // serves the Nmap/Hershel baselines; LFP itself probes a closed port.
    if (segment->destination_port == kMgmtPort && mgmt_port_open_ && mgmt_reachable_ &&
        segment->flags.syn && !segment->flags.ack) {
        net::TcpSegment syn_ack;
        syn_ack.source_port = kMgmtPort;
        syn_ack.destination_port = segment->source_port;
        syn_ack.sequence = static_cast<std::uint32_t>(rng_.next());
        syn_ack.acknowledgment = segment->sequence + 1;
        syn_ack.flags.syn = true;
        syn_ack.flags.ack = true;
        syn_ack.window = profile_->syn_ack.window;
        syn_ack.options.push_back(
            {net::TcpOptionKind::mss,
             {static_cast<std::uint8_t>(profile_->syn_ack.mss >> 8),
              static_cast<std::uint8_t>(profile_->syn_ack.mss & 0xFF)}});
        if (profile_->syn_ack.sack_permitted) {
            syn_ack.options.push_back({net::TcpOptionKind::sack_permitted, {}});
        }
        if (profile_->syn_ack.timestamps) {
            net::Bytes ts(8, 0);
            ts[3] = static_cast<std::uint8_t>(engine_time_ & 0xFF);
            syn_ack.options.push_back({net::TcpOptionKind::timestamps, std::move(ts)});
        }
        net::IpSendOptions ip;
        ip.source = probe.ip.destination;
        ip.destination = probe.ip.source;
        ip.ttl = ittl_tcp();
        ip.identification = next_ipid(profile_->ipid.tcp_group);
        return net::make_tcp_packet(ip, syn_ack);
    }

    if (!responds_tcp_) return std::nullopt;
    if (segment->flags.rst) return std::nullopt;  // never answer a reset
    if (segment->flags.ack && !profile_->rst_to_ack_probe) return std::nullopt;

    // Closed port → RST (RFC 793). The sequence-number choice for our SYN
    // probe (ack *field* set, ACK *flag* clear) is the LFP feature.
    net::TcpSegment rst;
    rst.source_port = segment->destination_port;
    rst.destination_port = segment->source_port;
    rst.window = 0;
    rst.flags.rst = true;
    if (segment->flags.ack) {
        // ACK probe: reset sequence comes from the incoming ack number.
        rst.sequence = segment->acknowledgment;
    } else {
        rst.flags.ack = true;
        rst.acknowledgment = segment->sequence + (segment->flags.syn ? 1 : 0);
        rst.sequence = profile_->rst_seq_from_ack ? segment->acknowledgment : 0;
    }
    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = ittl_tcp();
    ip.identification = next_ipid(profile_->ipid.tcp_group);
    // Linux-style stacks send RSTs with IPID 0 regardless of counters.
    if (profile_->ipid.tcp == IpidMode::zero) ip.identification = 0;
    return net::make_tcp_packet(ip, rst);
}

std::optional<net::Bytes> SimulatedRouter::handle_udp(const net::ParsedPacket& probe,
                                                      std::span<const std::uint8_t> raw) {
    if (!responds_udp_) return std::nullopt;
    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = ittl_udp();
    ip.identification = next_ipid(profile_->ipid.udp_group);
    return net::make_icmp_error(ip, net::IcmpType::destination_unreachable,
                                net::kIcmpCodePortUnreachable, raw, quote_limit());
}

std::optional<net::Bytes> SimulatedRouter::handle_snmp(const net::ParsedPacket& probe) {
    if (!snmp_enabled_) {
        // SNMP agent absent: fall back to closed-port behaviour. The probe
        // raw bytes are not available here, so rebuild the quote source from
        // the parsed form — only reached when the prober targets port 161 on
        // a non-SNMP router, which the standard campaign does not rely on.
        return std::nullopt;
    }
    const auto* udp = probe.udp();
    auto request = snmp::DiscoveryRequest::parse(udp->payload);
    if (!request) return std::nullopt;

    snmp::DiscoveryResponse response;
    response.message_id = request.value().message_id;
    response.engine_id = engine_id_;
    response.engine_boots = engine_boots_;
    response.engine_time = engine_time_;

    net::UdpDatagram reply;
    reply.source_port = snmp::kSnmpPort;
    reply.destination_port = udp->source_port;
    reply.payload = response.serialize();

    net::IpSendOptions ip;
    ip.source = probe.ip.destination;
    ip.destination = probe.ip.source;
    ip.ttl = ittl_udp();
    ip.identification = next_ipid(profile_->ipid.udp_group);
    return net::make_udp_packet(ip, reply);
}

}  // namespace lfp::stack
