/// \file
/// Census checkpoint manifest: the journal that makes a spilled multi-pass
/// census resumable after `kill -9`.
///
/// The manifest lives next to the spill segments (one file,
/// `census.manifest`) and is rewritten atomically (tmp + rename) at every
/// pass boundary, after the SpillSink tail has been flushed. It records
/// everything a fresh process needs to adopt the on-disk state: the segment
/// set with per-segment record counts, the per-target 2-byte response
/// masks, the pass trajectory so far, and — because simulated transports
/// are stateful — the retry subsets each completed pass probed, so resume
/// can deterministically replay the completed passes' send traffic and
/// rebuild router state before re-running the interrupted pass.
///
/// Crash windows and why they are safe:
///   - killed before the first manifest write: no manifest, the next run
///     starts from scratch (stale segment files are simply overwritten);
///   - killed mid-pass p: the manifest describes boundary p-1; any
///     strict-improvement replaces the dying pass already wrote into the
///     segments are recomputed identically by the resumed pass p (the whole
///     pipeline is deterministic), so partially-written records are
///     overwritten with the same bytes and even a torn in-place write heals;
///   - killed between tmp write and rename: the old manifest stays intact.
///
/// Like the spill segments, the format is a build-private byte dump
/// (host-endian, no cross-version promises) — a crash-resume artefact, not
/// an interchange format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/measurement.hpp"

namespace lfp::core {

/// Everything needed to resume a spilled multi-pass census at its last
/// completed pass boundary.
struct CensusManifest {
    /// Global index of the first target (CensusRunner's index base for the
    /// stream); a mismatch means the manifest belongs to a different run.
    std::uint64_t index_base = 0;
    std::uint64_t target_count = 0;
    /// SpillConfig::segment_records of the writing run — the position →
    /// segment math only holds when the adopting run agrees.
    std::uint64_t segment_records = 0;
    /// Passes fully completed (1 = pass 0 done, retries still pending).
    std::uint32_t completed_passes = 0;
    /// Segment file names (relative to the checkpoint directory, in order)
    /// with their record counts.
    std::vector<std::pair<std::string, std::uint64_t>> segments;
    /// Per-target response masks as of the last completed pass — the
    /// resident index SpillSink keeps in RAM, journaled so resume can
    /// recompute the retry subset without draining every segment.
    std::vector<std::uint16_t> masks;
    std::vector<PassStats> pass_stats;
    /// Retry subsets (global indices) probed by passes 1..completed_passes-1,
    /// in pass order — the replay script for stateful transports.
    std::vector<std::vector<std::uint64_t>> retry_lists;
};

/// The manifest's path inside a checkpoint directory.
[[nodiscard]] std::filesystem::path manifest_path(const std::filesystem::path& directory);

/// Writes the manifest atomically: a concurrent reader (or a crash at any
/// instant) observes either the previous manifest or the new one, never a
/// torn file. Throws std::runtime_error on I/O failure.
void write_manifest(const std::filesystem::path& directory, const CensusManifest& manifest);

/// Reads the manifest back; nullopt when absent, unreadable, or failing
/// structural validation (bad magic, truncation, inconsistent counts) — a
/// fresh census simply starts over in those cases.
[[nodiscard]] std::optional<CensusManifest> read_manifest(
    const std::filesystem::path& directory);

/// Removes the manifest (end of a successful census). Missing file is fine.
void remove_manifest(const std::filesystem::path& directory);

}  // namespace lfp::core
