#include "core/signature_db.hpp"

#include <cassert>

namespace lfp::core {

stack::Vendor SignatureStats::dominant_vendor() const {
    stack::Vendor best = stack::Vendor::unknown;
    std::size_t best_count = 0;
    for (const auto& [vendor, count] : vendor_counts) {
        if (count > best_count) {
            best = vendor;
            best_count = count;
        }
    }
    return best;
}

double SignatureStats::dominant_share() const {
    if (total == 0) return 0.0;
    std::size_t best_count = 0;
    for (const auto& [vendor, count] : vendor_counts) {
        best_count = std::max(best_count, count);
    }
    return static_cast<double>(best_count) / static_cast<double>(total);
}

void SignatureDatabase::add_labeled(const Signature& signature, stack::Vendor vendor,
                                    std::size_t count) {
    assert(!finalized_);
    if (signature.is_empty() || vendor == stack::Vendor::unknown || count == 0) return;
    SignatureStats& stats = raw_[signature];
    stats.vendor_counts[vendor] += count;
    stats.total += count;
}

void SignatureDatabase::retract_labeled(const Signature& signature, stack::Vendor vendor,
                                        std::size_t count) {
    assert(!finalized_);
    if (signature.is_empty() || vendor == stack::Vendor::unknown || count == 0) return;
    auto it = raw_.find(signature);
    assert(it != raw_.end() && "retracting a signature never absorbed");
    if (it == raw_.end()) return;
    SignatureStats& stats = it->second;
    auto vendor_it = stats.vendor_counts.find(vendor);
    assert(vendor_it != stats.vendor_counts.end() && vendor_it->second >= count &&
           stats.total >= count && "retracting more than was absorbed");
    if (vendor_it == stats.vendor_counts.end() || vendor_it->second < count ||
        stats.total < count) {
        return;
    }
    vendor_it->second -= count;
    stats.total -= count;
    if (vendor_it->second == 0) stats.vendor_counts.erase(vendor_it);
    if (stats.total == 0) raw_.erase(it);
}

void SignatureDatabase::absorb(const SignatureDatabase& other) {
    assert(!finalized_);
    for (const auto& [signature, stats] : other.raw_) {
        SignatureStats& mine = raw_[signature];
        for (const auto& [vendor, count] : stats.vendor_counts) {
            mine.vendor_counts[vendor] += count;
        }
        mine.total += stats.total;
    }
}

void SignatureDatabase::finalize() {
    admitted_.clear();
    for (const auto& [signature, stats] : raw_) {
        if (stats.total >= config_.min_occurrences) admitted_.emplace(signature, stats);
    }
    finalized_ = true;
}

const SignatureStats* SignatureDatabase::lookup(const Signature& signature) const {
    auto it = admitted_.find(signature);
    return it == admitted_.end() ? nullptr : &it->second;
}

SignatureDatabase::Counts SignatureDatabase::full_signature_counts() const {
    Counts counts;
    for (const auto& [signature, stats] : admitted_) {
        if (!signature.is_full()) continue;
        if (stats.unique()) {
            ++counts.unique;
        } else {
            ++counts.non_unique;
        }
    }
    return counts;
}

SignatureDatabase::Counts SignatureDatabase::partial_signature_counts(std::uint8_t mask) const {
    Counts counts;
    for (const auto& [signature, stats] : admitted_) {
        if (signature.protocol_mask() != mask) continue;
        if (stats.unique()) {
            ++counts.unique;
        } else {
            ++counts.non_unique;
        }
    }
    return counts;
}

SignatureDatabase::Counts SignatureDatabase::counts_at_threshold(
    std::size_t min_occurrences) const {
    Counts counts;
    for (const auto& [signature, stats] : raw_) {
        if (stats.total < min_occurrences || !signature.is_full()) continue;
        if (stats.unique()) {
            ++counts.unique;
        } else {
            ++counts.non_unique;
        }
    }
    return counts;
}

}  // namespace lfp::core
