#include "core/record_sink.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <stdexcept>

namespace lfp::core {

namespace {

// Segment file layout: a 16-byte header followed by raw CompactRecords.
//
//   bytes 0..7   magic "LFPSPILL"
//   bytes 8..9   format version (little-endian u16)
//   bytes 10..11 record size in bytes (little-endian u16) — readers reject
//                a mismatch instead of misparsing records written by a
//                different build
//   bytes 12..15 reserved (zero)
//
// Records are written by memcpy of the trivially-copyable CompactRecord, so
// segments are private to one build (host endianness, host padding) — they
// are working storage for a single census run, not an interchange format.
constexpr char kSpillMagic[8] = {'L', 'F', 'P', 'S', 'P', 'I', 'L', 'L'};
constexpr std::uint16_t kSpillVersion = 1;
constexpr std::size_t kSpillHeaderBytes = 16;
constexpr std::size_t kRecordBytes = sizeof(CompactRecord);

std::array<char, kSpillHeaderBytes> spill_header() {
    std::array<char, kSpillHeaderBytes> header{};
    std::memcpy(header.data(), kSpillMagic, sizeof(kSpillMagic));
    const std::uint16_t version = kSpillVersion;
    const std::uint16_t record_size = static_cast<std::uint16_t>(kRecordBytes);
    std::memcpy(header.data() + 8, &version, sizeof(version));
    std::memcpy(header.data() + 10, &record_size, sizeof(record_size));
    return header;
}

std::filesystem::path resolve_spill_directory(const SpillConfig& config) {
    if (!config.directory.empty()) return config.directory;
    if (const char* env = std::getenv("LFP_SPILL_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return std::filesystem::temp_directory_path();
}

/// Process-wide sequence so several sinks (tests, nested passes) can share
/// one directory without clobbering each other's segments.
std::uint64_t next_spill_sequence() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

[[noreturn]] void spill_error(const std::string& what, const std::filesystem::path& path) {
    throw std::runtime_error("spill sink: " + what + ": " + path.string());
}

}  // namespace

SpillSink::SpillSink(SpillConfig config, std::uint64_t index_base)
    : config_(config),
      directory_(resolve_spill_directory(config)),
      index_base_(index_base),
      sequence_(next_spill_sequence()) {
    std::filesystem::create_directories(directory_);
    tail_.reserve(config_.segment_records);
}

SpillSink::~SpillSink() {
    // Close handles before unlinking (portability; POSIX wouldn't care).
    for (auto& segment : segments_) segment.stream.reset();
    // Adopted segments stay regardless of keep_segments: they belong to an
    // interrupted census, and a resume that failed partway must remain
    // resumable. The runner removes them explicitly after a clean finish.
    if (!config_.keep_segments && !adopted_) {
        std::error_code ec;  // best-effort cleanup; never throw from a dtor
        for (auto& segment : segments_) std::filesystem::remove(segment.path, ec);
    }
}

void SpillSink::accept(std::uint64_t global_index, TargetRecord&& record) {
    append(global_index, CompactRecord::from_record(record));
}

void SpillSink::append(std::uint64_t global_index, const CompactRecord& record) {
    assert(global_index == index_base_ + masks_.size() &&
           "spill records must arrive in gap-free stream order");
    assert((segments_.empty() || segments_.back().records == config_.segment_records) &&
           "append after flush() would break the position -> segment math");
    (void)global_index;
    tail_.push_back(record);
    masks_.push_back(record.response_mask);
    if (tail_.size() >= config_.segment_records) flush_tail();
}

void SpillSink::flush() { flush_tail(); }

std::vector<SpillSink::SegmentInfo> SpillSink::segment_manifest() const {
    std::vector<SegmentInfo> manifest;
    manifest.reserve(segments_.size());
    for (const Segment& segment : segments_) {
        manifest.push_back({segment.path, segment.records});
    }
    return manifest;
}

void SpillSink::adopt(std::vector<SegmentInfo> segments, std::vector<std::uint16_t> masks) {
    if (!segments_.empty() || !tail_.empty() || !masks_.empty()) {
        throw std::runtime_error("spill sink: adopt() requires an empty sink");
    }
    std::size_t covered = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i + 1 < segments.size() && segments[i].records != config_.segment_records) {
            spill_error("adopted non-final segment is not full", segments[i].path);
        }
        if (!std::filesystem::exists(segments[i].path)) {
            spill_error("adopted segment is missing", segments[i].path);
        }
        covered += segments[i].records;
    }
    if (covered != masks.size()) {
        throw std::runtime_error("spill sink: adopted segments cover " +
                                 std::to_string(covered) + " records for " +
                                 std::to_string(masks.size()) + " masks");
    }
    segments_.reserve(segments.size());
    for (SegmentInfo& info : segments) {
        Segment segment;
        segment.path = std::move(info.path);
        segment.records = info.records;
        segments_.push_back(std::move(segment));
    }
    masks_ = std::move(masks);
    adopted_ = true;
}

void SpillSink::flush_tail() {
    if (tail_.empty()) return;
    Segment segment;
    segment.path = directory_ / ("lfp-spill-" + std::to_string(sequence_) + "-" +
                                 std::to_string(segments_.size()) + ".seg");
    segment.records = tail_.size();
    {
        std::ofstream out(segment.path, std::ios::binary | std::ios::trunc);
        if (!out) spill_error("cannot create segment", segment.path);
        const auto header = spill_header();
        out.write(header.data(), static_cast<std::streamsize>(header.size()));
        out.write(reinterpret_cast<const char*>(tail_.data()),
                  static_cast<std::streamsize>(tail_.size() * kRecordBytes));
        if (!out) spill_error("short write to segment", segment.path);
    }
    segments_.push_back(std::move(segment));
    tail_.clear();
}

std::fstream& SpillSink::segment_stream(Segment& segment) {
    if (segment.stream == nullptr) {
        segment.stream = std::make_unique<std::fstream>(
            segment.path, std::ios::binary | std::ios::in | std::ios::out);
        if (!*segment.stream) spill_error("cannot reopen segment", segment.path);
    }
    return *segment.stream;
}

void SpillSink::replace(std::uint64_t global_index, const CompactRecord& record) {
    const std::size_t position = static_cast<std::size_t>(global_index - index_base_);
    assert(position < masks_.size());
    const std::size_t flushed = segments_.size() * config_.segment_records;
    if (position >= flushed) {
        tail_[position - flushed] = record;
    } else {
        Segment& segment = segments_[position / config_.segment_records];
        const std::size_t offset = position % config_.segment_records;
        std::fstream& stream = segment_stream(segment);
        stream.seekp(static_cast<std::streamoff>(kSpillHeaderBytes + offset * kRecordBytes));
        stream.write(reinterpret_cast<const char*>(&record),
                     static_cast<std::streamsize>(kRecordBytes));
        if (!stream) spill_error("positioned write failed", segment.path);
        stream.flush();
    }
    masks_[position] = record.response_mask;
}

CompactRecord SpillSink::read(std::uint64_t global_index) {
    const std::size_t position = static_cast<std::size_t>(global_index - index_base_);
    assert(position < masks_.size());
    const std::size_t flushed = segments_.size() * config_.segment_records;
    if (position >= flushed) return tail_[position - flushed];
    Segment& segment = segments_[position / config_.segment_records];
    const std::size_t offset = position % config_.segment_records;
    std::fstream& stream = segment_stream(segment);
    stream.seekg(static_cast<std::streamoff>(kSpillHeaderBytes + offset * kRecordBytes));
    CompactRecord record;
    stream.read(reinterpret_cast<char*>(&record), static_cast<std::streamsize>(kRecordBytes));
    if (!stream) spill_error("positioned read failed", segment.path);
    return record;
}

void SpillSink::drain(RecordSink& sink) {
    std::uint64_t global_index = index_base_;
    std::vector<CompactRecord> buffer;
    for (auto& segment : segments_) {
        // Re-read sequentially through a fresh streaming pass rather than
        // the positioned-I/O handle: drain is the bulk path, and one
        // contiguous read per segment is what the fixed-width layout buys.
        buffer.resize(segment.records);
        std::fstream& stream = segment_stream(segment);
        stream.seekg(static_cast<std::streamoff>(kSpillHeaderBytes));
        stream.read(reinterpret_cast<char*>(buffer.data()),
                    static_cast<std::streamsize>(segment.records * kRecordBytes));
        if (!stream) spill_error("segment re-read failed", segment.path);
        for (const CompactRecord& record : buffer) {
            sink.accept(global_index, record.to_record());
            ++global_index;
        }
    }
    for (const CompactRecord& record : tail_) {
        sink.accept(global_index, record.to_record());
        ++global_index;
    }
}

std::vector<CompactRecord> SpillSink::read_segment_file(const std::filesystem::path& path) {
    auto result = try_read_segment_file(path);
    if (!result.has_value()) {
        throw std::runtime_error("spill sink: " + result.error().message);
    }
    return std::move(result).value();
}

util::Result<std::vector<CompactRecord>> SpillSink::try_read_segment_file(
    const std::filesystem::path& path) {
    const auto fail = [&path](const std::string& what) {
        return util::make_error(what + ": " + path.string());
    };
    std::ifstream in(path, std::ios::binary);
    if (!in) return fail("cannot open segment");
    std::array<char, kSpillHeaderBytes> header{};
    in.read(header.data(), static_cast<std::streamsize>(header.size()));
    if (in.gcount() != static_cast<std::streamsize>(header.size()) ||
        std::memcmp(header.data(), kSpillMagic, sizeof(kSpillMagic)) != 0) {
        return fail("bad segment magic");
    }
    std::uint16_t version = 0;
    std::uint16_t record_size = 0;
    std::memcpy(&version, header.data() + 8, sizeof(version));
    std::memcpy(&record_size, header.data() + 10, sizeof(record_size));
    if (version != kSpillVersion) return fail("unsupported segment version");
    if (record_size != kRecordBytes) return fail("segment record size mismatch");

    std::vector<CompactRecord> records;
    CompactRecord record;
    for (;;) {
        in.read(reinterpret_cast<char*>(&record), static_cast<std::streamsize>(kRecordBytes));
        if (in.gcount() != static_cast<std::streamsize>(kRecordBytes)) {
            // A short trailing read is a crash-truncated tail: keep every
            // complete record, drop the fragment.
            break;
        }
        records.push_back(record);
    }
    return records;
}

SpillSink::SegmentSalvage SpillSink::read_segment_files(
    std::span<const std::filesystem::path> paths) {
    SegmentSalvage salvage;
    for (const std::filesystem::path& path : paths) {
        auto result = try_read_segment_file(path);
        if (result.has_value()) {
            auto& records = result.value();
            salvage.records.insert(salvage.records.end(),
                                   std::make_move_iterator(records.begin()),
                                   std::make_move_iterator(records.end()));
        } else {
            salvage.skipped.emplace_back(path, result.error().message);
        }
    }
    return salvage;
}

}  // namespace lfp::core
