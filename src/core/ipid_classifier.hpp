// IPID sequence classification (paper §3.4.1, §3.6): classifies the three
// response IPIDs per protocol into incremental / random / static / zero /
// duplicate using the empirical max-step threshold of 1300, with 16-bit
// wraparound treated as incremental. Also detects counters shared across
// protocols by testing the merged cross-protocol sequence in send order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace lfp::core {

enum class IpidClass : std::uint8_t {
    incremental,
    random,
    static_value,
    zero,
    duplicate,
    unknown,  ///< no (or too few) responses
};

[[nodiscard]] std::string_view to_string(IpidClass c) noexcept;
/// Single-character code used in canonical signature strings
/// ('i','r','s','z','d','-').
[[nodiscard]] char short_code(IpidClass c) noexcept;

struct IpidClassifierConfig {
    /// Max step between consecutive IPIDs still considered sequential
    /// (paper §3.6, Figure 2 knee).
    std::uint16_t threshold = 1300;
};

/// Wraparound-aware forward step from `a` to `b` in a 16-bit counter.
[[nodiscard]] constexpr std::uint16_t ipid_step(std::uint16_t a, std::uint16_t b) noexcept {
    return static_cast<std::uint16_t>(b - a);
}

/// Maximum consecutive step of a sequence (used for Figure 2); nullopt when
/// fewer than two samples.
[[nodiscard]] std::optional<std::uint16_t> max_ipid_step(std::span<const std::uint16_t> ids);

/// Classifies one protocol's response IPID sequence.
[[nodiscard]] IpidClass classify_ipid_sequence(std::span<const std::uint16_t> ids,
                                               const IpidClassifierConfig& config = {});

/// An (order, value) observation for shared-counter detection.
struct IpidObservation {
    std::uint32_t send_index = 0;
    std::uint16_t ipid = 0;
};

/// True if the merged observations (sorted by send order) advance like one
/// sequential counter: every step positive-and-small under wraparound.
[[nodiscard]] bool is_shared_counter(std::vector<IpidObservation> observations,
                                     const IpidClassifierConfig& config = {});

}  // namespace lfp::core
