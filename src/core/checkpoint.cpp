#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace lfp::core {
namespace {

constexpr char kManifestMagic[8] = {'L', 'F', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr char kManifestName[] = "census.manifest";

void put_u64(std::ostream& out, std::uint64_t value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_u32(std::ostream& out, std::uint32_t value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool get_u64(std::istream& in, std::uint64_t& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return in.gcount() == sizeof(value);
}

bool get_u32(std::istream& in, std::uint32_t& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return in.gcount() == sizeof(value);
}

// Structural sanity ceilings: a corrupt length field must not turn into a
// multi-gigabyte allocation before the truncation check catches it.
constexpr std::uint64_t kMaxNameLength = 4096;
constexpr std::uint64_t kMaxListLength = std::uint64_t{1} << 40;

}  // namespace

std::filesystem::path manifest_path(const std::filesystem::path& directory) {
    return directory / kManifestName;
}

void write_manifest(const std::filesystem::path& directory, const CensusManifest& manifest) {
    std::filesystem::create_directories(directory);
    const std::filesystem::path final_path = manifest_path(directory);
    const std::filesystem::path tmp_path = final_path.string() + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("checkpoint: cannot create " + tmp_path.string());
        }
        out.write(kManifestMagic, sizeof(kManifestMagic));
        put_u64(out, manifest.index_base);
        put_u64(out, manifest.target_count);
        put_u64(out, manifest.segment_records);
        put_u32(out, manifest.completed_passes);
        put_u32(out, static_cast<std::uint32_t>(manifest.segments.size()));
        for (const auto& [name, records] : manifest.segments) {
            put_u64(out, records);
            put_u32(out, static_cast<std::uint32_t>(name.size()));
            out.write(name.data(), static_cast<std::streamsize>(name.size()));
        }
        put_u64(out, manifest.masks.size());
        out.write(reinterpret_cast<const char*>(manifest.masks.data()),
                  static_cast<std::streamsize>(manifest.masks.size() * sizeof(std::uint16_t)));
        put_u32(out, static_cast<std::uint32_t>(manifest.pass_stats.size()));
        for (const PassStats& stats : manifest.pass_stats) {
            put_u64(out, stats.probed);
            put_u64(out, stats.upgraded);
            put_u64(out, stats.incomplete);
        }
        put_u32(out, static_cast<std::uint32_t>(manifest.retry_lists.size()));
        for (const auto& list : manifest.retry_lists) {
            put_u64(out, list.size());
            out.write(reinterpret_cast<const char*>(list.data()),
                      static_cast<std::streamsize>(list.size() * sizeof(std::uint64_t)));
        }
        out.flush();
        if (!out) {
            throw std::runtime_error("checkpoint: short write to " + tmp_path.string());
        }
    }
    // rename() within one directory is atomic on POSIX: readers (and crash
    // recovery) see the old manifest or the new one, never a prefix.
    std::filesystem::rename(tmp_path, final_path);
}

std::optional<CensusManifest> read_manifest(const std::filesystem::path& directory) {
    std::ifstream in(manifest_path(directory), std::ios::binary);
    if (!in) return std::nullopt;

    char magic[sizeof(kManifestMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
        return std::nullopt;
    }

    CensusManifest manifest;
    std::uint32_t segment_count = 0;
    if (!get_u64(in, manifest.index_base) || !get_u64(in, manifest.target_count) ||
        !get_u64(in, manifest.segment_records)) {
        return std::nullopt;
    }
    if (!get_u32(in, manifest.completed_passes) || !get_u32(in, segment_count)) {
        return std::nullopt;
    }
    manifest.segments.reserve(segment_count);
    for (std::uint32_t i = 0; i < segment_count; ++i) {
        std::uint64_t records = 0;
        std::uint32_t name_length = 0;
        if (!get_u64(in, records) || !get_u32(in, name_length) ||
            name_length > kMaxNameLength) {
            return std::nullopt;
        }
        std::string name(name_length, '\0');
        in.read(name.data(), name_length);
        if (in.gcount() != static_cast<std::streamsize>(name_length)) return std::nullopt;
        manifest.segments.emplace_back(std::move(name), records);
    }

    std::uint64_t mask_count = 0;
    if (!get_u64(in, mask_count) || mask_count > kMaxListLength ||
        mask_count != manifest.target_count) {
        return std::nullopt;
    }
    manifest.masks.resize(mask_count);
    in.read(reinterpret_cast<char*>(manifest.masks.data()),
            static_cast<std::streamsize>(mask_count * sizeof(std::uint16_t)));
    if (in.gcount() != static_cast<std::streamsize>(mask_count * sizeof(std::uint16_t))) {
        return std::nullopt;
    }

    std::uint32_t stats_count = 0;
    if (!get_u32(in, stats_count) || stats_count != manifest.completed_passes) {
        return std::nullopt;
    }
    manifest.pass_stats.resize(stats_count);
    for (PassStats& stats : manifest.pass_stats) {
        if (!get_u64(in, stats.probed) || !get_u64(in, stats.upgraded) ||
            !get_u64(in, stats.incomplete)) {
            return std::nullopt;
        }
    }

    std::uint32_t list_count = 0;
    if (!get_u32(in, list_count) || list_count + 1 != manifest.completed_passes) {
        return std::nullopt;
    }
    manifest.retry_lists.resize(list_count);
    for (auto& list : manifest.retry_lists) {
        std::uint64_t length = 0;
        if (!get_u64(in, length) || length > kMaxListLength) return std::nullopt;
        list.resize(length);
        in.read(reinterpret_cast<char*>(list.data()),
                static_cast<std::streamsize>(length * sizeof(std::uint64_t)));
        if (in.gcount() != static_cast<std::streamsize>(length * sizeof(std::uint64_t))) {
            return std::nullopt;
        }
    }

    // Cross-field consistency: segments must cover exactly the targets.
    std::uint64_t covered = 0;
    for (const auto& [name, records] : manifest.segments) covered += records;
    if (covered != manifest.target_count || manifest.completed_passes == 0) {
        return std::nullopt;
    }
    return manifest;
}

void remove_manifest(const std::filesystem::path& directory) {
    std::error_code ec;  // best-effort: a missing manifest is already removed
    std::filesystem::remove(manifest_path(directory), ec);
}

}  // namespace lfp::core
