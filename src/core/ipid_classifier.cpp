#include "core/ipid_classifier.hpp"

#include <algorithm>

namespace lfp::core {

std::string_view to_string(IpidClass c) noexcept {
    switch (c) {
        case IpidClass::incremental: return "incremental";
        case IpidClass::random: return "random";
        case IpidClass::static_value: return "static";
        case IpidClass::zero: return "zero";
        case IpidClass::duplicate: return "duplicate";
        case IpidClass::unknown: return "unknown";
    }
    return "?";
}

char short_code(IpidClass c) noexcept {
    switch (c) {
        case IpidClass::incremental: return 'i';
        case IpidClass::random: return 'r';
        case IpidClass::static_value: return 's';
        case IpidClass::zero: return 'z';
        case IpidClass::duplicate: return 'd';
        case IpidClass::unknown: return '-';
    }
    return '?';
}

std::optional<std::uint16_t> max_ipid_step(std::span<const std::uint16_t> ids) {
    if (ids.size() < 2) return std::nullopt;
    std::uint16_t max_step = 0;
    for (std::size_t i = 1; i < ids.size(); ++i) {
        max_step = std::max(max_step, ipid_step(ids[i - 1], ids[i]));
    }
    return max_step;
}

IpidClass classify_ipid_sequence(std::span<const std::uint16_t> ids,
                                 const IpidClassifierConfig& config) {
    if (ids.size() < 2) return IpidClass::unknown;

    const bool all_equal = std::all_of(ids.begin(), ids.end(),
                                       [&ids](std::uint16_t v) { return v == ids.front(); });
    if (all_equal) {
        return ids.front() == 0 ? IpidClass::zero : IpidClass::static_value;
    }

    // "Duplicate": exactly two responses share a value (paper §3.4.1).
    for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = i + 1; j < ids.size(); ++j) {
            if (ids[i] == ids[j]) return IpidClass::duplicate;
        }
    }

    const auto step = max_ipid_step(ids);
    return (step && *step <= config.threshold) ? IpidClass::incremental : IpidClass::random;
}

bool is_shared_counter(std::vector<IpidObservation> observations,
                       const IpidClassifierConfig& config) {
    if (observations.size() < 2) return false;
    std::sort(observations.begin(), observations.end(),
              [](const IpidObservation& a, const IpidObservation& b) {
                  return a.send_index < b.send_index;
              });
    for (std::size_t i = 1; i < observations.size(); ++i) {
        const std::uint16_t step = ipid_step(observations[i - 1].ipid, observations[i].ipid);
        // A shared counter strictly advances (two protocols never see the
        // same value) and advances slowly.
        if (step == 0 || step > config.threshold) return false;
    }
    return true;
}

}  // namespace lfp::core
