// The LFP classifier (paper §3.5, §7.1): matches a target's signature
// against the database. Full unique signatures are tried first, then partial
// unique signatures; non-unique matches are reported but — following the
// paper's conservative headline methodology — carry no vendor unless
// majority mode is requested (Appendix B).
#pragma once

#include <optional>

#include "core/signature_db.hpp"

namespace lfp::core {

enum class MatchKind : std::uint8_t {
    unique_full,     ///< full signature, single vendor
    unique_partial,  ///< partial signature, single vendor
    non_unique,      ///< matched, but multiple vendors share the signature
    none,            ///< no admitted signature matches
};

[[nodiscard]] std::string_view to_string(MatchKind kind) noexcept;

struct Classification {
    std::optional<stack::Vendor> vendor;
    MatchKind kind = MatchKind::none;
    /// Label share of the winning vendor within the matched signature
    /// (1.0 for unique matches).
    double confidence = 0.0;

    [[nodiscard]] bool identified() const noexcept { return vendor.has_value(); }

    friend bool operator==(const Classification&, const Classification&) = default;
};

class LfpClassifier {
  public:
    struct Options {
        /// Accept partial unique signatures (paper: +≈15% coverage).
        bool use_partial = true;
        /// Assign non-unique signatures to their dominant vendor
        /// (Appendix B precision/recall mode). Off for headline results.
        bool majority_mode = false;
    };

    explicit LfpClassifier(const SignatureDatabase& database) : database_(&database) {}
    LfpClassifier(const SignatureDatabase& database, Options options)
        : database_(&database), options_(options) {}

    [[nodiscard]] Classification classify(const FeatureVector& features) const;
    [[nodiscard]] Classification classify(const Signature& signature) const;

    [[nodiscard]] const Options& options() const noexcept { return options_; }

  private:
    const SignatureDatabase* database_;
    Options options_;
};

}  // namespace lfp::core
