#include "core/feature.hpp"

#include <vector>

namespace lfp::core {

namespace {

using probe::kProtocolCount;
using probe::kRoundsPerProtocol;
using probe::ProtoIndex;

struct ProtocolView {
    bool present = false;
    std::vector<std::uint16_t> ipids;            // response IPIDs in round order
    std::vector<IpidObservation> observations;   // with global send order
    std::uint8_t first_ttl = 0;
    std::uint16_t first_size = 0;
};

ProtocolView view_protocol(const probe::TargetProbeResult& result, ProtoIndex protocol,
                           const FeatureExtractorConfig& config) {
    ProtocolView view;
    const auto& row = result.probes[static_cast<std::size_t>(protocol)];
    for (const auto& exchange : row) {
        if (!exchange.responded()) continue;
        auto parsed = net::parse_packet(*exchange.response);
        if (!parsed) continue;
        const net::Ipv4Header& ip = parsed.value().ip;
        view.ipids.push_back(ip.identification);
        view.observations.push_back({exchange.send_index, ip.identification});
        if (view.first_size == 0) {
            view.first_ttl = ip.ttl;
            view.first_size = ip.total_length;
        }
    }
    view.present = view.ipids.size() >= config.min_responses;
    return view;
}

TriState detect_icmp_echo(const probe::TargetProbeResult& result) {
    const auto& row = result.probes[static_cast<std::size_t>(ProtoIndex::icmp)];
    std::size_t responses = 0;
    bool all_echoed = true;
    for (const auto& exchange : row) {
        if (!exchange.responded()) continue;
        auto parsed = net::parse_packet(*exchange.response);
        if (!parsed) continue;
        ++responses;
        if (parsed.value().ip.identification != exchange.request_ipid) all_echoed = false;
    }
    if (responses == 0) return TriState::unknown;
    return all_echoed ? TriState::yes : TriState::no;
}

/// Shared-counter flag over a set of protocol views: defined only when all
/// participating protocols are present and incremental.
TriState shared_flag(std::initializer_list<const ProtocolView*> views,
                     std::initializer_list<IpidClass> classes,
                     const FeatureExtractorConfig& config) {
    for (const auto* view : views) {
        if (!view->present) return TriState::unknown;
    }
    for (IpidClass c : classes) {
        if (c != IpidClass::incremental) return TriState::no;
    }
    std::vector<IpidObservation> merged;
    for (const auto* view : views) {
        merged.insert(merged.end(), view->observations.begin(), view->observations.end());
    }
    return is_shared_counter(std::move(merged), config.ipid) ? TriState::yes : TriState::no;
}

TriState rst_seq_feature(const probe::TargetProbeResult& result) {
    // The SYN probe is round 2 of the TCP row (paper §3.3).
    const auto& exchange =
        result.probes[static_cast<std::size_t>(ProtoIndex::tcp)][kRoundsPerProtocol - 1];
    if (!exchange.responded()) return TriState::unknown;
    auto parsed = net::parse_packet(*exchange.response);
    if (!parsed) return TriState::unknown;
    const auto* tcp = parsed.value().tcp();
    if (tcp == nullptr || !tcp->flags.rst) return TriState::unknown;
    return tcp->sequence != 0 ? TriState::yes : TriState::no;
}

}  // namespace

std::string_view to_string(TriState t) noexcept {
    switch (t) {
        case TriState::no: return "False";
        case TriState::yes: return "True";
        case TriState::unknown: return "-";
    }
    return "?";
}

std::uint8_t infer_initial_ttl(std::uint8_t observed) noexcept {
    if (observed == 0) return 0;
    if (observed <= 32) return 32;
    if (observed <= 64) return 64;
    if (observed <= 128) return 128;
    return 255;
}

FeatureVector extract_features(const probe::TargetProbeResult& result,
                               const FeatureExtractorConfig& config) {
    FeatureVector features;

    const ProtocolView icmp = view_protocol(result, ProtoIndex::icmp, config);
    const ProtocolView tcp = view_protocol(result, ProtoIndex::tcp, config);
    const ProtocolView udp = view_protocol(result, ProtoIndex::udp, config);

    if (icmp.present) features.protocol_mask |= 0b001;
    if (tcp.present) features.protocol_mask |= 0b010;
    if (udp.present) features.protocol_mask |= 0b100;

    if (icmp.present) {
        features.icmp_ipid_echo = detect_icmp_echo(result);
        features.ipid_icmp = classify_ipid_sequence(icmp.ipids, config.ipid);
        features.ittl_icmp = infer_initial_ttl(icmp.first_ttl);
        features.size_icmp = icmp.first_size;
    }
    if (tcp.present) {
        features.ipid_tcp = classify_ipid_sequence(tcp.ipids, config.ipid);
        features.ittl_tcp = infer_initial_ttl(tcp.first_ttl);
        features.size_tcp = tcp.first_size;
        features.tcp_rst_seq_nonzero = rst_seq_feature(result);
    }
    if (udp.present) {
        features.ipid_udp = classify_ipid_sequence(udp.ipids, config.ipid);
        features.ittl_udp = infer_initial_ttl(udp.first_ttl);
        features.size_udp = udp.first_size;
    }

    features.shared_all =
        shared_flag({&icmp, &tcp, &udp},
                    {features.ipid_icmp, features.ipid_tcp, features.ipid_udp}, config);
    features.shared_tcp_icmp =
        shared_flag({&icmp, &tcp}, {features.ipid_icmp, features.ipid_tcp}, config);
    features.shared_udp_icmp =
        shared_flag({&icmp, &udp}, {features.ipid_icmp, features.ipid_udp}, config);
    features.shared_tcp_udp =
        shared_flag({&tcp, &udp}, {features.ipid_tcp, features.ipid_udp}, config);

    return features;
}

}  // namespace lfp::core
