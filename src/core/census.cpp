#include "core/census.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "core/checkpoint.hpp"
#include "core/labeler.hpp"
#include "probe/campaign.hpp"
#include "util/alloc_trace.hpp"
#include "util/arena.hpp"
#include "util/spsc_ring.hpp"

namespace lfp::core {

namespace {

[[noreturn]] void plan_error(const std::string& what) {
    throw std::invalid_argument("CensusPlan: " + what);
}

/// Validates before the pool (and its threads) exists.
const CensusPlan& validated(const CensusPlan& plan) {
    plan.validate();
    return plan;
}

/// Completed probe results cross from a lane thread to the streaming
/// consumer over a ring this deep; a lane stalls (backpressure) only when
/// the consumer falls this far behind it.
constexpr std::size_t kLaneRingDepth = 256;

/// Sleep phase of the spin-then-sleep backoff on either side of a lane
/// ring (producer finding it full, consumer finding it empty).
constexpr std::chrono::microseconds kRingBackoff{50};

/// One vantage lane's streaming state: the producing campaign thread and
/// the ring its in-order completions travel through.
struct LaneStream {
    explicit LaneStream() : ring(kLaneRingDepth) {}

    util::SpscRing<probe::TargetProbeResult> ring;
    std::atomic<bool> done{false};
    /// Raised by the watchdog when the consumer declares this lane dead: the
    /// campaign's cancel seam, so a lane wedged with nothing completing
    /// still exits promptly instead of waiting out its target list.
    std::atomic<bool> cancel{false};
    std::exception_ptr error;  ///< synchronised by thread join
};

/// RecordSink that drops everything — the destination of checkpoint-resume
/// replay traffic, which exists to advance stateful transports, not to
/// produce records.
class DiscardSink final : public RecordSink {
  public:
    void accept(std::uint64_t, TargetRecord&&) override {}
};

/// Pass p's ID lanes: pure functions of (pass, global index) — see
/// CensusPlan::kPassIpidStride.
probe::Campaign::Config shifted_config(const probe::Campaign::Config& base,
                                       std::size_t pass) {
    probe::Campaign::Config shifted = base;
    shifted.ipid_base =
        static_cast<std::uint16_t>(shifted.ipid_base + pass * CensusPlan::kPassIpidStride);
    shifted.snmp_message_id_base +=
        static_cast<std::uint32_t>(pass) * CensusPlan::kPassMsgIdStride;
    return shifted;
}

/// Plan knob first, LFP_WATCHDOG_MS as the fallback when the plan leaves it
/// unset. Unparseable env values throw, like WorldConfig::from_env.
std::chrono::milliseconds resolved_watchdog(const CensusPlan& plan) {
    if (plan.watchdog.count() != 0) return plan.watchdog;
    const char* env = std::getenv("LFP_WATCHDOG_MS");
    if (env == nullptr || *env == '\0') return std::chrono::milliseconds{0};
    std::uint64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(env, env + std::string_view(env).size(), parsed);
    if (ec != std::errc{} || *ptr != '\0') {
        throw std::invalid_argument(std::string("unparseable LFP_WATCHDOG_MS='") + env +
                                    "'");
    }
    return std::chrono::milliseconds{parsed};
}

/// Plan knob first, LFP_CHECKPOINT_DIR as the fallback.
std::string resolved_checkpoint_dir(const CensusPlan& plan) {
    if (!plan.checkpoint_dir.empty()) return plan.checkpoint_dir;
    if (const char* env = std::getenv("LFP_CHECKPOINT_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return {};
}

/// Assembles one TargetRecord from a completed probe exchange (steps 1-2
/// glue shared by the streaming consumer and assemble_measurement).
void assemble_record(TargetRecord& record, probe::TargetProbeResult&& probed,
                     const FeatureExtractorConfig& extractor) {
    record.probes = std::move(probed);
    record.features = extract_features(record.probes, extractor);
    record.signature = Signature::from_features(record.features);
    record.snmp_vendor = snmp_vendor_label(record.probes);
}

/// The multi-pass merge rule: a retry replaces the incumbent only when it
/// is >= on *every* evidence axis — each protocol's answered rounds and
/// the SNMP discovery answer — and strictly better on at least one. The
/// axes are deliberately not traded against each other: a retry that
/// gained a TCP round but lost an ICMP round (or the SNMP answer) would
/// erase evidence the census already holds — a weaker feature row, a
/// dropped ground-truth vendor label — so incomparable outcomes keep the
/// incumbent. A retry can never degrade the census on any dimension, and
/// equal evidence keeps the earliest pass (stable provenance). Note a
/// fully-answered retry dominates every incumbent, so the rule never
/// blocks a partial-to-full conversion — it only refuses sideways trades.
bool merge_improves(const TargetRecord& candidate, const TargetRecord& incumbent) {
    // Implemented via the 10-bit mask form so the in-memory and spilled
    // merge paths can never disagree: both reduce to the same arithmetic
    // over which exchanges answered.
    return mask_merge_improves(probe_response_mask(candidate.probes),
                               probe_response_mask(incumbent.probes));
}

/// Retry-pass consumer: merges each re-probed record into the pass-0 record
/// vector (global index g lives at position g - index_base), replacing the
/// incumbent wholesale when the retry measured strictly more and stamping
/// the winning pass as provenance.
class MergeSink final : public RecordSink {
  public:
    MergeSink(std::vector<TargetRecord>& records, std::uint64_t index_base,
              std::uint16_t pass)
        : records_(&records), index_base_(index_base), pass_(pass) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        TargetRecord& incumbent = (*records_)[global_index - index_base_];
        if (merge_improves(record, incumbent)) {
            record.pass = pass_;
            incumbent = std::move(record);
            ++upgraded_;
        }
    }

    [[nodiscard]] std::uint64_t upgraded() const noexcept { return upgraded_; }

  private:
    std::vector<TargetRecord>* records_;
    std::uint64_t index_base_;
    std::uint16_t pass_;
    std::uint64_t upgraded_ = 0;
};

/// Retry-pass consumer for the spill path: the incumbent lives on disk, so
/// improvement is decided from the RAM response-mask index alone (the same
/// arithmetic merge_improves uses) and an upgrade is one fixed-width
/// in-place segment write — the incumbent record is never read back.
class SpillMergeSink final : public RecordSink {
  public:
    SpillMergeSink(SpillSink& spill, std::uint16_t pass) : spill_(&spill), pass_(pass) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        const std::uint16_t candidate = probe_response_mask(record.probes);
        if (mask_merge_improves(candidate, spill_->response_mask(global_index))) {
            record.pass = pass_;
            spill_->replace(global_index, CompactRecord::from_record(record));
            ++upgraded_;
        }
    }

    [[nodiscard]] std::uint64_t upgraded() const noexcept { return upgraded_; }

  private:
    SpillSink* spill_;
    std::uint16_t pass_;
    std::uint64_t upgraded_ = 0;
};

}  // namespace

void CensusPlan::validate() const {
    if (vantages.empty()) {
        plan_error("no vantage transports (a census needs at least one vantage)");
    }
    if (vantages.size() > kMaxVantages) {
        plan_error(std::to_string(vantages.size()) + " vantages exceeds the ceiling of " +
                   std::to_string(kMaxVantages));
    }
    for (std::size_t v = 0; v < vantages.size(); ++v) {
        if (vantages[v] == nullptr) {
            plan_error("vantage " + std::to_string(v) + " is a null transport");
        }
    }
    if (campaign.window == 0) {
        plan_error("window must be >= 1 (1 = serial pacing)");
    }
    if (campaign.window > kMaxWindow) {
        plan_error("window " + std::to_string(campaign.window) + " exceeds the ceiling of " +
                   std::to_string(kMaxWindow));
    }
    if (worker_threads > kMaxWorkers) {
        plan_error("worker_threads " + std::to_string(worker_threads) +
                   " exceeds the ceiling of " + std::to_string(kMaxWorkers) +
                   " (0 = one per hardware thread)");
    }
    if (shard_grain == 0) {
        plan_error("shard_grain must be >= 1");
    }
    if (passes == 0) {
        plan_error("passes must be >= 1 (1 = single-pass census)");
    }
    if (passes > kMaxPasses) {
        plan_error("passes " + std::to_string(passes) + " exceeds the ceiling of " +
                   std::to_string(kMaxPasses));
    }
    if (spill && spill_config.segment_records == 0) {
        plan_error("spill_config.segment_records must be >= 1");
    }
    if (watchdog.count() < 0) {
        plan_error("watchdog must be >= 0 (0 = supervision off)");
    }
    if (!(campaign.packets_per_second >= 0)) {  // also rejects NaN
        plan_error("campaign.packets_per_second must be >= 0 (0 = unpaced)");
    }
    if (campaign.packets_per_second > 0 && !(campaign.pacing_burst > 0)) {
        plan_error("campaign.pacing_burst must be > 0 when pacing is on");
    }
    if (!assignment.empty()) {
        if (assignment.size() != targets.size()) {
            plan_error("assignment covers " + std::to_string(assignment.size()) +
                       " targets but the plan has " + std::to_string(targets.size()));
        }
        for (std::size_t i = 0; i < assignment.size(); ++i) {
            if (assignment[i] >= vantages.size()) {
                plan_error("assignment[" + std::to_string(i) + "] = " +
                           std::to_string(assignment[i]) + " but there are only " +
                           std::to_string(vantages.size()) + " vantages");
            }
        }
    }
}

std::vector<std::uint32_t> CensusPlan::assignment_by_affinity(
    std::span<const std::uint64_t> keys, std::size_t vantage_count) {
    if (vantage_count == 0) plan_error("assignment_by_affinity: zero vantages");
    std::vector<std::uint32_t> assignment(keys.size());
    std::unordered_map<std::uint64_t, std::uint32_t> lane_of_key;
    lane_of_key.reserve(keys.size());
    std::uint32_t next_lane = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto [it, inserted] = lane_of_key.try_emplace(keys[i], next_lane);
        if (inserted) next_lane = static_cast<std::uint32_t>((next_lane + 1) % vantage_count);
        assignment[i] = it->second;
    }
    return assignment;
}

CensusRunner::CensusRunner(CensusPlan plan)
    : plan_(std::move(plan)), pool_(validated(plan_).worker_threads) {}

Measurement CensusRunner::run() {
    return measure(plan_.name, plan_.targets, plan_.assignment);
}

Measurement CensusRunner::measure(std::string name, std::span<const net::IPv4Address> targets,
                                  std::span<const std::uint32_t> assignment) {
    CollectingSink sink(std::move(name));
    sink.reserve(targets.size());
    stream(targets, assignment, sink);
    return sink.take();
}

void CensusRunner::stream(std::span<const net::IPv4Address> targets,
                          std::span<const std::uint32_t> assignment, RecordSink& sink) {
    std::vector<std::uint64_t> indices(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) indices[i] = next_global_index_ + i;
    stream_indexed(targets, indices, assignment, plan_.campaign, sink);
    next_global_index_ += targets.size();
}

void CensusRunner::stream_indexed(std::span<const net::IPv4Address> targets,
                                  std::span<const std::uint64_t> global_indices,
                                  std::span<const std::uint32_t> assignment,
                                  const probe::Campaign::Config& campaign_config,
                                  RecordSink& sink) {
    const std::size_t lanes = plan_.vantages.size();
    if (!assignment.empty() && assignment.size() != targets.size()) {
        plan_error("stream(): assignment covers " + std::to_string(assignment.size()) +
                   " targets but the list has " + std::to_string(targets.size()));
    }

    // Default assignment: group by the lead vantage's backend-identity
    // hint, so alias interfaces of one stateful backend (which must see
    // their probes in serial order; two lanes probing it concurrently
    // would race) share a lane. Targets the transport knows nothing about
    // fall back to per-address singleton keys — duplicates of one address
    // still always share a lane, and a duplicate-free unhinted list
    // degenerates to plain round-robin.
    std::vector<std::uint32_t> default_assignment;
    if (assignment.empty() && lanes > 1) {
        std::vector<std::uint64_t> keys;
        keys.reserve(targets.size());
        for (net::IPv4Address ip : targets) {
            keys.push_back(plan_.vantages.front()->backend_hint(ip).value_or(
                0x8000000000000000ULL | ip.value()));
        }
        default_assignment = CensusPlan::assignment_by_affinity(keys, lanes);
        assignment = default_assignment;
    }

    // Partition: each lane gets its slice of the target list plus the
    // targets' global indices, in input order.
    struct Lane {
        std::vector<net::IPv4Address> targets;
        std::vector<std::uint64_t> indices;
    };
    std::vector<Lane> partition(lanes);
    std::vector<std::uint32_t> lane_of(targets.size(), 0);
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::size_t lane = assignment.empty() ? i % lanes : assignment[i];
        if (lane >= lanes) {
            plan_error("stream(): assignment[" + std::to_string(i) + "] = " +
                       std::to_string(lane) + " but there are only " + std::to_string(lanes) +
                       " vantages");
        }
        lane_of[i] = static_cast<std::uint32_t>(lane);
        partition[lane].targets.push_back(targets[i]);
        partition[lane].indices.push_back(global_indices[i]);
    }

    // Each vantage lane runs its own windowed streaming campaign on its own
    // thread (lanes spend their life overlapping network waits, so a
    // dedicated thread per lane beats queueing them behind pool workers),
    // emitting completed targets in lane order into its ring. This thread
    // is the consumer: it walks the *global* order — the next expected
    // index lives in exactly one lane, so the cross-lane merge is a plain
    // pop from that lane's ring — assembles records in shard_grain batches
    // over the worker pool, and feeds the sink in order.
    std::vector<probe::Campaign> campaigns;
    campaigns.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) {
        campaigns.emplace_back(*plan_.vantages[v], campaign_config);
    }
    std::vector<std::unique_ptr<LaneStream>> streams;
    streams.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) streams.push_back(std::make_unique<LaneStream>());

    // Set when the consumer bails (sink threw, or a lane died): producers
    // drop further emissions instead of blocking on a ring nobody drains.
    std::atomic<bool> abort{false};

    // Lane supervision (tentpole 2). When the plan (or LFP_WATCHDOG_MS)
    // arms a watchdog, a lane that delivers nothing for a whole deadline —
    // or exits with targets still owed — is declared dead: its campaign is
    // cancelled and its unfinished targets are requeued onto the surviving
    // lanes after the loop. IDs are pure functions of (pass, global index),
    // so the recovered run's output merges byte-identically with an
    // unfaulted one. All state is empty when supervision is off — the
    // normal path pays one predictable branch per pop, nothing more.
    // Resolved before any lane thread exists: an unparseable LFP_WATCHDOG_MS
    // must throw while unwinding is still safe.
    const std::chrono::milliseconds watchdog = resolved_watchdog(plan_);
    const bool supervised = watchdog.count() > 0;
    std::vector<char> lane_dead(supervised ? lanes : 0, 0);
    std::vector<std::size_t> holes;  ///< positions owed by dead lanes
    std::vector<std::pair<std::size_t, probe::TargetProbeResult>> buffered;
    std::size_t dead_lanes = 0;

    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) {
        threads.emplace_back([&, v] {
            // Scheduler/sender side of the campaign; the receive thread and
            // the simulated responder tag their own nested stages.
            util::AllocStageScope stage("lane");
            LaneStream& lane = *streams[v];
            try {
                util::SpinBackoff push_backoff(kRingBackoff);
                campaigns[v].run_streaming(
                    partition[v].targets, partition[v].indices,
                    [&lane, &abort, &push_backoff](std::size_t,
                                                   probe::TargetProbeResult&& result) {
                        push_backoff.reset();
                        while (!lane.ring.try_push(std::move(result))) {
                            // Nobody is draining this ring any more: tell
                            // the campaign to cancel instead of probing the
                            // rest of the lane for a dead consumer.
                            if (abort.load(std::memory_order_acquire)) return false;
                            push_backoff.pause();
                        }
                        return !abort.load(std::memory_order_acquire);
                    },
                    &lane.cancel);
            } catch (...) {
                lane.error = std::current_exception();
            }
            lane.done.store(true, std::memory_order_release);
        });
    }

    auto join_all = [&] {
        for (std::thread& thread : threads) {
            if (thread.joinable()) thread.join();
        }
    };

    std::exception_ptr failure;
    try {
        // Assembly batches: up to shard_grain raw results are collected,
        // turned into records in parallel over the pool, then sunk in
        // order. Lane threads keep probing (and filling their rings)
        // throughout.
        const std::size_t grain = std::max<std::size_t>(1, plan_.shard_grain);
        std::vector<probe::TargetProbeResult> batch;
        std::vector<std::uint64_t> batch_indices;
        std::vector<TargetRecord> batch_records;
        batch.reserve(grain);
        batch_indices.reserve(grain);
        const FeatureExtractorConfig& extractor = plan_.extractor;

        auto flush = [&] {
            if (batch.empty()) return;
            batch_records.clear();
            batch_records.resize(batch.size());
            TargetRecord* records = batch_records.data();
            probe::TargetProbeResult* probes = batch.data();
            pool_.parallel_for(batch.size(), 8,
                               [&extractor, records, probes](std::size_t begin,
                                                             std::size_t end) {
                                   util::AllocStageScope stage("assemble");
                                   for (std::size_t k = begin; k < end; ++k) {
                                       assemble_record(records[k], std::move(probes[k]),
                                                       extractor);
                                   }
                               });
            util::AllocStageScope stage("sink");
            for (std::size_t k = 0; k < batch_records.size(); ++k) {
                sink.accept(batch_indices[k], std::move(batch_records[k]));
            }
            batch.clear();
            batch_indices.clear();
        };

        // Declare lane v dead: stop its campaign, flush what the sink can
        // still take in order (everything batched predates the first
        // hole), and count the recovery. Requeueing happens after the loop.
        auto mark_dead = [&](std::size_t v) {
            lane_dead[v] = 1;
            ++dead_lanes;
            ++lanes_recovered_;
            streams[v]->cancel.store(true, std::memory_order_release);
            flush();
        };

        util::SpinBackoff pop_backoff(kRingBackoff);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            const std::size_t v = lane_of[i];
            if (dead_lanes != 0 && lane_dead[v] != 0) {
                holes.push_back(i);
                continue;
            }
            LaneStream& lane = *streams[v];
            probe::TargetProbeResult result;
            pop_backoff.reset();
            bool popped = true;
            std::chrono::steady_clock::time_point wait_start{};
            std::size_t spins = 0;
            while (!lane.ring.try_pop(result)) {
                if (lane.done.load(std::memory_order_acquire)) {
                    // The producer is gone; whatever it managed to push is
                    // still in the ring — only a truly empty ring means the
                    // lane died short of index i.
                    if (lane.ring.try_pop(result)) break;
                    if (supervised && dead_lanes + 1 < lanes) {
                        mark_dead(v);
                        popped = false;
                        break;
                    }
                    throw std::runtime_error(
                        "CensusRunner::stream: vantage lane " + std::to_string(v) +
                        " ended before target " + std::to_string(i) +
                        (lane.error ? " (lane threw)" : ""));
                }
                if (supervised) {
                    // Cheap deadline: stamp the clock on the first idle
                    // spin, re-check it every 512 spins (~tens of ms at
                    // the ring backoff cadence).
                    if (spins == 0) wait_start = std::chrono::steady_clock::now();
                    if (++spins % 512 == 0 &&
                        std::chrono::steady_clock::now() - wait_start > watchdog) {
                        if (dead_lanes + 1 < lanes) {
                            mark_dead(v);
                            popped = false;
                            break;
                        }
                        throw std::runtime_error(
                            "CensusRunner::stream: watchdog expired on vantage lane " +
                            std::to_string(v) + " before target " + std::to_string(i) +
                            " with no surviving lane to requeue onto");
                    }
                }
                pop_backoff.pause();
            }
            if (!popped) {
                holes.push_back(i);
                continue;
            }
            if (dead_lanes == 0) {
                batch.push_back(std::move(result));
                batch_indices.push_back(global_indices[i]);
                if (batch.size() >= grain) flush();
            } else {
                // Order through the sink is broken by the holes; park
                // surviving-lane results until recovery fills the gaps.
                buffered.emplace_back(i, std::move(result));
            }
        }

        if (holes.empty()) {
            flush();
            sink.finish();
        } else {
            // Recovery. The surviving producers have delivered everything
            // they own and the dead ones were cancelled — join, then
            // re-probe the holes through the surviving vantages. Each dead
            // lane's targets move, in order, to the next surviving lane
            // (deterministic, so two recovered runs agree), and their IDs
            // are untouched — still functions of the global index.
            join_all();
            std::vector<std::uint32_t> redirect(lanes, 0);
            for (std::size_t d = 0; d < lanes; ++d) {
                if (lane_dead[d] == 0) {
                    redirect[d] = static_cast<std::uint32_t>(d);
                    continue;
                }
                std::size_t r = (d + 1) % lanes;
                while (lane_dead[r] != 0) r = (r + 1) % lanes;
                redirect[d] = static_cast<std::uint32_t>(r);
            }
            std::vector<net::IPv4Address> requeue_targets;
            std::vector<std::uint64_t> requeue_indices;
            std::vector<std::uint32_t> requeue_assignment;
            requeue_targets.reserve(holes.size());
            requeue_indices.reserve(holes.size());
            requeue_assignment.reserve(holes.size());
            for (std::size_t i : holes) {
                requeue_targets.push_back(targets[i]);
                requeue_indices.push_back(global_indices[i]);
                requeue_assignment.push_back(redirect[lane_of[i]]);
            }
            CollectingSink recovered("");
            recovered.reserve(holes.size());
            stream_indexed(requeue_targets, requeue_indices, requeue_assignment,
                           campaign_config, recovered);
            std::vector<TargetRecord> hole_records = recovered.take().records;

            // Assemble the parked surviving-lane results the same way the
            // batched path would have.
            std::vector<TargetRecord> survivor_records(buffered.size());
            {
                TargetRecord* records = survivor_records.data();
                auto* parked = buffered.data();
                const FeatureExtractorConfig& extract_config = plan_.extractor;
                pool_.parallel_for(buffered.size(), 8,
                                   [&extract_config, records, parked](std::size_t begin,
                                                                      std::size_t end) {
                                       for (std::size_t k = begin; k < end; ++k) {
                                           assemble_record(records[k],
                                                           std::move(parked[k].second),
                                                           extract_config);
                                       }
                                   });
            }

            // Emit the tail in position order: holes and parked results are
            // each already position-sorted, so a two-pointer merge restores
            // the global stream order the sink contract demands.
            std::size_t h = 0;
            std::size_t b = 0;
            while (h < hole_records.size() || b < survivor_records.size()) {
                if (b >= survivor_records.size() ||
                    (h < hole_records.size() && holes[h] < buffered[b].first)) {
                    sink.accept(global_indices[holes[h]], std::move(hole_records[h]));
                    ++h;
                } else {
                    sink.accept(global_indices[buffered[b].first],
                                std::move(survivor_records[b]));
                    ++b;
                }
            }
            sink.finish();
        }
    } catch (...) {
        failure = std::current_exception();
        abort.store(true, std::memory_order_release);
    }

    join_all();

    // A lane's own exception explains the failure better than the
    // consumer's "lane ended early" symptom; prefer it. Recovered (dead)
    // lanes are exempt: their campaign was cancelled deliberately and their
    // targets already re-probed — whatever they threw is not a failure of
    // this run.
    for (std::size_t v = 0; v < streams.size(); ++v) {
        if (dead_lanes != 0 && lane_dead[v] != 0) continue;
        if (streams[v]->error) {
            failure = streams[v]->error;
            break;
        }
    }
    if (failure) std::rethrow_exception(failure);

    for (const probe::Campaign& campaign : campaigns) {
        packets_sent_ += campaign.packets_sent();
        responses_ += campaign.responses_received();
        strays_ += campaign.stray_responses();
    }
}

Measurement CensusRunner::run_passes() {
    return measure_passes(plan_.name, plan_.targets, plan_.assignment, plan_.passes);
}

Measurement CensusRunner::measure_passes(std::string name,
                                         std::span<const net::IPv4Address> targets,
                                         std::span<const std::uint32_t> assignment,
                                         std::size_t passes) {
    CollectingSink sink(std::move(name));
    sink.reserve(targets.size());
    stream_passes(targets, assignment, passes, sink);
    return sink.take();
}

PathTargets PathTargets::from_paths(std::span<const std::vector<net::IPv4Address>> paths) {
    PathTargets out;
    std::unordered_map<net::IPv4Address, std::uint32_t> index_of;
    for (std::size_t p = 0; p < paths.size(); ++p) {
        const auto path_index = static_cast<std::uint32_t>(p);
        for (const net::IPv4Address hop : paths[p]) {
            ++out.hops_listed;
            if (!hop.is_routable()) {
                ++out.unroutable_dropped;
                continue;
            }
            auto [it, inserted] =
                index_of.try_emplace(hop, static_cast<std::uint32_t>(out.targets.size()));
            if (inserted) {
                out.targets.push_back(hop);
                out.provenance.emplace_back();
                out.first_path.push_back(path_index);
            } else {
                ++out.duplicates_collapsed;
            }
            std::vector<std::uint32_t>& credited = out.provenance[it->second];
            // One credit per path, however often the hop loops inside it.
            if (credited.empty() || credited.back() != path_index) {
                credited.push_back(path_index);
            }
        }
    }
    return out;
}

std::vector<std::uint32_t> CensusRunner::assignment_by_discovery(
    const PathTargets& targets, std::span<const std::uint32_t> path_lane) const {
    const std::size_t lanes = plan_.vantages.size();
    std::vector<std::uint32_t> assignment(targets.targets.size(), 0);
    if (lanes <= 1) return assignment;
    // Affinity key: the backend hint when the lead vantage knows one (alias
    // interfaces of one stateful router share it), else the address itself.
    // The first member of each affinity group decides the group's lane —
    // the lane whose vantage first discovered it.
    std::unordered_map<std::uint64_t, std::uint32_t> lane_of_key;
    lane_of_key.reserve(targets.targets.size());
    for (std::size_t i = 0; i < targets.targets.size(); ++i) {
        const net::IPv4Address ip = targets.targets[i];
        const std::uint64_t key = plan_.vantages.front()->backend_hint(ip).value_or(
            0x8000000000000000ULL | ip.value());
        const std::uint32_t path = targets.first_path[i];
        const std::uint32_t preferred =
            path < path_lane.size() ? path_lane[path] % static_cast<std::uint32_t>(lanes) : 0;
        auto [it, inserted] = lane_of_key.try_emplace(key, preferred);
        assignment[i] = it->second;
    }
    return assignment;
}

void CensusRunner::stream_paths(std::span<const std::vector<net::IPv4Address>> paths,
                                std::span<const std::uint32_t> path_lane, std::size_t passes,
                                RecordSink& sink) {
    path_targets_ = PathTargets::from_paths(paths);
    std::vector<std::uint32_t> assignment;
    if (!path_lane.empty()) {
        assignment = assignment_by_discovery(path_targets_, path_lane);
    }
    stream_passes(path_targets_.targets, assignment, passes, sink);
}

Measurement CensusRunner::measure_paths(std::string name,
                                        std::span<const std::vector<net::IPv4Address>> paths,
                                        std::span<const std::uint32_t> path_lane,
                                        std::size_t passes) {
    CollectingSink sink(std::move(name));
    stream_paths(paths, path_lane, passes, sink);
    return sink.take();
}

void CensusRunner::stream_passes(std::span<const net::IPv4Address> targets,
                                 std::span<const std::uint32_t> assignment,
                                 std::size_t passes, RecordSink& sink) {
    if (passes == 0) passes = plan_.passes;  // 0 = the plan's configured count
    if (passes > CensusPlan::kMaxPasses) {
        plan_error("stream_passes(): passes " + std::to_string(passes) +
                   " exceeds the ceiling of " + std::to_string(CensusPlan::kMaxPasses));
    }
    pass_stats_.clear();
    resumed_ = false;

    // A single pass is the plain streaming census — the sink overlaps the
    // probing as usual, with a RetrySink in front only to tally how much a
    // second pass would have had to re-probe.
    if (passes == 1) {
        RetrySink retry(&sink, plan_.retry);
        stream(targets, assignment, retry);
        pass_stats_.push_back(
            {targets.size(), 0, retry.retry_indices().size()});
        return;
    }

    // Multi-pass with bounded memory: incumbents live in disk segments,
    // only their response masks stay in RAM.
    if (plan_.spill) {
        stream_passes_spilled(targets, assignment, passes, sink);
        return;
    }

    // Pass 0: the full list, collected (records are not final until every
    // retry pass they might appear in has run) with the retry population
    // tallied in stream.
    const std::uint64_t index_base = next_global_index_;
    std::vector<std::uint64_t> indices(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) indices[i] = index_base + i;
    CollectingSink collect("");
    collect.reserve(targets.size());
    RetrySink first_pass(&collect, plan_.retry);
    stream_indexed(targets, indices, assignment, plan_.campaign, first_pass);
    next_global_index_ += targets.size();
    std::vector<TargetRecord> records = collect.take().records;
    std::vector<std::uint64_t> retry_list = first_pass.retry_indices();
    pass_stats_.push_back({targets.size(), 0, retry_list.size()});

    // Retry passes: re-probe only the still-incomplete targets, each pass
    // under its shifted ID bases — IPIDs/msgIDs stay pure functions of
    // (pass, global index), so the re-probe emits packets no earlier pass
    // emitted (fresh loss draws) yet the whole multi-pass run is
    // byte-deterministic. The merged record, not the raw retry result,
    // decides what the *next* pass still retries.
    for (std::size_t pass = 1; pass < passes && !retry_list.empty(); ++pass) {
        std::vector<net::IPv4Address> subset;
        std::vector<std::uint64_t> subset_indices;
        std::vector<std::uint32_t> subset_assignment;
        subset.reserve(retry_list.size());
        subset_indices.reserve(retry_list.size());
        if (!assignment.empty()) subset_assignment.reserve(retry_list.size());
        for (std::uint64_t g : retry_list) {
            const std::size_t position = static_cast<std::size_t>(g - index_base);
            subset.push_back(targets[position]);
            subset_indices.push_back(g);
            if (!assignment.empty()) subset_assignment.push_back(assignment[position]);
        }

        MergeSink merge(records, index_base, static_cast<std::uint16_t>(pass));
        stream_indexed(subset, subset_indices, subset_assignment,
                       shifted_config(plan_.campaign, pass), merge);

        std::vector<std::uint64_t> still;
        for (std::uint64_t g : retry_list) {
            if (RetrySink::incomplete(records[static_cast<std::size_t>(g - index_base)],
                                      plan_.retry)) {
                still.push_back(g);
            }
        }
        pass_stats_.push_back({subset.size(), merge.upgraded(), still.size()});
        retry_list = std::move(still);
    }

    // Final emission: every target's merged record exactly once, in
    // global-index order, with TargetRecord::pass naming the winning pass.
    for (std::size_t i = 0; i < records.size(); ++i) {
        sink.accept(index_base + i, std::move(records[i]));
    }
    sink.finish();
}

void CensusRunner::stream_passes_spilled(std::span<const net::IPv4Address> targets,
                                         std::span<const std::uint32_t> assignment,
                                         std::size_t passes, RecordSink& sink) {
    // Checkpointing (crash-tolerant resume): when a checkpoint directory is
    // configured — plan_.checkpoint_dir or LFP_CHECKPOINT_DIR — the spill
    // segments land there and a manifest is journaled next to them at every
    // pass boundary. A census killed mid-pass resumes at the last boundary:
    // completed passes' records are adopted from the surviving segments and
    // the interrupted pass re-runs from scratch. Every ID is a pure
    // function of (pass, global index) and the retry merge is idempotent
    // per pass, so a partially-merged interrupted pass heals — re-running
    // it recomputes identical records — and the resumed run's output is
    // byte-identical to an uninterrupted one.
    const std::string checkpoint_dir = resolved_checkpoint_dir(plan_);
    const bool checkpointed = !checkpoint_dir.empty();
    SpillConfig spill_config = plan_.spill_config;
    if (checkpointed) spill_config.directory = checkpoint_dir;

    const std::uint64_t index_base = next_global_index_;
    SpillSink spill(spill_config, index_base);

    // Resume detection: a manifest describing this exact census shape
    // (base, target count, segment geometry, a completed-pass count this
    // run could have produced) means an earlier process was killed here.
    std::size_t first_pass = 0;
    std::vector<std::vector<std::uint64_t>> replay_lists;
    if (checkpointed) {
        if (auto manifest = read_manifest(checkpoint_dir);
            manifest.has_value() && manifest->index_base == index_base &&
            manifest->target_count == targets.size() &&
            manifest->segment_records == spill_config.segment_records &&
            manifest->completed_passes <= passes) {
            std::vector<SpillSink::SegmentInfo> segments;
            segments.reserve(manifest->segments.size());
            for (const auto& [name, records] : manifest->segments) {
                segments.push_back({std::filesystem::path(checkpoint_dir) / name, records});
            }
            spill.adopt(std::move(segments), std::move(manifest->masks));
            pass_stats_ = std::move(manifest->pass_stats);
            replay_lists = std::move(manifest->retry_lists);
            first_pass = manifest->completed_passes;
            resumed_ = true;
        }
    }

    // Journal the census state as of `completed` finished passes. flush()
    // first: after it, every accepted record is on disk and the manifest's
    // segment list describes the census completely. The manifest itself is
    // written atomically (tmp + rename), so a kill at any instant leaves
    // either the previous checkpoint or this one — never a torn one.
    auto write_checkpoint = [&](std::size_t completed) {
        spill.flush();
        CensusManifest manifest;
        manifest.index_base = index_base;
        manifest.target_count = targets.size();
        manifest.segment_records = spill_config.segment_records;
        manifest.completed_passes = static_cast<std::uint32_t>(completed);
        for (const SpillSink::SegmentInfo& info : spill.segment_manifest()) {
            manifest.segments.emplace_back(info.path.filename().string(), info.records);
        }
        manifest.masks = spill.response_masks();
        manifest.pass_stats = pass_stats_;
        manifest.retry_lists = replay_lists;
        write_manifest(checkpoint_dir, manifest);
    };

    if (!resumed_) {
        // Pass 0: stream the full list straight to disk. RAM footprint from
        // here on: one unflushed segment of compact records plus two bytes
        // of response mask per target — never a whole Measurement.
        std::vector<std::uint64_t> indices(targets.size());
        for (std::size_t i = 0; i < targets.size(); ++i) indices[i] = index_base + i;
        stream_indexed(targets, indices, assignment, plan_.campaign, spill);
        next_global_index_ += targets.size();
    } else {
        next_global_index_ += targets.size();
        if (plan_.checkpoint_replay) {
            // Simulated transports are stateful (per-router counters
            // advance as probes arrive), so a resumed pass's packets must
            // meet the same backend state they would have met in the
            // uninterrupted run: replay every completed pass's send
            // traffic, results discarded. Live transports set
            // checkpoint_replay = false — real routers don't need warming.
            DiscardSink discard;
            std::vector<std::uint64_t> indices(targets.size());
            for (std::size_t i = 0; i < targets.size(); ++i) indices[i] = index_base + i;
            stream_indexed(targets, indices, assignment, plan_.campaign, discard);
            for (std::size_t q = 1; q < first_pass; ++q) {
                const std::vector<std::uint64_t>& list = replay_lists[q - 1];
                std::vector<net::IPv4Address> subset;
                std::vector<std::uint64_t> subset_indices;
                std::vector<std::uint32_t> subset_assignment;
                subset.reserve(list.size());
                subset_indices.reserve(list.size());
                if (!assignment.empty()) subset_assignment.reserve(list.size());
                for (std::uint64_t g : list) {
                    const std::size_t position = static_cast<std::size_t>(g - index_base);
                    subset.push_back(targets[position]);
                    subset_indices.push_back(g);
                    if (!assignment.empty()) {
                        subset_assignment.push_back(assignment[position]);
                    }
                }
                stream_indexed(subset, subset_indices, subset_assignment,
                               shifted_config(plan_.campaign, q), discard);
            }
        }
    }

    // The retry population falls out of the mask index — the predicate is
    // the same one RetrySink applies to full records. On resume the masks
    // came from the manifest, so this recomputes exactly the list the
    // killed process would have probed next.
    std::vector<std::uint64_t> retry_list;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        if (RetrySink::incomplete_mask(spill.response_mask(index_base + i), plan_.retry)) {
            retry_list.push_back(index_base + i);
        }
    }
    if (!resumed_) {
        pass_stats_.push_back({targets.size(), 0, retry_list.size()});
        if (checkpointed) write_checkpoint(1);
    }

    // Retry passes, as in the in-memory path (shifted ID lanes, strict-
    // improvement merge, merged state decides the next pass) — but the
    // merge happens in place inside the spilled segments, and the per-pass
    // subset scratch comes from a bump arena recycled at each pass
    // boundary, so a steady retry cadence allocates nothing new.
    util::BumpArena pass_arena;
    for (std::size_t pass = std::max<std::size_t>(first_pass, 1);
         pass < passes && !retry_list.empty(); ++pass) {
        pass_arena.reset();
        auto subset = pass_arena.make_span<net::IPv4Address>(retry_list.size());
        auto subset_indices = pass_arena.make_span<std::uint64_t>(retry_list.size());
        std::span<std::uint32_t> subset_assignment;
        if (!assignment.empty()) {
            subset_assignment = pass_arena.make_span<std::uint32_t>(retry_list.size());
        }
        for (std::size_t k = 0; k < retry_list.size(); ++k) {
            const std::size_t position =
                static_cast<std::size_t>(retry_list[k] - index_base);
            subset[k] = targets[position];
            subset_indices[k] = retry_list[k];
            if (!assignment.empty()) subset_assignment[k] = assignment[position];
        }

        SpillMergeSink merge(spill, static_cast<std::uint16_t>(pass));
        stream_indexed(subset, subset_indices, subset_assignment,
                       shifted_config(plan_.campaign, pass), merge);

        std::vector<std::uint64_t> still;
        for (std::uint64_t g : retry_list) {
            if (RetrySink::incomplete_mask(spill.response_mask(g), plan_.retry)) {
                still.push_back(g);
            }
        }
        pass_stats_.push_back({retry_list.size(), merge.upgraded(), still.size()});
        if (checkpointed) {
            replay_lists.push_back(retry_list);
            write_checkpoint(pass + 1);
        }
        retry_list = std::move(still);
    }

    // Final emission: sequential re-read of the segments, expanded back to
    // rich records, in global-index order — same contract as the in-memory
    // path (empty packet bytes aside; see CompactRecord).
    spill.drain(sink);
    sink.finish();

    // Clean finish: the manifest (and, after a resume, the adopted segments
    // the destructor deliberately leaves alone) are no longer needed.
    if (checkpointed) {
        remove_manifest(checkpoint_dir);
        if (resumed_ && !spill_config.keep_segments) {
            std::error_code ec;  // best-effort, like the destructor's cleanup
            for (const SpillSink::SegmentInfo& info : spill.segment_manifest()) {
                std::filesystem::remove(info.path, ec);
            }
        }
    }
}

SignatureDatabase CensusRunner::build_database(std::span<const Measurement> measurements,
                                               SignatureDbConfig config) {
    return build_signature_database(measurements, config, pool_);
}

void CensusRunner::classify(Measurement& measurement, const SignatureDatabase& database,
                            LfpClassifier::Options options) {
    classify_records(measurement, database, options, pool_, plan_.shard_grain);
}

Measurement assemble_measurement(std::string name,
                                 std::vector<probe::TargetProbeResult>&& probed,
                                 const FeatureExtractorConfig& extractor,
                                 util::ThreadPool& pool, std::size_t grain) {
    Measurement measurement;
    measurement.name = std::move(name);
    measurement.records.resize(probed.size());
    TargetRecord* records = measurement.records.data();
    probe::TargetProbeResult* probes = probed.data();
    pool.parallel_for(probed.size(), grain,
                      [&extractor, records, probes](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              assemble_record(records[i], std::move(probes[i]), extractor);
                          }
                      });
    return measurement;
}

SignatureDatabase build_signature_database(std::span<const Measurement> measurements,
                                           SignatureDbConfig config, util::ThreadPool& pool) {
    // Shard aggregation per measurement: counts are additive, so absorbing
    // the shard databases (in any order — we use measurement order) yields
    // the same totals as one serial pass.
    std::vector<SignatureDatabase> shards(measurements.size(), SignatureDatabase(config));
    SignatureDatabase* shard_data = shards.data();
    const Measurement* measurement_data = measurements.data();
    pool.parallel_for(measurements.size(), 1,
                      [shard_data, measurement_data](std::size_t begin, std::size_t end) {
                          for (std::size_t m = begin; m < end; ++m) {
                              for (const TargetRecord& record : measurement_data[m].records) {
                                  if (!record.snmp_vendor || record.features.empty()) continue;
                                  shard_data[m].add_labeled(record.signature,
                                                            *record.snmp_vendor);
                              }
                          }
                      });
    SignatureDatabase database(config);
    for (const SignatureDatabase& shard : shards) database.absorb(shard);
    database.finalize();
    return database;
}

void classify_records(Measurement& measurement, const SignatureDatabase& database,
                      LfpClassifier::Options options, util::ThreadPool& pool,
                      std::size_t grain) {
    const LfpClassifier classifier(database, options);
    TargetRecord* records = measurement.records.data();
    pool.parallel_for(measurement.records.size(), grain,
                      [&classifier, records](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              records[i].lfp = classifier.classify(records[i].signature);
                          }
                      });
}

}  // namespace lfp::core
