#include "core/census.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/labeler.hpp"
#include "probe/campaign.hpp"

namespace lfp::core {

namespace {

[[noreturn]] void plan_error(const std::string& what) {
    throw std::invalid_argument("CensusPlan: " + what);
}

/// Validates before the pool (and its threads) exists.
const CensusPlan& validated(const CensusPlan& plan) {
    plan.validate();
    return plan;
}

}  // namespace

void CensusPlan::validate() const {
    if (vantages.empty()) {
        plan_error("no vantage transports (a census needs at least one vantage)");
    }
    if (vantages.size() > kMaxVantages) {
        plan_error(std::to_string(vantages.size()) + " vantages exceeds the ceiling of " +
                   std::to_string(kMaxVantages));
    }
    for (std::size_t v = 0; v < vantages.size(); ++v) {
        if (vantages[v] == nullptr) {
            plan_error("vantage " + std::to_string(v) + " is a null transport");
        }
    }
    if (campaign.window == 0) {
        plan_error("window must be >= 1 (1 = serial pacing)");
    }
    if (campaign.window > kMaxWindow) {
        plan_error("window " + std::to_string(campaign.window) + " exceeds the ceiling of " +
                   std::to_string(kMaxWindow));
    }
    if (worker_threads > kMaxWorkers) {
        plan_error("worker_threads " + std::to_string(worker_threads) +
                   " exceeds the ceiling of " + std::to_string(kMaxWorkers) +
                   " (0 = one per hardware thread)");
    }
    if (shard_grain == 0) {
        plan_error("shard_grain must be >= 1");
    }
    if (!assignment.empty()) {
        if (assignment.size() != targets.size()) {
            plan_error("assignment covers " + std::to_string(assignment.size()) +
                       " targets but the plan has " + std::to_string(targets.size()));
        }
        for (std::size_t i = 0; i < assignment.size(); ++i) {
            if (assignment[i] >= vantages.size()) {
                plan_error("assignment[" + std::to_string(i) + "] = " +
                           std::to_string(assignment[i]) + " but there are only " +
                           std::to_string(vantages.size()) + " vantages");
            }
        }
    }
}

std::vector<std::uint32_t> CensusPlan::assignment_by_affinity(
    std::span<const std::uint64_t> keys, std::size_t vantage_count) {
    if (vantage_count == 0) plan_error("assignment_by_affinity: zero vantages");
    std::vector<std::uint32_t> assignment(keys.size());
    std::unordered_map<std::uint64_t, std::uint32_t> lane_of_key;
    lane_of_key.reserve(keys.size());
    std::uint32_t next_lane = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto [it, inserted] = lane_of_key.try_emplace(keys[i], next_lane);
        if (inserted) next_lane = static_cast<std::uint32_t>((next_lane + 1) % vantage_count);
        assignment[i] = it->second;
    }
    return assignment;
}

CensusRunner::CensusRunner(CensusPlan plan)
    : plan_(std::move(plan)), pool_(validated(plan_).worker_threads) {}

Measurement CensusRunner::run() {
    return measure(plan_.name, plan_.targets, plan_.assignment);
}

Measurement CensusRunner::measure(std::string name, std::span<const net::IPv4Address> targets,
                                  std::span<const std::uint32_t> assignment) {
    const std::size_t lanes = plan_.vantages.size();
    if (!assignment.empty() && assignment.size() != targets.size()) {
        plan_error("measure(): assignment covers " + std::to_string(assignment.size()) +
                   " targets but the list has " + std::to_string(targets.size()));
    }

    // Partition: each lane gets its slice of the target list plus the
    // targets' global indices, in input order.
    struct Lane {
        std::vector<net::IPv4Address> targets;
        std::vector<std::uint64_t> indices;
    };
    // Default assignment: round-robin over *distinct addresses* rather than
    // raw positions, so duplicate targets land on one lane (they share a
    // backend router whose counters must see them in serial order; two
    // lanes probing it concurrently would race). For a duplicate-free list
    // this degenerates to plain i mod lanes.
    std::vector<std::uint32_t> default_assignment;
    if (assignment.empty() && lanes > 1) {
        std::vector<std::uint64_t> keys;
        keys.reserve(targets.size());
        for (net::IPv4Address ip : targets) keys.push_back(ip.value());
        default_assignment = CensusPlan::assignment_by_affinity(keys, lanes);
        assignment = default_assignment;
    }

    const std::uint64_t index_base = next_global_index_;
    std::vector<Lane> partition(lanes);
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::size_t lane = assignment.empty() ? i % lanes : assignment[i];
        if (lane >= lanes) {
            plan_error("measure(): assignment[" + std::to_string(i) + "] = " +
                       std::to_string(lane) + " but there are only " + std::to_string(lanes) +
                       " vantages");
        }
        partition[lane].targets.push_back(targets[i]);
        partition[lane].indices.push_back(index_base + i);
    }

    // Each vantage lane runs its own windowed campaign with its own slice
    // of the global ID lanes. One lane runs inline; N lanes get a thread
    // each (they spend their life overlapping network waits, so a dedicated
    // thread per lane beats queueing them behind pool workers).
    std::vector<std::vector<probe::TargetProbeResult>> lane_results(lanes);
    std::vector<probe::Campaign> campaigns;
    campaigns.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) {
        campaigns.emplace_back(*plan_.vantages[v], plan_.campaign);
    }
    auto run_lane = [&](std::size_t v) {
        lane_results[v] = campaigns[v].run_indexed(partition[v].targets, partition[v].indices);
    };
    if (lanes == 1) {
        run_lane(0);
    } else {
        std::vector<std::exception_ptr> errors(lanes);
        std::vector<std::thread> threads;
        threads.reserve(lanes);
        for (std::size_t v = 0; v < lanes; ++v) {
            threads.emplace_back([&, v] {
                try {
                    run_lane(v);
                } catch (...) {
                    errors[v] = std::current_exception();
                }
            });
        }
        for (std::thread& thread : threads) thread.join();
        for (const std::exception_ptr& error : errors) {
            if (error) std::rethrow_exception(error);
        }
    }
    next_global_index_ += targets.size();
    for (const probe::Campaign& campaign : campaigns) {
        packets_sent_ += campaign.packets_sent();
        responses_ += campaign.responses_received();
        strays_ += campaign.stray_responses();
    }

    // Index merge: record order is input order whatever the lane layout.
    std::vector<probe::TargetProbeResult> probed(targets.size());
    for (std::size_t v = 0; v < lanes; ++v) {
        for (std::size_t k = 0; k < partition[v].indices.size(); ++k) {
            probed[partition[v].indices[k] - index_base] = std::move(lane_results[v][k]);
        }
    }
    return assemble_measurement(std::move(name), std::move(probed), plan_.extractor, pool_,
                                plan_.shard_grain);
}

SignatureDatabase CensusRunner::build_database(std::span<const Measurement> measurements,
                                               SignatureDbConfig config) {
    return build_signature_database(measurements, config, pool_);
}

void CensusRunner::classify(Measurement& measurement, const SignatureDatabase& database,
                            LfpClassifier::Options options) {
    classify_records(measurement, database, options, pool_, plan_.shard_grain);
}

Measurement assemble_measurement(std::string name,
                                 std::vector<probe::TargetProbeResult>&& probed,
                                 const FeatureExtractorConfig& extractor,
                                 util::ThreadPool& pool, std::size_t grain) {
    Measurement measurement;
    measurement.name = std::move(name);
    measurement.records.resize(probed.size());
    TargetRecord* records = measurement.records.data();
    probe::TargetProbeResult* probes = probed.data();
    pool.parallel_for(probed.size(), grain,
                      [&extractor, records, probes](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              TargetRecord& record = records[i];
                              record.probes = std::move(probes[i]);
                              record.features = extract_features(record.probes, extractor);
                              record.signature = Signature::from_features(record.features);
                              record.snmp_vendor = snmp_vendor_label(record.probes);
                          }
                      });
    return measurement;
}

SignatureDatabase build_signature_database(std::span<const Measurement> measurements,
                                           SignatureDbConfig config, util::ThreadPool& pool) {
    // Shard aggregation per measurement: counts are additive, so absorbing
    // the shard databases (in any order — we use measurement order) yields
    // the same totals as one serial pass.
    std::vector<SignatureDatabase> shards(measurements.size(), SignatureDatabase(config));
    SignatureDatabase* shard_data = shards.data();
    const Measurement* measurement_data = measurements.data();
    pool.parallel_for(measurements.size(), 1,
                      [shard_data, measurement_data](std::size_t begin, std::size_t end) {
                          for (std::size_t m = begin; m < end; ++m) {
                              for (const TargetRecord& record : measurement_data[m].records) {
                                  if (!record.snmp_vendor || record.features.empty()) continue;
                                  shard_data[m].add_labeled(record.signature,
                                                            *record.snmp_vendor);
                              }
                          }
                      });
    SignatureDatabase database(config);
    for (const SignatureDatabase& shard : shards) database.absorb(shard);
    database.finalize();
    return database;
}

void classify_records(Measurement& measurement, const SignatureDatabase& database,
                      LfpClassifier::Options options, util::ThreadPool& pool,
                      std::size_t grain) {
    const LfpClassifier classifier(database, options);
    TargetRecord* records = measurement.records.data();
    pool.parallel_for(measurement.records.size(), grain,
                      [&classifier, records](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              records[i].lfp = classifier.classify(records[i].signature);
                          }
                      });
}

}  // namespace lfp::core
