#include "core/census.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/labeler.hpp"
#include "probe/campaign.hpp"
#include "util/spsc_ring.hpp"

namespace lfp::core {

namespace {

[[noreturn]] void plan_error(const std::string& what) {
    throw std::invalid_argument("CensusPlan: " + what);
}

/// Validates before the pool (and its threads) exists.
const CensusPlan& validated(const CensusPlan& plan) {
    plan.validate();
    return plan;
}

/// Completed probe results cross from a lane thread to the streaming
/// consumer over a ring this deep; a lane stalls (backpressure) only when
/// the consumer falls this far behind it.
constexpr std::size_t kLaneRingDepth = 256;

/// Sleep phase of the spin-then-sleep backoff on either side of a lane
/// ring (producer finding it full, consumer finding it empty).
constexpr std::chrono::microseconds kRingBackoff{50};

/// One vantage lane's streaming state: the producing campaign thread and
/// the ring its in-order completions travel through.
struct LaneStream {
    explicit LaneStream() : ring(kLaneRingDepth) {}

    util::SpscRing<probe::TargetProbeResult> ring;
    std::atomic<bool> done{false};
    std::exception_ptr error;  ///< synchronised by thread join
};

/// Assembles one TargetRecord from a completed probe exchange (steps 1-2
/// glue shared by the streaming consumer and assemble_measurement).
void assemble_record(TargetRecord& record, probe::TargetProbeResult&& probed,
                     const FeatureExtractorConfig& extractor) {
    record.probes = std::move(probed);
    record.features = extract_features(record.probes, extractor);
    record.signature = Signature::from_features(record.features);
    record.snmp_vendor = snmp_vendor_label(record.probes);
}

}  // namespace

void CensusPlan::validate() const {
    if (vantages.empty()) {
        plan_error("no vantage transports (a census needs at least one vantage)");
    }
    if (vantages.size() > kMaxVantages) {
        plan_error(std::to_string(vantages.size()) + " vantages exceeds the ceiling of " +
                   std::to_string(kMaxVantages));
    }
    for (std::size_t v = 0; v < vantages.size(); ++v) {
        if (vantages[v] == nullptr) {
            plan_error("vantage " + std::to_string(v) + " is a null transport");
        }
    }
    if (campaign.window == 0) {
        plan_error("window must be >= 1 (1 = serial pacing)");
    }
    if (campaign.window > kMaxWindow) {
        plan_error("window " + std::to_string(campaign.window) + " exceeds the ceiling of " +
                   std::to_string(kMaxWindow));
    }
    if (worker_threads > kMaxWorkers) {
        plan_error("worker_threads " + std::to_string(worker_threads) +
                   " exceeds the ceiling of " + std::to_string(kMaxWorkers) +
                   " (0 = one per hardware thread)");
    }
    if (shard_grain == 0) {
        plan_error("shard_grain must be >= 1");
    }
    if (!assignment.empty()) {
        if (assignment.size() != targets.size()) {
            plan_error("assignment covers " + std::to_string(assignment.size()) +
                       " targets but the plan has " + std::to_string(targets.size()));
        }
        for (std::size_t i = 0; i < assignment.size(); ++i) {
            if (assignment[i] >= vantages.size()) {
                plan_error("assignment[" + std::to_string(i) + "] = " +
                           std::to_string(assignment[i]) + " but there are only " +
                           std::to_string(vantages.size()) + " vantages");
            }
        }
    }
}

std::vector<std::uint32_t> CensusPlan::assignment_by_affinity(
    std::span<const std::uint64_t> keys, std::size_t vantage_count) {
    if (vantage_count == 0) plan_error("assignment_by_affinity: zero vantages");
    std::vector<std::uint32_t> assignment(keys.size());
    std::unordered_map<std::uint64_t, std::uint32_t> lane_of_key;
    lane_of_key.reserve(keys.size());
    std::uint32_t next_lane = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto [it, inserted] = lane_of_key.try_emplace(keys[i], next_lane);
        if (inserted) next_lane = static_cast<std::uint32_t>((next_lane + 1) % vantage_count);
        assignment[i] = it->second;
    }
    return assignment;
}

CensusRunner::CensusRunner(CensusPlan plan)
    : plan_(std::move(plan)), pool_(validated(plan_).worker_threads) {}

Measurement CensusRunner::run() {
    return measure(plan_.name, plan_.targets, plan_.assignment);
}

Measurement CensusRunner::measure(std::string name, std::span<const net::IPv4Address> targets,
                                  std::span<const std::uint32_t> assignment) {
    CollectingSink sink(std::move(name));
    sink.reserve(targets.size());
    stream(targets, assignment, sink);
    return sink.take();
}

void CensusRunner::stream(std::span<const net::IPv4Address> targets,
                          std::span<const std::uint32_t> assignment, RecordSink& sink) {
    const std::size_t lanes = plan_.vantages.size();
    if (!assignment.empty() && assignment.size() != targets.size()) {
        plan_error("stream(): assignment covers " + std::to_string(assignment.size()) +
                   " targets but the list has " + std::to_string(targets.size()));
    }

    // Default assignment: group by the lead vantage's backend-identity
    // hint, so alias interfaces of one stateful backend (which must see
    // their probes in serial order; two lanes probing it concurrently
    // would race) share a lane. Targets the transport knows nothing about
    // fall back to per-address singleton keys — duplicates of one address
    // still always share a lane, and a duplicate-free unhinted list
    // degenerates to plain round-robin.
    std::vector<std::uint32_t> default_assignment;
    if (assignment.empty() && lanes > 1) {
        std::vector<std::uint64_t> keys;
        keys.reserve(targets.size());
        for (net::IPv4Address ip : targets) {
            keys.push_back(plan_.vantages.front()->backend_hint(ip).value_or(
                0x8000000000000000ULL | ip.value()));
        }
        default_assignment = CensusPlan::assignment_by_affinity(keys, lanes);
        assignment = default_assignment;
    }

    // Partition: each lane gets its slice of the target list plus the
    // targets' global indices, in input order.
    struct Lane {
        std::vector<net::IPv4Address> targets;
        std::vector<std::uint64_t> indices;
    };
    const std::uint64_t index_base = next_global_index_;
    std::vector<Lane> partition(lanes);
    std::vector<std::uint32_t> lane_of(targets.size(), 0);
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::size_t lane = assignment.empty() ? i % lanes : assignment[i];
        if (lane >= lanes) {
            plan_error("stream(): assignment[" + std::to_string(i) + "] = " +
                       std::to_string(lane) + " but there are only " + std::to_string(lanes) +
                       " vantages");
        }
        lane_of[i] = static_cast<std::uint32_t>(lane);
        partition[lane].targets.push_back(targets[i]);
        partition[lane].indices.push_back(index_base + i);
    }

    // Each vantage lane runs its own windowed streaming campaign on its own
    // thread (lanes spend their life overlapping network waits, so a
    // dedicated thread per lane beats queueing them behind pool workers),
    // emitting completed targets in lane order into its ring. This thread
    // is the consumer: it walks the *global* order — the next expected
    // index lives in exactly one lane, so the cross-lane merge is a plain
    // pop from that lane's ring — assembles records in shard_grain batches
    // over the worker pool, and feeds the sink in order.
    std::vector<probe::Campaign> campaigns;
    campaigns.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) {
        campaigns.emplace_back(*plan_.vantages[v], plan_.campaign);
    }
    std::vector<std::unique_ptr<LaneStream>> streams;
    streams.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) streams.push_back(std::make_unique<LaneStream>());

    // Set when the consumer bails (sink threw, or a lane died): producers
    // drop further emissions instead of blocking on a ring nobody drains.
    std::atomic<bool> abort{false};

    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (std::size_t v = 0; v < lanes; ++v) {
        threads.emplace_back([&, v] {
            LaneStream& lane = *streams[v];
            try {
                util::SpinBackoff push_backoff(kRingBackoff);
                campaigns[v].run_streaming(
                    partition[v].targets, partition[v].indices,
                    [&lane, &abort, &push_backoff](std::size_t,
                                                   probe::TargetProbeResult&& result) {
                        push_backoff.reset();
                        while (!lane.ring.try_push(std::move(result))) {
                            // Nobody is draining this ring any more: tell
                            // the campaign to cancel instead of probing the
                            // rest of the lane for a dead consumer.
                            if (abort.load(std::memory_order_acquire)) return false;
                            push_backoff.pause();
                        }
                        return !abort.load(std::memory_order_acquire);
                    });
            } catch (...) {
                lane.error = std::current_exception();
            }
            lane.done.store(true, std::memory_order_release);
        });
    }

    auto join_all = [&] {
        for (std::thread& thread : threads) {
            if (thread.joinable()) thread.join();
        }
    };

    std::exception_ptr failure;
    try {
        // Assembly batches: up to shard_grain raw results are collected,
        // turned into records in parallel over the pool, then sunk in
        // order. Lane threads keep probing (and filling their rings)
        // throughout.
        const std::size_t grain = std::max<std::size_t>(1, plan_.shard_grain);
        std::vector<probe::TargetProbeResult> batch;
        std::vector<std::uint64_t> batch_indices;
        std::vector<TargetRecord> batch_records;
        batch.reserve(grain);
        batch_indices.reserve(grain);
        const FeatureExtractorConfig& extractor = plan_.extractor;

        auto flush = [&] {
            if (batch.empty()) return;
            batch_records.clear();
            batch_records.resize(batch.size());
            TargetRecord* records = batch_records.data();
            probe::TargetProbeResult* probes = batch.data();
            pool_.parallel_for(batch.size(), 8,
                               [&extractor, records, probes](std::size_t begin,
                                                             std::size_t end) {
                                   for (std::size_t k = begin; k < end; ++k) {
                                       assemble_record(records[k], std::move(probes[k]),
                                                       extractor);
                                   }
                               });
            for (std::size_t k = 0; k < batch_records.size(); ++k) {
                sink.accept(batch_indices[k], std::move(batch_records[k]));
            }
            batch.clear();
            batch_indices.clear();
        };

        util::SpinBackoff pop_backoff(kRingBackoff);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            LaneStream& lane = *streams[lane_of[i]];
            probe::TargetProbeResult result;
            pop_backoff.reset();
            while (!lane.ring.try_pop(result)) {
                if (lane.done.load(std::memory_order_acquire)) {
                    // The producer is gone; whatever it managed to push is
                    // still in the ring — only a truly empty ring means the
                    // lane died short of index i.
                    if (lane.ring.try_pop(result)) break;
                    throw std::runtime_error(
                        "CensusRunner::stream: vantage lane " +
                        std::to_string(lane_of[i]) + " ended before target " +
                        std::to_string(i) + (lane.error ? " (lane threw)" : ""));
                }
                pop_backoff.pause();
            }
            batch.push_back(std::move(result));
            batch_indices.push_back(index_base + i);
            if (batch.size() >= grain) flush();
        }
        flush();
        sink.finish();
    } catch (...) {
        failure = std::current_exception();
        abort.store(true, std::memory_order_release);
    }

    join_all();

    // A lane's own exception explains the failure better than the
    // consumer's "lane ended early" symptom; prefer it.
    for (const auto& lane : streams) {
        if (lane->error) {
            failure = lane->error;
            break;
        }
    }
    if (failure) std::rethrow_exception(failure);

    next_global_index_ += targets.size();
    for (const probe::Campaign& campaign : campaigns) {
        packets_sent_ += campaign.packets_sent();
        responses_ += campaign.responses_received();
        strays_ += campaign.stray_responses();
    }
}

SignatureDatabase CensusRunner::build_database(std::span<const Measurement> measurements,
                                               SignatureDbConfig config) {
    return build_signature_database(measurements, config, pool_);
}

void CensusRunner::classify(Measurement& measurement, const SignatureDatabase& database,
                            LfpClassifier::Options options) {
    classify_records(measurement, database, options, pool_, plan_.shard_grain);
}

Measurement assemble_measurement(std::string name,
                                 std::vector<probe::TargetProbeResult>&& probed,
                                 const FeatureExtractorConfig& extractor,
                                 util::ThreadPool& pool, std::size_t grain) {
    Measurement measurement;
    measurement.name = std::move(name);
    measurement.records.resize(probed.size());
    TargetRecord* records = measurement.records.data();
    probe::TargetProbeResult* probes = probed.data();
    pool.parallel_for(probed.size(), grain,
                      [&extractor, records, probes](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              assemble_record(records[i], std::move(probes[i]), extractor);
                          }
                      });
    return measurement;
}

SignatureDatabase build_signature_database(std::span<const Measurement> measurements,
                                           SignatureDbConfig config, util::ThreadPool& pool) {
    // Shard aggregation per measurement: counts are additive, so absorbing
    // the shard databases (in any order — we use measurement order) yields
    // the same totals as one serial pass.
    std::vector<SignatureDatabase> shards(measurements.size(), SignatureDatabase(config));
    SignatureDatabase* shard_data = shards.data();
    const Measurement* measurement_data = measurements.data();
    pool.parallel_for(measurements.size(), 1,
                      [shard_data, measurement_data](std::size_t begin, std::size_t end) {
                          for (std::size_t m = begin; m < end; ++m) {
                              for (const TargetRecord& record : measurement_data[m].records) {
                                  if (!record.snmp_vendor || record.features.empty()) continue;
                                  shard_data[m].add_labeled(record.signature,
                                                            *record.snmp_vendor);
                              }
                          }
                      });
    SignatureDatabase database(config);
    for (const SignatureDatabase& shard : shards) database.absorb(shard);
    database.finalize();
    return database;
}

void classify_records(Measurement& measurement, const SignatureDatabase& database,
                      LfpClassifier::Options options, util::ThreadPool& pool,
                      std::size_t grain) {
    const LfpClassifier classifier(database, options);
    TargetRecord* records = measurement.records.data();
    pool.parallel_for(measurement.records.size(), grain,
                      [&classifier, records](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                              records[i].lfp = classifier.classify(records[i].signature);
                          }
                      });
}

}  // namespace lfp::core
