// SNMPv3 ground-truth labeling (paper §3.1): the discovery response's engine
// ID starts with the vendor's IANA enterprise number — a high-confidence
// vendor label obtained from a single packet.
#pragma once

#include <optional>

#include "probe/campaign.hpp"
#include "stack/vendor.hpp"

namespace lfp::core {

/// Vendor label from an SNMPv3 discovery response, if the target answered
/// and the enterprise number is recognised.
[[nodiscard]] std::optional<stack::Vendor> snmp_vendor_label(
    const probe::TargetProbeResult& result);

}  // namespace lfp::core
