#include "core/measurement.hpp"

#include <cassert>

namespace lfp::core {

std::uint16_t probe_response_mask(const probe::TargetProbeResult& probes) noexcept {
    std::uint16_t mask = 0;
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        for (std::size_t r = 0; r < probe::kRoundsPerProtocol; ++r) {
            if (probes.probes[p][r].responded()) {
                mask |= static_cast<std::uint16_t>(1u << probe_slot(p, r));
            }
        }
    }
    if (probes.snmp.has_value()) mask |= kSnmpAnsweredBit;
    return mask;
}

CompactRecord CompactRecord::from_record(const TargetRecord& record) {
    CompactRecord compact;
    compact.target = record.probes.target.value();
    compact.response_mask = probe_response_mask(record.probes);
    compact.pass = record.pass;
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        for (std::size_t r = 0; r < probe::kRoundsPerProtocol; ++r) {
            compact.request_ipids[probe_slot(p, r)] = record.probes.probes[p][r].request_ipid;
        }
    }
    compact.features = record.features;
    if (record.probes.snmp.has_value()) {
        const auto& snmp = *record.probes.snmp;
        compact.snmp_message_id = snmp.message_id;
        compact.engine_boots = snmp.engine_boots;
        compact.engine_time = snmp.engine_time;
        compact.engine_enterprise = snmp.engine_id.enterprise;
        compact.engine_format = static_cast<std::uint8_t>(snmp.engine_id.format);
        compact.engine_new_format = snmp.engine_id.new_format ? 1 : 0;
        const std::size_t len = snmp.engine_id.remainder.size() <= kEngineRemainderMax
                                    ? snmp.engine_id.remainder.size()
                                    : kEngineRemainderMax;
        compact.engine_remainder_len = static_cast<std::uint8_t>(len);
        for (std::size_t i = 0; i < len; ++i) {
            compact.engine_remainder[i] = snmp.engine_id.remainder[i];
        }
    }
    if (record.snmp_vendor.has_value()) {
        compact.snmp_vendor = static_cast<std::uint8_t>(*record.snmp_vendor);
    }
    if (record.lfp.vendor.has_value()) {
        compact.lfp_vendor = static_cast<std::uint8_t>(*record.lfp.vendor);
    }
    compact.lfp_kind = static_cast<std::uint8_t>(record.lfp.kind);
    compact.lfp_confidence = record.lfp.confidence;
    return compact;
}

TargetRecord CompactRecord::to_record() const {
    TargetRecord record;
    record.probes.target = net::IPv4Address(target);
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        for (std::size_t r = 0; r < probe::kRoundsPerProtocol; ++r) {
            const std::size_t slot = probe_slot(p, r);
            auto& exchange = record.probes.probes[p][r];
            exchange.request_ipid = request_ipids[slot];
            // Admission is round-major, so the slot number is the send
            // order within the target's batch.
            exchange.send_index = static_cast<std::uint32_t>(slot);
            if ((response_mask & (1u << slot)) != 0) {
                // Present-but-empty: the raw bytes were consumed at
                // assembly time; only the *fact* of the response survives
                // (see the CompactRecord class comment).
                exchange.response.emplace();
            }
        }
    }
    if ((response_mask & kSnmpAnsweredBit) != 0) {
        snmp::DiscoveryResponse snmp;
        snmp.message_id = snmp_message_id;
        snmp.engine_boots = engine_boots;
        snmp.engine_time = engine_time;
        snmp.engine_id.enterprise = engine_enterprise;
        snmp.engine_id.new_format = engine_new_format != 0;
        snmp.engine_id.format = static_cast<snmp::EngineIdFormat>(engine_format);
        snmp.engine_id.remainder.assign(engine_remainder.begin(),
                                        engine_remainder.begin() + engine_remainder_len);
        record.probes.snmp = std::move(snmp);
    }
    record.features = features;
    record.signature = Signature::from_features(features);
    if (snmp_vendor != kNoVendor) {
        record.snmp_vendor = static_cast<stack::Vendor>(snmp_vendor);
    }
    if (lfp_vendor != kNoVendor) {
        record.lfp.vendor = static_cast<stack::Vendor>(lfp_vendor);
    }
    record.lfp.kind = static_cast<MatchKind>(lfp_kind);
    record.lfp.confidence = lfp_confidence;
    record.pass = pass;
    return record;
}

const MeasurementCounts& Measurement::tallies() const {
    if (!counts.has_value()) {
        MeasurementCounts computed;
        for (const auto& record : records) computed.add(record);
        counts = computed;
    }
    return *counts;
}

}  // namespace lfp::core
