// Signature canonicalisation (paper §3.5): a feature vector rendered as a
// canonical string, in Table 1 field order — the same layout Table 6 prints.
// Signatures carry the responsive-protocol mask so partial signatures
// (subsets of protocols) form their own keyspaces.
#pragma once

#include <cstdint>
#include <string>

#include "core/feature.hpp"

namespace lfp::core {

class Signature {
  public:
    Signature() = default;

    static Signature from_features(const FeatureVector& features);

    /// Reconstructs a signature from its canonical key and protocol mask —
    /// the persistence path (io::signature_store). No validation beyond
    /// non-emptiness; keys produced by from_features round-trip exactly.
    static Signature from_parts(std::string key, std::uint8_t protocol_mask);

    /// Canonical form, e.g.
    /// "False r r r False False False False 255 64 64 84 40 56 0".
    /// Missing fields (absent protocols) render as '-'.
    [[nodiscard]] const std::string& key() const noexcept { return key_; }

    [[nodiscard]] std::uint8_t protocol_mask() const noexcept { return mask_; }
    [[nodiscard]] bool is_full() const noexcept { return mask_ == 0b111; }
    [[nodiscard]] bool is_partial() const noexcept { return mask_ != 0b111 && mask_ != 0; }
    [[nodiscard]] bool is_empty() const noexcept { return mask_ == 0; }

    /// Human-readable protocol combination, e.g. "ICMP & UDP".
    [[nodiscard]] std::string protocols() const;

    friend bool operator==(const Signature&, const Signature&) = default;
    friend auto operator<=>(const Signature&, const Signature&) = default;

  private:
    std::string key_;
    std::uint8_t mask_ = 0;
};

}  // namespace lfp::core

template <>
struct std::hash<lfp::core::Signature> {
    std::size_t operator()(const lfp::core::Signature& s) const noexcept {
        return std::hash<std::string>{}(s.key());
    }
};
