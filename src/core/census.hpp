// Vantage-aware census API: the declarative CensusPlan describes *what* to
// measure (targets, vantage transports, window/timeout/worker knobs, ID
// bases) and the CensusRunner executes it — partitioning the target list
// across vantage lanes, running each lane's windowed campaign on its own
// thread, and index-merging records so the merged Measurement is
// byte-identical to a single-vantage serial run on deterministic transports.
//
// Determinism rests on three properties:
//   1. IPIDs and SNMP msgIDs are pure functions of a target's *global*
//      index (Campaign::run_indexed), so every lane stamps exactly the
//      packets a serial run would, whatever the partition.
//   2. Records are merged by global index, so output order never depends on
//      lane scheduling.
//   3. Targets that share backend state (alias IPs of one simulated router)
//      are pinned to one lane via CensusPlan::assignment, preserving their
//      serial relative order; lanes touch disjoint state and may run freely
//      in parallel.
// The downstream stages (feature extraction, signature aggregation,
// classification) shard over a worker pool with index-order merges, so the
// whole Figure-1 pipeline is deterministic at any worker count.
//
// The runner is streaming end to end: stream() merges lane completions in
// global-index order over per-lane lock-free rings and drives a RecordSink
// record by record while later targets are still in flight, so analysis
// overlaps probing. measure() is the batch adapter — stream() into a
// CollectingSink.
//
// Multi-pass censuses (stream_passes/run_passes) wrap the streaming engine
// in a retry loop: a RetrySink tallies targets whose signatures came back
// incomplete, and each later pass re-probes only those under per-pass
// shifted ID bases (kPassIpidStride/kPassMsgIdStride — still pure
// functions of pass and global index, so multi-pass runs stay
// byte-deterministic), merging per record with strict-improvement
// semantics and TargetRecord::pass provenance.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/record_sink.hpp"
#include "probe/transport.hpp"
#include "util/thread_pool.hpp"

namespace lfp::core {

/// Declarative description of a measurement census: one aggregate holding
/// everything the ad-hoc Campaign::Config + PipelineConfig + loose
/// ExperimentWorld plumbing used to scatter.
struct CensusPlan {
    /// Name stamped onto the Measurement produced by run().
    std::string name = "census";
    /// Target list for run(). measure() takes explicit lists instead.
    std::vector<net::IPv4Address> targets;

    /// Vantage transports, one per lane (non-owning; must outlive the
    /// runner). One entry reproduces the classic single-vantage pipeline.
    std::vector<probe::ProbeTransport*> vantages;

    /// Optional explicit lane assignment for run(): assignment[i] is the
    /// vantage lane of targets[i]. Empty = group by the lead vantage's
    /// ProbeTransport::backend_hint() — targets reporting the same backend
    /// (alias interfaces of one simulated router) share a lane, everything
    /// else (including duplicate addresses, which always share) spreads
    /// round-robin in first-appearance order. Transports without ground
    /// truth hint nothing, which degrades to round-robin over distinct
    /// addresses. Pass an explicit assignment (assignment_by_affinity())
    /// when the caller knows an affinity the transport cannot.
    std::vector<std::uint32_t> assignment;

    /// Per-lane campaign knobs: window, timeouts, IPID/msgID bases. The ID
    /// bases seed the *global* index lanes, shared by every vantage.
    probe::Campaign::Config campaign;
    FeatureExtractorConfig extractor;

    /// Worker pool size for sharded feature extraction, signature
    /// aggregation, and classification. 1 = single-threaded, 0 = one worker
    /// per hardware thread. Any value yields identical output.
    std::size_t worker_threads = 1;
    /// Records per worker-pool shard.
    std::size_t shard_grain = 64;

    /// Census passes for run_passes()/stream_passes(): pass 0 probes the
    /// whole list, every later pass re-probes only the targets whose
    /// signatures came back incomplete (RetrySink's predicate) under that
    /// pass's shifted ID bases. 1 (the default) is the classic single-pass
    /// census; measure()/stream() always run exactly one pass regardless.
    std::size_t passes = 1;
    /// Retry policy for the multi-pass loop (see RetrySink::Options).
    RetrySink::Options retry;

    /// Lane supervision deadline: when > 0, the streaming consumer watches
    /// each lane for progress and declares a lane dead once it has neither
    /// delivered a record nor finished within this window (also the trigger
    /// for a lane that *ends* short of its targets, e.g. a transport that
    /// threw). A dead lane is torn down (its campaign cancelled) and its
    /// unfinished targets are requeued onto the surviving lanes — IDs are
    /// pure functions of (pass, global index), so the re-probe stamps
    /// exactly the packets the dead lane would have, and the merged stream
    /// stays in global-index order. 0 (the default) disables supervision:
    /// a short lane throws, as ever. Resolved from LFP_WATCHDOG_MS when the
    /// plan leaves it 0. Set it comfortably above
    /// campaign.response_timeout — a merely slow lane that trips the
    /// watchdog is requeued too, which is safe but wasteful (and, on
    /// stateful simulated transports, no longer byte-identical since the
    /// first probes already advanced router state).
    std::chrono::milliseconds watchdog{0};

    /// Crash-tolerant resume for the spilled multi-pass census: when
    /// non-empty (or via LFP_CHECKPOINT_DIR when empty), spill segments are
    /// redirected into this directory and a census manifest (see
    /// core/checkpoint.hpp) is journaled at every pass boundary. A later
    /// run over the same target count finding a manifest resumes at the
    /// last completed pass instead of starting over; `kill -9` mid-pass
    /// costs at most one pass of work, and the resumed output is
    /// byte-identical to an uninterrupted run. Applies to the spill path
    /// only (spill = true, passes > 1); other shapes ignore it.
    std::string checkpoint_dir;
    /// On resume, replay the completed passes' send traffic (results
    /// discarded) before re-running the interrupted pass. Stateful
    /// simulated transports need this — routers advance per-packet counters
    /// at send time, and a fresh process holds fresh routers — for the
    /// byte-identity guarantee. Live transports can turn it off: the
    /// network does not reset when the census process does.
    bool checkpoint_replay = true;

    /// Spill-to-disk for the multi-pass census: when true, stream_passes()
    /// never materialises the whole record set in RAM. Pass 0 streams into
    /// a SpillSink (fixed-width CompactRecords in size-capped disk
    /// segments; two bytes of response-mask index per target stay
    /// resident), retry passes merge strictly-improving results into the
    /// spilled segments in place, and the final in-order emission re-reads
    /// the segments sequentially. Byte-identical classifications and
    /// signature databases to the in-memory path — the merge/retry
    /// predicates are shared mask arithmetic (see mask_merge_improves).
    /// Expanded records carry empty packet bytes (the raw bytes are
    /// consumed at assembly; see CompactRecord). Single-pass censuses
    /// ignore this flag: stream() already holds nothing.
    bool spill = false;
    /// Segment directory/sizing for the spill path (see SpillConfig; the
    /// default resolves $LFP_SPILL_DIR, then the system temp directory).
    SpillConfig spill_config;

    /// Per-pass ID lane shifts: pass p stamps target g with IPIDs
    /// (ipid_base + p*kPassIpidStride) + g*ids_per_target .. and msgID
    /// (snmp_message_id_base + p*kPassMsgIdStride) + g — pure functions of
    /// (pass, global index), so a multi-pass census is as byte-deterministic
    /// as a single-pass one, and a retried target's packets differ from its
    /// pass-0 packets (fresh loss draws on the sim's per-packet hash, fresh
    /// wire traffic live). The IPID stride is odd so consecutive passes
    /// never re-stamp a colliding lane even after mod-2^16 wraparound.
    static constexpr std::uint16_t kPassIpidStride = 0x4D1F;
    static constexpr std::uint32_t kPassMsgIdStride = 1u << 20;

    /// Validation ceilings: generous for real deployments, tight enough to
    /// catch corrupted configs (a window of 2^20 or 10^6 vantages is a bug,
    /// not a plan).
    static constexpr std::size_t kMaxVantages = 256;
    static constexpr std::size_t kMaxWindow = 1 << 16;
    static constexpr std::size_t kMaxWorkers = 1024;
    static constexpr std::size_t kMaxPasses = 64;

    /// Throws std::invalid_argument naming the offending knob when the plan
    /// cannot be executed (no vantages, null transport, zero/absurd window,
    /// assignment of the wrong size or referencing a missing lane, ...).
    void validate() const;

    /// Builds a lane assignment that groups targets with equal affinity
    /// keys onto one lane, balancing *groups* round-robin over
    /// `vantage_count` lanes in first-appearance order. keys[i] is an
    /// opaque identifier of the backend state behind targets[i] (e.g. the
    /// ground-truth router index, or the address itself when independent).
    static std::vector<std::uint32_t> assignment_by_affinity(
        std::span<const std::uint64_t> keys, std::size_t vantage_count);
};

/// The hop set a path census probes: traceroute-discovered router
/// interfaces collapsed into a deduplicated target list with hop→path
/// provenance. Built from raw hop lists (sim::Traceroute::hops or a live
/// traceroute harvest) by from_paths(), which applies the census-side noise
/// filter — private/special addresses never become probe targets — while
/// keeping the counters the path analyses need to reason about what was
/// dropped. Targets keep first-appearance order across the path list, so
/// the list (and with it every derived ID lane) is a pure function of the
/// paths, never of how many census lanes later probe it.
struct PathTargets {
    /// Deduplicated routable hop addresses, in first-appearance order.
    std::vector<net::IPv4Address> targets;
    /// provenance[i] = ascending indices of every path that listed
    /// targets[i] (each path counted once, however often the hop repeats
    /// inside it) — the credit list the per-path profiles are built from.
    std::vector<std::vector<std::uint32_t>> provenance;
    /// first_path[i] = provenance[i].front(): the path (and thereby the
    /// discovering vantage) a target is attributed to for lane mapping.
    std::vector<std::uint32_t> first_path;

    /// Raw hop entries across all paths, before any filtering.
    std::uint64_t hops_listed = 0;
    /// Hop entries dropped by the address-level noise filter (private and
    /// special addresses — traceroute noise that must never be probed).
    std::uint64_t unroutable_dropped = 0;
    /// Routable hop entries beyond each address's first appearance.
    std::uint64_t duplicates_collapsed = 0;

    /// Collapses `paths` (one hop list per path, in path order) into the
    /// deduplicated target set described above.
    [[nodiscard]] static PathTargets from_paths(
        std::span<const std::vector<net::IPv4Address>> paths);
};

/// Executes CensusPlans. Holds the worker pool and the running global-index
/// offset, so consecutive measure() calls continue the same ID lanes exactly
/// like one long serial campaign over the concatenated target lists.
class CensusRunner {
  public:
    /// Validates the plan (throws std::invalid_argument on a bad one).
    explicit CensusRunner(CensusPlan plan);

    CensusRunner(const CensusRunner&) = delete;
    CensusRunner& operator=(const CensusRunner&) = delete;

    /// Probes the plan's own target list with the plan's assignment and
    /// assembles records (steps 1-2 of Figure 1).
    [[nodiscard]] Measurement run();

    /// Probes an explicit target list, reusing the plan's vantages and
    /// knobs. `assignment` maps each target to a lane (empty = backend-hint
    /// grouping, as for CensusPlan::assignment). A thin adapter: stream()
    /// into a CollectingSink.
    [[nodiscard]] Measurement measure(std::string name,
                                      std::span<const net::IPv4Address> targets,
                                      std::span<const std::uint32_t> assignment = {});

    /// The streaming census: probes `targets` across the vantage lanes and
    /// drives `sink` with one assembled TargetRecord per target in strictly
    /// increasing global-index order, while later targets are still in
    /// flight. Lane threads hand completed probe results to this (calling)
    /// thread over per-lane lock-free rings; feature extraction and
    /// signature/labeling run here in shard_grain batches over the worker
    /// pool; sink.accept() sees the merged in-order stream and
    /// sink.finish() follows the last record. Byte-identity: feeding a
    /// CollectingSink yields exactly the Measurement measure() returns, at
    /// any vantage count or window.
    void stream(std::span<const net::IPv4Address> targets,
                std::span<const std::uint32_t> assignment, RecordSink& sink);

    /// Per-pass accounting of the latest run_passes()/stream_passes() call
    /// (entry p describes pass p). The struct itself lives at core scope
    /// (core::PassStats in measurement.hpp) so the io exporters can persist
    /// pass trajectories without pulling in the census engine; the alias
    /// keeps the historical CensusRunner::PassStats spelling working.
    using PassStats = core::PassStats;

    /// The multi-pass census (plan.passes, plan.retry): run_passes() probes
    /// the plan's own target list like run() does, then feeds the
    /// incomplete targets back through up to plan.passes - 1 retry passes.
    [[nodiscard]] Measurement run_passes();

    /// Explicit-list form of run_passes(), mirroring measure(): a thin
    /// adapter — stream_passes() into a CollectingSink. `passes` 0 (the
    /// default) means "the plan's configured pass count", so omitting the
    /// argument honors plan.passes exactly like run_passes() does.
    [[nodiscard]] Measurement measure_passes(std::string name,
                                             std::span<const net::IPv4Address> targets,
                                             std::span<const std::uint32_t> assignment = {},
                                             std::size_t passes = 0);

    /// The streaming re-probe loop. Pass 0 probes every target; each later
    /// pass re-probes only the targets RetrySink flagged incomplete, under
    /// ID bases shifted by CensusPlan::kPassIpidStride/kPassMsgIdStride per
    /// pass — pure functions of (pass, global index), so multi-pass runs
    /// stay byte-deterministic. A retry result replaces a record only when
    /// it measured *strictly more* (more answered probe slots, an SNMP
    /// answer breaking ties); records are never spliced across passes, and
    /// TargetRecord::pass carries the winning pass as provenance. The sink
    /// sees each target's final merged record exactly once, in global-index
    /// order — necessarily after the last pass, since no record is final
    /// before every pass it might be retried in has run (passes == 1
    /// degenerates to plain stream(), which overlaps the sink with
    /// probing). `passes` 0 means "the plan's configured pass count".
    /// Per-pass counts land in last_pass_stats().
    void stream_passes(std::span<const net::IPv4Address> targets,
                       std::span<const std::uint32_t> assignment, std::size_t passes,
                       RecordSink& sink);

    /// Per-pass stats of the most recent multi-pass call (empty before the
    /// first one; single-pass stream()/measure() calls leave it untouched).
    [[nodiscard]] const std::vector<PassStats>& last_pass_stats() const noexcept {
        return pass_stats_;
    }

    /// The path census: collapses `paths` (one hop list per path) into a
    /// PathTargets set — deduplicated across paths, private hops filtered,
    /// provenance preserved — and probes it through stream_passes(), so the
    /// discovered hops ride the full multi-pass strict-improvement engine
    /// as first-class census targets. `path_lane`, when non-empty, names
    /// the vantage that discovered each path (path_lane[i] for paths[i],
    /// values taken mod the lane count): each hop is then probed from the
    /// lane of the first path that discovered it, with backend-hint
    /// affinity still grouping alias interfaces of one stateful router onto
    /// a single lane. Empty = the default hint grouping. Either way the
    /// merged output is byte-identical at any vantage count — IDs are pure
    /// functions of (pass, global index), and the target list depends only
    /// on the paths. The collapsed set lands in last_path_targets().
    void stream_paths(std::span<const std::vector<net::IPv4Address>> paths,
                      std::span<const std::uint32_t> path_lane, std::size_t passes,
                      RecordSink& sink);

    /// Batch adapter for stream_paths(): collect into a Measurement.
    /// `passes` 0 means "the plan's configured pass count".
    [[nodiscard]] Measurement measure_paths(std::string name,
                                            std::span<const std::vector<net::IPv4Address>> paths,
                                            std::span<const std::uint32_t> path_lane = {},
                                            std::size_t passes = 0);

    /// The hop set the most recent stream_paths()/measure_paths() call
    /// probed (empty before the first path census).
    [[nodiscard]] const PathTargets& last_path_targets() const noexcept {
        return path_targets_;
    }

    /// The lane assignment for a path census: every target goes to the lane
    /// of the first path that discovered it (path_lane[first_path[target]]
    /// mod the vantage count), except that targets sharing a backend hint
    /// (alias interfaces of one stateful simulated router) are pinned to
    /// the lane of the hint group's first member — the same aliasing rule
    /// the default hint grouping enforces, so lanes stay free to run in
    /// parallel without racing one router's counters.
    [[nodiscard]] std::vector<std::uint32_t> assignment_by_discovery(
        const PathTargets& targets, std::span<const std::uint32_t> path_lane) const;

    /// Builds the signature database from the labeled subset of the given
    /// measurements (step 3), sharding aggregation per measurement over the
    /// worker pool and merging shard counts in measurement order.
    [[nodiscard]] SignatureDatabase build_database(std::span<const Measurement> measurements,
                                                   SignatureDbConfig config = {});

    /// Classifies every record in place (steps 4-5), sharded over the
    /// worker pool with deterministic index-order merge.
    void classify(Measurement& measurement, const SignatureDatabase& database,
                  LfpClassifier::Options options = {});

    [[nodiscard]] const CensusPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] std::size_t vantage_count() const noexcept { return plan_.vantages.size(); }
    [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }

    /// Aggregate counters across all lanes and measure() calls.
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }
    [[nodiscard]] std::uint64_t responses_received() const noexcept { return responses_; }
    [[nodiscard]] std::uint64_t stray_responses() const noexcept { return strays_; }
    /// Lanes the watchdog tore down and requeued (0 on a healthy census).
    [[nodiscard]] std::uint64_t lanes_recovered() const noexcept { return lanes_recovered_; }
    /// True when the latest stream_passes() call resumed from a checkpoint
    /// manifest instead of starting pass 0 from scratch.
    [[nodiscard]] bool resumed_from_checkpoint() const noexcept { return resumed_; }

  private:
    /// The engine beneath stream() and the retry passes: probes `targets`
    /// where targets[i] carries global index global_indices[i] and the
    /// given campaign knobs (stream() passes the plan's, retry passes shift
    /// the ID bases). Does not advance next_global_index_ — the public
    /// entry points own index-space accounting.
    void stream_indexed(std::span<const net::IPv4Address> targets,
                        std::span<const std::uint64_t> global_indices,
                        std::span<const std::uint32_t> assignment,
                        const probe::Campaign::Config& campaign_config, RecordSink& sink);

    /// The spill-backed body of stream_passes() (plan.spill, passes > 1):
    /// same pass/merge/emission semantics with on-disk incumbents.
    void stream_passes_spilled(std::span<const net::IPv4Address> targets,
                               std::span<const std::uint32_t> assignment, std::size_t passes,
                               RecordSink& sink);

    CensusPlan plan_;
    util::ThreadPool pool_;
    std::uint64_t next_global_index_ = 0;
    std::uint64_t packets_sent_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t strays_ = 0;
    std::uint64_t lanes_recovered_ = 0;
    bool resumed_ = false;
    std::vector<PassStats> pass_stats_;
    PathTargets path_targets_;
};

/// Sharded stage implementations shared by CensusRunner and the LfpPipeline
/// compatibility wrapper. All merge by index, so output is identical at any
/// pool width.

/// Steps 1-2 glue: turns raw probe results into a Measurement (feature
/// extraction, signature derivation, SNMP labeling) over `pool`.
[[nodiscard]] Measurement assemble_measurement(std::string name,
                                               std::vector<probe::TargetProbeResult>&& probed,
                                               const FeatureExtractorConfig& extractor,
                                               util::ThreadPool& pool, std::size_t grain);

/// Step 3: per-measurement sharded signature aggregation.
[[nodiscard]] SignatureDatabase build_signature_database(
    std::span<const Measurement> measurements, SignatureDbConfig config,
    util::ThreadPool& pool);

/// Steps 4-5: per-record sharded classification.
void classify_records(Measurement& measurement, const SignatureDatabase& database,
                      LfpClassifier::Options options, util::ThreadPool& pool,
                      std::size_t grain);

}  // namespace lfp::core
