// The measurement record model shared by every pipeline entry point: one
// TargetRecord per probed IP, one Measurement per dataset. Split out of
// pipeline.hpp so the CensusRunner (core/census.hpp) and the LfpPipeline
// compatibility wrapper (core/pipeline.hpp) can both speak it.
//
// Two record representations coexist:
//
//   - TargetRecord: the rich in-memory form — full probe exchanges with
//     packet bytes, std::optional fields, heap-backed signature string.
//     ~1 KB per responsive target; fine for test worlds, fatal at 10M.
//   - CompactRecord: a fixed-width, trivially-copyable projection of
//     everything the pipeline consumes *after* assembly (features,
//     signature inputs, vendor labels, response topology, provenance).
//     ~112 bytes, allocation-free, and safe to write to disk verbatim —
//     the currency of the SpillSink and the scale bench.
//
// The compact form is lossless with respect to the *assembled* record
// contract: everything downstream of assemble_record() — classification,
// signature aggregation, merge/retry decisions, exports — reads only
// derived fields, never the raw packet bytes, so CompactRecord drops the
// raw bytes and reconstructs responded probe slots as present-but-empty
// exchanges. Round-trip tests (test_compact.cpp) pin that equivalence for
// every evidence combination.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/classifier.hpp"
#include "core/feature.hpp"
#include "core/signature.hpp"
#include "probe/campaign.hpp"
#include "stack/vendor.hpp"

namespace lfp::core {

/// Everything the pipeline knows about one probed target.
struct TargetRecord {
    probe::TargetProbeResult probes;
    FeatureVector features;
    Signature signature;
    std::optional<stack::Vendor> snmp_vendor;
    Classification lfp;  ///< filled by classify_measurement()
    /// Provenance of a multi-pass census: the pass whose probe exchange this
    /// record carries (0 = the initial pass; a retry pass replaces the
    /// record wholesale when it measures strictly more, so probes, features,
    /// and signature always describe one internally consistent exchange —
    /// never a cross-pass splice, which would fabricate IPID-sharing
    /// behaviour no router exhibited). Single-pass runs leave it 0.
    std::uint16_t pass = 0;

    /// LFP-responsive: at least one protocol yielded extractable features.
    [[nodiscard]] bool lfp_responsive() const noexcept { return !features.empty(); }
    [[nodiscard]] bool responsive() const noexcept {
        return lfp_responsive() || snmp_vendor.has_value() || probes.any_response();
    }

    friend bool operator==(const TargetRecord&, const TargetRecord&) = default;
};

// ---------------------------------------------------------------------------
// Response-topology masks
//
// A target's entire retry/merge behaviour is a pure function of *which* of
// its ten exchanges answered — never of the answer contents. Encoding that
// as a 10-bit mask (bit slot = round*3 + protocol for the nine probes,
// bit 9 = SNMP discovery answered) gives the spill path a 2-byte RAM
// index per target, and makes the in-memory predicates
// (TargetProbeResult::*_responsive, merge improvement) and the spilled ones
// provably identical: both reduce to the same mask arithmetic.

/// Probe slot in global send order (admission is round-major).
[[nodiscard]] constexpr std::size_t probe_slot(std::size_t protocol,
                                               std::size_t round) noexcept {
    return round * probe::kProtocolCount + protocol;
}

/// Bit 9: the SNMPv3 discovery exchange answered.
inline constexpr std::uint16_t kSnmpAnsweredBit = 1u << 9;
/// Bits 0..8: all nine probe slots.
inline constexpr std::uint16_t kAllProbesMask = 0x1FF;
/// The three slots of one protocol: {p, p+3, p+6}.
[[nodiscard]] constexpr std::uint16_t protocol_slot_mask(std::size_t protocol) noexcept {
    return static_cast<std::uint16_t>(0b001001001u << protocol);
}

/// The response mask of a probe result (bit set ⇔ that exchange answered).
[[nodiscard]] std::uint16_t probe_response_mask(const probe::TargetProbeResult& probes) noexcept;

[[nodiscard]] constexpr std::size_t mask_responses_for(std::uint16_t mask,
                                                       std::size_t protocol) noexcept {
    return static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(mask & protocol_slot_mask(protocol))));
}
[[nodiscard]] constexpr bool mask_all_protocols_responsive(std::uint16_t mask) noexcept {
    return (mask & kAllProbesMask) == kAllProbesMask;
}
[[nodiscard]] constexpr bool mask_any_response(std::uint16_t mask) noexcept {
    return mask != 0;
}
[[nodiscard]] constexpr bool mask_partially_responsive(std::uint16_t mask) noexcept {
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        const std::size_t rounds = mask_responses_for(mask, p);
        if (rounds > 0 && rounds < probe::kRoundsPerProtocol) return true;
    }
    return false;
}

/// The multi-pass merge rule on masks: a retry result replaces the
/// incumbent only when it measures at least as much on every axis (per-
/// protocol response rounds, SNMP answer) and strictly more on at least
/// one. Mirrors merge_improves() on full records exactly — census.cpp
/// implements the record form *via* this function.
[[nodiscard]] constexpr bool mask_merge_improves(std::uint16_t candidate,
                                                 std::uint16_t incumbent) noexcept {
    bool strictly_better = false;
    for (std::size_t p = 0; p < probe::kProtocolCount; ++p) {
        const std::size_t candidate_rounds = mask_responses_for(candidate, p);
        const std::size_t incumbent_rounds = mask_responses_for(incumbent, p);
        if (candidate_rounds < incumbent_rounds) return false;
        if (candidate_rounds > incumbent_rounds) strictly_better = true;
    }
    const bool candidate_snmp = (candidate & kSnmpAnsweredBit) != 0;
    const bool incumbent_snmp = (incumbent & kSnmpAnsweredBit) != 0;
    if (incumbent_snmp && !candidate_snmp) return false;
    return strictly_better || (candidate_snmp && !incumbent_snmp);
}

// ---------------------------------------------------------------------------
// CompactRecord

/// Sentinel for "no vendor" in the enum-coded vendor fields (distinct from
/// stack::Vendor::unknown, which is a real label).
inline constexpr std::uint8_t kNoVendor = 0xFF;

/// Fixed-width engine-ID remainder storage. Wire engine IDs serialize to at
/// most 32 bytes total (RFC 3411), of which at most 27 are remainder, so 32
/// holds every parseable ID; a hand-built longer remainder is truncated
/// (documented lossy edge — no parsed record ever hits it).
inline constexpr std::size_t kEngineRemainderMax = 32;

/// The fixed-width projection of an assembled TargetRecord. Trivially
/// copyable by construction (asserted below) so SpillSink can write it to
/// disk verbatim and read it back with no per-record allocation or parsing.
///
/// What is *not* stored, and why it is still lossless for assembled
/// records:
///   - raw packet bytes: consumed only inside assemble_record(); responded
///     slots reconstruct as present-but-empty responses, so responded()/
///     responses_for() and every predicate over them are preserved.
///   - send_index: the admission order is deterministic (round-major), so
///     the slot number *is* the send index.
///   - signature: a pure function of the features
///     (Signature::from_features), recomputed on expansion.
struct CompactRecord {
    double lfp_confidence = 0.0;
    std::uint32_t target = 0;  ///< IPv4, host byte order
    std::int32_t snmp_message_id = 0;
    std::int32_t engine_boots = 0;
    std::int32_t engine_time = 0;
    std::uint32_t engine_enterprise = 0;
    std::uint16_t response_mask = 0;  ///< bits 0..8 probe slots, bit 9 SNMP
    std::uint16_t pass = 0;
    /// Request IPIDs in slot order (slot = round*3 + protocol). Kept for
    /// all nine probes whether or not they answered — the IDs are the
    /// determinism audit trail.
    std::array<std::uint16_t, probe::kProtocolCount * probe::kRoundsPerProtocol>
        request_ipids{};
    FeatureVector features;
    std::uint8_t engine_format = 0;      ///< snmp::EngineIdFormat
    std::uint8_t engine_new_format = 0;  ///< bool
    std::uint8_t engine_remainder_len = 0;
    std::array<std::uint8_t, kEngineRemainderMax> engine_remainder{};
    std::uint8_t snmp_vendor = kNoVendor;  ///< stack::Vendor or kNoVendor
    std::uint8_t lfp_vendor = kNoVendor;   ///< stack::Vendor or kNoVendor
    std::uint8_t lfp_kind = static_cast<std::uint8_t>(MatchKind::none);

    /// Compacts an assembled record (drops raw bytes, see class comment).
    [[nodiscard]] static CompactRecord from_record(const TargetRecord& record);

    /// Expands back to the rich form (empty packet bytes, recomputed
    /// signature). from_record(to_record()) is the identity; the other
    /// direction is the identity on records already in canonical assembled
    /// form (no raw bytes retained).
    [[nodiscard]] TargetRecord to_record() const;

    friend bool operator==(const CompactRecord&, const CompactRecord&) = default;
};

static_assert(std::is_trivially_copyable_v<CompactRecord>,
              "CompactRecord is written to disk verbatim");
static_assert(std::is_trivially_copyable_v<FeatureVector>,
              "FeatureVector is embedded in CompactRecord");

// ---------------------------------------------------------------------------
// Aggregates

/// Per-pass accounting of a multi-pass census (entry p describes pass p).
/// Lives at core scope (not inside CensusRunner) so the io exporters can
/// persist pass trajectories without depending on the census engine.
struct PassStats {
    std::uint64_t probed = 0;      ///< targets this pass probed
    std::uint64_t upgraded = 0;    ///< records a retry result replaced
    std::uint64_t incomplete = 0;  ///< retry candidates left afterwards

    friend bool operator==(const PassStats&, const PassStats&) = default;
};

/// The Table 3 style population tallies, maintainable incrementally: add()
/// is the single source of truth for what each count means, shared by the
/// batch scan and the streaming sink chain.
struct MeasurementCounts {
    std::size_t responsive = 0;
    std::size_t snmp = 0;
    /// The paper's "SNMPv3 ∩ LFP" column: IPs answering SNMPv3 *and all
    /// nine* LFP probes — the population signatures are extracted from.
    std::size_t snmp_and_lfp = 0;
    std::size_t lfp_only = 0;

    void add(const TargetRecord& record) noexcept {
        if (record.responsive()) ++responsive;
        if (record.snmp_vendor) {
            ++snmp;
            if (record.features.complete()) ++snmp_and_lfp;
        } else if (record.lfp_responsive()) {
            ++lfp_only;
        }
    }

    friend bool operator==(const MeasurementCounts&, const MeasurementCounts&) = default;
};

/// One dataset's worth of probed targets plus Table 3 style aggregates.
///
/// The count accessors are O(1) after the first call (or from the start
/// when a streaming producer pre-filled `counts` via set_counts()): the
/// tallies are cached and only recomputed after invalidate_counts(). The
/// counts depend on probe/feature/label evidence, not on classification,
/// so classify() does not invalidate them.
struct Measurement {
    std::string name;
    std::vector<TargetRecord> records;
    /// Cached tallies; treat as private (use the accessors). Public so the
    /// struct stays an aggregate.
    mutable std::optional<MeasurementCounts> counts;

    [[nodiscard]] std::size_t responsive_count() const { return tallies().responsive; }
    [[nodiscard]] std::size_t snmp_count() const { return tallies().snmp; }
    [[nodiscard]] std::size_t snmp_and_lfp_count() const { return tallies().snmp_and_lfp; }
    [[nodiscard]] std::size_t lfp_only_count() const { return tallies().lfp_only; }

    /// Installs tallies computed upstream (the streaming sink chain) so no
    /// accessor ever rescans `records`.
    void set_counts(MeasurementCounts tallies) const { counts = tallies; }
    /// Call after mutating `records` in a way that changes evidence
    /// (classification changes don't count — literally).
    void invalidate_counts() const noexcept { counts.reset(); }

    /// Identity is the data, not the cache state.
    friend bool operator==(const Measurement& a, const Measurement& b) {
        return a.name == b.name && a.records == b.records;
    }

  private:
    [[nodiscard]] const MeasurementCounts& tallies() const;
};

}  // namespace lfp::core
