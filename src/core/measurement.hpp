// The measurement record model shared by every pipeline entry point: one
// TargetRecord per probed IP, one Measurement per dataset. Split out of
// pipeline.hpp so the CensusRunner (core/census.hpp) and the LfpPipeline
// compatibility wrapper (core/pipeline.hpp) can both speak it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/feature.hpp"
#include "core/signature.hpp"
#include "probe/campaign.hpp"
#include "stack/vendor.hpp"

namespace lfp::core {

/// Everything the pipeline knows about one probed target.
struct TargetRecord {
    probe::TargetProbeResult probes;
    FeatureVector features;
    Signature signature;
    std::optional<stack::Vendor> snmp_vendor;
    Classification lfp;  ///< filled by classify_measurement()
    /// Provenance of a multi-pass census: the pass whose probe exchange this
    /// record carries (0 = the initial pass; a retry pass replaces the
    /// record wholesale when it measures strictly more, so probes, features,
    /// and signature always describe one internally consistent exchange —
    /// never a cross-pass splice, which would fabricate IPID-sharing
    /// behaviour no router exhibited). Single-pass runs leave it 0.
    std::uint16_t pass = 0;

    /// LFP-responsive: at least one protocol yielded extractable features.
    [[nodiscard]] bool lfp_responsive() const noexcept { return !features.empty(); }
    [[nodiscard]] bool responsive() const noexcept {
        return lfp_responsive() || snmp_vendor.has_value() || probes.any_response();
    }

    friend bool operator==(const TargetRecord&, const TargetRecord&) = default;
};

/// One dataset's worth of probed targets plus Table 3 style aggregates.
struct Measurement {
    std::string name;
    std::vector<TargetRecord> records;

    [[nodiscard]] std::size_t responsive_count() const;
    [[nodiscard]] std::size_t snmp_count() const;
    [[nodiscard]] std::size_t snmp_and_lfp_count() const;
    [[nodiscard]] std::size_t lfp_only_count() const;

    friend bool operator==(const Measurement&, const Measurement&) = default;
};

}  // namespace lfp::core
