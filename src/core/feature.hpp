// Feature extraction (paper Table 1): turns one target's probe exchanges
// into the 15-feature vector LFP fingerprints with.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/ipid_classifier.hpp"
#include "probe/campaign.hpp"

namespace lfp::core {

enum class TriState : std::uint8_t { no, yes, unknown };

[[nodiscard]] std::string_view to_string(TriState t) noexcept;

/// The 15 features of Table 1 plus the per-protocol presence mask.
struct FeatureVector {
    /// Bit i set ⇔ protocol i produced enough responses to extract features
    /// (bit 0 ICMP, bit 1 TCP, bit 2 UDP).
    std::uint8_t protocol_mask = 0;

    TriState icmp_ipid_echo = TriState::unknown;
    IpidClass ipid_icmp = IpidClass::unknown;
    IpidClass ipid_tcp = IpidClass::unknown;
    IpidClass ipid_udp = IpidClass::unknown;

    TriState shared_all = TriState::unknown;       ///< TCP+UDP+ICMP one counter
    TriState shared_tcp_icmp = TriState::unknown;
    TriState shared_udp_icmp = TriState::unknown;
    TriState shared_tcp_udp = TriState::unknown;

    /// Inferred initial TTLs (0 = protocol absent).
    std::uint8_t ittl_icmp = 0;
    std::uint8_t ittl_tcp = 0;
    std::uint8_t ittl_udp = 0;

    /// Response sizes in bytes (0 = protocol absent).
    std::uint16_t size_icmp = 0;
    std::uint16_t size_tcp = 0;
    std::uint16_t size_udp = 0;

    TriState tcp_rst_seq_nonzero = TriState::unknown;

    [[nodiscard]] bool has(probe::ProtoIndex protocol) const noexcept {
        return (protocol_mask & (1u << static_cast<unsigned>(protocol))) != 0;
    }
    [[nodiscard]] bool complete() const noexcept { return protocol_mask == 0b111; }
    [[nodiscard]] bool empty() const noexcept { return protocol_mask == 0; }

    friend bool operator==(const FeatureVector&, const FeatureVector&) = default;
};

/// Rounds an observed TTL up to the nearest initial value {32, 64, 128, 255}
/// (paper §3.4.2).
[[nodiscard]] std::uint8_t infer_initial_ttl(std::uint8_t observed) noexcept;

struct FeatureExtractorConfig {
    IpidClassifierConfig ipid;
    /// Minimum responses per protocol for its features to count as present.
    std::size_t min_responses = 2;
};

/// Extracts the Table 1 feature vector from a completed probe exchange.
[[nodiscard]] FeatureVector extract_features(const probe::TargetProbeResult& result,
                                             const FeatureExtractorConfig& config = {});

}  // namespace lfp::core
