// End-to-end LFP pipeline (paper Figure 1): probe targets, extract features,
// label via SNMPv3, build the signature database, classify.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/feature.hpp"
#include "core/labeler.hpp"
#include "core/signature_db.hpp"
#include "probe/campaign.hpp"
#include "util/thread_pool.hpp"

namespace lfp::core {

/// Everything the pipeline knows about one probed target.
struct TargetRecord {
    probe::TargetProbeResult probes;
    FeatureVector features;
    Signature signature;
    std::optional<stack::Vendor> snmp_vendor;
    Classification lfp;  ///< filled by classify_measurement()

    /// LFP-responsive: at least one protocol yielded extractable features.
    [[nodiscard]] bool lfp_responsive() const noexcept { return !features.empty(); }
    [[nodiscard]] bool responsive() const noexcept {
        return lfp_responsive() || snmp_vendor.has_value() || probes.any_response();
    }
};

/// One dataset's worth of probed targets plus Table 3 style aggregates.
struct Measurement {
    std::string name;
    std::vector<TargetRecord> records;

    [[nodiscard]] std::size_t responsive_count() const;
    [[nodiscard]] std::size_t snmp_count() const;
    [[nodiscard]] std::size_t snmp_and_lfp_count() const;
    [[nodiscard]] std::size_t lfp_only_count() const;
};

struct PipelineConfig {
    probe::Campaign::Config campaign;
    FeatureExtractorConfig extractor;
    /// Worker pool size for sharded feature extraction and classification.
    /// 1 = single-threaded (default), 0 = one shard per hardware thread.
    /// Any value yields identical output: shards are merged by target index.
    std::size_t worker_threads = 1;
    /// Records per extraction shard.
    std::size_t shard_grain = 64;
};

class LfpPipeline {
  public:
    explicit LfpPipeline(probe::ProbeTransport& transport)
        : LfpPipeline(transport, PipelineConfig{}) {}
    LfpPipeline(probe::ProbeTransport& transport, PipelineConfig config);

    /// Probes every target and assembles records (steps 1-2 of Figure 1).
    [[nodiscard]] Measurement measure(std::string name,
                                      std::span<const net::IPv4Address> targets);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return campaign_.packets_sent(); }

    /// Builds the signature database from the labeled subset of the given
    /// measurements (step 3). Returns a finalized database.
    [[nodiscard]] static SignatureDatabase build_database(
        std::span<const Measurement> measurements, SignatureDbConfig config = {});

    /// Classifies every record in place (steps 4-5).
    static void classify_measurement(Measurement& measurement, const SignatureDatabase& database,
                                     LfpClassifier::Options options = {});

  private:
    probe::Campaign campaign_;
    PipelineConfig config_;
    util::ThreadPool pool_;
};

}  // namespace lfp::core
