// End-to-end LFP pipeline (paper Figure 1): probe targets, extract features,
// label via SNMPv3, build the signature database, classify.
//
// LfpPipeline is the classic single-transport entry point, kept as a thin
// single-vantage wrapper over the CensusRunner (core/census.hpp) — whose
// measure() is itself a collecting-sink adapter over the streaming engine —
// so existing call sites keep compiling. New code — anything that wants
// several vantage transports, explicit lane assignment, or incremental
// record consumption — should build a CensusPlan and drive a CensusRunner
// (run()/measure()/stream() with a RecordSink chain) directly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "core/labeler.hpp"
#include "core/measurement.hpp"

namespace lfp::core {

struct PipelineConfig {
    probe::Campaign::Config campaign;
    FeatureExtractorConfig extractor;
    /// Worker pool size for sharded feature extraction and classification.
    /// 1 = single-threaded (default), 0 = one shard per hardware thread.
    /// Any value yields identical output: shards are merged by target index.
    std::size_t worker_threads = 1;
    /// Records per extraction shard.
    std::size_t shard_grain = 64;
};

class LfpPipeline {
  public:
    explicit LfpPipeline(probe::ProbeTransport& transport)
        : LfpPipeline(transport, PipelineConfig{}) {}
    LfpPipeline(probe::ProbeTransport& transport, PipelineConfig config);

    /// Probes every target and assembles records (steps 1-2 of Figure 1).
    [[nodiscard]] Measurement measure(std::string name,
                                      std::span<const net::IPv4Address> targets);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept {
        return runner_.packets_sent();
    }

    /// Builds the signature database from the labeled subset of the given
    /// measurements (step 3). Returns a finalized database. Aggregation is
    /// sharded per measurement across `worker_threads` (1 = serial, 0 = one
    /// per hardware thread); the merged database is identical at any width.
    [[nodiscard]] static SignatureDatabase build_database(
        std::span<const Measurement> measurements, SignatureDbConfig config = {},
        std::size_t worker_threads = 1);

    /// Classifies every record in place (steps 4-5), sharded across
    /// `worker_threads` with deterministic index-order merge.
    static void classify_measurement(Measurement& measurement,
                                     const SignatureDatabase& database,
                                     LfpClassifier::Options options = {},
                                     std::size_t worker_threads = 1,
                                     std::size_t shard_grain = 64);

  private:
    CensusRunner runner_;
};

}  // namespace lfp::core
