#include "core/signature.hpp"

#include <sstream>

namespace lfp::core {

namespace {

void append_tristate(std::ostringstream& out, TriState t) { out << to_string(t) << ' '; }

void append_ipid(std::ostringstream& out, IpidClass c) { out << short_code(c) << ' '; }

void append_number(std::ostringstream& out, unsigned value, bool present) {
    if (present) {
        out << value << ' ';
    } else {
        out << "- ";
    }
}

}  // namespace

Signature Signature::from_features(const FeatureVector& features) {
    Signature signature;
    signature.mask_ = features.protocol_mask;

    // Table 1 field order; Table 6 renders rows in exactly this layout.
    std::ostringstream out;
    append_tristate(out, features.icmp_ipid_echo);
    append_ipid(out, features.ipid_icmp);
    append_ipid(out, features.ipid_tcp);
    append_ipid(out, features.ipid_udp);
    append_tristate(out, features.shared_all);
    append_tristate(out, features.shared_tcp_icmp);
    append_tristate(out, features.shared_udp_icmp);
    append_tristate(out, features.shared_tcp_udp);
    const bool has_icmp = features.has(probe::ProtoIndex::icmp);
    const bool has_tcp = features.has(probe::ProtoIndex::tcp);
    const bool has_udp = features.has(probe::ProtoIndex::udp);
    append_number(out, features.ittl_udp, has_udp);
    append_number(out, features.ittl_icmp, has_icmp);
    append_number(out, features.ittl_tcp, has_tcp);
    append_number(out, features.size_icmp, has_icmp);
    append_number(out, features.size_tcp, has_tcp);
    append_number(out, features.size_udp, has_udp);
    if (features.tcp_rst_seq_nonzero == TriState::unknown) {
        out << '-';
    } else {
        out << (features.tcp_rst_seq_nonzero == TriState::yes ? '1' : '0');
    }
    signature.key_ = std::move(out).str();
    return signature;
}

Signature Signature::from_parts(std::string key, std::uint8_t protocol_mask) {
    Signature signature;
    signature.key_ = std::move(key);
    signature.mask_ = protocol_mask & 0b111;
    return signature;
}

std::string Signature::protocols() const {
    std::string out;
    auto append = [&out](const char* name) {
        if (!out.empty()) out += " & ";
        out += name;
    };
    if ((mask_ & 0b001) != 0) append("ICMP");
    if ((mask_ & 0b010) != 0) append("TCP");
    if ((mask_ & 0b100) != 0) append("UDP");
    return out.empty() ? "none" : out;
}

}  // namespace lfp::core
