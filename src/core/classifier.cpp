#include "core/classifier.hpp"

namespace lfp::core {

std::string_view to_string(MatchKind kind) noexcept {
    switch (kind) {
        case MatchKind::unique_full: return "unique";
        case MatchKind::unique_partial: return "partial-unique";
        case MatchKind::non_unique: return "non-unique";
        case MatchKind::none: return "none";
    }
    return "?";
}

Classification LfpClassifier::classify(const FeatureVector& features) const {
    return classify(Signature::from_features(features));
}

Classification LfpClassifier::classify(const Signature& signature) const {
    Classification result;
    if (signature.is_empty()) return result;
    if (signature.is_partial() && !options_.use_partial) return result;

    const SignatureStats* stats = database_->lookup(signature);
    if (stats == nullptr) return result;

    if (stats->unique()) {
        result.vendor = stats->dominant_vendor();
        result.kind = signature.is_full() ? MatchKind::unique_full : MatchKind::unique_partial;
        result.confidence = 1.0;
        return result;
    }

    result.kind = MatchKind::non_unique;
    if (options_.majority_mode) {
        result.vendor = stats->dominant_vendor();
        result.confidence = stats->dominant_share();
    }
    return result;
}

}  // namespace lfp::core
