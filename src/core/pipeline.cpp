#include "core/pipeline.hpp"

namespace lfp::core {

std::size_t Measurement::responsive_count() const {
    std::size_t count = 0;
    for (const auto& record : records) {
        if (record.responsive()) ++count;
    }
    return count;
}

std::size_t Measurement::snmp_count() const {
    std::size_t count = 0;
    for (const auto& record : records) {
        if (record.snmp_vendor) ++count;
    }
    return count;
}

std::size_t Measurement::snmp_and_lfp_count() const {
    // The paper's "SNMPv3 ∩ LFP" column counts IPs answering SNMPv3 *and all
    // nine* LFP probes — the population signatures are extracted from.
    std::size_t count = 0;
    for (const auto& record : records) {
        if (record.snmp_vendor && record.features.complete()) ++count;
    }
    return count;
}

std::size_t Measurement::lfp_only_count() const {
    std::size_t count = 0;
    for (const auto& record : records) {
        if (!record.snmp_vendor && record.lfp_responsive()) ++count;
    }
    return count;
}

LfpPipeline::LfpPipeline(probe::ProbeTransport& transport, PipelineConfig config)
    : campaign_(transport, config.campaign), config_(config),
      pool_(config.worker_threads) {}

Measurement LfpPipeline::measure(std::string name, std::span<const net::IPv4Address> targets) {
    Measurement measurement;
    measurement.name = std::move(name);

    // Step 1: the probe engine owns I/O ordering (window per campaign
    // config); results come back in target order whatever the window.
    auto probed = campaign_.run(targets);

    // Step 2: feature extraction is pure per-record work — shard it across
    // the pool and merge by index so the output is identical at any width.
    measurement.records.resize(probed.size());
    TargetRecord* records = measurement.records.data();
    probe::TargetProbeResult* probes = probed.data();
    pool_.parallel_for(probed.size(), config_.shard_grain,
                       [this, records, probes](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                               TargetRecord& record = records[i];
                               record.probes = std::move(probes[i]);
                               record.features =
                                   extract_features(record.probes, config_.extractor);
                               record.signature = Signature::from_features(record.features);
                               record.snmp_vendor = snmp_vendor_label(record.probes);
                           }
                       });
    return measurement;
}

SignatureDatabase LfpPipeline::build_database(std::span<const Measurement> measurements,
                                              SignatureDbConfig config) {
    SignatureDatabase database(config);
    for (const Measurement& measurement : measurements) {
        for (const TargetRecord& record : measurement.records) {
            if (!record.snmp_vendor || record.features.empty()) continue;
            database.add_labeled(record.signature, *record.snmp_vendor);
        }
    }
    database.finalize();
    return database;
}

void LfpPipeline::classify_measurement(Measurement& measurement,
                                       const SignatureDatabase& database,
                                       LfpClassifier::Options options) {
    const LfpClassifier classifier(database, options);
    for (TargetRecord& record : measurement.records) {
        record.lfp = classifier.classify(record.signature);
    }
}

}  // namespace lfp::core
