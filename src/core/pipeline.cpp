#include "core/pipeline.hpp"

namespace lfp::core {

namespace {

CensusPlan single_vantage_plan(probe::ProbeTransport& transport, const PipelineConfig& config) {
    CensusPlan plan;
    plan.vantages = {&transport};
    plan.campaign = config.campaign;
    plan.extractor = config.extractor;
    plan.worker_threads = config.worker_threads;
    plan.shard_grain = config.shard_grain;
    return plan;
}

}  // namespace

LfpPipeline::LfpPipeline(probe::ProbeTransport& transport, PipelineConfig config)
    : runner_(single_vantage_plan(transport, config)) {}

Measurement LfpPipeline::measure(std::string name, std::span<const net::IPv4Address> targets) {
    return runner_.measure(std::move(name), targets);
}

SignatureDatabase LfpPipeline::build_database(std::span<const Measurement> measurements,
                                              SignatureDbConfig config,
                                              std::size_t worker_threads) {
    util::ThreadPool pool(worker_threads);
    return build_signature_database(measurements, config, pool);
}

void LfpPipeline::classify_measurement(Measurement& measurement,
                                       const SignatureDatabase& database,
                                       LfpClassifier::Options options,
                                       std::size_t worker_threads, std::size_t shard_grain) {
    util::ThreadPool pool(worker_threads);
    classify_records(measurement, database, options, pool, shard_grain);
}

}  // namespace lfp::core
