// Incremental record consumers: the streaming counterpart of the
// materialise-everything Measurement. CensusRunner::stream() drives a
// RecordSink with one fully assembled TargetRecord per target, in strictly
// increasing global-index order, *while later targets are still being
// probed* — so signature aggregation and classification overlap the census
// instead of waiting behind it.
//
// Sinks compose as a chain: each decorating sink does its per-record work
// and forwards the record downstream (SignatureAbsorbSink feeds the
// database, ClassifySink stamps record.lfp), with a CollectingSink at the
// tail whenever the caller also wants the classic Measurement. The batch
// entry points (CensusRunner::measure, LfpPipeline::measure,
// ExperimentWorld) are exactly that: thin adapters over a collecting sink.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/measurement.hpp"
#include "core/signature_db.hpp"
#include "util/result.hpp"

namespace lfp::core {

/// Consumer of a census record stream. accept() is called once per target
/// in strictly increasing global-index order, on the streaming thread;
/// finish() follows the last record of the stream exactly once.
class RecordSink {
  public:
    virtual ~RecordSink() = default;

    virtual void accept(std::uint64_t global_index, TargetRecord&& record) = 0;
    virtual void finish() {}
};

/// The adapter back to batch land: collects the stream into a Measurement.
class CollectingSink final : public RecordSink {
  public:
    explicit CollectingSink(std::string name) { measurement_.name = std::move(name); }

    void reserve(std::size_t records) { measurement_.records.reserve(records); }

    void accept(std::uint64_t /*global_index*/, TargetRecord&& record) override {
        // Tally while the record streams by, so Measurement's Table 3
        // counts never have to rescan the collected vector.
        tallies_.add(record);
        measurement_.records.push_back(std::move(record));
    }

    /// Moves the collected Measurement out (with its streaming tallies
    /// pre-installed); call after the stream finished.
    [[nodiscard]] Measurement take() {
        measurement_.set_counts(tallies_);
        return std::move(measurement_);
    }

  private:
    Measurement measurement_;
    MeasurementCounts tallies_;
};

/// Streams labeled signatures into an (unfinalized) SignatureDatabase as
/// records complete — the per-record form of the sharded build_database
/// stage. Absorbing the same records in any grouping yields the same
/// totals (counts are additive), so a database fed by this sink across
/// several datasets and then finalized is byte-identical to the batch
/// build. Forwards every record downstream when a next sink is given.
///
/// Pass-aware mode (Options::retract_superseded): a multi-pass producer may
/// feed the sink *per pass* — the same global index arrives again whenever a
/// retry pass upgraded that target's record. The sink then retracts the
/// superseded record's absorbed contribution before absorbing the upgrade,
/// so after any add/retract sequence the database holds exactly what a
/// final-records-only absorption would — signature aggregation can overlap
/// multi-pass probing instead of waiting for the last pass (the serving
/// layer's incremental snapshot build rides this). Without the option the
/// classic stream contract applies: each index exactly once.
struct AbsorbOptions {
    /// Accept repeated global indices, retracting the previously absorbed
    /// contribution of a superseded record before absorbing its upgrade.
    bool retract_superseded = false;
};

class SignatureAbsorbSink final : public RecordSink {
  public:
    using Options = AbsorbOptions;

    explicit SignatureAbsorbSink(SignatureDatabase& database, RecordSink* next = nullptr,
                                 Options options = {})
        : database_(&database), next_(next), options_(options) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        if (options_.retract_superseded) {
            if (auto it = absorbed_.find(global_index); it != absorbed_.end()) {
                database_->retract_labeled(it->second.signature, it->second.vendor);
                absorbed_.erase(it);
            }
        }
        if (record.snmp_vendor && !record.features.empty()) {
            database_->add_labeled(record.signature, *record.snmp_vendor);
            if (options_.retract_superseded) {
                absorbed_.emplace(global_index,
                                  Absorbed{record.signature, *record.snmp_vendor});
            }
        }
        if (next_ != nullptr) next_->accept(global_index, std::move(record));
    }

    void finish() override {
        if (next_ != nullptr) next_->finish();
    }

  private:
    struct Absorbed {
        Signature signature;
        stack::Vendor vendor;
    };

    SignatureDatabase* database_;
    RecordSink* next_;
    Options options_;
    /// Pass-aware mode only: what each global index last contributed, so a
    /// superseding record can withdraw it.
    std::unordered_map<std::uint64_t, Absorbed> absorbed_;
};

/// Collects the retry population for multi-pass probing as records stream
/// by, forwarding every record downstream untouched. A target is a retry
/// candidate when its signature is *incomplete* in the paper's Table 4
/// sense — loss-shaped (a spoken protocol answered some rounds but not
/// all: packets demonstrably dropped) or missing-protocol (the target
/// proved it is alive on one protocol while another stayed silent). Fully
/// silent targets are filtering-shaped, not loss-shaped, and are skipped
/// unless Options::retry_silent opts them in — re-probing a dead address
/// parks a window slot for the full response timeout every pass and almost
/// never converts.
///
/// CensusRunner's multi-pass loop (stream_passes/run_passes) plants this
/// sink at the head of the chain on pass 0 and feeds retry_indices() into
/// pass 1 under shifted ID bases; later passes consult the static
/// incomplete() predicate directly over the *merged* records (a MergeSink
/// consumes the retry stream), so the merged state — not the raw retry
/// result — decides what the next pass still re-probes.
struct RetryOptions {
    /// Also retry targets that answered nothing at all. Off by default
    /// (silence is filtering-shaped, see RetrySink); turn it on for
    /// hitlists known to be responsive, where total silence really does
    /// mean every probe was lost.
    bool retry_silent = false;
    /// Also retry targets whose *only* missing datum is the SNMP discovery
    /// answer. Off by default: in the wild, SNMP silence is overwhelmingly
    /// filtering (the paper's Table 3 — SNMPv3 answers are a small minority
    /// of the responsive population), so retrying every SNMP-silent target
    /// would re-probe most of the census every pass for almost no converts.
    /// Turn it on for hitlists known to speak SNMPv3, where a missing
    /// answer really is a lost packet worth a fresh msgID lane.
    bool retry_missing_snmp = false;
    /// Retry targets that proved they are alive on one protocol while
    /// another stayed entirely silent (missing-protocol). On by default —
    /// the multi-pass contract chases every incomplete signature — but on
    /// live populations protocol-level silence is mostly *policy* (a
    /// router that answers ICMP and filters TCP never converts, so every
    /// pass re-probes it for nothing); turn it off there to retry only the
    /// genuinely loss-shaped intra-protocol gaps.
    bool retry_missing_protocol = true;
};

class RetrySink final : public RecordSink {
  public:
    /// Namespace-level so it can serve as an in-class default argument
    /// (a nested struct's member initializers are not parsed until the
    /// enclosing class is complete).
    using Options = RetryOptions;

    explicit RetrySink(RecordSink* next = nullptr, Options options = {})
        : next_(next), options_(options) {}

    /// The retry predicate on a bare response mask (see probe_response_mask)
    /// — the form the spill path uses, where only the 10-bit topology of
    /// each record stays in RAM. The record form below is implemented via
    /// this one, so the two can never disagree.
    [[nodiscard]] static constexpr bool incomplete_mask(std::uint16_t mask,
                                                        const Options& options = {}) noexcept {
        if (mask_all_protocols_responsive(mask)) {
            // Complete signature; only the (independent) SNMP exchange can
            // still be missing, and only opted-in hitlists chase it.
            return options.retry_missing_snmp && (mask & kSnmpAnsweredBit) == 0;
        }
        // Intra-protocol gaps are drop-shaped evidence: always worth a
        // fresh pass.
        if (mask_partially_responsive(mask)) return true;
        // Alive on some protocol, entirely silent on another: loss or
        // policy — the option decides which way to bet.
        if (mask_any_response(mask)) return options.retry_missing_protocol;
        return options.retry_silent;
    }

    /// The retry predicate, exposed so tests and callers can ask the same
    /// question of any record: true when another pass could plausibly
    /// complete this signature.
    [[nodiscard]] static bool incomplete(const TargetRecord& record,
                                         const Options& options = {}) {
        return incomplete_mask(probe_response_mask(record.probes), options);
    }

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        if (incomplete(record, options_)) retry_indices_.push_back(global_index);
        if (next_ != nullptr) next_->accept(global_index, std::move(record));
    }

    void finish() override {
        if (next_ != nullptr) next_->finish();
    }

    /// Global indices of the retry population, in stream (= global index)
    /// order.
    [[nodiscard]] const std::vector<std::uint64_t>& retry_indices() const noexcept {
        return retry_indices_;
    }

  private:
    RecordSink* next_;
    Options options_;
    std::vector<std::uint64_t> retry_indices_;
};

/// Classifies each record against a *finalized* database as it streams by —
/// the per-record form of classify_records, for censuses run against an
/// existing signature corpus: records leave the wire already labeled.
class ClassifySink final : public RecordSink {
  public:
    explicit ClassifySink(const SignatureDatabase& database,
                          LfpClassifier::Options options = {}, RecordSink* next = nullptr)
        : classifier_(database, options), next_(next) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        record.lfp = classifier_.classify(record.signature);
        if (next_ != nullptr) next_->accept(global_index, std::move(record));
    }

    void finish() override {
        if (next_ != nullptr) next_->finish();
    }

  private:
    LfpClassifier classifier_;
    RecordSink* next_;
};

// ---------------------------------------------------------------------------
// Spill-to-disk storage

struct SpillConfig {
    /// Directory for segment files. Empty → $LFP_SPILL_DIR → the system
    /// temp directory.
    std::string directory;
    /// Fixed-size records per on-disk segment (the flush/seek granularity).
    /// 64Ki records ≈ 7 MB per segment at the current record width.
    std::size_t segment_records = std::size_t{1} << 16;
    /// Leave segment files on disk at destruction (debugging/post-mortem);
    /// by default the sink removes everything it wrote.
    bool keep_segments = false;
};

/// RecordSink that appends fixed-width CompactRecords to size-capped disk
/// segments, so a census of any size holds at most one segment of records
/// in RAM (the unflushed tail) plus two bytes per target (the response-mask
/// index that drives retry selection and merge improvement — see
/// probe_response_mask).
///
/// Records arrive in strictly increasing, gap-free global-index order (the
/// stream contract); `index_base` anchors global index → file offset.
/// Retry passes upgrade spilled records in place via replace() — records
/// are fixed-width, so an upgrade is one positioned write, no rewrite of
/// the segment. drain() re-reads everything sequentially, expands each
/// record back to a TargetRecord, and feeds a downstream sink in order —
/// the bridge back to the in-memory pipeline stages.
///
/// Single-threaded like every RecordSink (driven by the census consumer
/// thread). I/O errors throw std::runtime_error — a half-written spill is
/// not a census.
class SpillSink final : public RecordSink {
  public:
    explicit SpillSink(SpillConfig config = {}, std::uint64_t index_base = 0);
    ~SpillSink() override;

    SpillSink(const SpillSink&) = delete;
    SpillSink& operator=(const SpillSink&) = delete;

    void accept(std::uint64_t global_index, TargetRecord&& record) override;

    /// Appends a compact record; `global_index` must be exactly
    /// index_base() + size() (the stream order contract, asserted).
    void append(std::uint64_t global_index, const CompactRecord& record);

    /// Overwrites the record at `global_index` (flushed segment or tail).
    void replace(std::uint64_t global_index, const CompactRecord& record);

    /// Reads one record back (seeks for flushed segments; RAM for the tail).
    [[nodiscard]] CompactRecord read(std::uint64_t global_index);

    /// The RAM-resident 10-bit response topology of every spilled record —
    /// everything retry selection and merge improvement need.
    [[nodiscard]] std::uint16_t response_mask(std::uint64_t global_index) const {
        return masks_[static_cast<std::size_t>(global_index - index_base_)];
    }
    [[nodiscard]] const std::vector<std::uint16_t>& response_masks() const noexcept {
        return masks_;
    }

    [[nodiscard]] std::size_t size() const noexcept { return masks_.size(); }
    [[nodiscard]] std::uint64_t index_base() const noexcept { return index_base_; }
    [[nodiscard]] std::size_t segments_flushed() const noexcept { return segments_.size(); }
    [[nodiscard]] const std::filesystem::path& directory() const noexcept {
        return directory_;
    }

    /// Sequentially re-reads every record in global-index order, expands it,
    /// and feeds `sink` (without calling its finish() — the caller owns the
    /// stream lifecycle).
    void drain(RecordSink& sink);

    /// Flushes the unflushed tail into a (possibly short) final segment —
    /// the checkpoint-boundary hook: after flush() every accepted record is
    /// on disk and segment_manifest() describes the census completely. Only
    /// legal as the last write-side operation before replace()/drain()
    /// (append() past a short final segment would break the position math,
    /// and is asserted against).
    void flush();

    /// One on-disk segment as the checkpoint manifest records it.
    struct SegmentInfo {
        std::filesystem::path path;
        std::size_t records = 0;
    };

    /// The flushed segment set, in global-index order.
    [[nodiscard]] std::vector<SegmentInfo> segment_manifest() const;

    /// Adopts segments a previous (killed) process wrote, together with the
    /// journaled response-mask index — the crash-resume entry point. The
    /// sink must be empty; every non-final segment must hold exactly
    /// `config.segment_records` records and the counts must sum to
    /// `masks.size()` (throws std::runtime_error otherwise). Adopted
    /// segments are never removed by the destructor regardless of
    /// keep_segments — this sink did not create them alone, and a failed
    /// resume must stay resumable.
    void adopt(std::vector<SegmentInfo> segments, std::vector<std::uint16_t> masks);

    /// Parses one segment file. A truncated tail (crash mid-write) is
    /// tolerated: complete records parse, the partial trailing record is
    /// dropped. A corrupt header throws.
    [[nodiscard]] static std::vector<CompactRecord> read_segment_file(
        const std::filesystem::path& path);

    /// Non-throwing variant: a corrupt or unreadable segment reports as an
    /// error value instead (truncated tails are still tolerated in-band).
    [[nodiscard]] static util::Result<std::vector<CompactRecord>> try_read_segment_file(
        const std::filesystem::path& path);

    /// Salvage read over a segment set: good segments contribute their
    /// records, corrupt ones are skipped and reported (path + reason) so
    /// the caller can keep going with partial data instead of losing the
    /// census. The value is never an error — total loss is simply every
    /// segment landing in `skipped`.
    struct SegmentSalvage {
        std::vector<CompactRecord> records;
        std::vector<std::pair<std::filesystem::path, std::string>> skipped;
    };
    [[nodiscard]] static SegmentSalvage read_segment_files(
        std::span<const std::filesystem::path> paths);

  private:
    struct Segment {
        std::filesystem::path path;
        std::size_t records = 0;
        /// Lazily opened read/write handle for replace()/read(); kept open
        /// because retry merges revisit segments many times.
        std::unique_ptr<std::fstream> stream;
    };

    void flush_tail();
    std::fstream& segment_stream(Segment& segment);

    SpillConfig config_;
    std::filesystem::path directory_;
    std::uint64_t index_base_;
    std::uint64_t sequence_;  ///< distinguishes this sink's files on disk
    bool adopted_ = false;    ///< segments inherited from a killed process
    std::vector<Segment> segments_;
    std::vector<CompactRecord> tail_;        ///< unflushed newest records
    std::vector<std::uint16_t> masks_;       ///< response mask per record
};

}  // namespace lfp::core
