// Incremental record consumers: the streaming counterpart of the
// materialise-everything Measurement. CensusRunner::stream() drives a
// RecordSink with one fully assembled TargetRecord per target, in strictly
// increasing global-index order, *while later targets are still being
// probed* — so signature aggregation and classification overlap the census
// instead of waiting behind it.
//
// Sinks compose as a chain: each decorating sink does its per-record work
// and forwards the record downstream (SignatureAbsorbSink feeds the
// database, ClassifySink stamps record.lfp), with a CollectingSink at the
// tail whenever the caller also wants the classic Measurement. The batch
// entry points (CensusRunner::measure, LfpPipeline::measure,
// ExperimentWorld) are exactly that: thin adapters over a collecting sink.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/measurement.hpp"
#include "core/signature_db.hpp"

namespace lfp::core {

/// Consumer of a census record stream. accept() is called once per target
/// in strictly increasing global-index order, on the streaming thread;
/// finish() follows the last record of the stream exactly once.
class RecordSink {
  public:
    virtual ~RecordSink() = default;

    virtual void accept(std::uint64_t global_index, TargetRecord&& record) = 0;
    virtual void finish() {}
};

/// The adapter back to batch land: collects the stream into a Measurement.
class CollectingSink final : public RecordSink {
  public:
    explicit CollectingSink(std::string name) { measurement_.name = std::move(name); }

    void reserve(std::size_t records) { measurement_.records.reserve(records); }

    void accept(std::uint64_t /*global_index*/, TargetRecord&& record) override {
        measurement_.records.push_back(std::move(record));
    }

    /// Moves the collected Measurement out; call after the stream finished.
    [[nodiscard]] Measurement take() { return std::move(measurement_); }

  private:
    Measurement measurement_;
};

/// Streams labeled signatures into an (unfinalized) SignatureDatabase as
/// records complete — the per-record form of the sharded build_database
/// stage. Absorbing the same records in any grouping yields the same
/// totals (counts are additive), so a database fed by this sink across
/// several datasets and then finalized is byte-identical to the batch
/// build. Forwards every record downstream when a next sink is given.
class SignatureAbsorbSink final : public RecordSink {
  public:
    explicit SignatureAbsorbSink(SignatureDatabase& database, RecordSink* next = nullptr)
        : database_(&database), next_(next) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        if (record.snmp_vendor && !record.features.empty()) {
            database_->add_labeled(record.signature, *record.snmp_vendor);
        }
        if (next_ != nullptr) next_->accept(global_index, std::move(record));
    }

    void finish() override {
        if (next_ != nullptr) next_->finish();
    }

  private:
    SignatureDatabase* database_;
    RecordSink* next_;
};

/// Classifies each record against a *finalized* database as it streams by —
/// the per-record form of classify_records, for censuses run against an
/// existing signature corpus: records leave the wire already labeled.
class ClassifySink final : public RecordSink {
  public:
    explicit ClassifySink(const SignatureDatabase& database,
                          LfpClassifier::Options options = {}, RecordSink* next = nullptr)
        : classifier_(database, options), next_(next) {}

    void accept(std::uint64_t global_index, TargetRecord&& record) override {
        record.lfp = classifier_.classify(record.signature);
        if (next_ != nullptr) next_->accept(global_index, std::move(record));
    }

    void finish() override {
        if (next_ != nullptr) next_->finish();
    }

  private:
    LfpClassifier classifier_;
    RecordSink* next_;
};

}  // namespace lfp::core
