// The signature database (paper §3.5, §4.2–4.3): aggregates labeled feature
// vectors into signatures, applies the minimum-occurrence threshold, and
// partitions signatures into unique / non-unique, full / partial.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/signature.hpp"
#include "stack/vendor.hpp"

namespace lfp::core {

struct SignatureStats {
    std::map<stack::Vendor, std::size_t> vendor_counts;
    std::size_t total = 0;

    [[nodiscard]] bool unique() const noexcept { return vendor_counts.size() == 1; }
    [[nodiscard]] stack::Vendor dominant_vendor() const;
    /// Fraction of samples carrying the dominant vendor's label.
    [[nodiscard]] double dominant_share() const;

    friend bool operator==(const SignatureStats&, const SignatureStats&) = default;
};

struct SignatureDbConfig {
    /// Minimum labeled samples for a signature to be admitted (paper: 20).
    std::size_t min_occurrences = 20;
};

class SignatureDatabase {
  public:
    explicit SignatureDatabase(SignatureDbConfig config = {}) : config_(config) {}

    /// Accumulates `count` labeled samples. Call across *all* datasets
    /// before finalize(); cross-dataset vendor conflicts then surface
    /// naturally as non-unique signatures.
    void add_labeled(const Signature& signature, stack::Vendor vendor, std::size_t count = 1);

    /// Withdraws `count` previously added labeled samples — the inverse of
    /// add_labeled, and the retraction half of pass-aware incremental
    /// absorption: when a retry pass supersedes a record whose signature was
    /// already absorbed, the superseded contribution is retracted before the
    /// upgrade is absorbed, so add/retract sequences land on exactly the
    /// counts a final-records-only absorption would. Mirrors add_labeled's
    /// input filter (empty signatures, unknown vendors, zero counts are
    /// no-ops), and retracting more than was added is a logic error
    /// (asserted). Only valid before finalize().
    void retract_labeled(const Signature& signature, stack::Vendor vendor,
                         std::size_t count = 1);

    /// Folds another (unfinalized) database's accumulated counts into this
    /// one. Counts are additive and keyed by signature, so absorbing shard
    /// databases in any order yields the same totals — the merge step of the
    /// sharded build_database.
    void absorb(const SignatureDatabase& other);

    /// Applies the occurrence threshold and freezes the database.
    void finalize();
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }

    /// Lookup: nullptr when the signature is unknown or below threshold.
    [[nodiscard]] const SignatureStats* lookup(const Signature& signature) const;

    struct Counts {
        std::size_t unique = 0;
        std::size_t non_unique = 0;
    };
    /// Signature counts over full signatures (all three protocols).
    [[nodiscard]] Counts full_signature_counts() const;
    /// Signature counts for one partial protocol mask.
    [[nodiscard]] Counts partial_signature_counts(std::uint8_t mask) const;

    /// All admitted signatures with stats.
    [[nodiscard]] const std::unordered_map<Signature, SignatureStats>& signatures() const {
        return admitted_;
    }

    /// Re-runs threshold admission at a different cutoff (Figure 7
    /// sensitivity sweep) without mutating this database.
    [[nodiscard]] Counts counts_at_threshold(std::size_t min_occurrences) const;

    [[nodiscard]] const SignatureDbConfig& config() const noexcept { return config_; }

  private:
    SignatureDbConfig config_;
    bool finalized_ = false;
    std::unordered_map<Signature, SignatureStats> raw_;
    std::unordered_map<Signature, SignatureStats> admitted_;
};

}  // namespace lfp::core
