#include "core/labeler.hpp"

namespace lfp::core {

std::optional<stack::Vendor> snmp_vendor_label(const probe::TargetProbeResult& result) {
    if (!result.snmp) return std::nullopt;
    const stack::Vendor vendor = stack::vendor_from_enterprise(result.snmp->engine_id.enterprise);
    if (vendor == stack::Vendor::unknown) return std::nullopt;
    return vendor;
}

}  // namespace lfp::core
