// UDP datagram codec (RFC 768).
#pragma once

#include <cstdint>
#include <span>

#include "net/endian.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace lfp::net {

struct UdpDatagram {
    std::uint16_t source_port = 0;
    std::uint16_t destination_port = 0;
    Bytes payload;

    friend bool operator==(const UdpDatagram&, const UdpDatagram&) = default;
};

[[nodiscard]] Bytes serialize_udp(const UdpDatagram& datagram, IPv4Address source,
                                  IPv4Address destination);

[[nodiscard]] util::Result<UdpDatagram> parse_udp(std::span<const std::uint8_t> data,
                                                  IPv4Address source, IPv4Address destination);

}  // namespace lfp::net
