// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace lfp::net {

/// An IPv4 address, stored in host byte order. Cheap value type.
class IPv4Address {
  public:
    constexpr IPv4Address() noexcept = default;
    constexpr explicit IPv4Address(std::uint32_t value) noexcept : value_(value) {}

    static constexpr IPv4Address from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                             std::uint8_t d) noexcept {
        return IPv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                           (std::uint32_t{c} << 8) | std::uint32_t{d});
    }

    /// Parses dotted-quad notation ("192.0.2.1").
    static util::Result<IPv4Address> parse(std::string_view text);

    [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
        return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
    }

    [[nodiscard]] std::string to_string() const;

    /// RFC 1918 private space.
    [[nodiscard]] constexpr bool is_private() const noexcept {
        return in(0x0A000000, 8) || in(0xAC100000, 12) || in(0xC0A80000, 16);
    }
    /// Loopback, link-local, multicast, reserved, or unspecified.
    [[nodiscard]] constexpr bool is_special() const noexcept {
        return in(0x00000000, 8) || in(0x7F000000, 8) || in(0xA9FE0000, 16) ||
               in(0x64400000, 10) || value_ >= 0xE0000000;
    }
    /// Publicly routable unicast: neither private nor special.
    [[nodiscard]] constexpr bool is_routable() const noexcept {
        return !is_private() && !is_special();
    }

    constexpr auto operator<=>(const IPv4Address&) const noexcept = default;

  private:
    [[nodiscard]] constexpr bool in(std::uint32_t network, int prefix_len) const noexcept {
        const std::uint32_t mask =
            prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
        return (value_ & mask) == network;
    }

    std::uint32_t value_ = 0;
};

}  // namespace lfp::net

template <>
struct std::hash<lfp::net::IPv4Address> {
    std::size_t operator()(const lfp::net::IPv4Address& a) const noexcept {
        // Fibonacci hashing spreads sequential addresses (common in our sim).
        return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ULL;
    }
};
