#include "net/udp.hpp"

#include "net/checksum.hpp"

namespace lfp::net {

Bytes serialize_udp(const UdpDatagram& datagram, IPv4Address source, IPv4Address destination) {
    Bytes out;
    out.reserve(8 + datagram.payload.size());
    ByteWriter w(out);
    w.u16(datagram.source_port);
    w.u16(datagram.destination_port);
    w.u16(static_cast<std::uint16_t>(8 + datagram.payload.size()));
    const std::size_t checksum_offset = w.size();
    w.u16(0);
    w.bytes(datagram.payload);
    std::uint16_t checksum = transport_checksum(source, destination, 17, out);
    if (checksum == 0) checksum = 0xFFFF;  // RFC 768: zero means "no checksum"
    w.patch_u16(checksum_offset, checksum);
    return out;
}

util::Result<UdpDatagram> parse_udp(std::span<const std::uint8_t> data, IPv4Address source,
                                    IPv4Address destination) {
    if (data.size() < 8) return util::make_error("UDP header truncated");
    ByteReader in(data);
    UdpDatagram datagram;
    datagram.source_port = in.u16();
    datagram.destination_port = in.u16();
    const std::uint16_t length = in.u16();
    const std::uint16_t checksum = in.u16();
    if (length < 8 || length > data.size()) return util::make_error("bad UDP length");
    if (checksum != 0 && transport_checksum(source, destination, 17, data.first(length)) != 0) {
        return util::make_error("UDP checksum mismatch");
    }
    datagram.payload = in.bytes(static_cast<std::size_t>(length - 8));
    return datagram;
}

}  // namespace lfp::net
