#include "net/ipv4.hpp"

#include "net/checksum.hpp"

namespace lfp::net {

const char* to_string(Protocol p) noexcept {
    switch (p) {
        case Protocol::icmp: return "ICMP";
        case Protocol::tcp: return "TCP";
        case Protocol::udp: return "UDP";
    }
    return "?";
}

void Ipv4Header::serialize(ByteWriter& out) const {
    Bytes scratch;
    scratch.reserve(kSize);
    ByteWriter w(scratch);
    w.u8(0x45);  // version 4, IHL 5
    w.u8(tos);
    w.u16(total_length);
    w.u16(identification);
    w.u16(flags_fragment);
    w.u8(ttl);
    w.u8(static_cast<std::uint8_t>(protocol));
    const std::size_t checksum_offset = w.size();
    w.u16(0);
    w.u32(source.value());
    w.u32(destination.value());
    w.patch_u16(checksum_offset, internet_checksum(scratch));
    out.bytes(scratch);
}

util::Result<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> data) {
    if (data.size() < kSize) return util::make_error("IPv4 header truncated");
    ByteReader in(data.first(kSize));
    const std::uint8_t version_ihl = in.u8();
    if ((version_ihl >> 4) != 4) return util::make_error("not IPv4");
    const std::uint8_t ihl = version_ihl & 0x0F;
    if (ihl != 5) return util::make_error("IPv4 options unsupported");
    Ipv4Header header;
    header.tos = in.u8();
    header.total_length = in.u16();
    header.identification = in.u16();
    header.flags_fragment = in.u16();
    header.ttl = in.u8();
    const std::uint8_t proto = in.u8();
    switch (proto) {
        case 1: header.protocol = Protocol::icmp; break;
        case 6: header.protocol = Protocol::tcp; break;
        case 17: header.protocol = Protocol::udp; break;
        default: return util::make_error("unsupported IP protocol");
    }
    in.u16();  // checksum, verified over the whole header below
    header.source = IPv4Address(in.u32());
    header.destination = IPv4Address(in.u32());
    if (!checksum_ok(data.first(kSize))) return util::make_error("IPv4 checksum mismatch");
    if (header.total_length < kSize) return util::make_error("IPv4 total length too small");
    return header;
}

Bytes build_ipv4_packet(Ipv4Header header, std::span<const std::uint8_t> payload) {
    header.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + payload.size());
    Bytes packet;
    packet.reserve(header.total_length);
    ByteWriter out(packet);
    header.serialize(out);
    out.bytes(payload);
    return packet;
}

bool rewrite_ttl(std::span<std::uint8_t> packet, std::uint8_t new_ttl) {
    if (packet.size() < Ipv4Header::kSize) return false;
    packet[8] = new_ttl;
    packet[10] = 0;
    packet[11] = 0;
    const std::uint16_t checksum = internet_checksum(packet.first(Ipv4Header::kSize));
    packet[10] = static_cast<std::uint8_t>(checksum >> 8);
    packet[11] = static_cast<std::uint8_t>(checksum & 0xFF);
    return true;
}

util::Result<IPv4Address> peek_destination(std::span<const std::uint8_t> packet) {
    if (packet.size() < Ipv4Header::kSize) return util::make_error("packet too short");
    return IPv4Address((static_cast<std::uint32_t>(packet[16]) << 24) |
                       (static_cast<std::uint32_t>(packet[17]) << 16) |
                       (static_cast<std::uint32_t>(packet[18]) << 8) |
                       static_cast<std::uint32_t>(packet[19]));
}

util::Result<std::uint8_t> peek_ttl(std::span<const std::uint8_t> packet) {
    if (packet.size() < Ipv4Header::kSize) return util::make_error("packet too short");
    return packet[8];
}

}  // namespace lfp::net
