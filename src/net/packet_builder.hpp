// Whole-packet construction and parsing: the layer both the prober and the
// simulated routers speak. Every probe and response in this library is a
// fully serialized IPv4 packet built/parsed here.
#pragma once

#include <cstdint>
#include <span>
#include <variant>

#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/result.hpp"

namespace lfp::net {

/// A fully parsed IPv4 packet: header plus protocol body.
struct ParsedPacket {
    Ipv4Header ip;
    std::variant<IcmpMessage, TcpSegment, UdpDatagram> body;

    [[nodiscard]] const IcmpMessage* icmp() const { return std::get_if<IcmpMessage>(&body); }
    [[nodiscard]] const TcpSegment* tcp() const { return std::get_if<TcpSegment>(&body); }
    [[nodiscard]] const UdpDatagram* udp() const { return std::get_if<UdpDatagram>(&body); }
};

/// Parses a complete IPv4 packet, validating every checksum on the way.
[[nodiscard]] util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> data);

/// Common fields for the IP layer of an outgoing packet.
struct IpSendOptions {
    IPv4Address source;
    IPv4Address destination;
    std::uint16_t identification = 0;
    std::uint8_t ttl = 64;
    bool dont_fragment = true;
};

[[nodiscard]] Bytes make_icmp_echo_request(const IpSendOptions& ip, std::uint16_t identifier,
                                           std::uint16_t sequence,
                                           std::span<const std::uint8_t> payload);

[[nodiscard]] Bytes make_icmp_echo_reply(const IpSendOptions& ip, const IcmpEcho& request);

/// Builds an ICMP error (port unreachable / time exceeded) quoting the
/// offending packet. `quote_limit` bounds how many bytes of the offending
/// packet are embedded: RFC 792 minimum is IP header + 8; RFC 1812 routers
/// may quote more — vendors differ, which LFP exploits as a feature.
[[nodiscard]] Bytes make_icmp_error(const IpSendOptions& ip, IcmpType type, std::uint8_t code,
                                    std::span<const std::uint8_t> offending_packet,
                                    std::size_t quote_limit);

[[nodiscard]] Bytes make_tcp_packet(const IpSendOptions& ip, const TcpSegment& segment);

[[nodiscard]] Bytes make_udp_packet(const IpSendOptions& ip, const UdpDatagram& datagram);

}  // namespace lfp::net
