#include "net/tcp.hpp"

#include "net/checksum.hpp"

namespace lfp::net {

std::optional<std::uint16_t> TcpSegment::mss() const {
    for (const auto& opt : options) {
        if (opt.kind == TcpOptionKind::mss && opt.data.size() == 2) {
            return static_cast<std::uint16_t>((opt.data[0] << 8) | opt.data[1]);
        }
    }
    return std::nullopt;
}

namespace {

Bytes serialize_options(const std::vector<TcpOption>& options) {
    Bytes out;
    for (const auto& opt : options) {
        out.push_back(static_cast<std::uint8_t>(opt.kind));
        if (opt.kind == TcpOptionKind::nop || opt.kind == TcpOptionKind::end_of_options) {
            continue;  // single-byte options
        }
        out.push_back(static_cast<std::uint8_t>(2 + opt.data.size()));
        out.insert(out.end(), opt.data.begin(), opt.data.end());
    }
    while (out.size() % 4 != 0) out.push_back(0);  // pad to 32-bit boundary
    return out;
}

util::Result<std::vector<TcpOption>> parse_options(std::span<const std::uint8_t> data) {
    std::vector<TcpOption> options;
    std::size_t pos = 0;
    while (pos < data.size()) {
        const auto kind = static_cast<TcpOptionKind>(data[pos]);
        if (kind == TcpOptionKind::end_of_options) break;
        if (kind == TcpOptionKind::nop) {
            options.push_back({kind, {}});
            ++pos;
            continue;
        }
        if (pos + 1 >= data.size()) return util::make_error("TCP option truncated");
        const std::uint8_t length = data[pos + 1];
        if (length < 2 || pos + length > data.size()) {
            return util::make_error("bad TCP option length");
        }
        TcpOption opt;
        opt.kind = kind;
        opt.data.assign(data.begin() + static_cast<std::ptrdiff_t>(pos + 2),
                        data.begin() + static_cast<std::ptrdiff_t>(pos + length));
        options.push_back(std::move(opt));
        pos += length;
    }
    return options;
}

}  // namespace

Bytes serialize_tcp(const TcpSegment& segment, IPv4Address source, IPv4Address destination) {
    const Bytes options = serialize_options(segment.options);
    const std::uint8_t data_offset_words = static_cast<std::uint8_t>(5 + options.size() / 4);

    Bytes out;
    out.reserve(20 + options.size() + segment.payload.size());
    ByteWriter w(out);
    w.u16(segment.source_port);
    w.u16(segment.destination_port);
    w.u32(segment.sequence);
    w.u32(segment.acknowledgment);
    w.u8(static_cast<std::uint8_t>(data_offset_words << 4));
    w.u8(segment.flags.to_byte());
    w.u16(segment.window);
    const std::size_t checksum_offset = w.size();
    w.u16(0);
    w.u16(segment.urgent_pointer);
    w.bytes(options);
    w.bytes(segment.payload);
    w.patch_u16(checksum_offset,
                transport_checksum(source, destination, 6, out));
    return out;
}

util::Result<TcpSegment> parse_tcp(std::span<const std::uint8_t> data, IPv4Address source,
                                   IPv4Address destination) {
    if (data.size() < 20) return util::make_error("TCP header truncated");
    if (transport_checksum(source, destination, 6, data) != 0) {
        return util::make_error("TCP checksum mismatch");
    }
    ByteReader in(data);
    TcpSegment segment;
    segment.source_port = in.u16();
    segment.destination_port = in.u16();
    segment.sequence = in.u32();
    segment.acknowledgment = in.u32();
    const std::uint8_t data_offset_words = static_cast<std::uint8_t>(in.u8() >> 4);
    if (data_offset_words < 5) return util::make_error("bad TCP data offset");
    const std::size_t header_len = static_cast<std::size_t>(data_offset_words) * 4;
    if (header_len > data.size()) return util::make_error("TCP data offset beyond segment");
    segment.flags = TcpFlags::from_byte(in.u8());
    segment.window = in.u16();
    in.u16();  // checksum
    segment.urgent_pointer = in.u16();
    auto options = parse_options(data.subspan(20, header_len - 20));
    if (!options) return options.error();
    segment.options = std::move(options).value();
    segment.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(header_len), data.end());
    return segment;
}

}  // namespace lfp::net
