// IPv4 header codec (RFC 791).
#pragma once

#include <cstdint>
#include <span>

#include "net/endian.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace lfp::net {

enum class Protocol : std::uint8_t {
    icmp = 1,
    tcp = 6,
    udp = 17,
};

[[nodiscard]] const char* to_string(Protocol p) noexcept;

/// Parsed/serializable IPv4 header. Options are not supported (no router in
/// our scope emits them); `ihl` is therefore always 5.
struct Ipv4Header {
    static constexpr std::size_t kSize = 20;
    static constexpr std::uint16_t kFlagDontFragment = 0x4000;

    std::uint8_t tos = 0;
    std::uint16_t total_length = kSize;  ///< header + payload, bytes
    std::uint16_t identification = 0;    ///< the IPID field LFP fingerprints
    std::uint16_t flags_fragment = 0;    ///< flags (3 bits) + fragment offset
    std::uint8_t ttl = 64;
    Protocol protocol = Protocol::icmp;
    IPv4Address source;
    IPv4Address destination;

    /// Serializes the 20-byte header with a correct checksum.
    void serialize(ByteWriter& out) const;

    /// Parses and validates (version, IHL, length, checksum).
    static util::Result<Ipv4Header> parse(std::span<const std::uint8_t> data);

    friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

/// Builds a complete IPv4 packet around an already-serialized payload.
[[nodiscard]] Bytes build_ipv4_packet(Ipv4Header header, std::span<const std::uint8_t> payload);

/// Rewrites the TTL of a serialized IPv4 packet in place and fixes the
/// header checksum. Used by the simulated network to model per-hop decay.
/// Returns false if the buffer is too short to hold an IPv4 header.
bool rewrite_ttl(std::span<std::uint8_t> packet, std::uint8_t new_ttl);

/// Reads the destination address of a serialized IPv4 packet without a full
/// parse (fast path for the simulated switch).
[[nodiscard]] util::Result<IPv4Address> peek_destination(std::span<const std::uint8_t> packet);

/// Reads the TTL byte without a full parse.
[[nodiscard]] util::Result<std::uint8_t> peek_ttl(std::span<const std::uint8_t> packet);

}  // namespace lfp::net
