#include "net/packet_builder.hpp"

#include <algorithm>

namespace lfp::net {

util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> data) {
    auto header = Ipv4Header::parse(data);
    if (!header) return header.error();
    const Ipv4Header& ip = header.value();
    if (ip.total_length > data.size()) return util::make_error("IPv4 packet shorter than length");
    const auto payload = data.subspan(Ipv4Header::kSize, ip.total_length - Ipv4Header::kSize);
    switch (ip.protocol) {
        case Protocol::icmp: {
            auto message = parse_icmp(payload);
            if (!message) return message.error();
            return ParsedPacket{ip, std::move(message).value()};
        }
        case Protocol::tcp: {
            auto segment = parse_tcp(payload, ip.source, ip.destination);
            if (!segment) return segment.error();
            return ParsedPacket{ip, std::move(segment).value()};
        }
        case Protocol::udp: {
            auto datagram = parse_udp(payload, ip.source, ip.destination);
            if (!datagram) return datagram.error();
            return ParsedPacket{ip, std::move(datagram).value()};
        }
    }
    return util::make_error("unreachable protocol");
}

namespace {

Ipv4Header make_ip_header(const IpSendOptions& opts, Protocol protocol) {
    Ipv4Header ip;
    ip.source = opts.source;
    ip.destination = opts.destination;
    ip.identification = opts.identification;
    ip.ttl = opts.ttl;
    ip.protocol = protocol;
    ip.flags_fragment = opts.dont_fragment ? Ipv4Header::kFlagDontFragment : 0;
    return ip;
}

}  // namespace

Bytes make_icmp_echo_request(const IpSendOptions& ip, std::uint16_t identifier,
                             std::uint16_t sequence, std::span<const std::uint8_t> payload) {
    IcmpEcho echo;
    echo.is_reply = false;
    echo.identifier = identifier;
    echo.sequence = sequence;
    echo.payload.assign(payload.begin(), payload.end());
    return build_ipv4_packet(make_ip_header(ip, Protocol::icmp),
                             serialize_icmp(IcmpMessage{std::move(echo)}));
}

Bytes make_icmp_echo_reply(const IpSendOptions& ip, const IcmpEcho& request) {
    IcmpEcho reply = request;
    reply.is_reply = true;
    return build_ipv4_packet(make_ip_header(ip, Protocol::icmp),
                             serialize_icmp(IcmpMessage{std::move(reply)}));
}

Bytes make_icmp_error(const IpSendOptions& ip, IcmpType type, std::uint8_t code,
                      std::span<const std::uint8_t> offending_packet, std::size_t quote_limit) {
    IcmpError error;
    error.type = type;
    error.code = code;
    const std::size_t quoted = std::min(offending_packet.size(), quote_limit);
    error.quoted.assign(offending_packet.begin(),
                        offending_packet.begin() + static_cast<std::ptrdiff_t>(quoted));
    return build_ipv4_packet(make_ip_header(ip, Protocol::icmp),
                             serialize_icmp(IcmpMessage{std::move(error)}));
}

Bytes make_tcp_packet(const IpSendOptions& ip, const TcpSegment& segment) {
    return build_ipv4_packet(make_ip_header(ip, Protocol::tcp),
                             serialize_tcp(segment, ip.source, ip.destination));
}

Bytes make_udp_packet(const IpSendOptions& ip, const UdpDatagram& datagram) {
    return build_ipv4_packet(make_ip_header(ip, Protocol::udp),
                             serialize_udp(datagram, ip.source, ip.destination));
}

}  // namespace lfp::net
