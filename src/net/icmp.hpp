// ICMP message codec (RFC 792): echo request/reply, destination unreachable,
// time exceeded, and source quench — the message types the LFP probe
// exchange uses plus the rate-limit advisory the adaptive window reacts to.
#pragma once

#include <cstdint>
#include <span>
#include <variant>

#include "net/endian.hpp"
#include "util/result.hpp"

namespace lfp::net {

enum class IcmpType : std::uint8_t {
    echo_reply = 0,
    destination_unreachable = 3,
    /// Rate-limit advisory (RFC 792 §"Source Quench"): a router signalling
    /// the sender to slow down. Deprecated on the real Internet (RFC 6633)
    /// but the cleanest explicit wire encoding of "you are being ICMP
    /// rate-limited" — the simulated Internet emits it when its token
    /// bucket runs dry and the probe engine treats it as a back-off signal,
    /// never as a probe answer.
    source_quench = 4,
    echo_request = 8,
    time_exceeded = 11,
};

constexpr std::uint8_t kIcmpCodePortUnreachable = 3;
constexpr std::uint8_t kIcmpCodeTtlExceeded = 0;

/// Echo request or reply. The identifier/sequence let probers match replies
/// to requests; the payload is echoed verbatim by compliant stacks.
struct IcmpEcho {
    bool is_reply = false;
    std::uint16_t identifier = 0;
    std::uint16_t sequence = 0;
    Bytes payload;

    friend bool operator==(const IcmpEcho&, const IcmpEcho&) = default;
};

/// Destination unreachable / time exceeded carry a quote of the offending
/// datagram: its IP header plus at least 8 bytes (RFC 792), possibly more
/// (RFC 1812 allows quoting as much as fits) — a key LFP discriminator.
struct IcmpError {
    IcmpType type = IcmpType::destination_unreachable;
    std::uint8_t code = kIcmpCodePortUnreachable;
    Bytes quoted;

    friend bool operator==(const IcmpError&, const IcmpError&) = default;
};

using IcmpMessage = std::variant<IcmpEcho, IcmpError>;

/// Serializes the ICMP message (type, code, checksum, body).
[[nodiscard]] Bytes serialize_icmp(const IcmpMessage& message);

/// Parses an ICMP payload (the bytes after the IPv4 header).
[[nodiscard]] util::Result<IcmpMessage> parse_icmp(std::span<const std::uint8_t> data);

}  // namespace lfp::net
