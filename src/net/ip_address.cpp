#include "net/ip_address.hpp"

#include <array>
#include <charconv>

namespace lfp::net {

util::Result<IPv4Address> IPv4Address::parse(std::string_view text) {
    std::array<std::uint32_t, 4> octets{};
    std::size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        if (pos >= text.size()) return util::make_error("truncated IPv4 address");
        const char* begin = text.data() + pos;
        const char* end = text.data() + text.size();
        std::uint32_t value = 0;
        auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{} || value > 255 || ptr == begin) {
            return util::make_error("bad IPv4 octet");
        }
        // Reject leading zeros like "01" which some parsers read as octal.
        if (ptr - begin > 1 && *begin == '0') return util::make_error("leading zero in octet");
        octets[static_cast<std::size_t>(i)] = value;
        pos = static_cast<std::size_t>(ptr - text.data());
        if (i < 3) {
            if (pos >= text.size() || text[pos] != '.') {
                return util::make_error("expected '.' in IPv4 address");
            }
            ++pos;
        }
    }
    if (pos != text.size()) return util::make_error("trailing characters in IPv4 address");
    return IPv4Address::from_octets(static_cast<std::uint8_t>(octets[0]),
                                    static_cast<std::uint8_t>(octets[1]),
                                    static_cast<std::uint8_t>(octets[2]),
                                    static_cast<std::uint8_t>(octets[3]));
}

std::string IPv4Address::to_string() const {
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
        if (i != 0) out.push_back('.');
        out += std::to_string(octet(i));
    }
    return out;
}

}  // namespace lfp::net
