// Network-byte-order readers and writers over byte buffers.
//
// All wire formats in this library are big-endian; these helpers are the only
// place byte order is handled, so codecs above them stay arithmetic-free.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace lfp::net {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian fields to a growable buffer.
class ByteWriter {
  public:
    explicit ByteWriter(Bytes& out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }

    void u16(std::uint16_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    }

    void u32(std::uint32_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
        out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
        out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
        out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    }

    void bytes(std::span<const std::uint8_t> data) {
        out_.insert(out_.end(), data.begin(), data.end());
    }

    /// Overwrite a previously written 16-bit field (e.g., a checksum slot).
    void patch_u16(std::size_t offset, std::uint16_t v) {
        out_[offset] = static_cast<std::uint8_t>(v >> 8);
        out_[offset + 1] = static_cast<std::uint8_t>(v & 0xFF);
    }

    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

  private:
    Bytes& out_;
};

/// Reads big-endian fields from a fixed buffer with bounds checking.
class ByteReader {
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return ok_ ? data_.size() - pos_ : 0;
    }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

    std::uint8_t u8() {
        if (!require(1)) return 0;
        return data_[pos_++];
    }

    std::uint16_t u16() {
        if (!require(2)) return 0;
        const std::uint16_t v =
            static_cast<std::uint16_t>(data_[pos_] << 8) | data_[pos_ + 1];
        pos_ += 2;
        return v;
    }

    std::uint32_t u32() {
        if (!require(4)) return 0;
        const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                                (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                                (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                                static_cast<std::uint32_t>(data_[pos_ + 3]);
        pos_ += 4;
        return v;
    }

    /// Copies `n` bytes out; returns an empty vector (and taints the reader)
    /// if fewer remain.
    Bytes bytes(std::size_t n) {
        if (!require(n)) return {};
        Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return out;
    }

    std::span<const std::uint8_t> view(std::size_t n) {
        if (!require(n)) return {};
        auto out = data_.subspan(pos_, n);
        pos_ += n;
        return out;
    }

    void skip(std::size_t n) {
        if (require(n)) pos_ += n;
    }

  private:
    bool require(std::size_t n) {
        if (!ok_ || data_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace lfp::net
