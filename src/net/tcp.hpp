// TCP segment codec (RFC 793) with the option kinds fingerprinters care
// about (MSS, window scale, SACK-permitted, timestamps, NOP/EOL).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/endian.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace lfp::net {

struct TcpFlags {
    bool fin = false;
    bool syn = false;
    bool rst = false;
    bool psh = false;
    bool ack = false;
    bool urg = false;

    [[nodiscard]] std::uint8_t to_byte() const noexcept {
        return static_cast<std::uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) | (rst ? 0x04 : 0) |
                                         (psh ? 0x08 : 0) | (ack ? 0x10 : 0) | (urg ? 0x20 : 0));
    }
    static TcpFlags from_byte(std::uint8_t b) noexcept {
        return TcpFlags{(b & 0x01) != 0, (b & 0x02) != 0, (b & 0x04) != 0,
                        (b & 0x08) != 0, (b & 0x10) != 0, (b & 0x20) != 0};
    }
    friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

enum class TcpOptionKind : std::uint8_t {
    end_of_options = 0,
    nop = 1,
    mss = 2,
    window_scale = 3,
    sack_permitted = 4,
    timestamps = 8,
};

struct TcpOption {
    TcpOptionKind kind = TcpOptionKind::nop;
    Bytes data;  ///< option payload, excluding kind/length bytes

    friend bool operator==(const TcpOption&, const TcpOption&) = default;
};

struct TcpSegment {
    std::uint16_t source_port = 0;
    std::uint16_t destination_port = 0;
    std::uint32_t sequence = 0;
    std::uint32_t acknowledgment = 0;
    TcpFlags flags;
    std::uint16_t window = 0;
    std::uint16_t urgent_pointer = 0;
    std::vector<TcpOption> options;
    Bytes payload;

    [[nodiscard]] std::optional<std::uint16_t> mss() const;

    friend bool operator==(const TcpSegment&, const TcpSegment&) = default;
};

/// Serializes a segment with a correct pseudo-header checksum.
[[nodiscard]] Bytes serialize_tcp(const TcpSegment& segment, IPv4Address source,
                                  IPv4Address destination);

/// Parses the bytes after the IPv4 header; verifies the checksum against the
/// given addresses.
[[nodiscard]] util::Result<TcpSegment> parse_tcp(std::span<const std::uint8_t> data,
                                                 IPv4Address source, IPv4Address destination);

}  // namespace lfp::net
