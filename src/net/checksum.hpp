// RFC 1071 Internet checksum, and the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "net/ip_address.hpp"

namespace lfp::net {

/// Ones'-complement sum of 16-bit words (odd trailing byte zero-padded),
/// folded and complemented — the value placed in IP/ICMP/TCP/UDP headers.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP/UDP checksum including the IPv4 pseudo header
/// (src, dst, zero, protocol, transport length).
[[nodiscard]] std::uint16_t transport_checksum(IPv4Address source, IPv4Address destination,
                                               std::uint8_t protocol,
                                               std::span<const std::uint8_t> segment) noexcept;

/// True if `data` (with its embedded checksum field) verifies: the checksum
/// over the whole blob is zero.
[[nodiscard]] bool checksum_ok(std::span<const std::uint8_t> data) noexcept;

/// RFC 1624 incremental update (eqn 3): the checksum of a packet after one
/// 16-bit word changed from `old_word` to `new_word`, given the checksum
/// `current` from before the change — without re-summing the packet.
/// Chain one call per changed word. Matches a full recomputation
/// bit-for-bit for any packet whose word sum is non-zero (every real IPv4
/// packet: the version/IHL byte alone guarantees it), which is what lets
/// the probe hot loop patch headers in O(changed words); eqn 3 rather than
/// RFC 1141's eqn 2 because the latter mishandles the -0 representative.
[[nodiscard]] std::uint16_t checksum_update(std::uint16_t current, std::uint16_t old_word,
                                            std::uint16_t new_word) noexcept;

}  // namespace lfp::net
