// RFC 1071 Internet checksum, and the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "net/ip_address.hpp"

namespace lfp::net {

/// Ones'-complement sum of 16-bit words (odd trailing byte zero-padded),
/// folded and complemented — the value placed in IP/ICMP/TCP/UDP headers.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP/UDP checksum including the IPv4 pseudo header
/// (src, dst, zero, protocol, transport length).
[[nodiscard]] std::uint16_t transport_checksum(IPv4Address source, IPv4Address destination,
                                               std::uint8_t protocol,
                                               std::span<const std::uint8_t> segment) noexcept;

/// True if `data` (with its embedded checksum field) verifies: the checksum
/// over the whole blob is zero.
[[nodiscard]] bool checksum_ok(std::span<const std::uint8_t> data) noexcept;

}  // namespace lfp::net
