#include "net/checksum.hpp"

namespace lfp::net {

namespace {

std::uint32_t sum_words(std::span<const std::uint8_t> data, std::uint32_t acc) noexcept {
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
        acc += static_cast<std::uint32_t>(data[i] << 8) | data[i + 1];
    }
    if (i < data.size()) {
        acc += static_cast<std::uint32_t>(data[i] << 8);
    }
    return acc;
}

std::uint16_t fold(std::uint32_t acc) noexcept {
    while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
    return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
    return fold(sum_words(data, 0));
}

std::uint16_t transport_checksum(IPv4Address source, IPv4Address destination,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) noexcept {
    std::uint32_t acc = 0;
    acc += source.value() >> 16;
    acc += source.value() & 0xFFFF;
    acc += destination.value() >> 16;
    acc += destination.value() & 0xFFFF;
    acc += protocol;
    acc += static_cast<std::uint32_t>(segment.size());
    return fold(sum_words(segment, acc));
}

bool checksum_ok(std::span<const std::uint8_t> data) noexcept {
    return internet_checksum(data) == 0;
}

std::uint16_t checksum_update(std::uint16_t current, std::uint16_t old_word,
                              std::uint16_t new_word) noexcept {
    // HC' = ~(~HC + ~m + m'), folded. ~HC and ~m are in [0, 0xFFFF], so the
    // 32-bit accumulator cannot overflow before folding.
    std::uint32_t acc = static_cast<std::uint32_t>(static_cast<std::uint16_t>(~current));
    acc += static_cast<std::uint16_t>(~old_word);
    acc += new_word;
    return fold(acc);
}

}  // namespace lfp::net
