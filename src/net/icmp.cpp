#include "net/icmp.hpp"

#include "net/checksum.hpp"

namespace lfp::net {

Bytes serialize_icmp(const IcmpMessage& message) {
    Bytes out;
    ByteWriter w(out);
    if (const auto* echo = std::get_if<IcmpEcho>(&message)) {
        w.u8(static_cast<std::uint8_t>(echo->is_reply ? IcmpType::echo_reply
                                                      : IcmpType::echo_request));
        w.u8(0);
        const std::size_t checksum_offset = w.size();
        w.u16(0);
        w.u16(echo->identifier);
        w.u16(echo->sequence);
        w.bytes(echo->payload);
        w.patch_u16(checksum_offset, internet_checksum(out));
        return out;
    }
    const auto& error = std::get<IcmpError>(message);
    w.u8(static_cast<std::uint8_t>(error.type));
    w.u8(error.code);
    const std::size_t checksum_offset = w.size();
    w.u16(0);
    w.u32(0);  // unused
    w.bytes(error.quoted);
    w.patch_u16(checksum_offset, internet_checksum(out));
    return out;
}

util::Result<IcmpMessage> parse_icmp(std::span<const std::uint8_t> data) {
    if (data.size() < 8) return util::make_error("ICMP message truncated");
    if (!checksum_ok(data)) return util::make_error("ICMP checksum mismatch");
    ByteReader in(data);
    const std::uint8_t type = in.u8();
    const std::uint8_t code = in.u8();
    in.u16();  // checksum
    switch (static_cast<IcmpType>(type)) {
        case IcmpType::echo_reply:
        case IcmpType::echo_request: {
            IcmpEcho echo;
            echo.is_reply = type == static_cast<std::uint8_t>(IcmpType::echo_reply);
            echo.identifier = in.u16();
            echo.sequence = in.u16();
            echo.payload = in.bytes(in.remaining());
            return IcmpMessage{std::move(echo)};
        }
        case IcmpType::destination_unreachable:
        case IcmpType::source_quench:
        case IcmpType::time_exceeded: {
            IcmpError error;
            error.type = static_cast<IcmpType>(type);
            error.code = code;
            in.u32();  // unused field
            error.quoted = in.bytes(in.remaining());
            return IcmpMessage{std::move(error)};
        }
        default: return util::make_error("unsupported ICMP type");
    }
}

}  // namespace lfp::net
