// Persistence for signature databases — the equivalent of the paper's
// published artifact (the derived signature list): a line-oriented text
// format that round-trips the canonical signature strings together with
// their per-vendor sample counts.
//
// Format (one signature per line, '#' comments):
//   <mask-hex> | <canonical signature> | vendor=count[,vendor=count...]
// Example:
//   7 | False r r r False False False False 255 64 64 84 40 56 0 | Juniper=1234
#pragma once

#include <iosfwd>
#include <string>

#include "core/signature_db.hpp"
#include "util/result.hpp"

namespace lfp::io {

/// Serializes every admitted signature (deterministic order).
void save_signatures(std::ostream& out, const core::SignatureDatabase& database);

/// Convenience: write to a file path. Returns false on I/O failure.
bool save_signatures_file(const std::string& path, const core::SignatureDatabase& database);

/// Parses a previously saved database. The result is finalized with the
/// given config (threshold re-applied on load).
[[nodiscard]] util::Result<core::SignatureDatabase> load_signatures(
    std::istream& in, core::SignatureDbConfig config = {});

[[nodiscard]] util::Result<core::SignatureDatabase> load_signatures_file(
    const std::string& path, core::SignatureDbConfig config = {});

/// Re-parses one canonical signature line into a Signature (the inverse of
/// Signature::key() + protocol mask).
[[nodiscard]] util::Result<core::Signature> parse_signature_line(std::string_view mask_field,
                                                                 std::string_view key_field);

}  // namespace lfp::io
