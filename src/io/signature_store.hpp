// Persistence for signature databases — the equivalent of the paper's
// published artifact (the derived signature list): a line-oriented text
// format that round-trips the canonical signature strings together with
// their per-vendor sample counts.
//
// Format (one signature per line, '#' comments):
//   <mask-hex> | <canonical signature> | vendor=count[,vendor=count...]
// Example:
//   7 | False r r r False False False False 255 64 64 84 40 56 0 | Juniper=1234
//
// Databases built by a multi-pass census can carry the pass trajectory as
// '#:'-prefixed metadata lines (comments to older loaders):
//   #: pass 0 probed 100000 upgraded 0 incomplete 1713
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/signature_db.hpp"
#include "util/result.hpp"

namespace lfp::io {

/// Serializes every admitted signature (deterministic order). A non-empty
/// `pass_stats` span is persisted as '#:' metadata lines ahead of the
/// signatures, so the census's retry trajectory travels with the artifact.
void save_signatures(std::ostream& out, const core::SignatureDatabase& database,
                     std::span<const core::PassStats> pass_stats = {});

/// Convenience: write to a file path. Returns false on I/O failure.
bool save_signatures_file(const std::string& path, const core::SignatureDatabase& database,
                          std::span<const core::PassStats> pass_stats = {});

/// Parses a previously saved database. The result is finalized with the
/// given config (threshold re-applied on load). When `pass_stats` is
/// non-null, any '#:' pass-trajectory lines are parsed into it (entry p =
/// pass p); files without the metadata leave it empty. A '#:' line that
/// fails to parse (truncated mid-write, corrupted) is a structured error —
/// the metadata is this format's own trailer, and a loader that can see it
/// is damaged must say so rather than best-effort skip it, so a serving
/// layer can refuse to publish a corrupt snapshot.
[[nodiscard]] util::Result<core::SignatureDatabase> load_signatures(
    std::istream& in, core::SignatureDbConfig config = {},
    std::vector<core::PassStats>* pass_stats = nullptr);

[[nodiscard]] util::Result<core::SignatureDatabase> load_signatures_file(
    const std::string& path, core::SignatureDbConfig config = {},
    std::vector<core::PassStats>* pass_stats = nullptr);

/// Re-parses one canonical signature line into a Signature (the inverse of
/// Signature::key() + protocol mask).
[[nodiscard]] util::Result<core::Signature> parse_signature_line(std::string_view mask_field,
                                                                 std::string_view key_field);

}  // namespace lfp::io
