#include "io/csv_export.hpp"

#include <ostream>

namespace lfp::io {

std::string csv_escape(std::string_view field) {
    const bool needs_quoting = field.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quoting) return std::string(field);
    std::string out;
    out.reserve(field.size() + 2);
    out.push_back('"');
    for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void export_measurement_csv(std::ostream& out, const core::Measurement& measurement) {
    out << "ip,responsive_protocols,snmp_vendor,lfp_vendor,match_kind,pass,signature\n";
    for (const auto& record : measurement.records) {
        out << record.probes.target.to_string() << ','
            << record.probes.responsive_protocol_count() << ','
            << (record.snmp_vendor ? stack::to_string(*record.snmp_vendor) : "") << ','
            << (record.lfp.vendor ? stack::to_string(*record.lfp.vendor) : "") << ','
            << core::to_string(record.lfp.kind) << ','
            << record.pass << ','
            << csv_escape(record.signature.key()) << '\n';
    }
}

void export_pass_stats_csv(std::ostream& out, std::span<const core::PassStats> stats) {
    out << "pass,probed,upgraded,incomplete\n";
    for (std::size_t pass = 0; pass < stats.size(); ++pass) {
        out << pass << ',' << stats[pass].probed << ',' << stats[pass].upgraded << ','
            << stats[pass].incomplete << '\n';
    }
}

void export_traceroutes_csv(std::ostream& out, const sim::TracerouteDataset& dataset) {
    out << "src_asn,dst_asn,src,dst,hops\n";
    for (const auto& trace : dataset.traces) {
        out << trace.source_asn << ',' << trace.destination_asn << ','
            << trace.source.to_string() << ',' << trace.destination.to_string() << ',';
        for (std::size_t i = 0; i < trace.hops.size(); ++i) {
            if (i != 0) out << ';';
            out << trace.hops[i].to_string();
        }
        out << '\n';
    }
}

void export_alias_sets_csv(std::ostream& out, const sim::ItdkDataset& dataset) {
    out << "router_id,addresses\n";
    for (const auto& set : dataset.alias_sets) {
        out << set.router_index << ',';
        for (std::size_t i = 0; i < set.addresses.size(); ++i) {
            if (i != 0) out << ';';
            out << set.addresses[i].to_string();
        }
        out << '\n';
    }
}

void export_as_coverage_csv(std::ostream& out,
                            const std::vector<analysis::AsCoverage>& coverage) {
    out << "asn,routers,identified,vendors,dominant,dominant_share\n";
    for (const auto& entry : coverage) {
        out << entry.asn << ',' << entry.routers_total << ',' << entry.routers_identified << ','
            << entry.vendor_count() << ',';
        if (auto vendor = entry.dominant(0.0); vendor && entry.routers_identified > 0) {
            out << stack::to_string(*vendor) << ','
                << static_cast<double>(entry.vendor_counts.at(*vendor)) /
                       static_cast<double>(entry.routers_identified);
        } else {
            out << ',';
        }
        out << '\n';
    }
}

}  // namespace lfp::io
