#include "io/signature_store.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace lfp::io {

namespace {

std::string_view trim(std::string_view text) {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
        text.remove_prefix(1);
    }
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
        text.remove_suffix(1);
    }
    return text;
}

}  // namespace

void save_signatures(std::ostream& out, const core::SignatureDatabase& database,
                     std::span<const core::PassStats> pass_stats) {
    out << "# LFP signature database\n"
        << "# mask | canonical signature (Table 1 field order) | vendor=count,...\n";
    for (std::size_t pass = 0; pass < pass_stats.size(); ++pass) {
        out << "#: pass " << pass << " probed " << pass_stats[pass].probed << " upgraded "
            << pass_stats[pass].upgraded << " incomplete " << pass_stats[pass].incomplete
            << '\n';
    }
    // Deterministic order: by key then mask.
    std::vector<const core::Signature*> keys;
    keys.reserve(database.signatures().size());
    for (const auto& [signature, stats] : database.signatures()) keys.push_back(&signature);
    std::sort(keys.begin(), keys.end(), [](const core::Signature* a, const core::Signature* b) {
        if (a->key() != b->key()) return a->key() < b->key();
        return a->protocol_mask() < b->protocol_mask();
    });
    for (const core::Signature* signature : keys) {
        const core::SignatureStats* stats = database.lookup(*signature);
        out << static_cast<unsigned>(signature->protocol_mask()) << " | " << signature->key()
            << " | ";
        bool first = true;
        for (const auto& [vendor, count] : stats->vendor_counts) {
            if (!first) out << ',';
            first = false;
            out << stack::to_string(vendor) << '=' << count;
        }
        out << '\n';
    }
}

bool save_signatures_file(const std::string& path, const core::SignatureDatabase& database,
                          std::span<const core::PassStats> pass_stats) {
    std::ofstream out(path);
    if (!out) return false;
    save_signatures(out, database, pass_stats);
    return static_cast<bool>(out);
}

util::Result<core::Signature> parse_signature_line(std::string_view mask_field,
                                                   std::string_view key_field) {
    const std::string_view mask_text = trim(mask_field);
    unsigned mask = 0;
    auto [ptr, ec] =
        std::from_chars(mask_text.data(), mask_text.data() + mask_text.size(), mask);
    if (ec != std::errc{} || ptr != mask_text.data() + mask_text.size() || mask > 0b111) {
        return util::make_error("bad protocol mask");
    }
    const std::string_view key = trim(key_field);
    if (key.empty()) return util::make_error("empty signature key");
    return core::Signature::from_parts(std::string(key), static_cast<std::uint8_t>(mask));
}

namespace {

/// Parses a "#: pass <p> probed <n> upgraded <n> incomplete <n>" metadata
/// line into `stats` (growing it so entry p holds pass p). Returns false on
/// a truncated or malformed line: a '#:' line is *this* writer's own
/// structured metadata, so a line that fails to parse means the artifact
/// was cut short or corrupted mid-write — the loader reports a structured
/// error instead of best-effort-skipping it, and a serving layer can refuse
/// to publish the snapshot. (To an *older* reader the lines are still plain
/// comments; only a reader that understands '#:' validates them.)
[[nodiscard]] bool parse_pass_stats_line(std::string_view body,
                                         std::vector<core::PassStats>& stats) {
    std::size_t pass = 0;
    core::PassStats parsed;
    std::istringstream fields{std::string(body)};
    std::string word;
    if (!(fields >> word >> pass) || word != "pass") return false;
    if (!(fields >> word >> parsed.probed) || word != "probed") return false;
    if (!(fields >> word >> parsed.upgraded) || word != "upgraded") return false;
    if (!(fields >> word >> parsed.incomplete) || word != "incomplete") return false;
    if (pass > 4096) return false;  // corrupt index; don't let it size the vector
    if (stats.size() <= pass) stats.resize(pass + 1);
    stats[pass] = parsed;
    return true;
}

}  // namespace

util::Result<core::SignatureDatabase> load_signatures(std::istream& in,
                                                      core::SignatureDbConfig config,
                                                      std::vector<core::PassStats>* pass_stats) {
    if (pass_stats != nullptr) pass_stats->clear();
    core::SignatureDatabase database(config);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string_view view = trim(line);
        if (view.rfind("#:", 0) == 0) {
            // Structured metadata is validated whether or not the caller
            // asked for it back — a truncated trailer means a truncated
            // artifact, and callers (the serving layer in particular) must
            // be able to refuse it rather than publish half a census.
            std::vector<core::PassStats> scratch;
            std::vector<core::PassStats>& into = pass_stats != nullptr ? *pass_stats : scratch;
            if (!parse_pass_stats_line(trim(view.substr(2)), into)) {
                return util::make_error("line " + std::to_string(line_number) +
                                        ": truncated '#:' pass metadata line");
            }
            continue;
        }
        if (view.empty() || view.front() == '#') continue;

        const auto fields = util::split(view, '|');
        if (fields.size() != 3) {
            return util::make_error("line " + std::to_string(line_number) +
                                    ": expected 3 '|' fields");
        }
        auto signature = parse_signature_line(fields[0], fields[1]);
        if (!signature) {
            return util::make_error("line " + std::to_string(line_number) + ": " +
                                    signature.error().message);
        }
        for (const std::string& pair : util::split(trim(fields[2]), ',')) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos) {
                return util::make_error("line " + std::to_string(line_number) +
                                        ": expected vendor=count");
            }
            const auto vendor = stack::vendor_from_string(trim(std::string_view(pair).substr(0, eq)));
            if (!vendor) {
                return util::make_error("line " + std::to_string(line_number) +
                                        ": unknown vendor '" + pair.substr(0, eq) + "'");
            }
            const std::string_view count_text = trim(std::string_view(pair).substr(eq + 1));
            std::size_t count = 0;
            auto [ptr, ec] = std::from_chars(count_text.data(),
                                             count_text.data() + count_text.size(), count);
            if (ec != std::errc{} || ptr != count_text.data() + count_text.size() || count == 0) {
                return util::make_error("line " + std::to_string(line_number) + ": bad count");
            }
            database.add_labeled(signature.value(), *vendor, count);
        }
    }
    database.finalize();
    return database;
}

util::Result<core::SignatureDatabase> load_signatures_file(const std::string& path,
                                                           core::SignatureDbConfig config,
                                                           std::vector<core::PassStats>* pass_stats) {
    std::ifstream in(path);
    if (!in) return util::make_error("cannot open " + path);
    return load_signatures(in, config, pass_stats);
}

}  // namespace lfp::io
