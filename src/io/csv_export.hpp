// CSV/JSONL exporters for measurement results and traceroute datasets, so
// downstream tooling (pandas, the authors' own analysis notebooks) can
// consume this library's output directly.
#pragma once

#include <iosfwd>
#include <span>

#include "analysis/as_analysis.hpp"
#include "core/pipeline.hpp"
#include "sim/datasets.hpp"

namespace lfp::io {

/// One row per probed target:
/// ip,responsive_protocols,snmp_vendor,lfp_vendor,match_kind,pass,signature
/// `pass` is the retry pass that produced the record's evidence (0 for
/// first-pass answers and single-pass censuses).
void export_measurement_csv(std::ostream& out, const core::Measurement& measurement);

/// One row per census pass: pass,probed,upgraded,incomplete — the retry
/// trajectory of a multi-pass run (CensusRunner::last_pass_stats()).
void export_pass_stats_csv(std::ostream& out, std::span<const core::PassStats> stats);

/// One row per traceroute: src_asn,dst_asn,src,dst,hop1;hop2;...
void export_traceroutes_csv(std::ostream& out, const sim::TracerouteDataset& dataset);

/// One row per alias set: router_id,addr1;addr2;...
void export_alias_sets_csv(std::ostream& out, const sim::ItdkDataset& dataset);

/// One row per AS: asn,routers,identified,vendors,dominant,dominant_share
void export_as_coverage_csv(std::ostream& out,
                            const std::vector<analysis::AsCoverage>& coverage);

/// Escapes a CSV field (quotes when needed).
std::string csv_escape(std::string_view field);

}  // namespace lfp::io
