// Census-as-a-service: the resident control plane. A CensusService owns a
// CensusRunner, a SnapshotStore, and (optionally) a PassScheduler thread;
// each census — scheduled or on-demand — streams through a fresh
// SnapshotBuilder and publishes an immutable versioned Snapshot that the
// QueryEngine answers from. Queries never wait on a running census: they
// read the previously published snapshot through one atomic load, and the
// new version swaps in only when fully built.
//
// Environment knobs (ServiceConfig::from_env / default_socket_path):
//   LFP_SERVE_INTERVAL_MS  recurring-pass period; 0 = on-demand only
//   LFP_SERVE_RETAIN       snapshot versions retained for diff queries
//   LFP_SERVE_SOCKET       lfp_serve's unix-domain socket path
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/census.hpp"
#include "serve/snapshot.hpp"

namespace lfp::serve {

/// The recurring-pass driver: a worker thread that invokes a callback every
/// `interval` (recurring mode) and whenever trigger() is called (on-demand;
/// an interval of zero means on-demand only). Triggers arriving while a
/// pass runs coalesce into one follow-up pass — the schedule never queues
/// unboundedly behind a slow census.
class PassScheduler {
  public:
    struct Options {
        /// Period between scheduled passes. zero = never fire on a timer;
        /// only trigger() starts passes.
        std::chrono::milliseconds interval{0};
        /// Run one pass immediately on start() rather than waiting a full
        /// interval first.
        bool run_immediately = true;
    };

    explicit PassScheduler(std::function<void()> pass) : PassScheduler(std::move(pass), Options{}) {}
    PassScheduler(std::function<void()> pass, Options options);
    ~PassScheduler();

    PassScheduler(const PassScheduler&) = delete;
    PassScheduler& operator=(const PassScheduler&) = delete;

    /// Starts the scheduler thread. Idempotent.
    void start();
    /// Stops the thread, joining it; a pass in flight completes first.
    /// Idempotent; the destructor calls it.
    void stop();

    /// Requests one pass now (starts the thread if needed). Returns after
    /// noting the request, not after the pass.
    void trigger();

    [[nodiscard]] std::uint64_t passes_completed() const;

    /// Blocks until at least `count` passes have completed since
    /// construction, or `timeout` elapses. Returns whether the count was
    /// reached.
    [[nodiscard]] bool wait_for_passes(std::uint64_t count, std::chrono::milliseconds timeout);

  private:
    void run();

    std::function<void()> pass_;
    Options options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stop_requested_ = false;
    bool trigger_pending_ = false;
    std::uint64_t completed_ = 0;
};

/// One measured-path sweep for a path census: the hop lists to collapse
/// and probe (CensusRunner::stream_paths) plus, optionally, the vantage
/// index that discovered each path — the lane-preference stream the
/// runner maps onto its census lanes.
struct PathSweep {
    std::vector<std::vector<net::IPv4Address>> paths;
    std::vector<std::uint32_t> path_lane;  ///< empty = backend-hint grouping
};

/// Produces a fresh sweep per path census (e.g. a traceroute harvest, or
/// analysis::PathCensus::discover() in the sim deployment). Called under
/// the census lock — deterministic sources yield deterministic censuses.
using PathSource = std::function<PathSweep()>;

/// Service-level knobs layered over the CensusPlan (which continues to
/// describe the measurement itself: targets, vantages, windows, passes).
struct ServiceConfig {
    /// Name stamped onto published snapshots.
    std::string name = "census";
    /// Passes per serving census; 0 = the plan's configured pass count.
    std::size_t passes = 0;
    /// Recurring census period; zero = on-demand only.
    std::chrono::milliseconds interval{0};
    /// Snapshot versions retained for diff queries.
    std::size_t retain = 4;
    /// Whether start() runs a census immediately (the usual case: serve as
    /// soon as there is something to serve).
    bool run_immediately = true;
    /// Durability directory: non-empty persists every published snapshot
    /// there (see SnapshotStore) and lets restore_latest() reload the
    /// newest across a restart. Empty = in-memory only, as before.
    std::string state_dir;

    core::SignatureDbConfig database;
    core::LfpClassifier::Options classify;
    AsnResolver asn;
    /// Path discovery for run_path_census_now() / the PATHCENSUS verb.
    /// Absent = the service runs plain censuses only.
    PathSource paths;

    /// Overlays LFP_SERVE_INTERVAL_MS / LFP_SERVE_RETAIN / LFP_SERVE_STATE
    /// from the environment onto `base` (default-constructed when omitted).
    [[nodiscard]] static ServiceConfig from_env();
    [[nodiscard]] static ServiceConfig from_env(ServiceConfig base);
};

/// The lfp_serve daemon's socket path: LFP_SERVE_SOCKET, or a per-uid
/// default under the system temp directory.
[[nodiscard]] std::string default_socket_path();

/// The resident census service. Owns the runner (and with it the vantage
/// schedule and worker pool), the snapshot store, and the scheduler.
/// Censuses serialize internally; queries against store()/current snapshots
/// proceed concurrently with a running census.
class CensusService {
  public:
    /// Validates the plan (CensusRunner's constructor throws on a bad one).
    /// The plan's transports must outlive the service.
    CensusService(core::CensusPlan plan, ServiceConfig config = {});
    ~CensusService();

    CensusService(const CensusService&) = delete;
    CensusService& operator=(const CensusService&) = delete;

    /// Starts the scheduler (recurring passes when config.interval > 0, an
    /// immediate first census when config.run_immediately).
    void start();
    /// Stops the scheduler; a census in flight completes and publishes.
    void stop();

    /// Requests one census soon (asynchronous; coalesces with a pending
    /// trigger).
    void trigger();

    /// Runs one census synchronously on the calling thread and publishes
    /// the snapshot. Returns the published version. Serializes with
    /// scheduler-driven censuses.
    std::uint64_t run_census_now();

    /// Runs one *path* census: pulls a sweep from config.paths, collapses
    /// the hop lists into census targets (CensusRunner::stream_paths), and
    /// publishes the classified snapshot with the measured paths attached
    /// (Snapshot::paths() — the PATH @<index> answers). Returns the
    /// published version; throws std::logic_error when no path source is
    /// configured. Serializes with every other census.
    std::uint64_t run_path_census_now();

    /// Whether config.paths was provided (the PATHCENSUS verb's gate).
    [[nodiscard]] bool has_path_source() const noexcept {
        return static_cast<bool>(config_.paths);
    }

    /// Boot-time durability: reloads the newest persisted snapshot from
    /// config.state_dir and publishes it as current, marked restored() —
    /// the service answers in degraded mode (stale data, stamped with its
    /// age by STATS) until the first fresh census publishes over it.
    /// Version numbering continues above the restored version. Returns
    /// whether a snapshot was restored; false (no-op) when state_dir is
    /// empty or holds nothing loadable. Does not count toward
    /// censuses_completed().
    bool restore_latest();

    /// Censuses published so far, scheduler-driven and synchronous alike.
    [[nodiscard]] std::uint64_t censuses_completed() const {
        return published_.load(std::memory_order_relaxed);
    }

    /// Blocks until at least `count` censuses have published (or timeout).
    [[nodiscard]] bool wait_for_census(std::uint64_t count, std::chrono::milliseconds timeout) {
        return scheduler_.wait_for_passes(count, timeout);
    }

    [[nodiscard]] const SnapshotStore& store() const noexcept { return store_; }
    [[nodiscard]] core::CensusRunner& runner() noexcept { return runner_; }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

  private:
    ServiceConfig config_;
    core::CensusRunner runner_;
    SnapshotStore store_;
    std::mutex census_mutex_;  ///< serializes censuses, never queries
    std::uint64_t next_version_ = 1;
    std::atomic<std::uint64_t> published_{0};
    PassScheduler scheduler_;
};

}  // namespace lfp::serve
