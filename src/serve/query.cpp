#include "serve/query.hpp"

#include <array>
#include <utility>

#include "analysis/path_analysis.hpp"

namespace lfp::serve {

namespace {

std::optional<stack::Vendor> vendor_or_nullopt(std::uint8_t raw) {
    if (raw == core::kNoVendor) return std::nullopt;
    return static_cast<stack::Vendor>(raw);
}

/// The shared body of path_profile()/measured_path(): resolve `hops`
/// against one specific snapshot (null = nothing published; every hop
/// comes back unknown with version 0).
PathProfile profile_against(const Snapshot* snapshot, std::span<const net::IPv4Address> hops) {
    PathProfile profile;
    profile.hops.reserve(hops.size());
    std::vector<stack::Vendor> identified;
    for (const net::IPv4Address hop : hops) {
        PathProfile::Hop entry;
        entry.address = hop;
        if (snapshot != nullptr) {
            if (const core::CompactRecord* record = snapshot->find(hop)) {
                entry.known = true;
                ++profile.known_hops;
                if (record->snmp_vendor != core::kNoVendor) {
                    entry.vendor = static_cast<stack::Vendor>(record->snmp_vendor);
                } else if (record->lfp_vendor != core::kNoVendor) {
                    entry.vendor = static_cast<stack::Vendor>(record->lfp_vendor);
                }
                if (entry.vendor) {
                    ++profile.identified_hops;
                    identified.push_back(*entry.vendor);
                }
            }
        }
        profile.hops.push_back(entry);
    }
    if (snapshot != nullptr) profile.version = snapshot->version();
    if (!identified.empty()) {
        profile.combination = analysis::combination_key(std::move(identified));
    }
    return profile;
}

}  // namespace

VendorAnswer QueryEngine::vendor_of(net::IPv4Address target) const {
    VendorAnswer answer;
    const std::shared_ptr<const Snapshot> snapshot = store_->current();
    if (snapshot == nullptr) return answer;
    answer.version = snapshot->version();
    const core::CompactRecord* record = snapshot->find(target);
    if (record == nullptr) return answer;
    answer.known = true;
    answer.responsive = !record->features.empty() || record->snmp_vendor != core::kNoVendor ||
                        core::mask_any_response(record->response_mask);
    answer.asn = snapshot->asn_of(target);
    answer.snmp_vendor = vendor_or_nullopt(record->snmp_vendor);
    answer.lfp_vendor = vendor_or_nullopt(record->lfp_vendor);
    answer.kind = static_cast<core::MatchKind>(record->lfp_kind);
    answer.confidence = record->lfp_confidence;
    answer.pass = record->pass;
    return answer;
}

AsMixAnswer QueryEngine::as_mix(std::uint32_t asn) const {
    AsMixAnswer answer;
    answer.asn = asn;
    const std::shared_ptr<const Snapshot> snapshot = store_->current();
    if (snapshot == nullptr) return answer;
    answer.version = snapshot->version();
    if (const analysis::AsCoverage* mix = snapshot->as_mix(asn)) answer.mix = *mix;
    return answer;
}

PathProfile QueryEngine::path_profile(std::span<const net::IPv4Address> hops) const {
    const std::shared_ptr<const Snapshot> snapshot = store_->current();
    return profile_against(snapshot.get(), hops);
}

util::Result<PathProfile> QueryEngine::measured_path(std::size_t index) const {
    const std::shared_ptr<const Snapshot> snapshot = store_->current();
    if (snapshot == nullptr) return util::make_error("no snapshot published");
    const auto& paths = snapshot->paths();
    if (index >= paths.size()) {
        return util::make_error("path " + std::to_string(index) + " out of range (version " +
                                std::to_string(snapshot->version()) + " holds " +
                                std::to_string(paths.size()) + " measured paths)");
    }
    return profile_against(snapshot.get(), paths[index]);
}

util::Result<SnapshotDiff> QueryEngine::diff(std::uint64_t from_version,
                                             std::uint64_t to_version) const {
    const std::shared_ptr<const Snapshot> from = store_->version(from_version);
    if (from == nullptr) {
        return util::make_error("version " + std::to_string(from_version) +
                                " not retained (ring keeps the last " +
                                std::to_string(store_->retain_limit()) + ")");
    }
    const std::shared_ptr<const Snapshot> to = store_->version(to_version);
    if (to == nullptr) {
        return util::make_error("version " + std::to_string(to_version) +
                                " not retained (ring keeps the last " +
                                std::to_string(store_->retain_limit()) + ")");
    }

    SnapshotDiff result;
    result.from_version = from_version;
    result.to_version = to_version;
    result.from_pass_stats = from->pass_stats();
    result.to_pass_stats = to->pass_stats();

    // Delegate the signature comparison to the batch longitudinal analysis:
    // expand both snapshots to Measurements (classifications and pass
    // provenance intact) and diff them as a two-snapshot series.
    const std::array<core::Measurement, 2> series{from->expand(), to->expand()};
    analysis::LongitudinalReport report = analysis::signature_stability(series);
    if (!report.pairs.empty()) result.stability = std::move(report.pairs.front());
    result.stability.first = from->name() + "@v" + std::to_string(from_version);
    result.stability.second = to->name() + "@v" + std::to_string(to_version);
    return result;
}

}  // namespace lfp::serve
