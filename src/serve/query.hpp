// The serving layer's read path: every query resolves against one coherent
// snapshot (one SnapshotStore::current() load — lock-free with respect to
// publishers), so answers within a query never mix censuses even while the
// next pass is absorbing. The four query families mirror the paper's
// operator-facing results: vendor-of-IP point lookups (§7.1), AS
// vendor-mix aggregates (§7.2, over analysis::AsCoverage), path vendor
// profiles (§6, via analysis::combination_key), and snapshot diffs
// delegating to analysis/longitudinal with the pass provenance the io
// formats persist.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analysis/longitudinal.hpp"
#include "serve/snapshot.hpp"
#include "util/result.hpp"

namespace lfp::serve {

/// Point-lookup answer. `version` 0 = nothing published yet; `known`
/// false = the address was not in the census target list.
struct VendorAnswer {
    std::uint64_t version = 0;
    bool known = false;
    bool responsive = false;
    std::optional<std::uint32_t> asn;
    std::optional<stack::Vendor> snmp_vendor;
    std::optional<stack::Vendor> lfp_vendor;
    core::MatchKind kind = core::MatchKind::none;
    double confidence = 0.0;
    std::uint16_t pass = 0;

    /// SNMP ground truth when present, else the LFP verdict (the
    /// RouterVerdict::combined() rule).
    [[nodiscard]] std::optional<stack::Vendor> combined() const {
        return snmp_vendor ? snmp_vendor : lfp_vendor;
    }
};

/// AS vendor-mix answer: nullopt mix = the AS was not observed in the
/// snapshot (or no ASN resolver is configured — see Snapshot::as_mixes).
struct AsMixAnswer {
    std::uint64_t version = 0;
    std::uint32_t asn = 0;
    std::optional<analysis::AsCoverage> mix;
};

/// Per-path vendor profile for a caller-supplied hop list (a traceroute's
/// router hops): the serving-time form of the §6 path analyses.
struct PathProfile {
    std::uint64_t version = 0;

    struct Hop {
        net::IPv4Address address;
        bool known = false;
        std::optional<stack::Vendor> vendor;  ///< combined verdict
    };
    std::vector<Hop> hops;
    std::size_t known_hops = 0;
    std::size_t identified_hops = 0;
    /// Canonical sorted vendor-set key (analysis::combination_key); empty
    /// when no hop was identified.
    std::string combination;
};

/// Snapshot diff: signature stability between two retained versions plus
/// both censuses' pass trajectories (the PR 6 provenance).
struct SnapshotDiff {
    std::uint64_t from_version = 0;
    std::uint64_t to_version = 0;
    analysis::SnapshotPairStability stability;
    std::vector<core::PassStats> from_pass_stats;
    std::vector<core::PassStats> to_pass_stats;
};

class QueryEngine {
  public:
    explicit QueryEngine(const SnapshotStore& store) : store_(&store) {}

    /// The snapshot the next query would answer from (nullptr before the
    /// first publish).
    [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const { return store_->current(); }

    [[nodiscard]] VendorAnswer vendor_of(net::IPv4Address target) const;
    [[nodiscard]] AsMixAnswer as_mix(std::uint32_t asn) const;
    [[nodiscard]] PathProfile path_profile(std::span<const net::IPv4Address> hops) const;

    /// Profile of a *measured* path — one the snapshot's own path census
    /// discovered (Snapshot::paths()), addressed by discovery index. The
    /// wire form is PATH @<index>: the client names a path without
    /// re-supplying its hops, and hops plus verdicts answer from the same
    /// snapshot, so the profile can never mix a hop list from one census
    /// with classifications from another. Errors when nothing is published
    /// or the index is out of range (including every plain census, whose
    /// snapshots carry no paths).
    [[nodiscard]] util::Result<PathProfile> measured_path(std::size_t index) const;

    /// Diffs two retained snapshot versions (error when either aged out of
    /// the retention ring or was never published).
    [[nodiscard]] util::Result<SnapshotDiff> diff(std::uint64_t from_version,
                                                  std::uint64_t to_version) const;

  private:
    const SnapshotStore* store_;
};

}  // namespace lfp::serve
