#include "serve/snapshot.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

namespace lfp::serve {

namespace {

constexpr char kSnapshotMagic[8] = {'L', 'F', 'P', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapshotPrefix[] = "snapshot-v";
constexpr char kSnapshotSuffix[] = ".snap";

std::filesystem::path snapshot_file_path(const std::filesystem::path& directory,
                                         std::uint64_t version) {
    return directory / (kSnapshotPrefix + std::to_string(version) + kSnapshotSuffix);
}

/// The version encoded in a persisted snapshot's filename, or nullopt for
/// unrelated directory entries.
std::optional<std::uint64_t> snapshot_file_version(const std::filesystem::path& path) {
    const std::string name = path.filename().string();
    const std::string_view prefix = kSnapshotPrefix;
    const std::string_view suffix = kSnapshotSuffix;
    if (name.size() <= prefix.size() + suffix.size() || !name.starts_with(prefix) ||
        !name.ends_with(suffix)) {
        return std::nullopt;
    }
    const std::string_view digits(name.data() + prefix.size(),
                                  name.size() - prefix.size() - suffix.size());
    std::uint64_t version = 0;
    auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), version);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) return std::nullopt;
    return version;
}

std::uint64_t now_unix_ms() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                          std::chrono::system_clock::now().time_since_epoch())
                                          .count());
}

/// The MeasurementCounts::add predicates, restated over the compact form
/// (no expansion): responsive = any exchange answered or features/label
/// present; the SNMP split follows the label, snmp_and_lfp requires a
/// complete feature row.
void add_compact(core::MeasurementCounts& counts, const core::CompactRecord& record) {
    const bool has_features = !record.features.empty();
    const bool has_snmp = record.snmp_vendor != core::kNoVendor;
    if (has_features || has_snmp || core::mask_any_response(record.response_mask)) {
        ++counts.responsive;
    }
    if (has_snmp) {
        ++counts.snmp;
        if (record.features.complete()) ++counts.snmp_and_lfp;
    } else if (has_features) {
        ++counts.lfp_only;
    }
}

/// The serving layer's combined verdict, mirroring
/// analysis::RouterVerdict::combined(): the SNMP ground-truth label when
/// the target yielded one, else the LFP classification.
std::optional<stack::Vendor> combined_vendor(const core::CompactRecord& record) {
    if (record.snmp_vendor != core::kNoVendor) {
        return static_cast<stack::Vendor>(record.snmp_vendor);
    }
    if (record.lfp_vendor != core::kNoVendor) {
        return static_cast<stack::Vendor>(record.lfp_vendor);
    }
    return std::nullopt;
}

}  // namespace

const core::CompactRecord* Snapshot::find(net::IPv4Address target) const {
    const std::uint32_t needle = target.value();
    auto it = std::lower_bound(by_target_.begin(), by_target_.end(), needle,
                               [this](std::uint32_t position, std::uint32_t value) {
                                   return records_[position].target < value;
                               });
    if (it == by_target_.end() || records_[*it].target != needle) return nullptr;
    return &records_[*it];
}

std::optional<std::uint32_t> Snapshot::asn_of(net::IPv4Address target) const {
    if (!asn_) return std::nullopt;
    return asn_(target);
}

const analysis::AsCoverage* Snapshot::as_mix(std::uint32_t asn) const {
    auto it = as_mix_.find(asn);
    return it == as_mix_.end() ? nullptr : &it->second;
}

core::Measurement Snapshot::expand() const {
    core::Measurement measurement;
    measurement.name = name_;
    measurement.records.reserve(records_.size());
    for (const core::CompactRecord& record : records_) {
        measurement.records.push_back(record.to_record());
    }
    measurement.set_counts(counts_);
    return measurement;
}

SnapshotBuilder::SnapshotBuilder(Options options)
    : options_(std::move(options)),
      database_(options_.database),
      appender_(*this),
      absorb_(database_, &appender_, {.retract_superseded = true}) {}

void SnapshotBuilder::accept(std::uint64_t global_index, core::TargetRecord&& record) {
    absorb_.accept(global_index, std::move(record));
}

void SnapshotBuilder::append(std::uint64_t global_index, const core::TargetRecord& record) {
    auto [it, inserted] = position_of_.try_emplace(global_index, records_.size());
    if (inserted) {
        records_.push_back(core::CompactRecord::from_record(record));
    } else {
        records_[it->second] = core::CompactRecord::from_record(record);
    }
}

std::shared_ptr<const Snapshot> SnapshotBuilder::build(
    std::uint64_t version, std::span<const core::PassStats> pass_stats,
    util::ThreadPool* pool) {
    auto database = std::make_shared<core::SignatureDatabase>(std::move(database_));
    database->finalize();

    // Classification at publish time, against the pass's own finalized
    // database — exactly the batch pipeline's classify stage: both sides
    // reduce to LfpClassifier::classify(Signature::from_features(features)),
    // so answers are byte-identical to classify_records() over the same
    // records. Sharded over the pool when one is given; index-order writes,
    // so output is identical at any width.
    const core::LfpClassifier classifier(*database, options_.classify);
    core::CompactRecord* records = records_.data();
    auto classify_range = [&classifier, records](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            core::CompactRecord& record = records[i];
            const core::Classification verdict =
                classifier.classify(core::Signature::from_features(record.features));
            record.lfp_vendor = verdict.vendor
                                    ? static_cast<std::uint8_t>(*verdict.vendor)
                                    : core::kNoVendor;
            record.lfp_kind = static_cast<std::uint8_t>(verdict.kind);
            record.lfp_confidence = verdict.confidence;
        }
    };
    if (pool != nullptr) {
        pool->parallel_for(records_.size(), 256, classify_range);
    } else {
        classify_range(0, records_.size());
    }

    auto snapshot = std::make_shared<Snapshot>();
    snapshot->version_ = version;
    snapshot->created_unix_ms_ = now_unix_ms();
    snapshot->name_ = options_.name;
    snapshot->pass_stats_.assign(pass_stats.begin(), pass_stats.end());
    snapshot->database_ = std::move(database);
    snapshot->asn_ = options_.asn;
    snapshot->records_ = std::move(records_);
    snapshot->paths_ = std::move(paths_);
    position_of_.clear();

    snapshot->by_target_.resize(snapshot->records_.size());
    for (std::size_t i = 0; i < snapshot->by_target_.size(); ++i) {
        snapshot->by_target_[i] = static_cast<std::uint32_t>(i);
    }
    std::stable_sort(snapshot->by_target_.begin(), snapshot->by_target_.end(),
                     [&snapshot](std::uint32_t a, std::uint32_t b) {
                         return snapshot->records_[a].target < snapshot->records_[b].target;
                     });

    for (const core::CompactRecord& record : snapshot->records_) {
        add_compact(snapshot->counts_, record);
        if (options_.asn) {
            if (auto asn = options_.asn(net::IPv4Address(record.target))) {
                analysis::AsCoverage& mix = snapshot->as_mix_[*asn];
                mix.asn = *asn;
                ++mix.routers_total;
                if (auto vendor = combined_vendor(record)) {
                    ++mix.routers_identified;
                    ++mix.vendor_counts[*vendor];
                }
            }
        }
    }
    return snapshot;
}

SnapshotStore::SnapshotStore(std::size_t retain, std::string persist_dir)
    : retain_(retain == 0 ? 1 : retain), persist_dir_(std::move(persist_dir)) {}

bool SnapshotStore::persist(const Snapshot& snapshot) {
    try {
        const std::filesystem::path directory(persist_dir_);
        std::filesystem::create_directories(directory);
        const std::filesystem::path final_path =
            snapshot_file_path(directory, snapshot.version());
        const std::filesystem::path tmp_path = final_path.string() + ".tmp";
        if (!save_snapshot_file(tmp_path, snapshot)) return false;
        // Atomic within the directory: a reload sees whole files only.
        std::filesystem::rename(tmp_path, final_path);

        // Prune beyond the retention ring, oldest first.
        std::vector<std::pair<std::uint64_t, std::filesystem::path>> persisted;
        for (const auto& entry : std::filesystem::directory_iterator(directory)) {
            if (auto version = snapshot_file_version(entry.path())) {
                persisted.emplace_back(*version, entry.path());
            }
        }
        std::sort(persisted.begin(), persisted.end());
        std::error_code ec;
        for (std::size_t i = 0; i + retain_ < persisted.size(); ++i) {
            std::filesystem::remove(persisted[i].second, ec);
        }
        return true;
    } catch (const std::filesystem::filesystem_error&) {
        return false;
    }
}

std::uint64_t SnapshotStore::publish(std::shared_ptr<const Snapshot> snapshot) {
    const std::uint64_t version = snapshot->version();
    // Durability before visibility, and only for snapshots this process
    // built — a restored snapshot's file is the one it was loaded from.
    if (!persist_dir_.empty() && !snapshot->restored() && !persist(*snapshot)) {
        persist_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    {
        std::lock_guard<std::mutex> guard(mutex_);
        retained_.push_back(snapshot);
        while (retained_.size() > retain_) retained_.pop_front();
    }
    // The swap readers observe: one release store; concurrent current()
    // loads see either the old snapshot or the new one, both fully built.
    current_.store(std::move(snapshot), std::memory_order_release);
    return version;
}

std::shared_ptr<const Snapshot> SnapshotStore::version(std::uint64_t version) const {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& snapshot : retained_) {
        if (snapshot->version() == version) return snapshot;
    }
    return nullptr;
}

std::vector<std::shared_ptr<const Snapshot>> SnapshotStore::retained() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return {retained_.begin(), retained_.end()};
}

bool save_snapshot_file(const std::filesystem::path& path, const Snapshot& snapshot) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const auto put_u64 = [&out](std::uint64_t value) {
        out.write(reinterpret_cast<const char*>(&value), sizeof(value));
    };
    const auto put_u32 = [&out](std::uint32_t value) {
        out.write(reinterpret_cast<const char*>(&value), sizeof(value));
    };
    out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    put_u32(static_cast<std::uint32_t>(sizeof(core::CompactRecord)));
    put_u64(snapshot.version());
    put_u64(snapshot.created_unix_ms());
    put_u32(static_cast<std::uint32_t>(snapshot.name().size()));
    out.write(snapshot.name().data(),
              static_cast<std::streamsize>(snapshot.name().size()));
    put_u32(static_cast<std::uint32_t>(snapshot.pass_stats().size()));
    for (const core::PassStats& stats : snapshot.pass_stats()) {
        put_u64(stats.probed);
        put_u64(stats.upgraded);
        put_u64(stats.incomplete);
    }
    put_u64(snapshot.records().size());
    out.write(reinterpret_cast<const char*>(snapshot.records().data()),
              static_cast<std::streamsize>(snapshot.records().size() *
                                           sizeof(core::CompactRecord)));
    out.flush();
    return static_cast<bool>(out);
}

std::shared_ptr<const Snapshot> load_snapshot_file(const std::filesystem::path& path,
                                                   const SnapshotLoadOptions& options) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return nullptr;
    const auto get_u64 = [&in](std::uint64_t& value) {
        in.read(reinterpret_cast<char*>(&value), sizeof(value));
        return in.gcount() == sizeof(value);
    };
    const auto get_u32 = [&in](std::uint32_t& value) {
        in.read(reinterpret_cast<char*>(&value), sizeof(value));
        return in.gcount() == sizeof(value);
    };
    char magic[sizeof(kSnapshotMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
        return nullptr;
    }
    std::uint32_t record_size = 0;
    if (!get_u32(record_size) || record_size != sizeof(core::CompactRecord)) {
        // Written by a different build: refuse rather than misparse.
        return nullptr;
    }

    auto snapshot = std::make_shared<Snapshot>();
    std::uint32_t name_length = 0;
    std::uint32_t stats_count = 0;
    std::uint64_t record_count = 0;
    if (!get_u64(snapshot->version_) || !get_u64(snapshot->created_unix_ms_) ||
        !get_u32(name_length) || name_length > 4096) {
        return nullptr;
    }
    snapshot->name_.resize(name_length);
    in.read(snapshot->name_.data(), name_length);
    if (in.gcount() != static_cast<std::streamsize>(name_length) || !get_u32(stats_count) ||
        stats_count > 4096) {  // structural sanity cap, far above kMaxPasses
        return nullptr;
    }
    snapshot->pass_stats_.resize(stats_count);
    for (core::PassStats& stats : snapshot->pass_stats_) {
        if (!get_u64(stats.probed) || !get_u64(stats.upgraded) ||
            !get_u64(stats.incomplete)) {
            return nullptr;
        }
    }
    if (!get_u64(record_count)) return nullptr;
    snapshot->records_.resize(record_count);
    const std::streamsize record_bytes =
        static_cast<std::streamsize>(record_count * sizeof(core::CompactRecord));
    in.read(reinterpret_cast<char*>(snapshot->records_.data()), record_bytes);
    if (in.gcount() != record_bytes) return nullptr;  // truncated (crash mid-write)

    // Re-derive what the file does not carry. The database is rebuilt by
    // re-absorbing every labeled record — Signature::from_features is
    // deterministic and the builder's per-pass retractions netted out
    // before publish, so this lands on the exact database the original
    // snapshot finalized. Stored lfp_* fields are kept untouched.
    auto database = std::make_shared<core::SignatureDatabase>(options.database);
    for (const core::CompactRecord& record : snapshot->records_) {
        if (record.snmp_vendor != core::kNoVendor && !record.features.empty()) {
            database->add_labeled(core::Signature::from_features(record.features),
                                  static_cast<stack::Vendor>(record.snmp_vendor));
        }
    }
    database->finalize();
    snapshot->database_ = std::move(database);
    snapshot->asn_ = options.asn;
    snapshot->restored_ = true;

    snapshot->by_target_.resize(snapshot->records_.size());
    for (std::size_t i = 0; i < snapshot->by_target_.size(); ++i) {
        snapshot->by_target_[i] = static_cast<std::uint32_t>(i);
    }
    std::stable_sort(snapshot->by_target_.begin(), snapshot->by_target_.end(),
                     [&snapshot](std::uint32_t a, std::uint32_t b) {
                         return snapshot->records_[a].target < snapshot->records_[b].target;
                     });
    for (const core::CompactRecord& record : snapshot->records_) {
        add_compact(snapshot->counts_, record);
        if (snapshot->asn_) {
            if (auto asn = snapshot->asn_(net::IPv4Address(record.target))) {
                analysis::AsCoverage& mix = snapshot->as_mix_[*asn];
                mix.asn = *asn;
                ++mix.routers_total;
                if (auto vendor = combined_vendor(record)) {
                    ++mix.routers_identified;
                    ++mix.vendor_counts[*vendor];
                }
            }
        }
    }
    return snapshot;
}

std::shared_ptr<const Snapshot> load_latest_snapshot(const std::filesystem::path& directory,
                                                     const SnapshotLoadOptions& options) {
    std::vector<std::pair<std::uint64_t, std::filesystem::path>> candidates;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
        if (auto version = snapshot_file_version(entry.path())) {
            candidates.emplace_back(*version, entry.path());
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [version, path] : candidates) {
        if (auto snapshot = load_snapshot_file(path, options)) return snapshot;
    }
    return nullptr;
}

}  // namespace lfp::serve
