#include "serve/snapshot.hpp"

#include <algorithm>
#include <utility>

namespace lfp::serve {

namespace {

/// The MeasurementCounts::add predicates, restated over the compact form
/// (no expansion): responsive = any exchange answered or features/label
/// present; the SNMP split follows the label, snmp_and_lfp requires a
/// complete feature row.
void add_compact(core::MeasurementCounts& counts, const core::CompactRecord& record) {
    const bool has_features = !record.features.empty();
    const bool has_snmp = record.snmp_vendor != core::kNoVendor;
    if (has_features || has_snmp || core::mask_any_response(record.response_mask)) {
        ++counts.responsive;
    }
    if (has_snmp) {
        ++counts.snmp;
        if (record.features.complete()) ++counts.snmp_and_lfp;
    } else if (has_features) {
        ++counts.lfp_only;
    }
}

/// The serving layer's combined verdict, mirroring
/// analysis::RouterVerdict::combined(): the SNMP ground-truth label when
/// the target yielded one, else the LFP classification.
std::optional<stack::Vendor> combined_vendor(const core::CompactRecord& record) {
    if (record.snmp_vendor != core::kNoVendor) {
        return static_cast<stack::Vendor>(record.snmp_vendor);
    }
    if (record.lfp_vendor != core::kNoVendor) {
        return static_cast<stack::Vendor>(record.lfp_vendor);
    }
    return std::nullopt;
}

}  // namespace

const core::CompactRecord* Snapshot::find(net::IPv4Address target) const {
    const std::uint32_t needle = target.value();
    auto it = std::lower_bound(by_target_.begin(), by_target_.end(), needle,
                               [this](std::uint32_t position, std::uint32_t value) {
                                   return records_[position].target < value;
                               });
    if (it == by_target_.end() || records_[*it].target != needle) return nullptr;
    return &records_[*it];
}

std::optional<std::uint32_t> Snapshot::asn_of(net::IPv4Address target) const {
    if (!asn_) return std::nullopt;
    return asn_(target);
}

const analysis::AsCoverage* Snapshot::as_mix(std::uint32_t asn) const {
    auto it = as_mix_.find(asn);
    return it == as_mix_.end() ? nullptr : &it->second;
}

core::Measurement Snapshot::expand() const {
    core::Measurement measurement;
    measurement.name = name_;
    measurement.records.reserve(records_.size());
    for (const core::CompactRecord& record : records_) {
        measurement.records.push_back(record.to_record());
    }
    measurement.set_counts(counts_);
    return measurement;
}

SnapshotBuilder::SnapshotBuilder(Options options)
    : options_(std::move(options)),
      database_(options_.database),
      appender_(*this),
      absorb_(database_, &appender_, {.retract_superseded = true}) {}

void SnapshotBuilder::accept(std::uint64_t global_index, core::TargetRecord&& record) {
    absorb_.accept(global_index, std::move(record));
}

void SnapshotBuilder::append(std::uint64_t global_index, const core::TargetRecord& record) {
    auto [it, inserted] = position_of_.try_emplace(global_index, records_.size());
    if (inserted) {
        records_.push_back(core::CompactRecord::from_record(record));
    } else {
        records_[it->second] = core::CompactRecord::from_record(record);
    }
}

std::shared_ptr<const Snapshot> SnapshotBuilder::build(
    std::uint64_t version, std::span<const core::PassStats> pass_stats,
    util::ThreadPool* pool) {
    auto database = std::make_shared<core::SignatureDatabase>(std::move(database_));
    database->finalize();

    // Classification at publish time, against the pass's own finalized
    // database — exactly the batch pipeline's classify stage: both sides
    // reduce to LfpClassifier::classify(Signature::from_features(features)),
    // so answers are byte-identical to classify_records() over the same
    // records. Sharded over the pool when one is given; index-order writes,
    // so output is identical at any width.
    const core::LfpClassifier classifier(*database, options_.classify);
    core::CompactRecord* records = records_.data();
    auto classify_range = [&classifier, records](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            core::CompactRecord& record = records[i];
            const core::Classification verdict =
                classifier.classify(core::Signature::from_features(record.features));
            record.lfp_vendor = verdict.vendor
                                    ? static_cast<std::uint8_t>(*verdict.vendor)
                                    : core::kNoVendor;
            record.lfp_kind = static_cast<std::uint8_t>(verdict.kind);
            record.lfp_confidence = verdict.confidence;
        }
    };
    if (pool != nullptr) {
        pool->parallel_for(records_.size(), 256, classify_range);
    } else {
        classify_range(0, records_.size());
    }

    auto snapshot = std::make_shared<Snapshot>();
    snapshot->version_ = version;
    snapshot->name_ = options_.name;
    snapshot->pass_stats_.assign(pass_stats.begin(), pass_stats.end());
    snapshot->database_ = std::move(database);
    snapshot->asn_ = options_.asn;
    snapshot->records_ = std::move(records_);
    position_of_.clear();

    snapshot->by_target_.resize(snapshot->records_.size());
    for (std::size_t i = 0; i < snapshot->by_target_.size(); ++i) {
        snapshot->by_target_[i] = static_cast<std::uint32_t>(i);
    }
    std::stable_sort(snapshot->by_target_.begin(), snapshot->by_target_.end(),
                     [&snapshot](std::uint32_t a, std::uint32_t b) {
                         return snapshot->records_[a].target < snapshot->records_[b].target;
                     });

    for (const core::CompactRecord& record : snapshot->records_) {
        add_compact(snapshot->counts_, record);
        if (options_.asn) {
            if (auto asn = options_.asn(net::IPv4Address(record.target))) {
                analysis::AsCoverage& mix = snapshot->as_mix_[*asn];
                mix.asn = *asn;
                ++mix.routers_total;
                if (auto vendor = combined_vendor(record)) {
                    ++mix.routers_identified;
                    ++mix.vendor_counts[*vendor];
                }
            }
        }
    }
    return snapshot;
}

SnapshotStore::SnapshotStore(std::size_t retain) : retain_(retain == 0 ? 1 : retain) {}

std::uint64_t SnapshotStore::publish(std::shared_ptr<const Snapshot> snapshot) {
    const std::uint64_t version = snapshot->version();
    {
        std::lock_guard<std::mutex> guard(mutex_);
        retained_.push_back(snapshot);
        while (retained_.size() > retain_) retained_.pop_front();
    }
    // The swap readers observe: one release store; concurrent current()
    // loads see either the old snapshot or the new one, both fully built.
    current_.store(std::move(snapshot), std::memory_order_release);
    return version;
}

std::shared_ptr<const Snapshot> SnapshotStore::version(std::uint64_t version) const {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& snapshot : retained_) {
        if (snapshot->version() == version) return snapshot;
    }
    return nullptr;
}

std::vector<std::shared_ptr<const Snapshot>> SnapshotStore::retained() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return {retained_.begin(), retained_.end()};
}

}  // namespace lfp::serve
