// The lfp_serve wire protocol: length-prefixed text frames over a local
// stream socket. Each frame is a 4-byte little-endian payload length
// followed by that many bytes of UTF-8 text; a request is one line-like
// command ("VENDOR 10.0.0.1"), a response is either "OK ..."/"ERR ..." or,
// for EXPORT, the raw CSV payload. The framing is deliberately minimal —
// the daemon serves the local operator loop (CLI, smoke tests, dashboards
// polling over a unix socket), not the open internet — but it is a real
// protocol: framed (no delimiter ambiguity), bounded (kMaxFramePayload),
// and versionless text so `lfp_query` output diffs cleanly against the
// batch pipeline's artifacts.
//
// Commands (case-sensitive verbs, space-separated operands):
//   PING                     liveness check
//   STATS                    snapshot version/counts/retention summary
//   VENDOR <ip>              point lookup: vendors, kind, confidence, pass
//   ASMIX <asn>              per-AS vendor mix
//   PATH <ip> [<ip>...]      per-hop vendor profile + combination key
//   PATH @<index>            profile of measured path <index> from the
//                            snapshot's own path census (hops + verdicts
//                            answer from one snapshot)
//   DIFF <from> <to>         signature stability between retained versions
//   EXPORT                   current snapshot as measurement CSV (raw)
//   TRIGGER                  run one census now (synchronous; returns the
//                            newly published version)
//   PATHCENSUS               run one path census now: traceroute-discovered
//                            hops collapsed into census targets, measured
//                            paths stored for PATH @<index> (requires a
//                            configured path source)
//   SHUTDOWN                 stop serving after this response
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/query.hpp"
#include "serve/service.hpp"

namespace lfp::serve {

/// Frames larger than this are a protocol violation (the full-census CSV
/// export of a 10M-target snapshot fits comfortably).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Serializes one frame: 4-byte little-endian length + payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(std::string_view payload);

/// Incremental frame decoder for a byte stream: feed() arbitrary chunks,
/// next() yields complete payloads in order. Zero-length and over-cap
/// frames are protocol violations: they set error() with a reason
/// (error_reason()), and the connection should answer with a structured
/// "ERR protocol: ..." frame and close — see serve_connection(). A frame
/// length of zero is rejected rather than round-tripped because no command
/// and no response is ever empty; an all-zero length prefix is what a
/// desynchronized or garbage byte stream most often looks like.
class FrameDecoder {
  public:
    void feed(const std::uint8_t* data, std::size_t size);

    /// The next complete frame payload, or nullopt when more bytes are
    /// needed.
    [[nodiscard]] std::optional<std::string> next();

    [[nodiscard]] bool error() const noexcept { return error_; }
    /// Why the stream was rejected (empty while error() is false).
    [[nodiscard]] const std::string& error_reason() const noexcept { return error_reason_; }

  private:
    std::deque<std::uint8_t> buffer_;
    bool error_ = false;
    std::string error_reason_;
};

#ifndef _WIN32
/// Blocking fd helpers for the daemon and CLI (POSIX only). write_frame
/// returns false on I/O error; read_frame returns nullopt on EOF/error.
[[nodiscard]] bool write_frame(int fd, std::string_view payload);
[[nodiscard]] std::optional<std::string> read_frame(int fd);
#endif

/// One request's outcome: the response payload plus whether the server
/// should stop accepting connections (SHUTDOWN).
struct RequestOutcome {
    std::string response;
    bool shutdown = false;
};

/// Executes one wire command against the service. Pure request/response —
/// transport-agnostic, so tests exercise the full command surface without a
/// socket.
[[nodiscard]] RequestOutcome handle_request(std::string_view request, CensusService& service,
                                            const QueryEngine& engine);

#ifndef _WIN32
/// Serves one connection to completion: frames in, responses out, until
/// the peer hangs up (EOF — including mid-frame: a torn frame is simply a
/// closed connection, never a hang), an I/O error, a protocol violation
/// (answered with one structured "ERR protocol: <reason>" frame before
/// closing), or SHUTDOWN. Returns whether SHUTDOWN was requested.
[[nodiscard]] bool serve_connection(int fd, CensusService& service,
                                    const QueryEngine& engine);
#endif

}  // namespace lfp::serve
