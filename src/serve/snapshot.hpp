// The serving layer's data plane: immutable, versioned census snapshots.
//
// A Snapshot is one completed census pass frozen for querying: every
// target's CompactRecord (classification stamped at publish time), the
// signature database the pass itself derived, per-AS vendor-mix aggregates,
// and the pass provenance trajectory (core::PassStats) — everything the
// QueryEngine needs, reachable through one pointer.
//
// SnapshotBuilder is the absorb-to-snapshot RecordSink: planted at the tail
// of a CensusRunner::stream_passes() chain it compacts each record as it
// streams by and absorbs labeled signatures into the snapshot's own
// database through the pass-aware SignatureAbsorbSink — with
// retract_superseded on, a producer may feed it per pass (repeated global
// indices supersede), so the snapshot can be built incrementally while
// later passes are still probing. build() then finalizes: classify every
// record against the freshly finalized database (byte-identical to the
// batch pipeline's classify stage — both reduce to
// LfpClassifier::classify(Signature::from_features(features))), sort a
// lookup index by target address, and aggregate per-AS vendor mixes.
//
// SnapshotStore is the RCU-style publication point: current() is one
// atomic shared_ptr load — readers never take the store mutex, never
// observe a torn pointer, and keep their snapshot alive for as long as
// they hold it, while publish() swaps the next pass in underneath them.
// A bounded ring of recent versions is retained for snapshot-diff queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/as_analysis.hpp"
#include "core/classifier.hpp"
#include "core/measurement.hpp"
#include "core/record_sink.hpp"
#include "core/signature_db.hpp"
#include "util/thread_pool.hpp"

namespace lfp::serve {

/// Maps an interface address to its AS, when the deployment knows the
/// mapping (the sim world resolves through its topology; a live deployment
/// would wrap a longest-prefix-match table). Absent resolver = no AS
/// aggregates, point and path queries unaffected.
using AsnResolver = std::function<std::optional<std::uint32_t>(net::IPv4Address)>;

/// What a persisted snapshot cannot carry and the loader must re-derive:
/// the database config it re-absorbs records under (must match the
/// publishing service's for byte-identical classification parity) and the
/// deployment's AS resolver.
struct SnapshotLoadOptions {
    core::SignatureDbConfig database;
    AsnResolver asn;
};

/// One published census, immutable after build. Readers share it via
/// shared_ptr — a snapshot outlives its store slot for as long as any
/// query still holds it.
class Snapshot {
  public:
    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Records in census stream order (the batch Measurement's order).
    [[nodiscard]] const std::vector<core::CompactRecord>& records() const noexcept {
        return records_;
    }

    /// Point lookup by target address (binary search over the sorted
    /// index). Duplicate targets resolve to the earliest stream occurrence.
    [[nodiscard]] const core::CompactRecord* find(net::IPv4Address target) const;

    /// The AS of `target` per the builder's resolver (nullopt when no
    /// resolver was configured or the resolver does not know the address).
    [[nodiscard]] std::optional<std::uint32_t> asn_of(net::IPv4Address target) const;

    /// Per-AS vendor mix at interface granularity (each probed interface
    /// counts once; alias-set folding needs ITDK-style ground truth the
    /// serving layer does not assume). Null when the AS was not observed.
    [[nodiscard]] const analysis::AsCoverage* as_mix(std::uint32_t asn) const;
    [[nodiscard]] const std::map<std::uint32_t, analysis::AsCoverage>& as_mixes()
        const noexcept {
        return as_mix_;
    }

    /// The retry trajectory of the census that produced this snapshot
    /// (entry p = pass p) — the provenance the io formats persist.
    [[nodiscard]] const std::vector<core::PassStats>& pass_stats() const noexcept {
        return pass_stats_;
    }

    [[nodiscard]] const core::MeasurementCounts& counts() const noexcept { return counts_; }

    /// The signature database this census derived (finalized).
    [[nodiscard]] const core::SignatureDatabase& database() const noexcept {
        return *database_;
    }

    /// The measured paths of a path census (hop lists in discovery order):
    /// the provenance behind this snapshot's target set, answering
    /// PATH @<index> queries without the client re-supplying hops. Empty
    /// for plain censuses — and for restored() snapshots: paths are not
    /// persisted, so a reload answers point/path queries but forgets which
    /// sweep discovered the targets until the next fresh path census.
    [[nodiscard]] const std::vector<std::vector<net::IPv4Address>>& paths() const noexcept {
        return paths_;
    }

    /// Expands back to the batch representation, in stream order, with
    /// classifications and pass provenance intact — byte-identical CSV
    /// exports to the batch pipeline's Measurement for the same pass.
    [[nodiscard]] core::Measurement expand() const;

    /// Wall-clock publish instant (unix epoch, ms) stamped at build time —
    /// the staleness anchor a restored snapshot reports its age against.
    [[nodiscard]] std::uint64_t created_unix_ms() const noexcept { return created_unix_ms_; }

    /// True when this snapshot was reloaded from disk rather than built by
    /// this process — the serving layer is in degraded mode until a fresh
    /// census publishes over it.
    [[nodiscard]] bool restored() const noexcept { return restored_; }

  private:
    friend class SnapshotBuilder;
    friend std::shared_ptr<const Snapshot> load_snapshot_file(
        const std::filesystem::path& path, const SnapshotLoadOptions& options);

    std::uint64_t version_ = 0;
    std::uint64_t created_unix_ms_ = 0;
    bool restored_ = false;
    std::string name_;
    std::vector<core::CompactRecord> records_;
    /// Positions into records_, sorted by target address (stable: stream
    /// order breaks ties), for point lookups.
    std::vector<std::uint32_t> by_target_;
    std::vector<core::PassStats> pass_stats_;
    core::MeasurementCounts counts_;
    std::shared_ptr<const core::SignatureDatabase> database_;
    std::map<std::uint32_t, analysis::AsCoverage> as_mix_;
    std::vector<std::vector<net::IPv4Address>> paths_;
    AsnResolver asn_;
};

/// The absorb-to-snapshot sink: terminal RecordSink of a serving census.
/// One-shot — build() consumes the accumulated state; use a fresh builder
/// per pass.
class SnapshotBuilder final : public core::RecordSink {
  public:
    struct Options {
        std::string name = "census";
        core::SignatureDbConfig database;
        core::LfpClassifier::Options classify;
        AsnResolver asn;
    };

    SnapshotBuilder() : SnapshotBuilder(Options{}) {}
    explicit SnapshotBuilder(Options options);

    /// Compacts the record and absorbs its labeled signature. Repeated
    /// global indices supersede (pass-aware incremental feed): the old
    /// record is replaced and its absorbed signature contribution
    /// retracted, so a per-pass feed lands on exactly the database a
    /// final-records-only feed produces.
    void accept(std::uint64_t global_index, core::TargetRecord&& record) override;

    /// Freezes everything accepted so far into an immutable snapshot:
    /// finalizes the database, classifies every record against it (over
    /// `pool` when given — deterministic at any width), sorts the target
    /// index, and aggregates per-AS mixes. `pass_stats` is the producing
    /// census's retry trajectory (CensusRunner::last_pass_stats()).
    [[nodiscard]] std::shared_ptr<const Snapshot> build(
        std::uint64_t version, std::span<const core::PassStats> pass_stats,
        util::ThreadPool* pool = nullptr);

    /// Attaches the measured paths a path census discovered (see
    /// Snapshot::paths()). Call before build(); plain censuses never do.
    void set_paths(std::vector<std::vector<net::IPv4Address>> paths) {
        paths_ = std::move(paths);
    }

    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  private:
    /// Inner sink fed by absorb_: appends/replaces the compact projection.
    class Appender final : public core::RecordSink {
      public:
        explicit Appender(SnapshotBuilder& owner) : owner_(&owner) {}
        void accept(std::uint64_t global_index, core::TargetRecord&& record) override {
            owner_->append(global_index, record);
        }

      private:
        SnapshotBuilder* owner_;
    };

    void append(std::uint64_t global_index, const core::TargetRecord& record);

    Options options_;
    core::SignatureDatabase database_;
    Appender appender_;
    core::SignatureAbsorbSink absorb_;
    std::vector<core::CompactRecord> records_;
    std::vector<std::vector<net::IPv4Address>> paths_;
    std::unordered_map<std::uint64_t, std::size_t> position_of_;
};

/// The RCU-style publication point. Readers: current() — one atomic
/// shared_ptr load, never the mutex; the returned snapshot stays valid
/// (and immutable) for as long as the caller holds it, however many
/// passes publish meanwhile. Writers: publish() under the mutex — swap
/// the current pointer and retire the oldest retained version beyond the
/// retention ring. Readers never block writers and vice versa; the ring
/// only bounds how far back version() lookups (snapshot diffs) reach.
class SnapshotStore {
  public:
    /// `persist_dir` non-empty turns on durability: every snapshot this
    /// process builds is persisted there at publish time (atomic tmp +
    /// rename; restored snapshots are not re-persisted — their file is the
    /// one they came from), and files beyond the retention ring are pruned.
    /// Persistence is best-effort: an unwritable directory counts a
    /// failure (persist_failures()) and publication proceeds — serving
    /// never stalls behind the disk.
    explicit SnapshotStore(std::size_t retain = 4, std::string persist_dir = {});

    /// The latest published snapshot (nullptr before the first publish).
    [[nodiscard]] std::shared_ptr<const Snapshot> current() const noexcept {
        return current_.load(std::memory_order_acquire);
    }

    /// Publishes `snapshot` as current and retains it in the version ring.
    /// Returns its version.
    std::uint64_t publish(std::shared_ptr<const Snapshot> snapshot);

    /// A retained snapshot by version (nullptr when it aged out of the
    /// ring or never existed).
    [[nodiscard]] std::shared_ptr<const Snapshot> version(std::uint64_t version) const;

    /// All retained snapshots, oldest first.
    [[nodiscard]] std::vector<std::shared_ptr<const Snapshot>> retained() const;

    [[nodiscard]] std::size_t retain_limit() const noexcept { return retain_; }
    [[nodiscard]] const std::string& persist_dir() const noexcept { return persist_dir_; }
    /// Publishes whose disk write failed (serving continued regardless).
    [[nodiscard]] std::uint64_t persist_failures() const noexcept {
        return persist_failures_.load(std::memory_order_relaxed);
    }

  private:
    bool persist(const Snapshot& snapshot);

    std::size_t retain_;
    std::string persist_dir_;
    std::atomic<std::uint64_t> persist_failures_{0};
    std::atomic<std::shared_ptr<const Snapshot>> current_{nullptr};
    mutable std::mutex mutex_;  ///< guards the retention ring, never reads
    std::deque<std::shared_ptr<const Snapshot>> retained_;
};

// ---------------------------------------------------------------------------
// Snapshot durability: the file form SnapshotStore persists and lfp_serve
// reloads on boot. The file carries the snapshot's identity (version, name,
// creation instant), its pass trajectory, and the raw CompactRecord array
// (the same trivially-copyable projection the spill segments use — private
// to one build, not an interchange format). Everything else is re-derived
// at load: the signature database by re-absorbing the labeled records
// (Signature::from_features is deterministic and builder retractions net
// out, so the rebuilt database is byte-identical to the published one),
// the target index, counts, and AS mixes by the same arithmetic build()
// runs. Stored lfp_* classifications are kept as-is — a restored snapshot
// answers exactly what the original answered.

/// Writes `snapshot` to `path` (no tmp/rename — SnapshotStore::persist
/// wraps this with atomic replacement). Returns false on I/O failure.
[[nodiscard]] bool save_snapshot_file(const std::filesystem::path& path,
                                      const Snapshot& snapshot);

/// Reloads a persisted snapshot, marked restored(). Returns nullptr on a
/// missing, truncated, or corrupt file — boot-time restore degrades to
/// "no snapshot yet", never throws on bad state.
[[nodiscard]] std::shared_ptr<const Snapshot> load_snapshot_file(
    const std::filesystem::path& path, const SnapshotLoadOptions& options = {});

/// Scans `directory` for persisted snapshots and loads the one with the
/// highest version (corrupt candidates are skipped in favour of the next
/// newest). nullptr when none load.
[[nodiscard]] std::shared_ptr<const Snapshot> load_latest_snapshot(
    const std::filesystem::path& directory, const SnapshotLoadOptions& options = {});

}  // namespace lfp::serve
