#include "serve/wire.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "io/csv_export.hpp"

namespace lfp::serve {

namespace {

std::vector<std::string_view> split_words(std::string_view text) {
    std::vector<std::string_view> words;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && text[i] == ' ') ++i;
        std::size_t start = i;
        while (i < text.size() && text[i] != ' ') ++i;
        if (i > start) words.push_back(text.substr(start, i - start));
    }
    return words;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
    return value;
}

std::string err(std::string message) { return "ERR " + std::move(message); }

std::string handle_stats(const CensusService& service, const QueryEngine& engine) {
    std::ostringstream out;
    out << "OK censuses=" << service.censuses_completed();
    const std::shared_ptr<const Snapshot> snapshot = engine.snapshot();
    if (snapshot == nullptr) {
        out << " version=0 records=0";
        return out.str();
    }
    const core::MeasurementCounts& counts = snapshot->counts();
    out << " version=" << snapshot->version() << " name=" << snapshot->name()
        << " records=" << snapshot->records().size() << " responsive=" << counts.responsive
        << " snmp=" << counts.snmp << " snmp_and_lfp=" << counts.snmp_and_lfp
        << " lfp_only=" << counts.lfp_only << " passes=" << snapshot->pass_stats().size();
    if (snapshot->restored()) {
        // Degraded mode: this snapshot was reloaded from disk after a
        // restart; stamp its staleness so the operator loop can tell old
        // answers from fresh ones until the next census publishes.
        const auto now_ms =
            static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                           std::chrono::system_clock::now().time_since_epoch())
                                           .count());
        const std::uint64_t created = snapshot->created_unix_ms();
        out << " degraded=1 age_ms=" << (now_ms > created ? now_ms - created : 0);
    }
    out << " retained=";
    bool first = true;
    for (const auto& retained : service.store().retained()) {
        if (!first) out << ',';
        first = false;
        out << retained->version();
    }
    return out.str();
}

std::string handle_vendor(const QueryEngine& engine, std::string_view operand) {
    auto address = net::IPv4Address::parse(operand);
    if (!address) return err("bad address '" + std::string(operand) + "'");
    const VendorAnswer answer = engine.vendor_of(address.value());
    std::ostringstream out;
    out << "OK version=" << answer.version << " ip=" << operand
        << " known=" << (answer.known ? 1 : 0);
    if (!answer.known) return out.str();
    out << " responsive=" << (answer.responsive ? 1 : 0);
    if (answer.asn) out << " asn=" << *answer.asn;
    out << " snmp=" << (answer.snmp_vendor ? stack::to_string(*answer.snmp_vendor) : "-")
        << " lfp=" << (answer.lfp_vendor ? stack::to_string(*answer.lfp_vendor) : "-")
        << " kind=" << core::to_string(answer.kind) << " confidence=" << answer.confidence
        << " pass=" << answer.pass;
    return out.str();
}

std::string handle_asmix(const QueryEngine& engine, std::string_view operand) {
    const auto asn = parse_u64(operand);
    if (!asn || *asn > 0xFFFFFFFFull) return err("bad asn '" + std::string(operand) + "'");
    const AsMixAnswer answer = engine.as_mix(static_cast<std::uint32_t>(*asn));
    std::ostringstream out;
    out << "OK version=" << answer.version << " asn=" << answer.asn;
    if (!answer.mix) {
        out << " unknown";
        return out.str();
    }
    out << " routers=" << answer.mix->routers_total
        << " identified=" << answer.mix->routers_identified << " mix=";
    bool first = true;
    for (const auto& [vendor, count] : answer.mix->vendor_counts) {
        if (!first) out << ',';
        first = false;
        out << stack::to_string(vendor) << '=' << count;
    }
    return out.str();
}

std::string render_profile(const PathProfile& profile) {
    std::ostringstream out;
    out << "OK version=" << profile.version << " hops=" << profile.hops.size()
        << " known=" << profile.known_hops << " identified=" << profile.identified_hops
        << " combination=" << profile.combination << " |";
    for (const PathProfile::Hop& hop : profile.hops) {
        out << ' ' << hop.address.to_string() << '=';
        if (!hop.known) {
            out << '?';
        } else if (hop.vendor) {
            out << stack::to_string(*hop.vendor);
        } else {
            out << '-';
        }
    }
    return out.str();
}

std::string handle_path(const QueryEngine& engine, std::span<const std::string_view> operands) {
    // PATH @<index>: a measured path from the snapshot's own path census,
    // addressed by discovery index instead of client-supplied hops.
    if (operands.size() == 1 && operands[0].starts_with('@')) {
        const auto index = parse_u64(operands[0].substr(1));
        if (!index) return err("bad path index '" + std::string(operands[0]) + "'");
        const auto profile = engine.measured_path(static_cast<std::size_t>(*index));
        if (!profile) return err(profile.error().message);
        return render_profile(profile.value());
    }
    std::vector<net::IPv4Address> hops;
    hops.reserve(operands.size());
    for (const std::string_view operand : operands) {
        auto address = net::IPv4Address::parse(operand);
        if (!address) return err("bad address '" + std::string(operand) + "'");
        hops.push_back(address.value());
    }
    return render_profile(engine.path_profile(hops));
}

std::string handle_path_census(CensusService& service, const QueryEngine& engine) {
    if (!service.has_path_source()) {
        return err("no path source configured (path censuses need traceroute discovery)");
    }
    const std::uint64_t version = service.run_path_census_now();
    std::ostringstream out;
    out << "OK version=" << version;
    const std::shared_ptr<const Snapshot> snapshot = engine.snapshot();
    if (snapshot != nullptr && snapshot->version() == version) {
        const core::PathTargets& targets = service.runner().last_path_targets();
        out << " paths=" << snapshot->paths().size() << " hops=" << targets.hops_listed
            << " targets=" << snapshot->records().size()
            << " duplicates=" << targets.duplicates_collapsed
            << " unroutable=" << targets.unroutable_dropped;
    }
    return out.str();
}

std::string handle_diff(const QueryEngine& engine, std::string_view from_text,
                        std::string_view to_text) {
    const auto from = parse_u64(from_text);
    const auto to = parse_u64(to_text);
    if (!from || !to) return err("bad version operand");
    const auto result = engine.diff(*from, *to);
    if (!result) return err(result.error().message);
    const SnapshotDiff& diff = result.value();
    std::ostringstream out;
    out << "OK from=" << diff.from_version << " to=" << diff.to_version
        << " common=" << diff.stability.common_ips
        << " identical=" << diff.stability.identical_signature
        << " changed=" << diff.stability.changed_signature
        << " vendor_changed=" << diff.stability.vendor_changed
        << " stability=" << diff.stability.stability()
        << " from_passes=" << diff.from_pass_stats.size()
        << " to_passes=" << diff.to_pass_stats.size();
    return out.str();
}

std::string handle_export(const QueryEngine& engine) {
    const std::shared_ptr<const Snapshot> snapshot = engine.snapshot();
    if (snapshot == nullptr) return err("no snapshot published");
    std::ostringstream out;
    io::export_measurement_csv(out, snapshot->expand());
    return out.str();
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::string_view payload) {
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + payload.size());
    frame.push_back(static_cast<std::uint8_t>(size & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((size >> 8) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((size >> 16) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((size >> 24) & 0xFF));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
    if (error_) return;
    buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<std::string> FrameDecoder::next() {
    if (error_ || buffer_.size() < 4) return std::nullopt;
    const std::uint32_t length = static_cast<std::uint32_t>(buffer_[0]) |
                                 (static_cast<std::uint32_t>(buffer_[1]) << 8) |
                                 (static_cast<std::uint32_t>(buffer_[2]) << 16) |
                                 (static_cast<std::uint32_t>(buffer_[3]) << 24);
    if (length == 0) {
        error_ = true;
        error_reason_ = "zero-length frame";
        return std::nullopt;
    }
    if (length > kMaxFramePayload) {
        error_ = true;
        error_reason_ = "frame of " + std::to_string(length) +
                        " bytes exceeds the cap of " + std::to_string(kMaxFramePayload);
        return std::nullopt;
    }
    if (buffer_.size() < 4u + length) return std::nullopt;
    std::string payload(buffer_.begin() + 4, buffer_.begin() + 4 + length);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + length);
    return payload;
}

#ifndef _WIN32

bool write_frame(int fd, std::string_view payload) {
    const std::vector<std::uint8_t> frame = encode_frame(payload);
    std::size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + written, frame.size() - written);
        if (n <= 0) return false;
        written += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string> read_frame(int fd) {
    FrameDecoder decoder;
    std::uint8_t chunk[4096];
    while (true) {
        if (auto payload = decoder.next()) return payload;
        if (decoder.error()) return std::nullopt;
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) return std::nullopt;
        decoder.feed(chunk, static_cast<std::size_t>(n));
    }
}

bool serve_connection(int fd, CensusService& service, const QueryEngine& engine) {
    FrameDecoder decoder;
    std::uint8_t chunk[4096];
    while (true) {
        while (auto request = decoder.next()) {
            const RequestOutcome outcome = handle_request(*request, service, engine);
            if (!write_frame(fd, outcome.response)) return false;
            if (outcome.shutdown) return true;
        }
        if (decoder.error()) {
            // Structured rejection: one error frame naming the violation,
            // then hang up — never a silent close, never an attempt to
            // resynchronize a stream we can no longer trust.
            (void)write_frame(fd, "ERR protocol: " + decoder.error_reason());
            return false;
        }
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        // EOF or error — including a peer that vanished mid-frame: the
        // partial frame still in the decoder is simply abandoned.
        if (n <= 0) return false;
        decoder.feed(chunk, static_cast<std::size_t>(n));
    }
}

#endif  // !_WIN32

RequestOutcome handle_request(std::string_view request, CensusService& service,
                              const QueryEngine& engine) {
    const std::vector<std::string_view> words = split_words(request);
    if (words.empty()) return {err("empty request"), false};
    const std::string_view verb = words[0];
    const std::span<const std::string_view> operands(words.data() + 1, words.size() - 1);

    if (verb == "PING") {
        if (!operands.empty()) return {err("PING takes no operands"), false};
        return {"OK pong", false};
    }
    if (verb == "STATS") {
        if (!operands.empty()) return {err("STATS takes no operands"), false};
        return {handle_stats(service, engine), false};
    }
    if (verb == "VENDOR") {
        if (operands.size() != 1) return {err("usage: VENDOR <ip>"), false};
        return {handle_vendor(engine, operands[0]), false};
    }
    if (verb == "ASMIX") {
        if (operands.size() != 1) return {err("usage: ASMIX <asn>"), false};
        return {handle_asmix(engine, operands[0]), false};
    }
    if (verb == "PATH") {
        if (operands.empty()) return {err("usage: PATH <ip> [<ip>...] | PATH @<index>"), false};
        return {handle_path(engine, operands), false};
    }
    if (verb == "PATHCENSUS") {
        if (!operands.empty()) return {err("PATHCENSUS takes no operands"), false};
        return {handle_path_census(service, engine), false};
    }
    if (verb == "DIFF") {
        if (operands.size() != 2) return {err("usage: DIFF <from-version> <to-version>"), false};
        return {handle_diff(engine, operands[0], operands[1]), false};
    }
    if (verb == "EXPORT") {
        if (!operands.empty()) return {err("EXPORT takes no operands"), false};
        return {handle_export(engine), false};
    }
    if (verb == "TRIGGER") {
        if (!operands.empty()) return {err("TRIGGER takes no operands"), false};
        return {"OK version=" + std::to_string(service.run_census_now()), false};
    }
    if (verb == "SHUTDOWN") {
        if (!operands.empty()) return {err("SHUTDOWN takes no operands"), false};
        return {"OK bye", true};
    }
    return {err("unknown command '" + std::string(verb) + "'"), false};
}

}  // namespace lfp::serve
