#include "serve/service.hpp"

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace lfp::serve {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    std::uint64_t parsed = 0;
    const char* end = value;
    while (*end != '\0') ++end;
    auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end) return fallback;
    return parsed;
}

}  // namespace

PassScheduler::PassScheduler(std::function<void()> pass, Options options)
    : pass_(std::move(pass)), options_(options) {}

PassScheduler::~PassScheduler() { stop(); }

void PassScheduler::start() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    if (options_.run_immediately) trigger_pending_ = true;
    thread_ = std::thread([this] { run(); });
}

void PassScheduler::stop() {
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (!running_) return;
        stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> guard(mutex_);
    running_ = false;
}

void PassScheduler::trigger() {
    bool need_start = false;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        trigger_pending_ = true;
        need_start = !running_;
    }
    if (need_start) {
        // start() takes the lock itself; run_immediately already queued one
        // pass when set, but trigger_pending_ is a flag, not a counter, so
        // the two requests coalesce.
        start();
    }
    cv_.notify_all();
}

std::uint64_t PassScheduler::passes_completed() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return completed_;
}

bool PassScheduler::wait_for_passes(std::uint64_t count, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [this, count] { return completed_ >= count; });
}

void PassScheduler::run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (options_.interval.count() > 0) {
            // Recurring mode: wake on the timer, a trigger, or stop.
            cv_.wait_for(lock, options_.interval,
                         [this] { return stop_requested_ || trigger_pending_; });
            if (stop_requested_) return;
            // A timer expiry with no explicit trigger is itself a pass.
            trigger_pending_ = false;
        } else {
            cv_.wait(lock, [this] { return stop_requested_ || trigger_pending_; });
            if (stop_requested_) return;
            trigger_pending_ = false;
        }
        lock.unlock();
        pass_();
        lock.lock();
        ++completed_;
        cv_.notify_all();
    }
}

ServiceConfig ServiceConfig::from_env() { return from_env(ServiceConfig{}); }

ServiceConfig ServiceConfig::from_env(ServiceConfig base) {
    base.interval = std::chrono::milliseconds(
        env_u64("LFP_SERVE_INTERVAL_MS", static_cast<std::uint64_t>(base.interval.count())));
    base.retain = static_cast<std::size_t>(env_u64("LFP_SERVE_RETAIN", base.retain));
    if (const char* dir = std::getenv("LFP_SERVE_STATE"); dir != nullptr && *dir != '\0') {
        base.state_dir = dir;
    }
    return base;
}

std::string default_socket_path() {
    if (const char* path = std::getenv("LFP_SERVE_SOCKET"); path != nullptr && *path != '\0') {
        return path;
    }
    const std::filesystem::path dir = std::filesystem::temp_directory_path();
#ifndef _WIN32
    return (dir / ("lfp_serve." + std::to_string(::getuid()) + ".sock")).string();
#else
    return (dir / "lfp_serve.sock").string();
#endif
}

CensusService::CensusService(core::CensusPlan plan, ServiceConfig config)
    : config_(std::move(config)),
      runner_(std::move(plan)),
      store_(config_.retain, config_.state_dir),
      scheduler_([this] { run_census_now(); },
                 {.interval = config_.interval, .run_immediately = config_.run_immediately}) {}

CensusService::~CensusService() { stop(); }

void CensusService::start() { scheduler_.start(); }

void CensusService::stop() { scheduler_.stop(); }

void CensusService::trigger() { scheduler_.trigger(); }

std::uint64_t CensusService::run_census_now() {
    std::lock_guard<std::mutex> guard(census_mutex_);
    SnapshotBuilder builder({.name = config_.name,
                             .database = config_.database,
                             .classify = config_.classify,
                             .asn = config_.asn});
    const core::CensusPlan& plan = runner_.plan();
    runner_.stream_passes(plan.targets, plan.assignment, config_.passes, builder);
    auto snapshot =
        builder.build(next_version_++, runner_.last_pass_stats(), &runner_.pool());
    const std::uint64_t version = store_.publish(std::move(snapshot));
    published_.fetch_add(1, std::memory_order_relaxed);
    return version;
}

std::uint64_t CensusService::run_path_census_now() {
    if (!config_.paths) {
        throw std::logic_error("CensusService: no path source configured for a path census");
    }
    std::lock_guard<std::mutex> guard(census_mutex_);
    PathSweep sweep = config_.paths();
    SnapshotBuilder builder({.name = config_.name,
                             .database = config_.database,
                             .classify = config_.classify,
                             .asn = config_.asn});
    runner_.stream_paths(sweep.paths, sweep.path_lane, config_.passes, builder);
    builder.set_paths(std::move(sweep.paths));
    auto snapshot =
        builder.build(next_version_++, runner_.last_pass_stats(), &runner_.pool());
    const std::uint64_t version = store_.publish(std::move(snapshot));
    published_.fetch_add(1, std::memory_order_relaxed);
    return version;
}

bool CensusService::restore_latest() {
    if (config_.state_dir.empty()) return false;
    auto snapshot = load_latest_snapshot(config_.state_dir,
                                         {.database = config_.database, .asn = config_.asn});
    if (snapshot == nullptr) return false;
    // Serialize with censuses so a concurrent publish cannot interleave
    // with the version bump. Not counted in published_ — a restore serves
    // old data, it does not complete a census.
    std::lock_guard<std::mutex> guard(census_mutex_);
    next_version_ = snapshot->version() + 1;
    store_.publish(std::move(snapshot));
    return true;
}

}  // namespace lfp::serve
