// MIDAR-style IP alias resolution: interleaved probes to candidate addresses
// whose IPID values advance like a single shared counter indicate interfaces
// of the same router (Keys et al.; the mechanism behind the ITDK alias
// sets this study consumes).
#pragma once

#include <vector>

#include "core/ipid_classifier.hpp"
#include "probe/transport.hpp"

namespace lfp::analysis {

class AliasResolver {
  public:
    struct Config {
        std::size_t probes_per_address = 3;
        core::IpidClassifierConfig ipid;
    };

    explicit AliasResolver(probe::ProbeTransport& transport)
        : AliasResolver(transport, Config{}) {}
    AliasResolver(probe::ProbeTransport& transport, Config config)
        : transport_(&transport), config_(config) {}

    /// Monotonic Bound Test for one candidate pair: probes a,b,a,b,... and
    /// accepts when the merged IPID sequence advances like one counter.
    [[nodiscard]] bool aliases(net::IPv4Address a, net::IPv4Address b);

    /// Groups candidate addresses into alias sets (transitive closure of
    /// pairwise tests within the candidate list). Singletons are included.
    [[nodiscard]] std::vector<std::vector<net::IPv4Address>> resolve(
        std::span<const net::IPv4Address> candidates);

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  private:
    /// ICMP echo IPID samples in probe order; empty when unresponsive.
    [[nodiscard]] std::vector<core::IpidObservation> interleaved_samples(
        std::span<const net::IPv4Address> addresses);

    probe::ProbeTransport* transport_;
    Config config_;
    std::uint64_t packets_sent_ = 0;
    std::uint32_t send_index_ = 0;
};

}  // namespace lfp::analysis
