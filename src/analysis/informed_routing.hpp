// Informed-routing case study (paper §6.3): find vendor-homogeneous transit
// ASes, enumerate destinations whose best path transits them, and test
// whether alternative valley-free paths avoiding those ASes exist.
#pragma once

#include <vector>

#include "analysis/as_analysis.hpp"
#include "sim/topology.hpp"

namespace lfp::analysis {

struct TransitCaseStudy {
    std::uint32_t transit_asn = 0;
    stack::Vendor vendor = stack::Vendor::unknown;
    std::size_t paths_through = 0;          ///< (src,dst) pairs transiting the AS
    std::size_t destinations = 0;           ///< distinct destination ASes affected
    std::size_t with_alternative = 0;       ///< destinations with a vendor-avoiding path
    std::size_t without_alternative = 0;    ///< destinations only reachable through it
};

class InformedRoutingAnalysis {
  public:
    struct Config {
        /// Sources sampled per destination when counting transit paths.
        std::size_t sources_per_destination = 64;
        std::uint64_t seed = 1771;
    };

    explicit InformedRoutingAnalysis(const sim::Topology& topology)
        : InformedRoutingAnalysis(topology, Config{}) {}
    InformedRoutingAnalysis(const sim::Topology& topology, Config config)
        : topology_(&topology), config_(config) {}

    /// Evaluates one homogeneous transit AS against sampled src/dst pairs.
    [[nodiscard]] TransitCaseStudy evaluate(const HomogeneousAs& transit_as) const;

    /// Evaluates every given homogeneous AS.
    [[nodiscard]] std::vector<TransitCaseStudy> evaluate_all(
        const std::vector<HomogeneousAs>& candidates) const;

  private:
    const sim::Topology* topology_;
    Config config_;
};

}  // namespace lfp::analysis
