#include "analysis/as_analysis.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace lfp::analysis {

std::vector<RouterVerdict> map_routers(const sim::ItdkDataset& itdk,
                                       const sim::Topology& topology,
                                       const VendorMap& snmp_map, const VendorMap& lfp_map) {
    std::vector<RouterVerdict> verdicts;
    verdicts.reserve(itdk.alias_sets.size());
    for (const sim::AliasSet& alias_set : itdk.alias_sets) {
        RouterVerdict verdict;
        verdict.router_index = alias_set.router_index;
        verdict.asn = topology.asn_of(alias_set.router_index);

        std::set<stack::Vendor> snmp_votes;
        std::set<stack::Vendor> lfp_votes;
        for (net::IPv4Address address : alias_set.addresses) {
            if (auto v = snmp_map.lookup(address)) snmp_votes.insert(*v);
            if (auto v = lfp_map.lookup(address)) lfp_votes.insert(*v);
        }
        if (!snmp_votes.empty()) verdict.snmp_vendor = *snmp_votes.begin();
        if (!lfp_votes.empty()) verdict.lfp_vendor = *lfp_votes.begin();
        verdict.conflicting_interfaces = snmp_votes.size() > 1 || lfp_votes.size() > 1;
        verdicts.push_back(verdict);
    }
    return verdicts;
}

std::vector<AsCoverage> per_as_coverage(const std::vector<RouterVerdict>& verdicts) {
    std::unordered_map<std::uint32_t, AsCoverage> by_as;
    for (const RouterVerdict& verdict : verdicts) {
        AsCoverage& entry = by_as[verdict.asn];
        entry.asn = verdict.asn;
        ++entry.routers_total;
        if (auto vendor = verdict.combined()) {
            ++entry.routers_identified;
            ++entry.vendor_counts[*vendor];
        }
    }
    std::vector<AsCoverage> out;
    out.reserve(by_as.size());
    for (auto& [asn, entry] : by_as) out.push_back(std::move(entry));
    std::sort(out.begin(), out.end(),
              [](const AsCoverage& a, const AsCoverage& b) { return a.asn < b.asn; });
    return out;
}

std::optional<stack::Vendor> AsCoverage::dominant(double min_share) const {
    if (routers_identified == 0) return std::nullopt;
    for (const auto& [vendor, count] : vendor_counts) {
        if (static_cast<double>(count) >=
            min_share * static_cast<double>(routers_identified)) {
            return vendor;
        }
    }
    return std::nullopt;
}

util::Ecdf coverage_ecdf(const std::vector<AsCoverage>& coverage, std::size_t min_routers) {
    util::Ecdf ecdf;
    for (const AsCoverage& entry : coverage) {
        if (entry.routers_total >= min_routers) ecdf.add(entry.identified_percent());
    }
    return ecdf;
}

util::Ecdf homogeneity_ecdf(const std::vector<AsCoverage>& coverage, std::size_t min_routers) {
    util::Ecdf ecdf;
    for (const AsCoverage& entry : coverage) {
        if (entry.routers_total >= min_routers && entry.routers_identified > 0) {
            ecdf.add(static_cast<double>(entry.vendor_count()));
        }
    }
    return ecdf;
}

std::map<sim::Continent, std::map<stack::Vendor, std::size_t>> regional_distribution(
    const std::vector<RouterVerdict>& verdicts, const sim::Topology& topology) {
    std::map<sim::Continent, std::map<stack::Vendor, std::size_t>> out;
    for (const RouterVerdict& verdict : verdicts) {
        auto vendor = verdict.combined();
        if (!vendor) continue;
        const sim::GeoInfo* geo = topology.geo().lookup(verdict.asn);
        if (geo == nullptr) continue;
        ++out[geo->continent][*vendor];
    }
    return out;
}

std::vector<HomogeneousAs> find_homogeneous_ases(const std::vector<AsCoverage>& coverage,
                                                 std::size_t min_routers, double min_share) {
    std::vector<HomogeneousAs> out;
    for (const AsCoverage& entry : coverage) {
        if (entry.routers_identified < min_routers) continue;
        auto vendor = entry.dominant(min_share);
        if (!vendor) continue;
        HomogeneousAs hom;
        hom.asn = entry.asn;
        hom.vendor = *vendor;
        hom.routers = entry.routers_identified;
        hom.share = static_cast<double>(entry.vendor_counts.at(*vendor)) /
                    static_cast<double>(entry.routers_identified);
        out.push_back(hom);
    }
    return out;
}

}  // namespace lfp::analysis
