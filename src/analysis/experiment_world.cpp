#include "analysis/experiment_world.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace lfp::analysis {

namespace {

double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE) {
        throw std::invalid_argument(std::string(name) + "=\"" + value + "\" is not a number");
    }
    return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    // strtoull silently wraps negative input ("-1" -> 2^64-1), so reject a
    // minus sign explicitly.
    if (end == value || *end != '\0' || errno == ERANGE ||
        std::string_view(value).find('-') != std::string_view::npos) {
        throw std::invalid_argument(std::string(name) + "=\"" + value +
                                    "\" is not an unsigned integer");
    }
    return parsed;
}

}  // namespace

WorldConfig WorldConfig::from_env() {
    WorldConfig config;
    config.seed = env_u64("LFP_SEED", config.seed);
    config.scale = env_double("LFP_SCALE", config.scale);
    config.num_ases = static_cast<std::size_t>(env_u64("LFP_ASES", config.num_ases));
    config.traces_per_snapshot =
        static_cast<std::size_t>(env_u64("LFP_TRACES", config.traces_per_snapshot));
    config.window = static_cast<std::size_t>(env_u64("LFP_WINDOW", config.window));
    config.worker_threads = static_cast<std::size_t>(env_u64("LFP_WORKERS", config.worker_threads));
    config.vantages = static_cast<std::size_t>(env_u64("LFP_VANTAGES", config.vantages));
    const std::uint64_t adaptive =
        env_u64("LFP_ADAPTIVE", config.adaptive_window ? 1 : 0);
    if (adaptive > 1) {
        throw std::invalid_argument("LFP_ADAPTIVE=" + std::to_string(adaptive) +
                                    " must be 0 (fixed window) or 1 (AIMD under the "
                                    "LFP_WINDOW ceiling)");
    }
    config.adaptive_window = adaptive == 1;
    config.packets_per_second = env_double("LFP_PPS", config.packets_per_second);
    config.passes = static_cast<std::size_t>(env_u64("LFP_PASSES", config.passes));
    config.faults = sim::FaultPlan::from_env();
    config.validate();
    return config;
}

void WorldConfig::validate() const {
    if (scale <= 0) {
        throw std::invalid_argument("WorldConfig: scale (LFP_SCALE) must be > 0");
    }
    if (vantages == 0) {
        throw std::invalid_argument(
            "WorldConfig: vantages (LFP_VANTAGES) must be >= 1 — a census needs at least one "
            "vantage point");
    }
    if (vantages > core::CensusPlan::kMaxVantages) {
        throw std::invalid_argument("WorldConfig: vantages (LFP_VANTAGES) = " +
                                    std::to_string(vantages) + " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxVantages));
    }
    if (window == 0) {
        throw std::invalid_argument(
            "WorldConfig: window (LFP_WINDOW) must be >= 1 (1 = serial pacing)");
    }
    if (window > core::CensusPlan::kMaxWindow) {
        throw std::invalid_argument("WorldConfig: window (LFP_WINDOW) = " +
                                    std::to_string(window) + " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxWindow));
    }
    if (worker_threads > core::CensusPlan::kMaxWorkers) {
        throw std::invalid_argument("WorldConfig: worker_threads (LFP_WORKERS) = " +
                                    std::to_string(worker_threads) +
                                    " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxWorkers) +
                                    " (0 = one per hardware thread)");
    }
    if (!(packets_per_second >= 0)) {  // also rejects NaN
        throw std::invalid_argument(
            "WorldConfig: packets_per_second (LFP_PPS) must be >= 0 (0 = unpaced)");
    }
    if (passes == 0) {
        throw std::invalid_argument(
            "WorldConfig: passes (LFP_PASSES) must be >= 1 (1 = single-pass census)");
    }
    if (passes > core::CensusPlan::kMaxPasses) {
        throw std::invalid_argument("WorldConfig: passes (LFP_PASSES) = " +
                                    std::to_string(passes) + " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxPasses));
    }
    faults.validate();
}

std::unique_ptr<ExperimentWorld> ExperimentWorld::create(WorldConfig config) {
    return std::unique_ptr<ExperimentWorld>(new ExperimentWorld(config));
}

ExperimentWorld::ExperimentWorld(WorldConfig config)
    : config_((config.validate(), config)),
      topology_(sim::Topology::build({.seed = config.seed,
                                      .num_ases = config.num_ases,
                                      .tier1_count = 12,
                                      .transit_fraction = 0.18,
                                      .scale = config.scale})),
      internet_(topology_, {.seed = config.seed ^ 0xF00D, .loss_rate = 0.004}) {
    // One transport per vantage lane, all sharing the wire and the vantage
    // address: lanes model parallel probing capacity at one origin, so the
    // merged measurement is byte-identical whatever the lane count.
    transports_.reserve(config.vantages);
    for (std::size_t v = 0; v < config.vantages; ++v) {
        transports_.push_back(std::make_unique<probe::SimTransport>(internet_));
    }
    // Fault matrix: decorate every lane's transport when any fault class is
    // active. The decorator's fault draws are pure functions of (seed,
    // packet bytes), so a faulted build is itself deterministic.
    if (config.faults.any()) {
        fault_transports_.reserve(transports_.size());
        for (auto& transport : transports_) {
            fault_transports_.push_back(
                std::make_unique<sim::FaultInjectingTransport>(*transport, config.faults));
        }
    }

    // Datasets.
    sim::DatasetConfig dataset_config;
    dataset_config.seed = config.seed ^ 0xDA7A;
    dataset_config.traces_per_snapshot = config.traces_per_snapshot;
    sim::DatasetBuilder builder(topology_, dataset_config);
    ripe_ = builder.ripe_snapshots();
    itdk_ = builder.itdk();

    // Measurements (Figure 1 steps 1-2 per dataset) through the vantage-
    // aware runner. Successive datasets continue the same global ID lanes,
    // like one long serial campaign over the concatenated target lists.
    core::CensusPlan plan;
    plan.vantages.reserve(transports_.size());
    if (fault_transports_.empty()) {
        for (const auto& transport : transports_) plan.vantages.push_back(transport.get());
    } else {
        for (const auto& transport : fault_transports_) {
            plan.vantages.push_back(transport.get());
        }
    }
    plan.campaign.window = config.window;
    plan.campaign.adaptive_window = config.adaptive_window;
    plan.campaign.packets_per_second = config.packets_per_second;
    plan.worker_threads = config.worker_threads;
    plan.passes = config.passes;
    core::CensusRunner runner(std::move(plan));

    // Streaming census per dataset: lane assignment comes from the
    // transports' backend hints (SimTransport reports ground-truth router
    // indices, so interface aliases of one stateful router always share a
    // lane — deterministic and thread-safe), and each record flows through
    // a SignatureAbsorbSink into the union database *while the census is
    // still probing*, in front of a CollectingSink that keeps the classic
    // Measurement. Step 3's aggregation thereby overlaps steps 1-2 instead
    // of re-walking every record afterwards; counts are additive, so the
    // finalized database is byte-identical to a batch build.
    core::SignatureDatabase database(
        core::SignatureDbConfig{.min_occurrences = config.signature_min_occurrences});
    // With config.passes > 1 the runner re-probes incomplete targets under
    // shifted ID bases before the sink chain sees final records (absorption
    // then follows the last pass instead of overlapping the probing — a
    // record is not final until its last chance to be retried has run).
    auto stream_dataset = [&](const std::string& name,
                              const std::vector<net::IPv4Address>& targets) {
        core::CollectingSink collect(name);
        collect.reserve(targets.size());
        core::SignatureAbsorbSink absorb(database, &collect);
        runner.stream_passes(targets, {}, config.passes, absorb);
        measurements_.push_back(collect.take());
    };

    measurements_.reserve(ripe_.size() + 1);
    for (const sim::TracerouteDataset& snapshot : ripe_) {
        stream_dataset(snapshot.name, snapshot.router_ips());
    }
    stream_dataset(itdk_.name, itdk_.router_ips());
    packets_sent_ = runner.packets_sent();

    // Freeze the union database (step 3) and classify (steps 4-5), sharded
    // over the runner's worker pool. Classification cannot overlap the
    // probing above — the database admits signatures only once every
    // dataset has been absorbed.
    database.finalize();
    database_ = std::move(database);
    for (core::Measurement& measurement : measurements_) {
        runner.classify(measurement, database_);
    }
}

const core::Measurement& ExperimentWorld::measurement(const std::string& name) const {
    for (const core::Measurement& m : measurements_) {
        if (m.name == name) return m;
    }
    std::string available;
    for (const core::Measurement& m : measurements_) {
        if (!available.empty()) available += ", ";
        available += m.name;
    }
    throw std::out_of_range("no measurement named \"" + name + "\" (available: " + available +
                            ")");
}

}  // namespace lfp::analysis
