#include "analysis/experiment_world.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace lfp::analysis {

namespace {

double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE) {
        throw std::invalid_argument(std::string(name) + "=\"" + value + "\" is not a number");
    }
    return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    // strtoull silently wraps negative input ("-1" -> 2^64-1), so reject a
    // minus sign explicitly.
    if (end == value || *end != '\0' || errno == ERANGE ||
        std::string_view(value).find('-') != std::string_view::npos) {
        throw std::invalid_argument(std::string(name) + "=\"" + value +
                                    "\" is not an unsigned integer");
    }
    return parsed;
}

}  // namespace

WorldConfig WorldConfig::from_env() {
    WorldConfig config;
    config.seed = env_u64("LFP_SEED", config.seed);
    config.scale = env_double("LFP_SCALE", config.scale);
    config.num_ases = static_cast<std::size_t>(env_u64("LFP_ASES", config.num_ases));
    config.traces_per_snapshot =
        static_cast<std::size_t>(env_u64("LFP_TRACES", config.traces_per_snapshot));
    config.window = static_cast<std::size_t>(env_u64("LFP_WINDOW", config.window));
    config.worker_threads = static_cast<std::size_t>(env_u64("LFP_WORKERS", config.worker_threads));
    config.vantages = static_cast<std::size_t>(env_u64("LFP_VANTAGES", config.vantages));
    config.validate();
    return config;
}

void WorldConfig::validate() const {
    if (scale <= 0) {
        throw std::invalid_argument("WorldConfig: scale (LFP_SCALE) must be > 0");
    }
    if (vantages == 0) {
        throw std::invalid_argument(
            "WorldConfig: vantages (LFP_VANTAGES) must be >= 1 — a census needs at least one "
            "vantage point");
    }
    if (vantages > core::CensusPlan::kMaxVantages) {
        throw std::invalid_argument("WorldConfig: vantages (LFP_VANTAGES) = " +
                                    std::to_string(vantages) + " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxVantages));
    }
    if (window == 0) {
        throw std::invalid_argument(
            "WorldConfig: window (LFP_WINDOW) must be >= 1 (1 = serial pacing)");
    }
    if (window > core::CensusPlan::kMaxWindow) {
        throw std::invalid_argument("WorldConfig: window (LFP_WINDOW) = " +
                                    std::to_string(window) + " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxWindow));
    }
    if (worker_threads > core::CensusPlan::kMaxWorkers) {
        throw std::invalid_argument("WorldConfig: worker_threads (LFP_WORKERS) = " +
                                    std::to_string(worker_threads) +
                                    " exceeds the ceiling of " +
                                    std::to_string(core::CensusPlan::kMaxWorkers) +
                                    " (0 = one per hardware thread)");
    }
}

std::unique_ptr<ExperimentWorld> ExperimentWorld::create(WorldConfig config) {
    return std::unique_ptr<ExperimentWorld>(new ExperimentWorld(config));
}

ExperimentWorld::ExperimentWorld(WorldConfig config)
    : config_((config.validate(), config)),
      topology_(sim::Topology::build({.seed = config.seed,
                                      .num_ases = config.num_ases,
                                      .tier1_count = 12,
                                      .transit_fraction = 0.18,
                                      .scale = config.scale})),
      internet_(topology_, {.seed = config.seed ^ 0xF00D, .loss_rate = 0.004}) {
    // One transport per vantage lane, all sharing the wire and the vantage
    // address: lanes model parallel probing capacity at one origin, so the
    // merged measurement is byte-identical whatever the lane count.
    transports_.reserve(config.vantages);
    for (std::size_t v = 0; v < config.vantages; ++v) {
        transports_.push_back(std::make_unique<probe::SimTransport>(internet_));
    }

    // Datasets.
    sim::DatasetConfig dataset_config;
    dataset_config.seed = config.seed ^ 0xDA7A;
    dataset_config.traces_per_snapshot = config.traces_per_snapshot;
    sim::DatasetBuilder builder(topology_, dataset_config);
    ripe_ = builder.ripe_snapshots();
    itdk_ = builder.itdk();

    // Measurements (Figure 1 steps 1-2 per dataset) through the vantage-
    // aware runner. Successive datasets continue the same global ID lanes,
    // like one long serial campaign over the concatenated target lists.
    core::CensusPlan plan;
    plan.vantages.reserve(transports_.size());
    for (const auto& transport : transports_) plan.vantages.push_back(transport.get());
    plan.campaign.window = config.window;
    plan.worker_threads = config.worker_threads;
    core::CensusRunner runner(std::move(plan));

    // Lane assignment by ground-truth router affinity: interface aliases of
    // one (stateful) simulated router always share a lane, which keeps the
    // multi-lane run deterministic and thread-safe. Addresses without a
    // backing router are independent; they get singleton keys outside the
    // router-index range.
    auto affinity_assignment = [&](const std::vector<net::IPv4Address>& targets) {
        std::vector<std::uint64_t> keys;
        keys.reserve(targets.size());
        for (net::IPv4Address ip : targets) {
            const std::size_t router = topology_.find_by_interface(ip);
            keys.push_back(router != sim::Topology::npos
                               ? static_cast<std::uint64_t>(router)
                               : 0x8000000000000000ULL | ip.value());
        }
        return core::CensusPlan::assignment_by_affinity(keys, transports_.size());
    };

    measurements_.reserve(ripe_.size() + 1);
    for (const sim::TracerouteDataset& snapshot : ripe_) {
        const auto targets = snapshot.router_ips();
        measurements_.push_back(
            runner.measure(snapshot.name, targets, affinity_assignment(targets)));
    }
    {
        const auto targets = itdk_.router_ips();
        measurements_.push_back(runner.measure(itdk_.name, targets, affinity_assignment(targets)));
    }
    packets_sent_ = runner.packets_sent();

    // Union signature database (step 3) and classification (steps 4-5),
    // sharded over the runner's worker pool.
    database_ = runner.build_database(measurements_,
                                      {.min_occurrences = config.signature_min_occurrences});
    for (core::Measurement& measurement : measurements_) {
        runner.classify(measurement, database_);
    }
}

const core::Measurement& ExperimentWorld::measurement(const std::string& name) const {
    for (const core::Measurement& m : measurements_) {
        if (m.name == name) return m;
    }
    std::string available;
    for (const core::Measurement& m : measurements_) {
        if (!available.empty()) available += ", ";
        available += m.name;
    }
    throw std::out_of_range("no measurement named \"" + name + "\" (available: " + available +
                            ")");
}

}  // namespace lfp::analysis
