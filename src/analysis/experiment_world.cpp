#include "analysis/experiment_world.hpp"

#include <cstdlib>
#include <stdexcept>

namespace lfp::analysis {

namespace {

double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    return std::strtod(value, nullptr);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    return std::strtoull(value, nullptr, 10);
}

}  // namespace

WorldConfig WorldConfig::from_env() {
    WorldConfig config;
    config.seed = env_u64("LFP_SEED", config.seed);
    config.scale = env_double("LFP_SCALE", config.scale);
    config.num_ases = static_cast<std::size_t>(env_u64("LFP_ASES", config.num_ases));
    config.traces_per_snapshot =
        static_cast<std::size_t>(env_u64("LFP_TRACES", config.traces_per_snapshot));
    return config;
}

std::unique_ptr<ExperimentWorld> ExperimentWorld::create(WorldConfig config) {
    return std::unique_ptr<ExperimentWorld>(new ExperimentWorld(config));
}

ExperimentWorld::ExperimentWorld(WorldConfig config)
    : config_(config),
      topology_(sim::Topology::build({.seed = config.seed,
                                      .num_ases = config.num_ases,
                                      .tier1_count = 12,
                                      .transit_fraction = 0.18,
                                      .scale = config.scale})),
      internet_(topology_, {.seed = config.seed ^ 0xF00D, .loss_rate = 0.004}),
      transport_(internet_) {
    // Datasets.
    sim::DatasetConfig dataset_config;
    dataset_config.seed = config.seed ^ 0xDA7A;
    dataset_config.traces_per_snapshot = config.traces_per_snapshot;
    sim::DatasetBuilder builder(topology_, dataset_config);
    ripe_ = builder.ripe_snapshots();
    itdk_ = builder.itdk();

    // Measurements (Figure 1 steps 1-2 per dataset).
    core::LfpPipeline pipeline(transport_);
    measurements_.reserve(ripe_.size() + 1);
    for (const sim::TracerouteDataset& snapshot : ripe_) {
        const auto targets = snapshot.router_ips();
        measurements_.push_back(pipeline.measure(snapshot.name, targets));
    }
    {
        const auto targets = itdk_.router_ips();
        measurements_.push_back(pipeline.measure(itdk_.name, targets));
    }
    packets_sent_ = pipeline.packets_sent();

    // Union signature database (step 3) and classification (steps 4-5).
    database_ = core::LfpPipeline::build_database(
        measurements_, {.min_occurrences = config.signature_min_occurrences});
    for (core::Measurement& measurement : measurements_) {
        core::LfpPipeline::classify_measurement(measurement, database_);
    }
}

const core::Measurement& ExperimentWorld::measurement(const std::string& name) const {
    for (const core::Measurement& m : measurements_) {
        if (m.name == name) return m;
    }
    throw std::out_of_range("no measurement named " + name);
}

}  // namespace lfp::analysis
