// Network-centric analyses (paper §7.2, §7.5, Appendix A): router-level
// vendor mapping over alias sets, per-AS coverage and homogeneity, regional
// vendor distribution, and the vendor-homogeneous-AS finder used by the
// §6.3 routing case study.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "analysis/path_analysis.hpp"
#include "sim/datasets.hpp"
#include "util/stats.hpp"

namespace lfp::analysis {

/// A fingerprinted router (alias set) with per-method vendor verdicts.
struct RouterVerdict {
    std::size_t router_index = 0;
    std::uint32_t asn = 0;
    std::optional<stack::Vendor> snmp_vendor;
    std::optional<stack::Vendor> lfp_vendor;
    bool conflicting_interfaces = false;  ///< interfaces disagreeing on vendor

    [[nodiscard]] std::optional<stack::Vendor> combined() const {
        return snmp_vendor ? snmp_vendor : lfp_vendor;
    }
};

/// Maps each ITDK alias set to vendors by both methods. An alias set's
/// verdict is the (unique) vendor of its identified interfaces.
[[nodiscard]] std::vector<RouterVerdict> map_routers(const sim::ItdkDataset& itdk,
                                                     const sim::Topology& topology,
                                                     const VendorMap& snmp_map,
                                                     const VendorMap& lfp_map);

struct AsCoverage {
    std::uint32_t asn = 0;
    std::size_t routers_total = 0;
    std::size_t routers_identified = 0;
    std::map<stack::Vendor, std::size_t> vendor_counts;

    [[nodiscard]] double identified_percent() const {
        return routers_total == 0 ? 0.0
                                  : 100.0 * static_cast<double>(routers_identified) /
                                        static_cast<double>(routers_total);
    }
    [[nodiscard]] std::size_t vendor_count() const { return vendor_counts.size(); }
    [[nodiscard]] std::optional<stack::Vendor> dominant(double min_share) const;
};

/// Aggregates router verdicts per AS.
[[nodiscard]] std::vector<AsCoverage> per_as_coverage(
    const std::vector<RouterVerdict>& verdicts);

/// Figure 19 series: ECDF of identified-router percentage for ASes with at
/// least `min_routers` routers.
[[nodiscard]] util::Ecdf coverage_ecdf(const std::vector<AsCoverage>& coverage,
                                       std::size_t min_routers);

/// Figure 20 series: ECDF of vendors-per-AS for ASes with at least
/// `min_routers` routers.
[[nodiscard]] util::Ecdf homogeneity_ecdf(const std::vector<AsCoverage>& coverage,
                                          std::size_t min_routers);

/// Figure 21: per-continent vendor counts (router granularity).
[[nodiscard]] std::map<sim::Continent, std::map<stack::Vendor, std::size_t>>
regional_distribution(const std::vector<RouterVerdict>& verdicts, const sim::Topology& topology);

/// §6.3: ASes with ≥ `min_routers` identified routers where one vendor holds
/// ≥ `min_share` of identified routers.
struct HomogeneousAs {
    std::uint32_t asn = 0;
    stack::Vendor vendor = stack::Vendor::unknown;
    std::size_t routers = 0;
    double share = 0.0;
};
[[nodiscard]] std::vector<HomogeneousAs> find_homogeneous_ases(
    const std::vector<AsCoverage>& coverage, std::size_t min_routers, double min_share);

}  // namespace lfp::analysis
