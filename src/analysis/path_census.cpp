#include "analysis/path_census.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/topology.hpp"

namespace lfp::analysis {

namespace {

double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE) {
        throw std::invalid_argument(std::string(name) + "=\"" + value + "\" is not a number");
    }
    return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    // strtoull silently wraps negative input ("-1" -> 2^64-1), so reject a
    // minus sign explicitly.
    if (end == value || *end != '\0' || errno == ERANGE ||
        std::string_view(value).find('-') != std::string_view::npos) {
        throw std::invalid_argument(std::string(name) + "=\"" + value +
                                    "\" is not an unsigned integer");
    }
    return parsed;
}

}  // namespace

PathCensusConfig PathCensusConfig::from_env() { return from_env(PathCensusConfig{}); }

PathCensusConfig PathCensusConfig::from_env(PathCensusConfig base) {
    base.seed = env_u64("LFP_PATH_SEED", base.seed);
    base.sources = static_cast<std::size_t>(env_u64("LFP_PATH_SOURCES", base.sources));
    base.destinations = static_cast<std::size_t>(env_u64("LFP_PATH_DESTS", base.destinations));
    base.flows_per_pair = static_cast<std::size_t>(env_u64("LFP_PATH_FLOWS", base.flows_per_pair));
    base.stale_fraction = env_double("LFP_PATH_STALE", base.stale_fraction);
    base.private_fraction = env_double("LFP_PATH_PRIVATE", base.private_fraction);
    base.db_min_occurrences =
        static_cast<std::size_t>(env_u64("LFP_PATH_DB_MIN", base.db_min_occurrences));
    base.validate();
    return base;
}

void PathCensusConfig::validate() const {
    if (sources == 0) {
        throw std::invalid_argument(
            "PathCensusConfig: sources (LFP_PATH_SOURCES) must be >= 1 — a sweep needs a "
            "vantage point");
    }
    if (sources > kMaxSources) {
        throw std::invalid_argument("PathCensusConfig: sources (LFP_PATH_SOURCES) = " +
                                    std::to_string(sources) + " exceeds the ceiling of " +
                                    std::to_string(kMaxSources));
    }
    if (destinations == 0) {
        throw std::invalid_argument(
            "PathCensusConfig: destinations (LFP_PATH_DESTS) must be >= 1");
    }
    if (destinations > kMaxDestinations) {
        throw std::invalid_argument("PathCensusConfig: destinations (LFP_PATH_DESTS) = " +
                                    std::to_string(destinations) + " exceeds the ceiling of " +
                                    std::to_string(kMaxDestinations));
    }
    if (flows_per_pair == 0 || flows_per_pair > kMaxFlows) {
        throw std::invalid_argument("PathCensusConfig: flows_per_pair (LFP_PATH_FLOWS) = " +
                                    std::to_string(flows_per_pair) + " must be in [1, " +
                                    std::to_string(kMaxFlows) + "]");
    }
    auto check_fraction = [](const char* what, double value) {
        if (!(value >= 0.0) || !(value <= 1.0)) {
            throw std::invalid_argument(std::string("PathCensusConfig: ") + what + " = " +
                                        std::to_string(value) + " must be in [0, 1]");
        }
    };
    check_fraction("stale_fraction (LFP_PATH_STALE)", stale_fraction);
    check_fraction("private_fraction (LFP_PATH_PRIVATE)", private_fraction);
    if (db_min_occurrences == 0) {
        throw std::invalid_argument(
            "PathCensusConfig: db_min_occurrences (LFP_PATH_DB_MIN) must be >= 1 — a "
            "signature seen zero times cannot be admitted");
    }
}

std::vector<std::vector<net::IPv4Address>> PathDiscovery::hop_lists() const {
    std::vector<std::vector<net::IPv4Address>> out;
    out.reserve(traces.size());
    for (const sim::Traceroute& trace : traces) out.push_back(trace.hops);
    return out;
}

PathCensus::PathCensus(const sim::Topology& topology, PathCensusConfig config)
    : topology_(&topology), config_(config) {
    config_.validate();
}

PathDiscovery PathCensus::discover() const {
    PathDiscovery out;

    // Vantage and destination selection: a deterministic shuffle of the AS
    // list driven purely by the sweep seed. The first `sources` ASes become
    // vantages, the next `destinations` the hitlist (wrapping when the
    // topology is smaller than the ask — small test worlds may trace within
    // one AS, which the synthesizer handles).
    const std::vector<sim::AsNode>& nodes = topology_->graph().nodes();
    if (nodes.empty()) return out;
    std::vector<std::uint32_t> asns;
    asns.reserve(nodes.size());
    for (const sim::AsNode& node : nodes) asns.push_back(node.asn);
    util::Rng rng(config_.seed ^ 0xA17D0C5E5u);
    for (std::size_t i = asns.size(); i > 1; --i) {
        std::swap(asns[i - 1], asns[rng.below(i)]);
    }
    for (std::size_t s = 0; s < config_.sources; ++s) {
        out.sources.push_back(asns[s % asns.size()]);
    }
    for (std::size_t d = 0; d < config_.destinations; ++d) {
        out.destinations.push_back(asns[(config_.sources + d) % asns.size()]);
    }

    // The sweep itself: every (source, destination, flow) triple in
    // source-major order, through the deterministic per-flow entry point —
    // flow f of a pair is always flow f, so two sweeps over the same world
    // list identical paths hop for hop.
    sim::TracerouteSynthesizer synthesizer(*topology_, config_.seed);
    synthesizer.set_noise(config_.stale_fraction, config_.private_fraction);
    for (std::size_t s = 0; s < out.sources.size(); ++s) {
        for (const std::uint32_t destination : out.destinations) {
            bool reachable = false;
            for (std::size_t flow = 0; flow < config_.flows_per_pair; ++flow) {
                auto trace = synthesizer.trace(out.sources[s], destination, flow);
                if (!trace) break;  // no valley-free route for any flow
                reachable = true;
                out.traces.push_back(std::move(*trace));
                out.trace_source.push_back(static_cast<std::uint32_t>(s));
            }
            if (!reachable) ++out.unreachable_pairs;
        }
    }
    return out;
}

PathCensusResult PathCensus::run(core::CensusRunner& runner,
                                 const core::SignatureDatabase* database) const {
    PathCensusResult result;
    result.discovery = discover();

    const std::vector<std::vector<net::IPv4Address>> paths = result.discovery.hop_lists();
    result.measurement =
        runner.measure_paths("path-census", paths, result.discovery.trace_source);
    result.targets = runner.last_path_targets();
    result.pass_stats = runner.last_pass_stats();

    // Classification: against the caller's database when given, otherwise
    // self-calibrating — the database aggregates from this measurement's own
    // SNMP-labeled population, exactly like the batch pipeline's step 3.
    if (database != nullptr) {
        runner.classify(result.measurement, *database);
    } else {
        const core::SignatureDatabase own =
            runner.build_database(std::span(&result.measurement, 1),
                                  {.min_occurrences = config_.db_min_occurrences});
        runner.classify(result.measurement, own);
    }

    // Response-level staleness: an address-level filter cannot see phantom
    // interfaces (routable addresses bound to no router), but they are the
    // only targets that answer *nothing* across every pass in a loss-free
    // world — and stay the overwhelming majority of silent targets in a
    // lossy one, since real targets get passes * 10 chances.
    for (const core::TargetRecord& record : result.measurement.records) {
        if (!record.responsive()) ++result.stale_unresponsive;
    }

    result.vendors = VendorMap::from_measurement(result.measurement, config_.method);
    return result;
}

VendorMap PathCensus::ground_truth(const core::PathTargets& targets) const {
    VendorMap truth;
    for (const net::IPv4Address address : targets.targets) {
        const std::size_t index = topology_->find_by_interface(address);
        if (index == sim::Topology::npos) continue;  // phantom: no router, no vendor
        truth.assign(address, topology_->router(index).vendor());
    }
    return truth;
}

PathAgreement PathCensus::agreement(const VendorMap& measured, const VendorMap& truth,
                                    const core::PathTargets& targets) {
    PathAgreement out;
    out.hops = targets.targets.size();
    for (const net::IPv4Address address : targets.targets) {
        const auto expected = truth.lookup(address);
        const auto observed = measured.lookup(address);
        if (expected) ++out.truth_known;
        if (observed) ++out.measured_known;
        if (expected && observed) {
            ++out.both_known;
            if (*expected == *observed) ++out.matches;
        }
    }
    return out;
}

PathStats PathCensusResult::stats(const sim::Topology& topology, PathScope scope,
                                  PathAnalysisConfig config) const {
    const PathAnalyzer analyzer(topology, vendors);
    return analyzer.analyze(discovery.traces, scope, config);
}

}  // namespace lfp::analysis
