// Longitudinal signature stability (paper §4.2 / §8 future work): the five
// RIPE-like snapshots span ten simulated months; signatures of IPs observed
// across snapshots should be stable, and apparent vendor changes are almost
// always churn (an address re-assigned), not re-fingerprinting noise.
#pragma once

#include <span>
#include <vector>

#include "core/pipeline.hpp"

namespace lfp::analysis {

struct SnapshotPairStability {
    std::string first;
    std::string second;
    std::size_t common_ips = 0;        ///< responsive in both snapshots
    std::size_t identical_signature = 0;
    std::size_t changed_signature = 0;
    std::size_t vendor_changed = 0;  ///< LFP vendor differs (both identified)

    [[nodiscard]] double stability() const {
        return common_ips == 0 ? 0.0
                               : static_cast<double>(identical_signature) /
                                     static_cast<double>(common_ips);
    }
};

struct LongitudinalReport {
    std::vector<SnapshotPairStability> pairs;  ///< consecutive snapshots
    std::size_t ips_in_all_snapshots = 0;
    std::size_t stable_in_all = 0;  ///< same signature in every appearance

    [[nodiscard]] double overall_stability() const {
        return ips_in_all_snapshots == 0
                   ? 0.0
                   : static_cast<double>(stable_in_all) /
                         static_cast<double>(ips_in_all_snapshots);
    }
};

/// Compares signatures of common IPs across consecutive measurements
/// (classified measurements give vendor-change counts too).
[[nodiscard]] LongitudinalReport signature_stability(
    std::span<const core::Measurement> snapshots);

}  // namespace lfp::analysis
