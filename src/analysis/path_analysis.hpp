// Path-centric analyses (paper §6): identified-hop fractions, vendor
// diversity per path, vendor combinations, and the intra-/inter-US scopes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/datasets.hpp"
#include "util/stats.hpp"

namespace lfp::analysis {

/// IP → vendor mapping produced by a fingerprinting method.
class VendorMap {
  public:
    void assign(net::IPv4Address address, stack::Vendor vendor);

    [[nodiscard]] std::optional<stack::Vendor> lookup(net::IPv4Address address) const;
    [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

    /// Builds the map from a classified measurement.
    /// `method` selects which verdicts count:
    enum class Method {
        lfp,          ///< LFP unique (full+partial) matches
        snmpv3,       ///< SNMPv3 labels only
        combined,     ///< SNMPv3 labels, LFP filling the gaps
        /// LFP including non-unique majority verdicts. When the
        /// classification ran in headline (non-majority) mode a non-unique
        /// match carries no vendor; the SNMP label fills in for exactly
        /// those records, so this map is never a strict subset of
        /// `combined` on SNMP-labeled routers.
        lfp_majority
    };
    static VendorMap from_measurement(const core::Measurement& measurement, Method method);

  private:
    std::unordered_map<net::IPv4Address, stack::Vendor> map_;
};

enum class PathScope : std::uint8_t {
    all,
    intra_us,  ///< source and destination both in US registries
    inter_us,  ///< exactly one endpoint in a US registry
};

struct PathAnalysisConfig {
    std::size_t min_hops = 3;
    std::size_t min_identified = 1;  ///< identified hops for diversity stats
};

struct PathStats {
    std::size_t paths_considered = 0;  ///< scope + min_hops filter survivors
    util::Ecdf hop_counts;             ///< per path (before scope filter)
    util::Ecdf identified_fraction;    ///< % of routable hops identified
    util::Ecdf vendors_per_path;       ///< distinct vendors (paths with >= min_identified)
    util::Counter combinations;        ///< sorted vendor-set strings
    std::size_t paths_with_k_identified(std::size_t k) const {
        return k_identified.size() > k ? k_identified[k] : 0;
    }
    std::vector<std::size_t> k_identified;  ///< [k] = paths with >= k hops identified
};

class PathAnalyzer {
  public:
    PathAnalyzer(const sim::Topology& topology, const VendorMap& vendors)
        : topology_(&topology), vendors_(&vendors) {}

    [[nodiscard]] PathStats analyze(const std::vector<sim::Traceroute>& traces,
                                    PathScope scope, PathAnalysisConfig config = {}) const;

    /// Scope predicate for a single trace (registry country of endpoints).
    [[nodiscard]] bool in_scope(const sim::Traceroute& trace, PathScope scope) const;

  private:
    const sim::Topology* topology_;
    const VendorMap* vendors_;
};

/// Canonical combination key: sorted vendor names joined by ", ".
[[nodiscard]] std::string combination_key(std::vector<stack::Vendor> vendors);

}  // namespace lfp::analysis
