#include "analysis/alias_resolution.hpp"

#include <numeric>

#include "net/packet_builder.hpp"

namespace lfp::analysis {

std::vector<core::IpidObservation> AliasResolver::interleaved_samples(
    std::span<const net::IPv4Address> addresses) {
    std::vector<core::IpidObservation> samples;
    for (std::size_t round = 0; round < config_.probes_per_address; ++round) {
        for (net::IPv4Address address : addresses) {
            net::IpSendOptions ip;
            ip.source = transport_->vantage_address();
            ip.destination = address;
            ip.identification = static_cast<std::uint16_t>(0x8000 + send_index_);

            net::Bytes payload(8, 0x11);
            ++packets_sent_;
            auto raw = transport_->transact(net::make_icmp_echo_request(
                ip, static_cast<std::uint16_t>(address.value() & 0xFFFF),
                static_cast<std::uint16_t>(round), payload));
            const std::uint32_t index = send_index_++;
            if (!raw) continue;
            auto parsed = net::parse_packet(*raw);
            if (!parsed) continue;
            // Stacks that echo the request IPID carry no counter signal;
            // MIDAR likewise discards echoed values.
            if (parsed.value().ip.identification == ip.identification) continue;
            samples.push_back({index, parsed.value().ip.identification});
        }
    }
    return samples;
}

bool AliasResolver::aliases(net::IPv4Address a, net::IPv4Address b) {
    const std::array<net::IPv4Address, 2> pair{a, b};
    auto samples = interleaved_samples(pair);
    // Require responses from both addresses across the interleave.
    if (samples.size() < config_.probes_per_address * 2 - 1) return false;
    return core::is_shared_counter(std::move(samples), config_.ipid);
}

std::vector<std::vector<net::IPv4Address>> AliasResolver::resolve(
    std::span<const net::IPv4Address> candidates) {
    // Union-find over pairwise monotonic bound tests.
    std::vector<std::size_t> parent(candidates.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (std::size_t j = i + 1; j < candidates.size(); ++j) {
            if (find(i) == find(j)) continue;  // already merged transitively
            if (aliases(candidates[i], candidates[j])) parent[find(j)] = find(i);
        }
    }
    std::vector<std::vector<net::IPv4Address>> sets;
    std::vector<std::size_t> root_to_set(candidates.size(), static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const std::size_t root = find(i);
        if (root_to_set[root] == static_cast<std::size_t>(-1)) {
            root_to_set[root] = sets.size();
            sets.emplace_back();
        }
        sets[root_to_set[root]].push_back(candidates[i]);
    }
    return sets;
}

}  // namespace lfp::analysis
