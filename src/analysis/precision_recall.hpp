// Precision/recall harness (paper Appendix B, Table 8): 80/20 random split
// of the SNMPv3-labeled records; signatures trained on the 80% slice,
// majority-mode classification evaluated on the 20% slice.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "util/rng.hpp"

namespace lfp::analysis {

struct VendorPr {
    stack::Vendor vendor = stack::Vendor::unknown;
    std::size_t test_samples = 0;
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    std::size_t false_negatives = 0;

    [[nodiscard]] double precision() const {
        const auto denom = true_positives + false_positives;
        return denom == 0 ? 0.0
                          : static_cast<double>(true_positives) / static_cast<double>(denom);
    }
    [[nodiscard]] double recall() const {
        const auto denom = true_positives + false_negatives;
        return denom == 0 ? 0.0
                          : static_cast<double>(true_positives) / static_cast<double>(denom);
    }
};

struct PrConfig {
    double train_fraction = 0.8;
    std::uint64_t seed = 4242;
    core::SignatureDbConfig db;
};

/// Runs the split-train-evaluate protocol over all labeled records of the
/// given measurements. Returns per-vendor rows sorted by test count.
[[nodiscard]] std::vector<VendorPr> precision_recall(
    std::span<const core::Measurement> measurements, PrConfig config = {});

}  // namespace lfp::analysis
