// Feature-ablation framework: quantifies how much each feature group of
// Table 1 contributes to signature uniqueness and classification accuracy —
// the design-choice analysis DESIGN.md calls out (the paper motivates each
// group qualitatively; this measures them).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/topology.hpp"

namespace lfp::analysis {

/// Feature groups that can be knocked out of a feature vector.
struct AblationMask {
    bool drop_ipid_classes = false;   ///< per-protocol counter classes
    bool drop_shared_flags = false;   ///< the four cross-protocol flags
    bool drop_ittl = false;           ///< initial TTLs
    bool drop_sizes = false;          ///< response sizes
    bool drop_icmp_echo = false;      ///< ICMP IPID echo flag
    bool drop_rst_seq = false;        ///< TCP RST sequence compliance

    [[nodiscard]] std::string label() const;
};

/// Returns a copy of `features` with the masked groups neutralised (set to
/// their unknown/absent values), so signatures collapse accordingly.
[[nodiscard]] core::FeatureVector apply_ablation(core::FeatureVector features,
                                                 const AblationMask& mask);

struct AblationResult {
    std::string label;
    std::size_t unique_signatures = 0;
    std::size_t non_unique_signatures = 0;
    /// Fraction of LFP-responsive IPs identified via unique signatures.
    double coverage = 0.0;
    /// Of the identified ones, fraction matching the simulation's ground
    /// truth vendor.
    double accuracy = 0.0;
};

/// Re-runs signature building + classification on the measurements with
/// each feature mask, scoring against the topology's ground truth.
[[nodiscard]] std::vector<AblationResult> run_ablations(
    std::span<const core::Measurement> measurements, const sim::Topology& topology,
    std::span<const AblationMask> masks, core::SignatureDbConfig db_config = {});

/// The standard sweep: full feature set plus one knockout per group, plus an
/// iTTL-only configuration (the Vanaubel-style baseline within LFP).
[[nodiscard]] std::vector<AblationMask> standard_ablation_masks();

}  // namespace lfp::analysis
