// The path census (ROADMAP: "per-hop vendor censusing along paths"): the
// layer where probing and path analysis finally meet. A PathCensus runs
// TracerouteSynthesizer sweeps from a set of vantage ASes toward a
// destination hitlist, collapses the discovered hop IPs into a
// core::PathTargets set (deduplicated across paths, private hops filtered,
// hop→path provenance preserved), probes that set through
// CensusRunner::stream_paths() — the discovered hops become first-class
// census targets riding the full multi-pass strict-improvement engine —
// and turns the classified measurement into the VendorMap the §6 path
// analyses (Fig 9–17), the informed-routing case study, and the
// censorship-consistency scenarios consume. The result is those analyses
// running from live-style *measurement* instead of ground truth, with the
// ground-truth map still derivable for the same hop set so benches can
// gate the agreement between the two.
//
// Determinism: the traceroute sweep is a pure function of (topology,
// config) — sources, destinations, and flow IDs all derive from the seed —
// and the census engine's IDs are pure functions of (pass, global index),
// so a path census is byte-deterministic at any vantage-lane count. The
// lane count only changes how fast the hop set is probed, never what is
// measured (asymmetric per-vantage views of the same routers merge via the
// existing strict-improvement multi-pass merge).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/path_analysis.hpp"
#include "core/census.hpp"
#include "sim/traceroute.hpp"

namespace lfp::analysis {

struct PathCensusConfig {
    /// Seed of the whole sweep: vantage/destination selection and every
    /// traceroute flow ID derive from it.
    std::uint64_t seed = 0x9A7C5;
    /// Traceroute vantage points (source ASes). This is a *discovery*
    /// knob: it decides which paths exist, independently of how many
    /// census lanes later probe the hop set.
    std::size_t sources = 4;
    /// Destination hitlist size (destination ASes, shared by every
    /// vantage — the diverse-path view of the same core the paper's
    /// censorship-consistency scenario needs).
    std::size_t destinations = 48;
    /// Traceroute flows per (source, destination) pair; flow f of a pair
    /// uses flow_id = f, so repeated runs redraw nothing.
    std::size_t flows_per_pair = 1;
    /// Traceroute noise handed to the synthesizer: fraction of hops that
    /// are stale (phantom) interface addresses / private addresses.
    double stale_fraction = 0.05;
    double private_fraction = 0.02;
    /// Which verdicts the measured VendorMap counts (§6 headline uses
    /// combined: SNMPv3 labels with LFP filling the gaps).
    VendorMap::Method method = VendorMap::Method::combined;
    /// Signature admission threshold for the *self-calibrated* database
    /// (ignored when run() is handed one). The SignatureDbConfig default
    /// (20) is sized for the full experiment world; a path census labels
    /// only the hops its own traceroutes found, so it keeps any signature
    /// two labeled routers share.
    std::size_t db_min_occurrences = 2;

    /// Ceilings in the spirit of CensusPlan's: generous, but a corrupted
    /// config should fail loudly rather than synthesize 10^6 sweeps.
    static constexpr std::size_t kMaxSources = 4096;
    static constexpr std::size_t kMaxDestinations = 1 << 20;
    static constexpr std::size_t kMaxFlows = 1024;

    /// Honors LFP_PATH_SOURCES / LFP_PATH_DESTS / LFP_PATH_FLOWS /
    /// LFP_PATH_STALE / LFP_PATH_PRIVATE / LFP_PATH_DB_MIN env overrides
    /// over `base` (default-constructed when omitted). Throws
    /// std::invalid_argument naming the variable on unparseable or absurd
    /// values.
    [[nodiscard]] static PathCensusConfig from_env();
    [[nodiscard]] static PathCensusConfig from_env(PathCensusConfig base);

    /// Rejects impossible knob combinations with a clear error.
    void validate() const;
};

/// The traceroute sweep: every discovered path plus which vantage (source
/// index) discovered it — the per-path lane preference stream_paths() maps
/// onto census lanes.
struct PathDiscovery {
    std::vector<std::uint32_t> sources;       ///< vantage ASNs, sweep order
    std::vector<std::uint32_t> destinations;  ///< destination ASNs
    std::vector<sim::Traceroute> traces;      ///< source-major, deterministic order
    std::vector<std::uint32_t> trace_source;  ///< traces[i] came from sources[...]
    /// (source, destination) pairs with no valley-free route (not an
    /// error: stub islands exist in sparse topologies).
    std::uint64_t unreachable_pairs = 0;

    /// The raw hop lists, in trace order — the input to
    /// core::PathTargets::from_paths / CensusRunner::stream_paths.
    [[nodiscard]] std::vector<std::vector<net::IPv4Address>> hop_lists() const;
};

/// One complete path census: discovery, the collapsed hop set, the
/// classified measurement, and the measured vendor map.
struct PathCensusResult {
    PathDiscovery discovery;
    core::PathTargets targets;          ///< dedup + provenance + noise counters
    core::Measurement measurement;      ///< classified hop census
    VendorMap vendors;                  ///< measured map (config.method)
    std::vector<core::PassStats> pass_stats;
    /// Routable hops that were probed and never answered anything — the
    /// response-level staleness signal (phantom interfaces land here).
    std::uint64_t stale_unresponsive = 0;

    /// Per-path profiles against the measured map, via PathAnalyzer.
    [[nodiscard]] PathStats stats(const sim::Topology& topology, PathScope scope,
                                  PathAnalysisConfig config = {}) const;
};

/// Agreement between a measured vendor map and the ground-truth map on one
/// hop set — what the bench gates.
struct PathAgreement {
    std::size_t hops = 0;            ///< targets compared
    std::size_t truth_known = 0;     ///< hops the ground truth names
    std::size_t measured_known = 0;  ///< hops the measured map names
    std::size_t both_known = 0;      ///< named by both
    std::size_t matches = 0;         ///< named identically by both

    /// Fraction of commonly identified hops on which the maps agree.
    [[nodiscard]] double accuracy() const {
        return both_known == 0 ? 1.0
                               : static_cast<double>(matches) / static_cast<double>(both_known);
    }
    /// Measured coverage relative to ground truth.
    [[nodiscard]] double coverage() const {
        return truth_known == 0 ? 1.0
                                : static_cast<double>(measured_known) /
                                      static_cast<double>(truth_known);
    }
};

class PathCensus {
  public:
    PathCensus(const sim::Topology& topology, PathCensusConfig config);

    /// The deterministic traceroute sweep: picks `config.sources` vantage
    /// ASes and `config.destinations` destination ASes from the seed, then
    /// traces every (source, destination, flow) triple in sweep order.
    [[nodiscard]] PathDiscovery discover() const;

    /// Discovery + hop census end to end: stream_paths() through `runner`
    /// (whose vantages and knobs decide how the hop set is probed), then
    /// classify. When `database` is given (e.g. an ExperimentWorld's union
    /// database) records classify against it; when null the census is
    /// self-calibrating — the database is built from the measurement's own
    /// SNMP-labeled population, exactly like the batch pipeline.
    [[nodiscard]] PathCensusResult run(core::CensusRunner& runner,
                                       const core::SignatureDatabase* database = nullptr) const;

    /// The ground-truth map for a discovered hop set: every target that
    /// resolves to a simulated router gets that router's actual vendor.
    /// What the measured map is benched against.
    [[nodiscard]] VendorMap ground_truth(const core::PathTargets& targets) const;

    /// Compares `measured` against `truth` over `targets`.
    [[nodiscard]] static PathAgreement agreement(const VendorMap& measured,
                                                 const VendorMap& truth,
                                                 const core::PathTargets& targets);

    [[nodiscard]] const PathCensusConfig& config() const noexcept { return config_; }

  private:
    const sim::Topology* topology_;
    PathCensusConfig config_;
};

}  // namespace lfp::analysis
