#include "analysis/ablation.hpp"

namespace lfp::analysis {

std::string AblationMask::label() const {
    std::vector<std::string> dropped;
    if (drop_ipid_classes) dropped.emplace_back("ipid");
    if (drop_shared_flags) dropped.emplace_back("shared");
    if (drop_ittl) dropped.emplace_back("ittl");
    if (drop_sizes) dropped.emplace_back("sizes");
    if (drop_icmp_echo) dropped.emplace_back("echo");
    if (drop_rst_seq) dropped.emplace_back("rst");
    if (dropped.empty()) return "full feature set";
    std::string out = "without ";
    for (std::size_t i = 0; i < dropped.size(); ++i) {
        if (i != 0) out += "+";
        out += dropped[i];
    }
    return out;
}

core::FeatureVector apply_ablation(core::FeatureVector features, const AblationMask& mask) {
    if (mask.drop_ipid_classes) {
        features.ipid_icmp = core::IpidClass::unknown;
        features.ipid_tcp = core::IpidClass::unknown;
        features.ipid_udp = core::IpidClass::unknown;
    }
    if (mask.drop_shared_flags) {
        features.shared_all = core::TriState::unknown;
        features.shared_tcp_icmp = core::TriState::unknown;
        features.shared_udp_icmp = core::TriState::unknown;
        features.shared_tcp_udp = core::TriState::unknown;
    }
    if (mask.drop_ittl) {
        features.ittl_icmp = 0;
        features.ittl_tcp = 0;
        features.ittl_udp = 0;
    }
    if (mask.drop_sizes) {
        features.size_icmp = 0;
        features.size_tcp = 0;
        features.size_udp = 0;
    }
    if (mask.drop_icmp_echo) features.icmp_ipid_echo = core::TriState::unknown;
    if (mask.drop_rst_seq) features.tcp_rst_seq_nonzero = core::TriState::unknown;
    return features;
}

std::vector<AblationResult> run_ablations(std::span<const core::Measurement> measurements,
                                          const sim::Topology& topology,
                                          std::span<const AblationMask> masks,
                                          core::SignatureDbConfig db_config) {
    std::vector<AblationResult> results;
    results.reserve(masks.size());
    for (const AblationMask& mask : masks) {
        AblationResult result;
        result.label = mask.label();

        // Rebuild the database from ablated labeled samples.
        core::SignatureDatabase database(db_config);
        for (const auto& measurement : measurements) {
            for (const auto& record : measurement.records) {
                if (!record.snmp_vendor || record.features.empty()) continue;
                const auto ablated = apply_ablation(record.features, mask);
                database.add_labeled(core::Signature::from_features(ablated),
                                     *record.snmp_vendor);
            }
        }
        database.finalize();
        const auto counts = database.full_signature_counts();
        result.unique_signatures = counts.unique;
        result.non_unique_signatures = counts.non_unique;

        // Classify every responsive record against the ablated database and
        // score against the simulation's ground truth.
        const core::LfpClassifier classifier(database);
        std::size_t responsive = 0;
        std::size_t identified = 0;
        std::size_t correct = 0;
        for (const auto& measurement : measurements) {
            for (const auto& record : measurement.records) {
                if (!record.lfp_responsive()) continue;
                ++responsive;
                const auto ablated = apply_ablation(record.features, mask);
                const auto verdict =
                    classifier.classify(core::Signature::from_features(ablated));
                if (!verdict.identified()) continue;
                ++identified;
                const std::size_t index =
                    topology.find_by_interface(record.probes.target);
                if (index != sim::Topology::npos &&
                    topology.router(index).vendor() == *verdict.vendor) {
                    ++correct;
                }
            }
        }
        result.coverage = responsive == 0 ? 0.0
                                          : static_cast<double>(identified) /
                                                static_cast<double>(responsive);
        result.accuracy = identified == 0 ? 0.0
                                          : static_cast<double>(correct) /
                                                static_cast<double>(identified);
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<AblationMask> standard_ablation_masks() {
    std::vector<AblationMask> masks;
    masks.push_back({});  // full feature set
    masks.push_back({.drop_ipid_classes = true});
    masks.push_back({.drop_shared_flags = true});
    masks.push_back({.drop_ittl = true});
    masks.push_back({.drop_sizes = true});
    masks.push_back({.drop_icmp_echo = true});
    masks.push_back({.drop_rst_seq = true});
    // iTTL-only: drop everything else (the TTL-tuple related-work baseline).
    masks.push_back({.drop_ipid_classes = true,
                     .drop_shared_flags = true,
                     .drop_ittl = false,
                     .drop_sizes = true,
                     .drop_icmp_echo = true,
                     .drop_rst_seq = true});
    return masks;
}

}  // namespace lfp::analysis
