// Family-level fingerprinting (paper §7.4): beyond the vendor, many
// signatures map to a single OS family / product line (IOS vs IOS-XR vs
// NX-OS). The paper validates this on a 400-router sample with SNMPv2c
// sysDescr ground truth; here the simulation's profile families play the
// sysDescr role.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/signature.hpp"

namespace lfp::analysis {

class FamilyClassifier {
  public:
    explicit FamilyClassifier(std::size_t min_occurrences = 5)
        : min_occurrences_(min_occurrences) {}

    /// Accumulates one labeled sample (signature + OS family name).
    void train(const core::Signature& signature, const std::string& family);

    /// Applies the occurrence threshold and freezes the classifier.
    void finalize();

    /// The family uniquely implied by this signature, or nullopt when the
    /// signature is unknown or maps to several families.
    [[nodiscard]] std::optional<std::string> classify(const core::Signature& signature) const;

    struct Counts {
        std::size_t unique = 0;     ///< signatures mapping to one family
        std::size_t ambiguous = 0;  ///< signatures shared across families
    };
    [[nodiscard]] Counts counts() const;

    /// family → number of signatures uniquely identifying it.
    [[nodiscard]] std::map<std::string, std::size_t> unique_signatures_per_family() const;

  private:
    std::size_t min_occurrences_;
    bool finalized_ = false;
    std::map<core::Signature, std::map<std::string, std::size_t>> raw_;
    std::map<core::Signature, std::map<std::string, std::size_t>> admitted_;
};

}  // namespace lfp::analysis
