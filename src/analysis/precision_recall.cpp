#include "analysis/precision_recall.hpp"

#include <algorithm>

namespace lfp::analysis {

std::vector<VendorPr> precision_recall(std::span<const core::Measurement> measurements,
                                       PrConfig config) {
    // Collect labeled samples (signature + ground-truth vendor).
    struct Sample {
        const core::Signature* signature;
        stack::Vendor vendor;
    };
    std::vector<Sample> samples;
    for (const core::Measurement& measurement : measurements) {
        for (const core::TargetRecord& record : measurement.records) {
            if (!record.snmp_vendor || record.features.empty()) continue;
            samples.push_back({&record.signature, *record.snmp_vendor});
        }
    }

    util::Rng rng(config.seed);
    util::shuffle(samples, rng);
    const std::size_t train_count =
        static_cast<std::size_t>(config.train_fraction * static_cast<double>(samples.size()));

    core::SignatureDatabase database(config.db);
    for (std::size_t i = 0; i < train_count; ++i) {
        database.add_labeled(*samples[i].signature, samples[i].vendor);
    }
    database.finalize();

    core::LfpClassifier classifier(database, {.use_partial = true, .majority_mode = true});

    std::map<stack::Vendor, VendorPr> rows;
    for (std::size_t i = train_count; i < samples.size(); ++i) {
        const stack::Vendor truth = samples[i].vendor;
        rows[truth].vendor = truth;
        ++rows[truth].test_samples;
        const core::Classification verdict = classifier.classify(*samples[i].signature);
        if (!verdict.vendor) {
            ++rows[truth].false_negatives;
            continue;
        }
        if (*verdict.vendor == truth) {
            ++rows[truth].true_positives;
        } else {
            ++rows[truth].false_negatives;
            rows[*verdict.vendor].vendor = *verdict.vendor;
            ++rows[*verdict.vendor].false_positives;
        }
    }

    std::vector<VendorPr> out;
    out.reserve(rows.size());
    for (auto& [vendor, row] : rows) out.push_back(row);
    std::sort(out.begin(), out.end(),
              [](const VendorPr& a, const VendorPr& b) { return a.test_samples > b.test_samples; });
    return out;
}

}  // namespace lfp::analysis
