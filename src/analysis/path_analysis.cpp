#include "analysis/path_analysis.hpp"

#include <algorithm>
#include <set>

namespace lfp::analysis {

void VendorMap::assign(net::IPv4Address address, stack::Vendor vendor) {
    map_[address] = vendor;
}

std::optional<stack::Vendor> VendorMap::lookup(net::IPv4Address address) const {
    auto it = map_.find(address);
    if (it == map_.end()) return std::nullopt;
    return it->second;
}

VendorMap VendorMap::from_measurement(const core::Measurement& measurement, Method method) {
    VendorMap map;
    for (const core::TargetRecord& record : measurement.records) {
        std::optional<stack::Vendor> vendor;
        switch (method) {
            case Method::snmpv3:
                vendor = record.snmp_vendor;
                break;
            case Method::lfp:
                if (record.lfp.kind == core::MatchKind::unique_full ||
                    record.lfp.kind == core::MatchKind::unique_partial) {
                    vendor = record.lfp.vendor;
                }
                break;
            case Method::combined:
                vendor = record.snmp_vendor;
                if (!vendor && (record.lfp.kind == core::MatchKind::unique_full ||
                                record.lfp.kind == core::MatchKind::unique_partial)) {
                    vendor = record.lfp.vendor;
                }
                break;
            case Method::lfp_majority:
                vendor = record.lfp.vendor;
                // A headline-mode classification leaves non-unique matches
                // vendorless (LfpClassifier only stamps a majority verdict
                // when majority_mode is on), which used to silently drop
                // the target here even when SNMP evidence named the vendor.
                // Mirror combined's fallback for exactly that case: the
                // majority map must never know *less* about an SNMP-labeled
                // router than the combined map does.
                if (!vendor && record.lfp.kind == core::MatchKind::non_unique) {
                    vendor = record.snmp_vendor;
                }
                break;
        }
        if (vendor) map.assign(record.probes.target, *vendor);
    }
    return map;
}

bool PathAnalyzer::in_scope(const sim::Traceroute& trace, PathScope scope) const {
    if (scope == PathScope::all) return true;
    const bool src_us = topology_->geo().is_in_country(trace.source_asn, "US");
    const bool dst_us = topology_->geo().is_in_country(trace.destination_asn, "US");
    if (scope == PathScope::intra_us) return src_us && dst_us;
    return src_us != dst_us;  // inter-US: exactly one endpoint in the US
}

PathStats PathAnalyzer::analyze(const std::vector<sim::Traceroute>& traces, PathScope scope,
                                PathAnalysisConfig config) const {
    PathStats stats;
    stats.k_identified.assign(16, 0);
    for (const sim::Traceroute& trace : traces) {
        stats.hop_counts.add(static_cast<double>(trace.hops.size()));
        if (!in_scope(trace, scope)) continue;
        if (trace.hops.size() < config.min_hops) continue;

        // Only routable addresses participate (paper §6 excludes private
        // and reserved hops).
        std::size_t routable = 0;
        std::size_t identified = 0;
        std::set<stack::Vendor> vendors;
        for (net::IPv4Address hop : trace.hops) {
            if (!hop.is_routable()) continue;
            ++routable;
            auto vendor = vendors_->lookup(hop);
            if (vendor) {
                ++identified;
                vendors.insert(*vendor);
            }
        }
        if (routable == 0) continue;
        ++stats.paths_considered;
        stats.identified_fraction.add(100.0 * static_cast<double>(identified) /
                                      static_cast<double>(routable));
        for (std::size_t k = 0; k < stats.k_identified.size(); ++k) {
            if (identified >= k) ++stats.k_identified[k];
        }
        if (identified >= config.min_identified) {
            stats.vendors_per_path.add(static_cast<double>(vendors.size()));
            stats.combinations.add(
                combination_key({vendors.begin(), vendors.end()}));
        }
    }
    return stats;
}

std::string combination_key(std::vector<stack::Vendor> vendors) {
    std::vector<std::string> names;
    names.reserve(vendors.size());
    for (stack::Vendor vendor : vendors) names.emplace_back(stack::to_string(vendor));
    std::sort(names.begin(), names.end());
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) out += ", ";
        out += names[i];
    }
    return out;
}

}  // namespace lfp::analysis
