// The shared experiment harness: builds the simulated world, synthesises the
// six datasets (RIPE-1..5 + ITDK), runs the LFP campaign against each,
// builds the union signature database, and classifies everything — the
// common prefix of every table/figure reproduction.
#pragma once

#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"
#include "sim/datasets.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace lfp::analysis {

struct WorldConfig {
    std::uint64_t seed = 20231024;
    std::size_t num_ases = 2500;
    double scale = 0.5;  ///< router-count multiplier (1.0 ≈ 1:8 of the paper)
    std::size_t traces_per_snapshot = 30000;
    std::size_t signature_min_occurrences = 20;

    /// Honors LFP_SEED / LFP_SCALE / LFP_ASES / LFP_TRACES env overrides.
    static WorldConfig from_env();
};

class ExperimentWorld {
  public:
    /// Builds everything. Expensive (seconds); benches build once and reuse.
    static std::unique_ptr<ExperimentWorld> create(WorldConfig config = WorldConfig::from_env());

    ExperimentWorld(const ExperimentWorld&) = delete;
    ExperimentWorld& operator=(const ExperimentWorld&) = delete;

    [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
    [[nodiscard]] sim::Topology& topology() noexcept { return topology_; }
    [[nodiscard]] const sim::Topology& topology() const noexcept { return topology_; }
    [[nodiscard]] sim::Internet& internet() noexcept { return internet_; }
    [[nodiscard]] probe::SimTransport& transport() noexcept { return transport_; }

    [[nodiscard]] const std::vector<sim::TracerouteDataset>& ripe() const noexcept {
        return ripe_;
    }
    [[nodiscard]] const sim::TracerouteDataset& ripe5() const { return ripe_.back(); }
    [[nodiscard]] const sim::ItdkDataset& itdk() const noexcept { return itdk_; }

    /// Measurements in dataset order: RIPE-1..RIPE-5 then ITDK.
    [[nodiscard]] const std::vector<core::Measurement>& measurements() const noexcept {
        return measurements_;
    }
    [[nodiscard]] const core::Measurement& measurement(const std::string& name) const;
    [[nodiscard]] const core::Measurement& ripe5_measurement() const {
        return measurements_[4];
    }
    [[nodiscard]] const core::Measurement& itdk_measurement() const {
        return measurements_[5];
    }

    /// Union signature database over all six measurements.
    [[nodiscard]] const core::SignatureDatabase& database() const noexcept { return database_; }

    /// Total probe packets the measurement campaigns sent.
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  private:
    explicit ExperimentWorld(WorldConfig config);

    WorldConfig config_;
    sim::Topology topology_;
    sim::Internet internet_;
    probe::SimTransport transport_;
    std::vector<sim::TracerouteDataset> ripe_;
    sim::ItdkDataset itdk_;
    std::vector<core::Measurement> measurements_;
    core::SignatureDatabase database_;
    std::uint64_t packets_sent_ = 0;
};

}  // namespace lfp::analysis
