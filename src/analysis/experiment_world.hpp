// The shared experiment harness: builds the simulated world, synthesises the
// six datasets (RIPE-1..5 + ITDK), runs the LFP campaign against each,
// builds the union signature database, and classifies everything — the
// common prefix of every table/figure reproduction.
//
// The campaigns run through a streaming CensusRunner: WorldConfig::vantages
// lanes (each its own SimTransport over the shared simulated Internet), up
// to `window` targets in flight per lane (the adaptive AIMD window's
// ceiling), an optional packets-per-second token-bucket cap per lane, up to
// `passes` census passes re-probing incomplete targets, and worker_threads
// pool shards for the analysis stages. Targets
// are assigned to lanes via the transports' backend hints (ground-truth
// router affinity), and signature aggregation rides a record sink that
// absorbs labeled records while the census is still probing — so the
// measurements and database are byte-identical for every vantage count,
// window size, pacing cap, and worker count; those knobs only change how
// fast the world is built. `passes` is the one knob that *measures more*:
// extra passes deterministically convert partial signatures into full ones
// by re-probing incomplete targets under fresh ID lanes.
#pragma once

#include <memory>
#include <string>

#include "core/census.hpp"
#include "core/pipeline.hpp"
#include "probe/sim_transport.hpp"
#include "sim/datasets.hpp"
#include "sim/faults.hpp"
#include "sim/internet.hpp"
#include "sim/topology.hpp"

namespace lfp::analysis {

struct WorldConfig {
    std::uint64_t seed = 20231024;
    std::size_t num_ases = 2500;
    double scale = 0.5;  ///< router-count multiplier (1.0 ≈ 1:8 of the paper)
    std::size_t traces_per_snapshot = 30000;
    std::size_t signature_min_occurrences = 20;

    /// Probe-engine knobs, finally honored by ExperimentWorld construction.
    std::size_t window = 32;         ///< in-flight ceiling per vantage lane
    std::size_t worker_threads = 0;  ///< analysis pool width (0 = hardware)
    std::size_t vantages = 1;        ///< vantage lanes (results identical for any count)
    /// AIMD window control per lane; window becomes a ceiling. Off by
    /// default: the sim's background loss is rate-independent, so backing
    /// off would only slow the build. Results are identical either way.
    bool adaptive_window = false;
    /// Packets-per-second send cap per vantage lane (token-bucket pacing at
    /// target admission). 0 = unpaced. Like the window it only changes how
    /// fast the world is built, never what it measures.
    double packets_per_second = 0.0;
    /// Census passes per dataset: pass 1 probes everything, later passes
    /// re-probe only incomplete targets under shifted ID bases. 1 = the
    /// classic single-pass census. Deterministic at any value; under the
    /// sim's per-packet-hash loss, extra passes convert partial signatures
    /// into full ones.
    std::size_t passes = 1;

    /// Fault matrix for the vantage transports: when any rate is non-zero
    /// (or a wedge point is set) every SimTransport is wrapped in a
    /// FaultInjectingTransport, so any scenario built on ExperimentWorld
    /// can run under injected send failures, payload corruption,
    /// duplication, reordering, stalls, and lane wedges. All-zero (the
    /// default) leaves the transports unwrapped — byte-identical to every
    /// prior build.
    sim::FaultPlan faults;

    /// Honors LFP_SEED / LFP_SCALE / LFP_ASES / LFP_TRACES / LFP_WINDOW /
    /// LFP_WORKERS / LFP_VANTAGES / LFP_ADAPTIVE (0/1) / LFP_PPS /
    /// LFP_PASSES env overrides, plus the LFP_FAULT_* family (see
    /// sim::FaultPlan::from_env). Throws std::invalid_argument (naming the
    /// variable) on unparseable or absurd values.
    static WorldConfig from_env();

    /// Rejects impossible knob combinations (0 vantages, 0 window, ceilings
    /// from CensusPlan) with a clear error instead of UB downstream.
    void validate() const;
};

class ExperimentWorld {
  public:
    /// Builds everything. Expensive (seconds); benches build once and reuse.
    static std::unique_ptr<ExperimentWorld> create(WorldConfig config = WorldConfig::from_env());

    ExperimentWorld(const ExperimentWorld&) = delete;
    ExperimentWorld& operator=(const ExperimentWorld&) = delete;

    [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
    [[nodiscard]] sim::Topology& topology() noexcept { return topology_; }
    [[nodiscard]] const sim::Topology& topology() const noexcept { return topology_; }
    [[nodiscard]] sim::Internet& internet() noexcept { return internet_; }
    /// Lane 0's transport (the classic single-vantage view). Always the
    /// bare SimTransport — fault decoration, when on, wraps around it.
    [[nodiscard]] probe::SimTransport& transport() noexcept { return *transports_.front(); }
    [[nodiscard]] const std::vector<std::unique_ptr<probe::SimTransport>>& vantage_transports()
        const noexcept {
        return transports_;
    }
    /// The fault decorators, one per lane — empty unless config.faults is
    /// active.
    [[nodiscard]] const std::vector<std::unique_ptr<sim::FaultInjectingTransport>>&
    fault_transports() const noexcept {
        return fault_transports_;
    }

    [[nodiscard]] const std::vector<sim::TracerouteDataset>& ripe() const noexcept {
        return ripe_;
    }
    [[nodiscard]] const sim::TracerouteDataset& ripe5() const { return ripe_.back(); }
    [[nodiscard]] const sim::ItdkDataset& itdk() const noexcept { return itdk_; }

    /// Measurements in dataset order: RIPE-1..RIPE-5 then ITDK.
    [[nodiscard]] const std::vector<core::Measurement>& measurements() const noexcept {
        return measurements_;
    }
    /// Lookup by dataset name; throws std::out_of_range naming the missing
    /// dataset and the available names.
    [[nodiscard]] const core::Measurement& measurement(const std::string& name) const;
    [[nodiscard]] const core::Measurement& ripe5_measurement() const {
        return measurements_[4];
    }
    [[nodiscard]] const core::Measurement& itdk_measurement() const {
        return measurements_[5];
    }

    /// Union signature database over all six measurements.
    [[nodiscard]] const core::SignatureDatabase& database() const noexcept { return database_; }

    /// Total probe packets the measurement campaigns sent.
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  private:
    explicit ExperimentWorld(WorldConfig config);

    WorldConfig config_;
    sim::Topology topology_;
    sim::Internet internet_;
    std::vector<std::unique_ptr<probe::SimTransport>> transports_;
    std::vector<std::unique_ptr<sim::FaultInjectingTransport>> fault_transports_;
    std::vector<sim::TracerouteDataset> ripe_;
    sim::ItdkDataset itdk_;
    std::vector<core::Measurement> measurements_;
    core::SignatureDatabase database_;
    std::uint64_t packets_sent_ = 0;
};

}  // namespace lfp::analysis
