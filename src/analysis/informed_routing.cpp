#include "analysis/informed_routing.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace lfp::analysis {

TransitCaseStudy InformedRoutingAnalysis::evaluate(const HomogeneousAs& transit_as) const {
    TransitCaseStudy study;
    study.transit_asn = transit_as.asn;
    study.vendor = transit_as.vendor;

    util::Rng rng(config_.seed ^ transit_as.asn);
    const auto& nodes = topology_->graph().nodes();

    // Destination candidates: customers reachable through the transit AS.
    // We test every AS as a destination but sample sources, keeping the
    // routing-table computations bounded.
    for (const sim::AsNode& dst : nodes) {
        if (dst.asn == transit_as.asn) continue;
        const auto table = topology_->graph().routes_to(dst.asn);

        bool transits = false;
        std::size_t paths_here = 0;
        for (std::size_t s = 0; s < config_.sources_per_destination; ++s) {
            const sim::AsNode& src = nodes[rng.below(nodes.size())];
            if (src.asn == dst.asn || src.asn == transit_as.asn) continue;
            auto path = table.path_from(src.asn);
            if (!path) continue;
            // Transit role: strictly intermediate on the path.
            auto it = std::find(path->begin(), path->end(), transit_as.asn);
            if (it != path->end() && it != path->begin() && it + 1 != path->end()) {
                transits = true;
                ++paths_here;
            }
        }
        if (!transits) continue;

        study.paths_through += paths_here;
        ++study.destinations;

        // Alternative: can the destination be reached at all when the
        // transit AS is removed from the topology?
        const auto avoiding = topology_->graph().routes_to_avoiding(dst.asn, {transit_as.asn});
        bool any_alternative = false;
        for (std::size_t s = 0; s < config_.sources_per_destination && !any_alternative; ++s) {
            const sim::AsNode& src = nodes[rng.below(nodes.size())];
            if (src.asn == dst.asn || src.asn == transit_as.asn) continue;
            if (avoiding.reachable_from(src.asn)) any_alternative = true;
        }
        if (any_alternative) {
            ++study.with_alternative;
        } else {
            ++study.without_alternative;
        }
    }
    return study;
}

std::vector<TransitCaseStudy> InformedRoutingAnalysis::evaluate_all(
    const std::vector<HomogeneousAs>& candidates) const {
    std::vector<TransitCaseStudy> out;
    out.reserve(candidates.size());
    for (const HomogeneousAs& candidate : candidates) {
        out.push_back(evaluate(candidate));
    }
    return out;
}

}  // namespace lfp::analysis
