#include "analysis/family_analysis.hpp"

#include <cassert>

namespace lfp::analysis {

void FamilyClassifier::train(const core::Signature& signature, const std::string& family) {
    assert(!finalized_);
    if (signature.is_empty() || family.empty()) return;
    ++raw_[signature][family];
}

void FamilyClassifier::finalize() {
    admitted_.clear();
    for (const auto& [signature, families] : raw_) {
        std::size_t total = 0;
        for (const auto& [family, count] : families) total += count;
        if (total >= min_occurrences_) admitted_.emplace(signature, families);
    }
    finalized_ = true;
}

std::optional<std::string> FamilyClassifier::classify(const core::Signature& signature) const {
    auto it = admitted_.find(signature);
    if (it == admitted_.end() || it->second.size() != 1) return std::nullopt;
    return it->second.begin()->first;
}

FamilyClassifier::Counts FamilyClassifier::counts() const {
    Counts counts;
    for (const auto& [signature, families] : admitted_) {
        if (families.size() == 1) {
            ++counts.unique;
        } else {
            ++counts.ambiguous;
        }
    }
    return counts;
}

std::map<std::string, std::size_t> FamilyClassifier::unique_signatures_per_family() const {
    std::map<std::string, std::size_t> out;
    for (const auto& [signature, families] : admitted_) {
        if (families.size() == 1) ++out[families.begin()->first];
    }
    return out;
}

}  // namespace lfp::analysis
