#include "analysis/longitudinal.hpp"

#include <unordered_map>

namespace lfp::analysis {

namespace {

struct IpRecord {
    const core::TargetRecord* record;
};

std::unordered_map<net::IPv4Address, const core::TargetRecord*> index_responsive(
    const core::Measurement& measurement) {
    std::unordered_map<net::IPv4Address, const core::TargetRecord*> out;
    out.reserve(measurement.records.size());
    for (const auto& record : measurement.records) {
        if (record.lfp_responsive()) out.emplace(record.probes.target, &record);
    }
    return out;
}

}  // namespace

LongitudinalReport signature_stability(std::span<const core::Measurement> snapshots) {
    LongitudinalReport report;
    if (snapshots.empty()) return report;

    std::vector<std::unordered_map<net::IPv4Address, const core::TargetRecord*>> indices;
    indices.reserve(snapshots.size());
    for (const auto& snapshot : snapshots) indices.push_back(index_responsive(snapshot));

    for (std::size_t i = 1; i < snapshots.size(); ++i) {
        SnapshotPairStability pair;
        pair.first = snapshots[i - 1].name;
        pair.second = snapshots[i].name;
        for (const auto& [ip, record] : indices[i]) {
            auto previous = indices[i - 1].find(ip);
            if (previous == indices[i - 1].end()) continue;
            ++pair.common_ips;
            if (previous->second->signature == record->signature) {
                ++pair.identical_signature;
            } else {
                ++pair.changed_signature;
            }
            if (previous->second->lfp.identified() && record->lfp.identified() &&
                previous->second->lfp.vendor != record->lfp.vendor) {
                ++pair.vendor_changed;
            }
        }
        report.pairs.push_back(pair);
    }

    // IPs present in every snapshot, with signature constant throughout.
    for (const auto& [ip, record] : indices[0]) {
        bool everywhere = true;
        bool stable = true;
        for (std::size_t i = 1; i < indices.size() && everywhere; ++i) {
            auto it = indices[i].find(ip);
            if (it == indices[i].end()) {
                everywhere = false;
            } else if (!(it->second->signature == record->signature)) {
                stable = false;
            }
        }
        if (everywhere) {
            ++report.ips_in_all_snapshots;
            if (stable) ++report.stable_in_all;
        }
    }
    return report;
}

}  // namespace lfp::analysis
