// Minimal result<T, E> for fallible operations on untrusted input (packet
// parsing, BER decoding) where exceptions would be the wrong tool: malformed
// packets are expected in normal operation, not exceptional.
//
// C++23 has std::expected; this is the small subset we need under C++20.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lfp::util {

/// Error payload: a stable code plus human-readable context.
struct Error {
    std::string message;

    friend bool operator==(const Error&, const Error&) = default;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

/// A value-or-error sum type. `has_value()` must be checked before `value()`.
template <typename T>
class Result {
  public:
    Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
    Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

    [[nodiscard]] bool has_value() const noexcept { return std::holds_alternative<T>(data_); }
    explicit operator bool() const noexcept { return has_value(); }

    [[nodiscard]] const T& value() const& {
        assert(has_value());
        return std::get<T>(data_);
    }
    [[nodiscard]] T& value() & {
        assert(has_value());
        return std::get<T>(data_);
    }
    [[nodiscard]] T&& value() && {
        assert(has_value());
        return std::get<T>(std::move(data_));
    }

    [[nodiscard]] const Error& error() const& {
        assert(!has_value());
        return std::get<Error>(data_);
    }

    [[nodiscard]] T value_or(T fallback) const& {
        return has_value() ? std::get<T>(data_) : std::move(fallback);
    }

  private:
    std::variant<T, Error> data_;
};

}  // namespace lfp::util
