// ASCII table / CSV / ECDF rendering for the bench harness. Every bench
// binary prints the same rows or series the paper's table/figure reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace lfp::util {

/// Column-aligned ASCII table with a title, printed to an ostream.
class TablePrinter {
  public:
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    TablePrinter& header(std::vector<std::string> columns);
    TablePrinter& row(std::vector<std::string> cells);

    void print(std::ostream& os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Render an ECDF as a fixed-width ASCII plot plus a numeric series table —
/// the textual stand-in for the paper's line figures.
void print_ecdf(std::ostream& os, const std::string& title, const Ecdf& ecdf,
                std::size_t points = 20, const std::string& x_label = "x");

/// Render several named ECDFs on a shared x-grid (one column per series).
struct NamedEcdf {
    std::string name;
    const Ecdf* ecdf;
};
void print_ecdf_set(std::ostream& os, const std::string& title,
                    const std::vector<NamedEcdf>& series, std::size_t points = 20,
                    const std::string& x_label = "x");

/// Horizontal percentage bars (the stand-in for the paper's bar figures).
struct BarRow {
    std::string label;
    double value;
};
void print_bars(std::ostream& os, const std::string& title, const std::vector<BarRow>& rows,
                const std::string& unit = "%");

std::string format_double(double v, int precision = 2);
std::string format_percent(double fraction, int precision = 1);
std::string format_count(std::size_t n);

}  // namespace lfp::util
