#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lfp::util {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {}

void Ecdf::add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
}

void Ecdf::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double Ecdf::at(double x) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
    if (samples_.empty()) throw std::out_of_range("quantile of empty ECDF");
    if (q <= 0.0) return min();
    if (q > 1.0) q = 1.0;
    ensure_sorted();
    const auto n = samples_.size();
    auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
    if (idx >= n) idx = n - 1;
    return samples_[idx];
}

double Ecdf::min() const {
    if (samples_.empty()) throw std::out_of_range("min of empty ECDF");
    ensure_sorted();
    return samples_.front();
}

double Ecdf::max() const {
    if (samples_.empty()) throw std::out_of_range("max of empty ECDF");
    ensure_sorted();
    return samples_.back();
}

double Ecdf::mean() const {
    if (samples_.empty()) throw std::out_of_range("mean of empty ECDF");
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

Ecdf::Series Ecdf::series(std::size_t points) const {
    Series out;
    if (samples_.empty() || points == 0) return out;
    ensure_sorted();
    const double lo = samples_.front();
    const double hi = samples_.back();
    out.x.reserve(points);
    out.y.reserve(points);
    if (points == 1 || hi <= lo) {
        out.x.push_back(hi);
        out.y.push_back(1.0);
        return out;
    }
    const double step = (hi - lo) / static_cast<double>(points - 1);
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        out.x.push_back(x);
        out.y.push_back(at(x));
    }
    return out;
}

const std::vector<double>& Ecdf::sorted_samples() const {
    ensure_sorted();
    return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double sample) {
    ++total_;
    if (sample < lo_) {
        ++underflow_;
        return;
    }
    if (sample >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((sample - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
    ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

double Histogram::percent(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return 100.0 * static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

void Counter::add(const std::string& key, std::size_t n) {
    counts_[key] += n;
    total_ += n;
}

std::size_t Counter::get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

double Counter::fraction(const std::string& key) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(get(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::string, std::size_t>> Counter::top(std::size_t n) const {
    std::vector<std::pair<std::string, std::size_t>> items(counts_.begin(), counts_.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (items.size() > n) items.resize(n);
    return items;
}

double mean(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const auto n = xs.size();
    return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace lfp::util
