// A small fixed-size worker pool for sharding embarrassingly parallel loops
// (feature extraction, classification). Work is split into contiguous index
// ranges and results are written by index, so the merge order — and thus
// every downstream artifact — is deterministic regardless of worker count
// or scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lfp::util {

class ThreadPool {
  public:
    /// `threads` = 0 picks std::thread::hardware_concurrency(). A pool of
    /// one worker runs everything inline (no threads spawned).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size() + 1; }

    /// Applies `body(begin, end)` to contiguous shards covering [0, count),
    /// each at most `grain` wide, and waits for all of them. `body` must be
    /// safe to call concurrently on disjoint ranges. Blocks until done; the
    /// calling thread participates, so a single-worker pool degrades to a
    /// plain loop. If any shard throws, the first exception is rethrown on
    /// the calling thread after the batch finishes (remaining shards still
    /// run; further exceptions are dropped).
    void parallel_for(std::size_t count, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& body);

  private:
    void worker_loop();
    bool run_one_task();
    void finish_task(const std::function<void()>& task);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;
    std::queue<std::function<void()>> tasks_;
    std::size_t active_tasks_ = 0;
    std::exception_ptr batch_error_;
    bool stopping_ = false;
};

}  // namespace lfp::util
