#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lfp::util {

TablePrinter& TablePrinter::header(std::vector<std::string> columns) {
    header_ = std::move(columns);
    return *this;
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
}

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    absorb(header_);
    for (const auto& r : rows_) absorb(r);

    auto print_row = [&](const std::vector<std::string>& cells) {
        os << "| ";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
            os << (i + 1 < widths.size() ? " | " : " |");
        }
        os << '\n';
    };
    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };

    os << "\n== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        print_row(header_);
        rule();
    }
    for (const auto& r : rows_) print_row(r);
    rule();
}

namespace {

std::vector<double> shared_grid(const std::vector<NamedEcdf>& series, std::size_t points) {
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& s : series) {
        if (s.ecdf == nullptr || s.ecdf->empty()) continue;
        if (first) {
            lo = s.ecdf->min();
            hi = s.ecdf->max();
            first = false;
        } else {
            lo = std::min(lo, s.ecdf->min());
            hi = std::max(hi, s.ecdf->max());
        }
    }
    std::vector<double> grid;
    if (first || points == 0) return grid;
    if (points == 1 || hi <= lo) {
        grid.push_back(hi);
        return grid;
    }
    const double step = (hi - lo) / static_cast<double>(points - 1);
    grid.reserve(points);
    for (std::size_t i = 0; i < points; ++i) grid.push_back(lo + step * static_cast<double>(i));
    return grid;
}

}  // namespace

void print_ecdf(std::ostream& os, const std::string& title, const Ecdf& ecdf, std::size_t points,
                const std::string& x_label) {
    print_ecdf_set(os, title, {{"ECDF", &ecdf}}, points, x_label);
}

void print_ecdf_set(std::ostream& os, const std::string& title,
                    const std::vector<NamedEcdf>& series, std::size_t points,
                    const std::string& x_label) {
    os << "\n== " << title << " ==\n";
    const auto grid = shared_grid(series, points);
    if (grid.empty()) {
        os << "(no samples)\n";
        return;
    }
    constexpr int kBarWidth = 40;
    os << std::left << std::setw(12) << x_label;
    for (const auto& s : series) os << std::setw(10) << s.name;
    os << '\n';
    for (double x : grid) {
        os << std::left << std::setw(12) << format_double(x, 1);
        for (const auto& s : series) {
            const double y = (s.ecdf != nullptr) ? s.ecdf->at(x) : 0.0;
            os << std::setw(10) << format_double(y, 3);
        }
        // Bar for the first series to give a visual shape cue.
        const double y0 = (series.front().ecdf != nullptr) ? series.front().ecdf->at(x) : 0.0;
        os << ' ' << std::string(static_cast<std::size_t>(y0 * kBarWidth), '#') << '\n';
    }
}

void print_bars(std::ostream& os, const std::string& title, const std::vector<BarRow>& rows,
                const std::string& unit) {
    os << "\n== " << title << " ==\n";
    std::size_t label_width = 0;
    double max_value = 0;
    for (const auto& r : rows) {
        label_width = std::max(label_width, r.label.size());
        max_value = std::max(max_value, r.value);
    }
    constexpr int kBarWidth = 50;
    for (const auto& r : rows) {
        const double scaled = max_value > 0 ? r.value / max_value : 0.0;
        os << std::left << std::setw(static_cast<int>(label_width) + 2) << r.label << std::right
           << std::setw(9) << format_double(r.value, 2) << ' ' << unit << "  "
           << std::string(static_cast<std::size_t>(scaled * kBarWidth), '#') << '\n';
    }
}

std::string format_double(double v, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string format_percent(double fraction, int precision) {
    return format_double(fraction * 100.0, precision) + "%";
}

std::string format_count(std::size_t n) {
    // Group thousands with commas for readability in printed tables.
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0) lead = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

}  // namespace lfp::util
