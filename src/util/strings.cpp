#include "util/strings.hpp"

#include <cctype>

namespace lfp::util {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(delim, start);
        if (end == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string hex(std::span<const std::uint8_t> bytes, char sep) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    if (bytes.empty()) return out;
    out.reserve(bytes.size() * 3);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i != 0) out.push_back(sep);
        out.push_back(kDigits[bytes[i] >> 4]);
        out.push_back(kDigits[bytes[i] & 0xF]);
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace lfp::util
