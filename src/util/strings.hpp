// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lfp::util {

std::vector<std::string> split(std::string_view text, char delim);

std::string join(std::span<const std::string> parts, std::string_view sep);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view text);

/// Hex dump of bytes, e.g. "80:00:00:09:03:...".
std::string hex(std::span<const std::uint8_t> bytes, char sep = ':');

bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace lfp::util
