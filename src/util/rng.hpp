// Deterministic random number utilities.
//
// Every stochastic component of the simulation draws from an Rng seeded from
// the experiment seed, so a world built twice from the same seed is
// bit-identical. We use our own xoshiro256** implementation rather than
// std::mt19937 so the stream is stable across standard library versions.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace lfp::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
  public:
    explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        // splitmix64 to expand the seed into four non-zero words.
        std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
        for (auto& word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound). bound == 0 returns 0.
    std::uint64_t below(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // modulo bias is negligible for our bounds (<< 2^32).
        return next() % bound;
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
        if (hi <= lo) return lo;
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Bernoulli trial.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Geometric-ish small jitter: number of "background packets" between two
    /// of our probes. Mean ~= mean_gap.
    std::uint16_t traffic_gap(double mean_gap) noexcept {
        if (mean_gap <= 0) return 0;
        // Exponential via inverse CDF, clamped to 16-bit.
        double draw = -mean_gap * log_of_uniform();
        if (draw > 65535.0) draw = 65535.0;
        return static_cast<std::uint16_t>(draw);
    }

    /// Pick an index from a discrete weight vector. Weights need not sum to 1.
    std::size_t weighted(std::span<const double> weights) noexcept {
        double total = 0;
        for (double w : weights) total += w;
        if (total <= 0) return 0;
        double draw = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw < 0) return i;
        }
        return weights.size() - 1;
    }

    /// Derive a child generator; children with distinct tags have independent
    /// streams regardless of draw order on the parent.
    Rng fork(std::uint64_t tag) noexcept {
        return Rng(state_[0] ^ (tag * 0x9E3779B97F4A7C15ULL) ^ rotl(state_[3], 13));
    }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    double log_of_uniform() noexcept {
        // ln(u) for u in (0,1]; avoid log(0).
        double u = uniform();
        if (u < 1e-300) u = 1e-300;
        // Cheap natural log via std; precision is irrelevant for jitter.
        return __builtin_log(u);
    }

    std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle with our deterministic generator.
template <typename T>
void shuffle(std::vector<T>& items, Rng& rng) {
    for (std::size_t i = items.size(); i > 1; --i) {
        std::size_t j = rng.below(i);
        using std::swap;
        swap(items[i - 1], items[j]);
    }
}

}  // namespace lfp::util
