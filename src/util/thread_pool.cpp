#include "util/thread_pool.hpp"

#include <algorithm>

namespace lfp::util {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    // The submitting thread is worker number one; only spawn the extras.
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        finish_task(task);
    }
}

bool ThreadPool::run_one_task() {
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) return false;
        task = std::move(tasks_.front());
        tasks_.pop();
    }
    finish_task(task);
    return true;
}

void ThreadPool::finish_task(const std::function<void()>& task) {
    std::exception_ptr error;
    try {
        task();
    } catch (...) {
        error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !batch_error_) batch_error_ = error;
    if (--active_tasks_ == 0) batch_done_.notify_all();
}

void ThreadPool::parallel_for(std::size_t count, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& body) {
    if (count == 0) return;
    grain = std::max<std::size_t>(1, grain);
    if (workers_.empty() || count <= grain) {
        body(0, count);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t begin = 0; begin < count; begin += grain) {
            const std::size_t end = std::min(count, begin + grain);
            tasks_.push([&body, begin, end] { body(begin, end); });
            ++active_tasks_;
        }
    }
    work_ready_.notify_all();
    // The caller chips in instead of blocking idle.
    while (run_one_task()) {
    }
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batch_done_.wait(lock, [this] { return active_tasks_ == 0; });
        error = batch_error_;
        batch_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace lfp::util
