// Open-addressing hash containers for the probe hot path.
//
// std::unordered_map allocates one node per insert, which is exactly the
// per-target heap traffic the census hot path must not pay: the demux table
// and the in-flight address set churn through one insert+erase per probe
// slot per target. FlatMap/FlatSet store entries inline in a flat
// power-of-two array with linear probing, so after a single reserve() the
// steady-state insert/erase cycle never touches the heap.
//
// Deletion uses backward-shift (Robin-Hood-style compaction) instead of
// tombstones: erase walks the following cluster and moves any entry whose
// probe distance allows it into the hole, so lookup cost stays bounded by
// cluster length no matter how many erases the table has seen. That matters
// here — the demux table sees one erase per match, millions over a census,
// and tombstone schemes degrade exactly under that load.
//
// Not thread-safe; sized for single-ownership per lane. Keys and values
// must be movable; keys additionally equality-comparable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lfp::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Equal = std::equal_to<Key>>
class FlatMap {
  public:
    explicit FlatMap(std::size_t expected = 0) {
        rehash(slot_count_for(expected));
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

    /// Ensures `expected` entries fit without rehashing (and therefore
    /// without allocating) later.
    void reserve(std::size_t expected) {
        const std::size_t wanted = slot_count_for(expected);
        if (wanted > slots_.size()) rehash(wanted);
    }

    void clear() noexcept {
        for (auto& state : states_) state = State::kEmpty;
        size_ = 0;
    }

    /// Inserts or overwrites. Returns a pointer to the stored value (stable
    /// until the next rehash or erase).
    Value* insert_or_assign(const Key& key, Value value) {
        if ((size_ + 1) * 8 > slots_.size() * 7) rehash(slots_.size() * 2);
        const std::size_t mask = slots_.size() - 1;
        std::size_t index = Hash{}(key)&mask;
        while (states_[index] == State::kFull) {
            if (Equal{}(slots_[index].key, key)) {
                slots_[index].value = std::move(value);
                return &slots_[index].value;
            }
            index = (index + 1) & mask;
        }
        states_[index] = State::kFull;
        slots_[index].key = key;
        slots_[index].value = std::move(value);
        ++size_;
        return &slots_[index].value;
    }

    [[nodiscard]] Value* find(const Key& key) noexcept {
        const std::size_t mask = slots_.size() - 1;
        std::size_t index = Hash{}(key)&mask;
        while (states_[index] == State::kFull) {
            if (Equal{}(slots_[index].key, key)) return &slots_[index].value;
            index = (index + 1) & mask;
        }
        return nullptr;
    }

    [[nodiscard]] const Value* find(const Key& key) const noexcept {
        return const_cast<FlatMap*>(this)->find(key);
    }

    [[nodiscard]] bool contains(const Key& key) const noexcept { return find(key) != nullptr; }

    /// Removes `key` if present; returns whether anything was removed.
    bool erase(const Key& key) noexcept {
        const std::size_t mask = slots_.size() - 1;
        std::size_t index = Hash{}(key)&mask;
        while (states_[index] == State::kFull) {
            if (Equal{}(slots_[index].key, key)) {
                remove_at(index);
                return true;
            }
            index = (index + 1) & mask;
        }
        return false;
    }

    /// Visits every live entry as fn(const Key&, Value&). Iteration order is
    /// the table's internal order — callers needing determinism must sort.
    template <typename Fn>
    void for_each(Fn&& fn) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (states_[i] == State::kFull) fn(slots_[i].key, slots_[i].value);
        }
    }

  private:
    enum class State : std::uint8_t { kEmpty, kFull };

    struct Slot {
        Key key{};
        Value value{};
    };

    static std::size_t slot_count_for(std::size_t expected) noexcept {
        // Keep load factor under 7/8 at `expected` entries, minimum 16 slots.
        std::size_t slots = 16;
        while (expected * 8 > slots * 7) slots <<= 1;
        return slots;
    }

    void rehash(std::size_t new_slot_count) {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<State> old_states = std::move(states_);
        slots_.assign(new_slot_count, Slot{});
        states_.assign(new_slot_count, State::kEmpty);
        size_ = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_states[i] == State::kFull) {
                insert_or_assign(old_slots[i].key, std::move(old_slots[i].value));
            }
        }
    }

    /// Backward-shift deletion: close the hole by sliding down any later
    /// cluster member whose home position permits the move.
    void remove_at(std::size_t hole) noexcept {
        const std::size_t mask = slots_.size() - 1;
        std::size_t probe = hole;
        for (;;) {
            probe = (probe + 1) & mask;
            if (states_[probe] != State::kFull) break;
            const std::size_t home = Hash{}(slots_[probe].key) & mask;
            // The entry at `probe` may move into `hole` only if its probe
            // sequence from `home` passes through `hole` — i.e. the hole is
            // no earlier in the cluster than the entry's home.
            if (((probe - home) & mask) >= ((probe - hole) & mask)) {
                slots_[hole] = std::move(slots_[probe]);
                hole = probe;
            }
        }
        states_[hole] = State::kEmpty;
        slots_[hole] = Slot{};
        --size_;
    }

    std::vector<Slot> slots_;
    std::vector<State> states_;
    std::size_t size_ = 0;
};

/// Set façade over FlatMap for membership-only tracking (in-flight target
/// addresses). Same allocation guarantees as FlatMap.
template <typename Key, typename Hash = std::hash<Key>, typename Equal = std::equal_to<Key>>
class FlatSet {
  public:
    explicit FlatSet(std::size_t expected = 0) : map_(expected) {}

    [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
    [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
    void reserve(std::size_t expected) { map_.reserve(expected); }
    void clear() noexcept { map_.clear(); }

    /// Returns true if the key was newly inserted.
    bool insert(const Key& key) {
        if (map_.contains(key)) return false;
        map_.insert_or_assign(key, Empty{});
        return true;
    }

    [[nodiscard]] bool contains(const Key& key) const noexcept { return map_.contains(key); }
    bool erase(const Key& key) noexcept { return map_.erase(key); }

  private:
    struct Empty {};
    FlatMap<Key, Empty, Hash, Equal> map_;
};

}  // namespace lfp::util
