// Allocation attribution for the census pipeline.
//
// BENCH_scale reports heap allocations per target, but a single number
// cannot say *which stage* pays them — the probe hot path is asserted
// zero-alloc, so the allocations live somewhere between the simulated
// responder, record assembly, and the sinks. Each pipeline thread (and
// each scoped region worth isolating) tags itself with a stage name;
// an allocation-counting harness (bench_scale's operator new) reads the
// thread-local tag at allocation time and buckets the count by stage.
//
// Zero-cost by design: the tag is a thread_local pointer to a string
// literal, written once per region entry/exit. Nothing in the library
// reads it — only harnesses that replace operator new do — so production
// builds carry two pointer writes per region and nothing else.
#pragma once

namespace lfp::util {

/// The current thread's pipeline stage, or nullptr when untagged. Points
/// at a string literal with static storage duration (AllocStageScope
/// enforces the lifetime by construction).
inline thread_local const char* t_alloc_stage = nullptr;

/// RAII stage tag: sets t_alloc_stage for the enclosing scope, restoring
/// the previous tag on exit so nested regions attribute correctly.
class AllocStageScope {
  public:
    explicit AllocStageScope(const char* stage) noexcept : previous_(t_alloc_stage) {
        t_alloc_stage = stage;
    }
    ~AllocStageScope() { t_alloc_stage = previous_; }

    AllocStageScope(const AllocStageScope&) = delete;
    AllocStageScope& operator=(const AllocStageScope&) = delete;

  private:
    const char* previous_;
};

}  // namespace lfp::util
