// Bounded lock-free single-producer/single-consumer ring buffer: the seam
// between a lane's dedicated receive thread (producer) and its scheduler
// thread (consumer), and between a lane thread and the census record
// consumer. Exactly one thread may push and exactly one may pop; under that
// contract every operation is wait-free (one CAS-free atomic store each).
//
// Layout follows the classic cache-conscious design: head and tail live on
// their own cache lines so the producer's stores never invalidate the line
// the consumer spins on, and each side keeps a local cached copy of the
// other side's index so the common case (ring neither full nor empty) reads
// no shared state at all.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace lfp::util {

/// Architectural spin hint: tells the core we are in a polling loop so it
/// can release pipeline resources to the sibling hyper-thread (x86 PAUSE,
/// arm YIELD). Falls back to an OS yield where no hint instruction exists.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/// Progressive wait for the idle side of a ring (or any producer/consumer
/// edge), in three escalating phases so a stalled counterpart never pins a
/// core for the duration of a 10M-target run:
///
///   1. cpu_relax() hints — the counterpart is likely mid-operation and the
///      handoff lands within nanoseconds; stay on-core without stealing
///      pipeline slots.
///   2. sched yields — give up the timeslice but stay runnable; covers the
///      counterpart being briefly preempted.
///   3. real sleeps, doubling from the base interval up to a bounded cap —
///      a genuinely idle wait (slow consumer, stalled lane) costs
///      negligible CPU while still waking fast once work resumes.
///
/// reset() on every success restores both the phase and the base sleep.
class SpinBackoff {
  public:
    explicit SpinBackoff(std::chrono::microseconds sleep = std::chrono::microseconds(100))
        : base_sleep_(sleep), sleep_(sleep) {}

    void pause() {
        ++spins_;
        if (spins_ <= kRelaxLimit) {
            cpu_relax();
        } else if (spins_ <= kRelaxLimit + kYieldLimit) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(sleep_);
            const auto ceiling = base_sleep_ * kMaxSleepFactor;
            sleep_ = sleep_ * 2 > ceiling ? ceiling : sleep_ * 2;
        }
    }

    void reset() noexcept {
        spins_ = 0;
        sleep_ = base_sleep_;
    }

  private:
    static constexpr int kRelaxLimit = 64;
    static constexpr int kYieldLimit = 64;
    static constexpr int kMaxSleepFactor = 32;
    std::chrono::microseconds base_sleep_;
    std::chrono::microseconds sleep_;
    int spins_ = 0;
};

/// Destructive-interference distance. A fixed 64 rather than
/// std::hardware_destructive_interference_size: the standard constant is an
/// ABI hazard GCC warns about, and 64 is the actual line size everywhere
/// this code runs (x86-64, aarch64 — on the rare 128-byte-line parts the
/// cost is one extra line of padding shared by two indices).
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
  public:
    /// `capacity` is rounded up to the next power of two (minimum 2). The
    /// ring holds up to `capacity` elements; push fails (returns false)
    /// when full, pop fails when empty — callers decide how to back off.
    explicit SpscRing(std::size_t capacity) : mask_(round_up(capacity) - 1) {
        slots_.resize(mask_ + 1);
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

    /// Producer side. Returns false when the ring is full.
    bool try_push(T&& value) {
        const std::size_t tail = tail_.pos.load(std::memory_order_relaxed);
        if (tail - head_cache_ > mask_) {
            // Looks full through the cached head; refresh the real one.
            head_cache_ = head_.pos.load(std::memory_order_acquire);
            if (tail - head_cache_ > mask_) return false;
        }
        slots_[tail & mask_] = std::move(value);
        tail_.pos.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. Returns false when the ring is empty.
    bool try_pop(T& out) {
        const std::size_t head = head_.pos.load(std::memory_order_relaxed);
        if (head == tail_cache_) {
            tail_cache_ = tail_.pos.load(std::memory_order_acquire);
            if (head == tail_cache_) return false;
        }
        out = std::move(slots_[head & mask_]);
        head_.pos.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer-side emptiness probe (exact for the consumer; a producer
    /// may be about to publish, so "empty" is only a snapshot).
    [[nodiscard]] bool empty() const noexcept {
        return head_.pos.load(std::memory_order_acquire) ==
               tail_.pos.load(std::memory_order_acquire);
    }

    /// Snapshot of the element count (exact only from within the owning
    /// side; advisory anywhere else).
    [[nodiscard]] std::size_t size() const noexcept {
        return tail_.pos.load(std::memory_order_acquire) -
               head_.pos.load(std::memory_order_acquire);
    }

  private:
    static constexpr std::size_t round_up(std::size_t capacity) noexcept {
        std::size_t size = 2;
        while (size < capacity) size <<= 1;
        return size;
    }

    struct alignas(kCacheLineSize) PaddedIndex {
        std::atomic<std::size_t> pos{0};
    };

    const std::size_t mask_;
    std::vector<T> slots_;
    PaddedIndex head_;                                  ///< next pop position
    PaddedIndex tail_;                                  ///< next push position
    alignas(kCacheLineSize) std::size_t head_cache_ = 0;  ///< producer's view
    alignas(kCacheLineSize) std::size_t tail_cache_ = 0;  ///< consumer's view
};

}  // namespace lfp::util
