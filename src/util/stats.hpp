// Descriptive statistics used by the experiment harness: ECDFs, histograms,
// and summary stats. These back every figure reproduction.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace lfp::util {

/// Empirical CDF over double samples.
class Ecdf {
  public:
    Ecdf() = default;
    explicit Ecdf(std::vector<double> samples);

    void add(double sample);

    /// Fraction of samples <= x. Empty ECDF returns 0.
    [[nodiscard]] double at(double x) const;

    /// Smallest sample s such that at(s) >= q, for q in (0, 1].
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;

    /// Evaluation points and cumulative fractions at `points` evenly spaced
    /// x values across [min, max] — the series a plot would draw.
    struct Series {
        std::vector<double> x;
        std::vector<double> y;
    };
    [[nodiscard]] Series series(std::size_t points = 50) const;

    [[nodiscard]] const std::vector<double>& sorted_samples() const;

  private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/// Fixed-width bin histogram.
class Histogram {
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);

    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] double bin_low(std::size_t bin) const;
    [[nodiscard]] double bin_high(std::size_t bin) const;
    /// Percentage of all samples falling in `bin`.
    [[nodiscard]] double percent(std::size_t bin) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
};

/// Counter keyed by string (vendor names, combination sets, ...).
class Counter {
  public:
    void add(const std::string& key, std::size_t n = 1);

    [[nodiscard]] std::size_t get(const std::string& key) const;
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] double fraction(const std::string& key) const;

    /// Keys sorted by descending count (ties broken lexicographically).
    [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> top(std::size_t n) const;
    [[nodiscard]] const std::map<std::string, std::size_t>& items() const noexcept {
        return counts_;
    }

  private:
    std::map<std::string, std::size_t> counts_;
    std::size_t total_ = 0;
};

double mean(const std::vector<double>& xs);
double median(std::vector<double> xs);

}  // namespace lfp::util
