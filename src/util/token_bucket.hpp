// Token-bucket send shaping: the classic rate limiter — a bucket holding up
// to `burst` tokens refills continuously at `rate` tokens per second, and a
// sender spends one token per packet. Bursts up to the bucket size pass at
// wire speed; sustained throughput converges to the refill rate.
//
// This is the *between-targets* pacing control of the probe engine
// (Campaign::Config::packets_per_second): it bounds the send rate a path
// sees, which is what keeps a census under ICMP limiter budgets, while the
// in-flight window (fixed or AIMD) independently bounds concurrency. The
// two compose — the window decides how many targets wait for answers at
// once, the bucket decides how fast their probes leave the vantage.
//
// Time is passed in explicitly (steady_clock time points) so the arithmetic
// is exactly testable without wall-clock sleeps; callers in the engine just
// pass Clock::now(). Not thread-safe: one bucket belongs to one sender
// thread, matching the transport's one-sender contract.
#pragma once

#include <algorithm>
#include <chrono>

namespace lfp::util {

class TokenBucket {
  public:
    using Clock = std::chrono::steady_clock;

    /// `rate_per_sec` tokens accrue per second, capped at `burst` (the
    /// bucket also *starts* full — the polite interpretation: a fresh
    /// sender may open with one burst, then settles to the rate). Both
    /// must be positive; a non-positive burst is clamped to 1 so a bucket
    /// can always eventually serve a single-token request, and a
    /// non-positive rate is clamped up to a minimal trickle rather than
    /// wedging the sender forever.
    TokenBucket(double rate_per_sec, double burst,
                Clock::time_point now = Clock::now())
        : rate_(std::max(rate_per_sec, 1e-9)),
          burst_(std::max(burst, 1.0)),
          tokens_(burst_),
          last_(now) {}

    /// Spends `tokens` if the bucket (refilled up to `now`) holds them;
    /// returns false without spending anything otherwise. Requests larger
    /// than the burst capacity are served once the bucket is full — the
    /// bucket goes momentarily negative-free by capping the request check
    /// at capacity, so an oversized batch costs a full bucket instead of
    /// deadlocking.
    bool try_acquire(double tokens, Clock::time_point now = Clock::now()) {
        refill(now);
        const double needed = std::min(tokens, burst_);
        if (tokens_ + kSlack < needed) return false;
        tokens_ = std::max(0.0, tokens_ - tokens);
        return true;
    }

    /// Tokens available at `now` (refills as a side effect).
    double available(Clock::time_point now = Clock::now()) {
        refill(now);
        return tokens_;
    }

    [[nodiscard]] double rate_per_sec() const noexcept { return rate_; }
    [[nodiscard]] double burst() const noexcept { return burst_; }

  private:
    /// Floating-point slack on the availability check: refill arithmetic
    /// accumulates rounding, and a sender stalled for want of 1e-12 of a
    /// token would be wrong in the silliest way.
    static constexpr double kSlack = 1e-9;

    void refill(Clock::time_point now) {
        if (now <= last_) return;  // steady_clock never goes back; belt and braces
        const std::chrono::duration<double> elapsed = now - last_;
        tokens_ = std::min(burst_, tokens_ + rate_ * elapsed.count());
        last_ = now;
    }

    double rate_;
    double burst_;
    double tokens_;
    Clock::time_point last_;
};

}  // namespace lfp::util
